# Empty dependencies file for dtbl_core.
# This may be replaced when dependencies are built.
