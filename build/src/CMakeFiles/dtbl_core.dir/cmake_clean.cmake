file(REMOVE_RECURSE
  "CMakeFiles/dtbl_core.dir/core/agt.cc.o"
  "CMakeFiles/dtbl_core.dir/core/agt.cc.o.d"
  "CMakeFiles/dtbl_core.dir/core/dtbl_scheduler.cc.o"
  "CMakeFiles/dtbl_core.dir/core/dtbl_scheduler.cc.o.d"
  "libdtbl_core.a"
  "libdtbl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
