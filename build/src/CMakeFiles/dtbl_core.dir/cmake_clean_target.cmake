file(REMOVE_RECURSE
  "libdtbl_core.a"
)
