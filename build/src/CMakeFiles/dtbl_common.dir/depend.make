# Empty dependencies file for dtbl_common.
# This may be replaced when dependencies are built.
