file(REMOVE_RECURSE
  "CMakeFiles/dtbl_common.dir/common/config.cc.o"
  "CMakeFiles/dtbl_common.dir/common/config.cc.o.d"
  "CMakeFiles/dtbl_common.dir/common/log.cc.o"
  "CMakeFiles/dtbl_common.dir/common/log.cc.o.d"
  "CMakeFiles/dtbl_common.dir/common/rng.cc.o"
  "CMakeFiles/dtbl_common.dir/common/rng.cc.o.d"
  "libdtbl_common.a"
  "libdtbl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
