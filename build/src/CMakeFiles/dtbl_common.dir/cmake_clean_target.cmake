file(REMOVE_RECURSE
  "libdtbl_common.a"
)
