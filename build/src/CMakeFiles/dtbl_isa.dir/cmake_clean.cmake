file(REMOVE_RECURSE
  "CMakeFiles/dtbl_isa.dir/isa/disasm.cc.o"
  "CMakeFiles/dtbl_isa.dir/isa/disasm.cc.o.d"
  "CMakeFiles/dtbl_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/dtbl_isa.dir/isa/instruction.cc.o.d"
  "CMakeFiles/dtbl_isa.dir/isa/kernel_builder.cc.o"
  "CMakeFiles/dtbl_isa.dir/isa/kernel_builder.cc.o.d"
  "CMakeFiles/dtbl_isa.dir/isa/kernel_function.cc.o"
  "CMakeFiles/dtbl_isa.dir/isa/kernel_function.cc.o.d"
  "libdtbl_isa.a"
  "libdtbl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
