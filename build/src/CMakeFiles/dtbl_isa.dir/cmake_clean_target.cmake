file(REMOVE_RECURSE
  "libdtbl_isa.a"
)
