# Empty compiler generated dependencies file for dtbl_isa.
# This may be replaced when dependencies are built.
