file(REMOVE_RECURSE
  "CMakeFiles/dtbl_stats.dir/stats/busy_tracker.cc.o"
  "CMakeFiles/dtbl_stats.dir/stats/busy_tracker.cc.o.d"
  "CMakeFiles/dtbl_stats.dir/stats/metrics.cc.o"
  "CMakeFiles/dtbl_stats.dir/stats/metrics.cc.o.d"
  "libdtbl_stats.a"
  "libdtbl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
