file(REMOVE_RECURSE
  "libdtbl_stats.a"
)
