# Empty dependencies file for dtbl_stats.
# This may be replaced when dependencies are built.
