# Empty dependencies file for dtbl_mem.
# This may be replaced when dependencies are built.
