file(REMOVE_RECURSE
  "CMakeFiles/dtbl_mem.dir/mem/cache.cc.o"
  "CMakeFiles/dtbl_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/dtbl_mem.dir/mem/coalescer.cc.o"
  "CMakeFiles/dtbl_mem.dir/mem/coalescer.cc.o.d"
  "CMakeFiles/dtbl_mem.dir/mem/dram.cc.o"
  "CMakeFiles/dtbl_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/dtbl_mem.dir/mem/global_memory.cc.o"
  "CMakeFiles/dtbl_mem.dir/mem/global_memory.cc.o.d"
  "CMakeFiles/dtbl_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/dtbl_mem.dir/mem/memory_system.cc.o.d"
  "libdtbl_mem.a"
  "libdtbl_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
