file(REMOVE_RECURSE
  "libdtbl_mem.a"
)
