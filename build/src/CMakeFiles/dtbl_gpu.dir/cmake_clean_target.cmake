file(REMOVE_RECURSE
  "libdtbl_gpu.a"
)
