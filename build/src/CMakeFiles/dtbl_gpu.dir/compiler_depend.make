# Empty compiler generated dependencies file for dtbl_gpu.
# This may be replaced when dependencies are built.
