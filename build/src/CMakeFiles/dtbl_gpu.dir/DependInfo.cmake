
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/device_runtime.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/device_runtime.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/device_runtime.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/kernel_distributor.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/kernel_distributor.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/kernel_distributor.cc.o.d"
  "/root/repo/src/gpu/kmu.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/kmu.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/kmu.cc.o.d"
  "/root/repo/src/gpu/smx.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/smx.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/smx.cc.o.d"
  "/root/repo/src/gpu/smx_scheduler.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/smx_scheduler.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/smx_scheduler.cc.o.d"
  "/root/repo/src/gpu/stream.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/stream.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/stream.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/CMakeFiles/dtbl_gpu.dir/gpu/warp.cc.o" "gcc" "src/CMakeFiles/dtbl_gpu.dir/gpu/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtbl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
