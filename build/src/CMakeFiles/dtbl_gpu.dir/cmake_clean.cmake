file(REMOVE_RECURSE
  "CMakeFiles/dtbl_gpu.dir/gpu/device_runtime.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/device_runtime.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/gpu.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/gpu.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/kernel_distributor.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/kernel_distributor.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/kmu.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/kmu.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/smx.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/smx.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/smx_scheduler.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/smx_scheduler.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/stream.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/stream.cc.o.d"
  "CMakeFiles/dtbl_gpu.dir/gpu/warp.cc.o"
  "CMakeFiles/dtbl_gpu.dir/gpu/warp.cc.o.d"
  "libdtbl_gpu.a"
  "libdtbl_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
