file(REMOVE_RECURSE
  "CMakeFiles/dtbl_harness.dir/harness/report.cc.o"
  "CMakeFiles/dtbl_harness.dir/harness/report.cc.o.d"
  "CMakeFiles/dtbl_harness.dir/harness/runner.cc.o"
  "CMakeFiles/dtbl_harness.dir/harness/runner.cc.o.d"
  "libdtbl_harness.a"
  "libdtbl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
