# Empty compiler generated dependencies file for dtbl_harness.
# This may be replaced when dependencies are built.
