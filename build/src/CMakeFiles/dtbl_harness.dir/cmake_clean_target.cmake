file(REMOVE_RECURSE
  "libdtbl_harness.a"
)
