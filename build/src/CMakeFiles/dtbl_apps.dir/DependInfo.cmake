
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/amr.cc" "src/CMakeFiles/dtbl_apps.dir/apps/amr.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/amr.cc.o.d"
  "/root/repo/src/apps/app.cc" "src/CMakeFiles/dtbl_apps.dir/apps/app.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/app.cc.o.d"
  "/root/repo/src/apps/bfs.cc" "src/CMakeFiles/dtbl_apps.dir/apps/bfs.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/bfs.cc.o.d"
  "/root/repo/src/apps/bht.cc" "src/CMakeFiles/dtbl_apps.dir/apps/bht.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/bht.cc.o.d"
  "/root/repo/src/apps/clr.cc" "src/CMakeFiles/dtbl_apps.dir/apps/clr.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/clr.cc.o.d"
  "/root/repo/src/apps/datasets/generators.cc" "src/CMakeFiles/dtbl_apps.dir/apps/datasets/generators.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/datasets/generators.cc.o.d"
  "/root/repo/src/apps/datasets/graph.cc" "src/CMakeFiles/dtbl_apps.dir/apps/datasets/graph.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/datasets/graph.cc.o.d"
  "/root/repo/src/apps/join.cc" "src/CMakeFiles/dtbl_apps.dir/apps/join.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/join.cc.o.d"
  "/root/repo/src/apps/pre.cc" "src/CMakeFiles/dtbl_apps.dir/apps/pre.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/pre.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/CMakeFiles/dtbl_apps.dir/apps/registry.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/registry.cc.o.d"
  "/root/repo/src/apps/regx.cc" "src/CMakeFiles/dtbl_apps.dir/apps/regx.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/regx.cc.o.d"
  "/root/repo/src/apps/sssp.cc" "src/CMakeFiles/dtbl_apps.dir/apps/sssp.cc.o" "gcc" "src/CMakeFiles/dtbl_apps.dir/apps/sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtbl_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
