# Empty dependencies file for dtbl_apps.
# This may be replaced when dependencies are built.
