file(REMOVE_RECURSE
  "CMakeFiles/dtbl_apps.dir/apps/amr.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/amr.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/app.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/app.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/bfs.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/bfs.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/bht.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/bht.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/clr.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/clr.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/datasets/generators.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/datasets/generators.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/datasets/graph.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/datasets/graph.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/join.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/join.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/pre.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/pre.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/registry.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/registry.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/regx.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/regx.cc.o.d"
  "CMakeFiles/dtbl_apps.dir/apps/sssp.cc.o"
  "CMakeFiles/dtbl_apps.dir/apps/sssp.cc.o.d"
  "libdtbl_apps.a"
  "libdtbl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
