file(REMOVE_RECURSE
  "libdtbl_apps.a"
)
