# Empty compiler generated dependencies file for bench_fig09_waiting_time.
# This may be replaced when dependencies are built.
