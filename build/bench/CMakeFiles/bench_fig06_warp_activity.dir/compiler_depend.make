# Empty compiler generated dependencies file for bench_fig06_warp_activity.
# This may be replaced when dependencies are built.
