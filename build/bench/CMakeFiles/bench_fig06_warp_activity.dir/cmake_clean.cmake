file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_warp_activity.dir/bench_fig06_warp_activity.cc.o"
  "CMakeFiles/bench_fig06_warp_activity.dir/bench_fig06_warp_activity.cc.o.d"
  "bench_fig06_warp_activity"
  "bench_fig06_warp_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_warp_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
