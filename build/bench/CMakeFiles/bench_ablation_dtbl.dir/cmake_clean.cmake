file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtbl.dir/bench_ablation_dtbl.cc.o"
  "CMakeFiles/bench_ablation_dtbl.dir/bench_ablation_dtbl.cc.o.d"
  "bench_ablation_dtbl"
  "bench_ablation_dtbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
