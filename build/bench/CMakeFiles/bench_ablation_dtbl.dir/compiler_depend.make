# Empty compiler generated dependencies file for bench_ablation_dtbl.
# This may be replaced when dependencies are built.
