# Empty dependencies file for bench_fig12_agt_size.
# This may be replaced when dependencies are built.
