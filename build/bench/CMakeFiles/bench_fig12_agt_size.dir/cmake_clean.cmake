file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_agt_size.dir/bench_fig12_agt_size.cc.o"
  "CMakeFiles/bench_fig12_agt_size.dir/bench_fig12_agt_size.cc.o.d"
  "bench_fig12_agt_size"
  "bench_fig12_agt_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_agt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
