# Empty compiler generated dependencies file for dtbl_bench_common.
# This may be replaced when dependencies are built.
