file(REMOVE_RECURSE
  "CMakeFiles/dtbl_bench_common.dir/eval_common.cc.o"
  "CMakeFiles/dtbl_bench_common.dir/eval_common.cc.o.d"
  "libdtbl_bench_common.a"
  "libdtbl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtbl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
