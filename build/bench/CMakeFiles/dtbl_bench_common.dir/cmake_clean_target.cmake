file(REMOVE_RECURSE
  "libdtbl_bench_common.a"
)
