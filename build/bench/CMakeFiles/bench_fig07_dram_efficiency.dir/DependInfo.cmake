
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_dram_efficiency.cc" "bench/CMakeFiles/bench_fig07_dram_efficiency.dir/bench_fig07_dram_efficiency.cc.o" "gcc" "bench/CMakeFiles/bench_fig07_dram_efficiency.dir/bench_fig07_dram_efficiency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dtbl_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtbl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
