# Empty compiler generated dependencies file for test_mode_invariants.
# This may be replaced when dependencies are built.
