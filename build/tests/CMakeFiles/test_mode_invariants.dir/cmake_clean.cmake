file(REMOVE_RECURSE
  "CMakeFiles/test_mode_invariants.dir/test_mode_invariants.cc.o"
  "CMakeFiles/test_mode_invariants.dir/test_mode_invariants.cc.o.d"
  "test_mode_invariants"
  "test_mode_invariants.pdb"
  "test_mode_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mode_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
