# Empty dependencies file for test_dynamic_launch.
# This may be replaced when dependencies are built.
