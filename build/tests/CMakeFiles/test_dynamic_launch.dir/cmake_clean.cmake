file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_launch.dir/test_dynamic_launch.cc.o"
  "CMakeFiles/test_dynamic_launch.dir/test_dynamic_launch.cc.o.d"
  "test_dynamic_launch"
  "test_dynamic_launch.pdb"
  "test_dynamic_launch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
