file(REMOVE_RECURSE
  "CMakeFiles/test_all_apps.dir/test_all_apps.cc.o"
  "CMakeFiles/test_all_apps.dir/test_all_apps.cc.o.d"
  "test_all_apps"
  "test_all_apps.pdb"
  "test_all_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_all_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
