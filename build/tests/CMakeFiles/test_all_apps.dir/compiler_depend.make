# Empty compiler generated dependencies file for test_all_apps.
# This may be replaced when dependencies are built.
