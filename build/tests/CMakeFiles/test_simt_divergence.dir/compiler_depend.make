# Empty compiler generated dependencies file for test_simt_divergence.
# This may be replaced when dependencies are built.
