file(REMOVE_RECURSE
  "CMakeFiles/test_simt_divergence.dir/test_simt_divergence.cc.o"
  "CMakeFiles/test_simt_divergence.dir/test_simt_divergence.cc.o.d"
  "test_simt_divergence"
  "test_simt_divergence.pdb"
  "test_simt_divergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
