file(REMOVE_RECURSE
  "CMakeFiles/test_bfs_app.dir/test_bfs_app.cc.o"
  "CMakeFiles/test_bfs_app.dir/test_bfs_app.cc.o.d"
  "test_bfs_app"
  "test_bfs_app.pdb"
  "test_bfs_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfs_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
