# Empty compiler generated dependencies file for test_bfs_app.
# This may be replaced when dependencies are built.
