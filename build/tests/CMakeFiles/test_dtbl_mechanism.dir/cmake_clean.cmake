file(REMOVE_RECURSE
  "CMakeFiles/test_dtbl_mechanism.dir/test_dtbl_mechanism.cc.o"
  "CMakeFiles/test_dtbl_mechanism.dir/test_dtbl_mechanism.cc.o.d"
  "test_dtbl_mechanism"
  "test_dtbl_mechanism.pdb"
  "test_dtbl_mechanism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtbl_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
