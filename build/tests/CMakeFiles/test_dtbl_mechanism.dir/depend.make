# Empty dependencies file for test_dtbl_mechanism.
# This may be replaced when dependencies are built.
