file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_units.dir/test_gpu_units.cc.o"
  "CMakeFiles/test_gpu_units.dir/test_gpu_units.cc.o.d"
  "test_gpu_units"
  "test_gpu_units.pdb"
  "test_gpu_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
