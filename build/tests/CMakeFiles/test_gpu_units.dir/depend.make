# Empty dependencies file for test_gpu_units.
# This may be replaced when dependencies are built.
