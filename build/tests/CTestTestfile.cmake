# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_launch[1]_include.cmake")
include("/root/repo/build/tests/test_bfs_app[1]_include.cmake")
include("/root/repo/build/tests/test_all_apps[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_units[1]_include.cmake")
include("/root/repo/build/tests/test_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_simt_divergence[1]_include.cmake")
include("/root/repo/build/tests/test_dtbl_mechanism[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_mode_invariants[1]_include.cmake")
