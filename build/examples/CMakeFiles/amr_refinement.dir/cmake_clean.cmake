file(REMOVE_RECURSE
  "CMakeFiles/amr_refinement.dir/amr_refinement.cpp.o"
  "CMakeFiles/amr_refinement.dir/amr_refinement.cpp.o.d"
  "amr_refinement"
  "amr_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
