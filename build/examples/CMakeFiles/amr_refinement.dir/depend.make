# Empty dependencies file for amr_refinement.
# This may be replaced when dependencies are built.
