# Empty compiler generated dependencies file for relational_join.
# This may be replaced when dependencies are built.
