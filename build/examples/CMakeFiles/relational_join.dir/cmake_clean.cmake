file(REMOVE_RECURSE
  "CMakeFiles/relational_join.dir/relational_join.cpp.o"
  "CMakeFiles/relational_join.dir/relational_join.cpp.o.d"
  "relational_join"
  "relational_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
