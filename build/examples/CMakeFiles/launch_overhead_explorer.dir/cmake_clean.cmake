file(REMOVE_RECURSE
  "CMakeFiles/launch_overhead_explorer.dir/launch_overhead_explorer.cpp.o"
  "CMakeFiles/launch_overhead_explorer.dir/launch_overhead_explorer.cpp.o.d"
  "launch_overhead_explorer"
  "launch_overhead_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_overhead_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
