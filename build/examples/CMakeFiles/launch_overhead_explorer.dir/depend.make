# Empty dependencies file for launch_overhead_explorer.
# This may be replaced when dependencies are built.
