/**
 * @file
 * Unit tests for the memory subsystem: backing store, caches, DRAM
 * timing model and the coalescer (including parameterized
 * pattern-property sweeps).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "stats/pmu.hh"

using namespace dtbl;

// --- GlobalMemory -----------------------------------------------------

TEST(GlobalMemory, ReadWriteWidths)
{
    GlobalMemory mem(1 << 16);
    const Addr a = mem.allocate(64);
    mem.write32(a, 0xdeadbeef);
    EXPECT_EQ(mem.read32(a), 0xdeadbeefu);
    EXPECT_EQ(mem.read16(a), 0xbeefu);
    EXPECT_EQ(mem.read8(a), 0xefu);
    mem.write8(a + 1, 0x11);
    EXPECT_EQ(mem.read32(a), 0xdead11efu);
    mem.write16(a + 2, 0x2233);
    EXPECT_EQ(mem.read32(a), 0x223311efu);
}

TEST(GlobalMemory, FloatRoundTrip)
{
    GlobalMemory mem(1 << 16);
    const Addr a = mem.allocate(16);
    mem.writeF32(a, 3.25f);
    EXPECT_EQ(mem.readF32(a), 3.25f);
}

TEST(GlobalMemory, AllocationAlignment)
{
    GlobalMemory mem(1 << 20);
    const Addr a = mem.allocate(10, 256);
    const Addr b = mem.allocate(10, 256);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(GlobalMemory, NullAndOobAccessPanics)
{
    GlobalMemory mem(1 << 12);
    EXPECT_THROW(mem.read32(0), std::logic_error);
    EXPECT_THROW(mem.read32((1 << 12) - 2), std::logic_error);
}

TEST(GlobalMemory, OutOfMemoryIsFatal)
{
    GlobalMemory mem(4096);
    EXPECT_THROW(mem.allocate(1 << 20), std::runtime_error);
}

TEST(GlobalMemory, UploadDownloadRoundTrip)
{
    GlobalMemory mem(1 << 16);
    std::vector<std::uint32_t> v{1, 2, 3, 42};
    const Addr a = mem.upload(v);
    EXPECT_EQ(mem.download<std::uint32_t>(a, 4), v);
}

// --- BusyTracker --------------------------------------------------------

TEST(BusyTracker, DisjointIntervalsSum)
{
    BusyTracker t;
    t.record(10, 20);
    t.record(30, 35);
    EXPECT_EQ(t.busyCycles(), 15u);
}

TEST(BusyTracker, OverlapCountedOnce)
{
    BusyTracker t;
    t.record(10, 20);
    t.record(15, 25);
    t.record(18, 22);
    EXPECT_EQ(t.busyCycles(), 15u);
}

TEST(BusyTracker, ContainedIntervalAddsNothing)
{
    BusyTracker t;
    t.record(10, 100);
    t.record(20, 50);
    EXPECT_EQ(t.busyCycles(), 90u);
}

TEST(BusyTracker, EmptyIntervalIgnored)
{
    BusyTracker t;
    t.record(5, 5);
    EXPECT_EQ(t.busyCycles(), 0u);
}

// --- Cache -----------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1040, false).hit); // same 128B line
}

TEST(Cache, LruEviction)
{
    // 2-way, 4 sets of 128B lines: addresses mapping to set 0 are
    // multiples of 512.
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    c.access(0 * 512 + 0x10000, false);
    c.access(1 * 512 + 0x10000, false);
    c.access(0 * 512 + 0x10000, false);     // refresh way 0
    c.access(2 * 512 + 0x10000, false);     // evicts the LRU (1*512)
    EXPECT_TRUE(c.access(0 * 512 + 0x10000, false).hit);
    EXPECT_FALSE(c.access(1 * 512 + 0x10000, false).hit);
}

TEST(Cache, WriteThroughDoesNotAllocate)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    EXPECT_FALSE(c.access(0x2000, true).hit);
    EXPECT_FALSE(c.access(0x2000, false).hit); // still not present
}

TEST(Cache, WriteBackAllocatesAndWritesBackDirty)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack); // 4 sets
    EXPECT_FALSE(c.access(0x0000, true).hit); // allocate dirty
    EXPECT_TRUE(c.access(0x0000, false).hit);
    // Conflicting line in the same set (4 sets * 128B = 512B stride).
    const auto res = c.access(0x0000 + 512, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x0000u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack);
    c.access(0x0000, false);
    const auto res = c.access(0x0000 + 512, false);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteBack);
    c.access(0x3000, false);
    c.invalidate(0x3000);
    EXPECT_FALSE(c.access(0x3000, false).hit);
}

// --- DRAM --------------------------------------------------------------

TEST(Dram, RowHitFasterThanRowMiss)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    const Cycle miss = dram.access(0, false, 0);
    // Same row: consecutive line in the same partition needs stride
    // of numPartitions lines.
    const Cycle hit =
        dram.access(128ull * cfg.numPartitions, false, miss) - miss;
    EXPECT_GT(miss, hit);
}

TEST(Dram, CountsReadsAndWrites)
{
    Dram dram(DramConfig{}, 128);
    dram.access(0, false, 0);
    dram.access(128, true, 1);
    dram.access(256, false, 2);
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(Dram, ActivityCoversServiceTime)
{
    Dram dram(DramConfig{}, 128);
    const Cycle end = dram.access(0, false, 100);
    EXPECT_EQ(dram.activityCycles(), end - 100);
}

TEST(Dram, BusSerializesSamePartition)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    // Two simultaneous requests to the same partition: the second ends
    // at least burstCycles later.
    const Cycle e1 = dram.access(0, false, 0);
    const Cycle e2 =
        dram.access(128ull * cfg.numPartitions, false, 0);
    EXPECT_GE(e2, e1 + cfg.burstCycles);
}

TEST(Dram, PartitionsOperateInParallel)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    const Cycle e1 = dram.access(0, false, 0);
    const Cycle e2 = dram.access(128, false, 0); // next partition
    // Different partitions: same completion profile, no serialization.
    EXPECT_EQ(e1, e2);
}

TEST(Dram, StreamingHasHighRowHitRate)
{
    Dram dram(DramConfig{}, 128);
    Cycle now = 0;
    for (Addr a = 0; a < 256 * 128; a += 128)
        now = dram.access(a, false, now);
    EXPECT_GT(dram.rowHitRate(), 0.5);
}

TEST(Dram, RandomAccessHasLowRowHitRate)
{
    Dram dram(DramConfig{}, 128);
    Rng rng(3);
    Cycle now = 0;
    for (int i = 0; i < 256; ++i) {
        now = dram.access(rng.nextBounded(1 << 26) * 128ull, false, now);
    }
    EXPECT_LT(dram.rowHitRate(), 0.3);
}

// --- Coalescer (parameterized pattern properties) ------------------------

struct CoalescePattern
{
    const char *name;
    unsigned stride;        //!< bytes between consecutive lanes
    unsigned expectedSegs;  //!< for a full warp of 4B accesses
};

class CoalescerPatterns : public ::testing::TestWithParam<CoalescePattern>
{
};

TEST_P(CoalescerPatterns, SegmentCountMatches)
{
    const auto &p = GetParam();
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = 0x40000 + Addr(i) * p.stride;
    const auto segs = c.coalesce(addrs, fullMask, 4);
    EXPECT_EQ(segs.size(), p.expectedSegs) << p.name;
    for (Addr s : segs)
        EXPECT_EQ(s % 128, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CoalescerPatterns,
    ::testing::Values(CoalescePattern{"unit", 4, 1},
                      CoalescePattern{"stride2", 8, 2},
                      CoalescePattern{"stride32B", 32, 8},
                      CoalescePattern{"stride128B", 128, 32},
                      CoalescePattern{"same_addr", 0, 1}),
    [](const auto &info) { return info.param.name; });

TEST(Coalescer, InactiveLanesIgnored)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = Addr(i) * 128; // worst case: one segment per lane
    const auto segs = c.coalesce(addrs, 0x0000000f, 4);
    EXPECT_EQ(segs.size(), 4u);
}

TEST(Coalescer, EmptyMaskProducesNothing)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    EXPECT_TRUE(c.coalesce(addrs, 0, 4).empty());
}

TEST(Coalescer, StraddlingAccessTouchesTwoSegments)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    addrs[0] = 126; // 4B access crossing the 128B boundary
    const auto segs = c.coalesce(addrs, 1, 4);
    EXPECT_EQ(segs.size(), 2u);
}

TEST(Coalescer, DeduplicatesAcrossLanes)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = 0x1000 + (i % 2) * 128;
    EXPECT_EQ(c.coalesce(addrs, fullMask, 4).size(), 2u);
}
