/**
 * @file
 * Unit tests for the memory subsystem: backing store, caches, DRAM
 * timing model, the coalescer (including parameterized
 * pattern-property sweeps), MSHRs and the contended memory system —
 * plus the flat-path invariance goldens that pin
 * modelMemContention=false to the pre-MSHR model bit for bit.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "common/rng.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "mem/memory_system.hh"
#include "mem/mshr.hh"
#include "stats/pmu.hh"

using namespace dtbl;

// --- GlobalMemory -----------------------------------------------------

TEST(GlobalMemory, ReadWriteWidths)
{
    GlobalMemory mem(1 << 16);
    const Addr a = mem.allocate(64);
    mem.write32(a, 0xdeadbeef);
    EXPECT_EQ(mem.read32(a), 0xdeadbeefu);
    EXPECT_EQ(mem.read16(a), 0xbeefu);
    EXPECT_EQ(mem.read8(a), 0xefu);
    mem.write8(a + 1, 0x11);
    EXPECT_EQ(mem.read32(a), 0xdead11efu);
    mem.write16(a + 2, 0x2233);
    EXPECT_EQ(mem.read32(a), 0x223311efu);
}

TEST(GlobalMemory, FloatRoundTrip)
{
    GlobalMemory mem(1 << 16);
    const Addr a = mem.allocate(16);
    mem.writeF32(a, 3.25f);
    EXPECT_EQ(mem.readF32(a), 3.25f);
}

TEST(GlobalMemory, AllocationAlignment)
{
    GlobalMemory mem(1 << 20);
    const Addr a = mem.allocate(10, 256);
    const Addr b = mem.allocate(10, 256);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(GlobalMemory, NullAndOobAccessPanics)
{
    GlobalMemory mem(1 << 12);
    EXPECT_THROW(mem.read32(0), std::logic_error);
    EXPECT_THROW(mem.read32((1 << 12) - 2), std::logic_error);
}

TEST(GlobalMemory, OutOfMemoryIsFatal)
{
    GlobalMemory mem(4096);
    EXPECT_THROW(mem.allocate(1 << 20), std::runtime_error);
}

TEST(GlobalMemory, UploadDownloadRoundTrip)
{
    GlobalMemory mem(1 << 16);
    std::vector<std::uint32_t> v{1, 2, 3, 42};
    const Addr a = mem.upload(v);
    EXPECT_EQ(mem.download<std::uint32_t>(a, 4), v);
}

// --- BusyTracker --------------------------------------------------------

TEST(BusyTracker, DisjointIntervalsSum)
{
    BusyTracker t;
    t.record(10, 20);
    t.record(30, 35);
    EXPECT_EQ(t.busyCycles(), 15u);
}

TEST(BusyTracker, OverlapCountedOnce)
{
    BusyTracker t;
    t.record(10, 20);
    t.record(15, 25);
    t.record(18, 22);
    EXPECT_EQ(t.busyCycles(), 15u);
}

TEST(BusyTracker, ContainedIntervalAddsNothing)
{
    BusyTracker t;
    t.record(10, 100);
    t.record(20, 50);
    EXPECT_EQ(t.busyCycles(), 90u);
}

TEST(BusyTracker, EmptyIntervalIgnored)
{
    BusyTracker t;
    t.record(5, 5);
    EXPECT_EQ(t.busyCycles(), 0u);
}

// --- Cache -----------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1040, false).hit); // same 128B line
}

TEST(Cache, LruEviction)
{
    // 2-way, 4 sets of 128B lines: addresses mapping to set 0 are
    // multiples of 512.
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    c.access(0 * 512 + 0x10000, false);
    c.access(1 * 512 + 0x10000, false);
    c.access(0 * 512 + 0x10000, false);     // refresh way 0
    c.access(2 * 512 + 0x10000, false);     // evicts the LRU (1*512)
    EXPECT_TRUE(c.access(0 * 512 + 0x10000, false).hit);
    EXPECT_FALSE(c.access(1 * 512 + 0x10000, false).hit);
}

TEST(Cache, WriteThroughDoesNotAllocate)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteThrough);
    EXPECT_FALSE(c.access(0x2000, true).hit);
    EXPECT_FALSE(c.access(0x2000, false).hit); // still not present
}

TEST(Cache, WriteBackAllocatesAndWritesBackDirty)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack); // 4 sets
    EXPECT_FALSE(c.access(0x0000, true).hit); // allocate dirty
    EXPECT_TRUE(c.access(0x0000, false).hit);
    // Conflicting line in the same set (4 sets * 128B = 512B stride).
    const auto res = c.access(0x0000 + 512, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x0000u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack);
    c.access(0x0000, false);
    const auto res = c.access(0x0000 + 512, false);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, MarkDirtyCausesWritebackOnEviction)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack);
    c.access(0x0000, false); // clean fill
    c.markDirty(0x0000);
    const auto res = c.access(0x0000 + 512, false);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x0000u);
}

TEST(Cache, MarkDirtyOnAbsentLineIsNoOp)
{
    Cache c({512, 128, 1, 10}, Cache::WritePolicy::WriteBack);
    c.markDirty(0x4000);
    EXPECT_FALSE(c.access(0x4000, false).hit); // was never allocated
    // ... and the clean fill above writes nothing back when evicted.
    EXPECT_FALSE(c.access(0x4000 + 512, false).writeback);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c({1024, 128, 2, 10}, Cache::WritePolicy::WriteBack);
    c.access(0x3000, false);
    c.invalidate(0x3000);
    EXPECT_FALSE(c.access(0x3000, false).hit);
}

// --- DRAM --------------------------------------------------------------

TEST(Dram, RowHitFasterThanRowMiss)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    const Cycle miss = dram.access(0, false, 0);
    // Same row: consecutive line in the same partition needs stride
    // of numPartitions lines.
    const Cycle hit =
        dram.access(128ull * cfg.numPartitions, false, miss) - miss;
    EXPECT_GT(miss, hit);
}

TEST(Dram, CountsReadsAndWrites)
{
    Dram dram(DramConfig{}, 128);
    dram.access(0, false, 0);
    dram.access(128, true, 1);
    dram.access(256, false, 2);
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(Dram, ActivityCoversServiceTime)
{
    Dram dram(DramConfig{}, 128);
    const Cycle end = dram.access(0, false, 100);
    EXPECT_EQ(dram.activityCycles(), end - 100);
}

TEST(Dram, BusSerializesSamePartition)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    // Two simultaneous requests to the same partition: the second ends
    // at least burstCycles later.
    const Cycle e1 = dram.access(0, false, 0);
    const Cycle e2 =
        dram.access(128ull * cfg.numPartitions, false, 0);
    EXPECT_GE(e2, e1 + cfg.burstCycles);
}

TEST(Dram, PartitionsOperateInParallel)
{
    DramConfig cfg;
    Dram dram(cfg, 128);
    const Cycle e1 = dram.access(0, false, 0);
    const Cycle e2 = dram.access(128, false, 0); // next partition
    // Different partitions: same completion profile, no serialization.
    EXPECT_EQ(e1, e2);
}

TEST(Dram, StreamingHasHighRowHitRate)
{
    Dram dram(DramConfig{}, 128);
    Cycle now = 0;
    for (Addr a = 0; a < 256 * 128; a += 128)
        now = dram.access(a, false, now);
    EXPECT_GT(dram.rowHitRate(), 0.5);
}

TEST(Dram, RandomAccessHasLowRowHitRate)
{
    Dram dram(DramConfig{}, 128);
    Rng rng(3);
    Cycle now = 0;
    for (int i = 0; i < 256; ++i) {
        now = dram.access(rng.nextBounded(1 << 26) * 128ull, false, now);
    }
    EXPECT_LT(dram.rowHitRate(), 0.3);
}

// --- Coalescer (parameterized pattern properties) ------------------------

struct CoalescePattern
{
    const char *name;
    unsigned stride;        //!< bytes between consecutive lanes
    unsigned expectedSegs;  //!< for a full warp of 4B accesses
};

class CoalescerPatterns : public ::testing::TestWithParam<CoalescePattern>
{
};

TEST_P(CoalescerPatterns, SegmentCountMatches)
{
    const auto &p = GetParam();
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = 0x40000 + Addr(i) * p.stride;
    const auto segs = c.coalesce(addrs, fullMask, 4);
    EXPECT_EQ(segs.size(), p.expectedSegs) << p.name;
    for (Addr s : segs)
        EXPECT_EQ(s % 128, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CoalescerPatterns,
    ::testing::Values(CoalescePattern{"unit", 4, 1},
                      CoalescePattern{"stride2", 8, 2},
                      CoalescePattern{"stride32B", 32, 8},
                      CoalescePattern{"stride128B", 128, 32},
                      CoalescePattern{"same_addr", 0, 1}),
    [](const auto &info) { return info.param.name; });

TEST(Coalescer, InactiveLanesIgnored)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = Addr(i) * 128; // worst case: one segment per lane
    const auto segs = c.coalesce(addrs, 0x0000000f, 4);
    EXPECT_EQ(segs.size(), 4u);
}

TEST(Coalescer, EmptyMaskProducesNothing)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    EXPECT_TRUE(c.coalesce(addrs, 0, 4).empty());
}

TEST(Coalescer, StraddlingAccessTouchesTwoSegments)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    addrs[0] = 126; // 4B access crossing the 128B boundary
    const auto segs = c.coalesce(addrs, 1, 4);
    EXPECT_EQ(segs.size(), 2u);
}

TEST(Coalescer, DeduplicatesAcrossLanes)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = 0x1000 + (i % 2) * 128;
    EXPECT_EQ(c.coalesce(addrs, fullMask, 4).size(), 2u);
}

// --- MSHR file ----------------------------------------------------------

TEST(Mshr, MergeWidthExhausts)
{
    Mshr m(4, 2); // one merge slot besides the primary miss
    m.allocate(7, 100, 0);
    Mshr::Entry *e = m.find(7, 1);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(m.merge(*e));
    EXPECT_FALSE(m.merge(*e));
    EXPECT_EQ(m.merges(), 1u);
    EXPECT_EQ(m.allocations(), 1u);
}

TEST(Mshr, RetiredEntriesPruneAndFree)
{
    Mshr m(2, 8);
    m.allocate(1, 50, 0);
    m.allocate(2, 80, 0);
    EXPECT_TRUE(m.full(0));
    EXPECT_EQ(m.nextFree(), 50u);
    EXPECT_EQ(m.find(1, 50), nullptr); // retired at its fillDone
    EXPECT_FALSE(m.full(50));
    EXPECT_NE(m.find(2, 50), nullptr); // still in flight
}

// --- MemorySystem contention path ---------------------------------------

TEST(MemorySystem, SecondaryMissMergesOntoPendingFill)
{
    GpuConfig cfg = GpuConfig::k20c();
    SimStats stats;
    MemorySystem ms(cfg, stats, nullptr, nullptr);
    const Cycle d1 = ms.load(0, 0x10000, 0);
    const Cycle d2 = ms.load(0, 0x10000, 1); // same line, fill pending
    EXPECT_EQ(stats.l1MshrMerges, 1u);
    EXPECT_EQ(stats.l1Misses, 1u); // the merge is neither hit nor miss
    EXPECT_EQ(stats.l1Hits, 0u);
    EXPECT_EQ(d2, d1); // completes with the fill, no second round trip
    ms.finalizeInto(stats);
    EXPECT_EQ(stats.dramReads, 1u);
}

TEST(MemorySystem, MshrExhaustionBackPressures)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.l1MshrEntries = 1;
    SimStats stats;
    MemorySystem ms(cfg, stats, nullptr, nullptr);
    const Cycle d1 = ms.load(0, 0x10000, 0);
    const Cycle d2 = ms.load(0, 0x20000, 1); // different line, file full
    EXPECT_GT(stats.mshrStallCycles, 0u);
    EXPECT_GT(d2, d1); // could not issue before the first entry retired
    ms.finalizeInto(stats);
    EXPECT_EQ(stats.dramReads, 2u); // both are primary misses
}

TEST(MemorySystem, SingleBankSerializesConcurrentAccesses)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.l2Banks = 1;
    SimStats stats;
    MemorySystem ms(cfg, stats, nullptr, nullptr);
    const Cycle d1 = ms.load(0, 0x10000, 0);
    const Cycle d2 = ms.load(1, 0x20000, 0); // other SMX, same cycle
    EXPECT_GE(stats.l2BankConflicts, 1u);
    EXPECT_EQ(ms.bankConflicts(0), stats.l2BankConflicts);
    EXPECT_GT(d2, d1); // port grant pushed behind the first access
}

TEST(MemorySystem, FlatPathHasNoContentionEffects)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.modelMemContention = false;
    SimStats stats;
    MemorySystem ms(cfg, stats, nullptr, nullptr);
    ms.load(0, 0x10000, 0);
    ms.load(0, 0x10000, 1); // fake-hits on the tag allocated at miss
    ms.load(1, 0x20000, 1);
    EXPECT_EQ(stats.l1MshrMerges, 0u);
    EXPECT_EQ(stats.l2MshrMerges, 0u);
    EXPECT_EQ(stats.mshrStallCycles, 0u);
    EXPECT_EQ(stats.l2BankConflicts, 0u);
    EXPECT_EQ(stats.l1Hits, 1u);
    EXPECT_EQ(stats.l1Misses, 2u);
}

// --- contention model at the application level --------------------------

TEST(MemContentionModel, MergesOccurOnIrregularApps)
{
    for (const char *bench : {"bfs_citation", "amr_combustion"}) {
        auto app = makeBenchmark(bench);
        const BenchResult r = runBenchmark(*app, Mode::Dtbl);
        EXPECT_TRUE(r.verified) << bench;
        EXPECT_GT(r.stats.l1MshrMerges + r.stats.l2MshrMerges, 0u)
            << bench;
    }
}

namespace {

struct SeedGolden
{
    const char *bench;
    Mode mode;
    std::uint64_t cycles;
    std::uint64_t traceHash;
};

/**
 * Cycles and trace hashes of the pre-MSHR (flat-latency) model for the
 * eight Table 4 families, captured at the commit that introduced
 * modelMemContention. The flag's off position must reproduce these bit
 * for bit; any drift means the flat path was perturbed.
 */
const SeedGolden kSeedGoldens[] = {
    {"amr_combustion", Mode::Flat, 97119, 0x8eeb232db4654af6},
    {"amr_combustion", Mode::CdpIdeal, 15272, 0xe8af8cf1d8e7769c},
    {"amr_combustion", Mode::DtblIdeal, 3988, 0xbf201e8a2350d368},
    {"amr_combustion", Mode::Cdp, 267801, 0x3a21314aadb97435},
    {"amr_combustion", Mode::Dtbl, 38999, 0xf71a0063c97e25ee},
    {"bht", Mode::Flat, 2079138, 0x7a60dd974e73c7d3},
    {"bht", Mode::CdpIdeal, 2629705, 0x401d61812a9d3a00},
    {"bht", Mode::DtblIdeal, 1227420, 0x18543df16ef55f5f},
    {"bht", Mode::Cdp, 5084263, 0x3c945bbb54cbfc1f},
    {"bht", Mode::Dtbl, 1924180, 0xebb9b5a10d1015ce},
    {"bfs_citation", Mode::Flat, 209754, 0x6232bb7ad7df69f4},
    {"bfs_citation", Mode::CdpIdeal, 59873, 0xc02fff73671d8438},
    {"bfs_citation", Mode::DtblIdeal, 54465, 0xef547c4a343e5c2d},
    {"bfs_citation", Mode::Cdp, 237391, 0xb0076d41916b6de9},
    {"bfs_citation", Mode::Dtbl, 103834, 0x55c5d22d266c2635},
    {"clr_citation", Mode::Flat, 3750824, 0xa3318da932e881c0},
    {"clr_citation", Mode::CdpIdeal, 1375895, 0xbfc43ca3b06a7ebe},
    {"clr_citation", Mode::DtblIdeal, 1351436, 0xc0a61aa59a26464e},
    {"clr_citation", Mode::Cdp, 3234870, 0xcb2e2be934fc5fe4},
    {"clr_citation", Mode::Dtbl, 1771640, 0x6a9b64e16299b94c},
    {"regx_darpa", Mode::Flat, 196610, 0x545b94e080975c82},
    {"regx_darpa", Mode::CdpIdeal, 154667, 0x1d4ddad791f856e5},
    {"regx_darpa", Mode::DtblIdeal, 127835, 0x4995e9c4075e20f2},
    {"regx_darpa", Mode::Cdp, 211122, 0x56b8f4e06edcdddc},
    {"regx_darpa", Mode::Dtbl, 135978, 0xa041b85e82aedc27},
    {"pre_movielens", Mode::Flat, 583419, 0x667f900d5460c76f},
    {"pre_movielens", Mode::CdpIdeal, 156199, 0x9983a9ffd0b95660},
    {"pre_movielens", Mode::DtblIdeal, 75750, 0x759933a3d8264873},
    {"pre_movielens", Mode::Cdp, 270668, 0xeb51f56ff3e9dca2},
    {"pre_movielens", Mode::Dtbl, 142193, 0x304af1a717156cb4},
    {"join_uniform", Mode::Flat, 4967, 0x7f09dd041337d4f7},
    {"join_uniform", Mode::CdpIdeal, 4686, 0x3f0b5c6bf421a03a},
    {"join_uniform", Mode::DtblIdeal, 4686, 0x3f0b5c6bf421a03a},
    {"join_uniform", Mode::Cdp, 4969, 0x72f0f1287930d4c5},
    {"join_uniform", Mode::Dtbl, 4969, 0x72f0f1287930d4c5},
    {"sssp_citation", Mode::Flat, 537158, 0xde216edf43476437},
    {"sssp_citation", Mode::CdpIdeal, 171464, 0x90ea850f59a2be67},
    {"sssp_citation", Mode::DtblIdeal, 160476, 0xd40cf1bb63ba2746},
    {"sssp_citation", Mode::Cdp, 538671, 0xf44a2199e52141cb},
    {"sssp_citation", Mode::Dtbl, 252186, 0xedef31ce486db519},
};

} // namespace

class FlatPathGoldens : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FlatPathGoldens, ContentionOffReproducesSeedBitForBit)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.modelMemContention = false;
    for (const SeedGolden &g : kSeedGoldens) {
        if (std::string(g.bench) != GetParam())
            continue;
        auto app = makeBenchmark(g.bench);
        const BenchResult r = runBenchmark(*app, g.mode, cfg);
        EXPECT_TRUE(r.verified) << g.bench << " " << modeName(g.mode);
        EXPECT_EQ(r.report.cycles, g.cycles)
            << g.bench << " " << modeName(g.mode);
        EXPECT_EQ(r.trace.hash, g.traceHash)
            << g.bench << " " << modeName(g.mode);
        // Contention machinery must be fully inert when switched off.
        EXPECT_EQ(r.stats.l1MshrMerges + r.stats.l2MshrMerges, 0u);
        EXPECT_EQ(r.stats.mshrStallCycles, 0u);
        EXPECT_EQ(r.stats.l2BankConflicts, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seed, FlatPathGoldens,
    ::testing::Values("amr_combustion", "bht", "bfs_citation",
                      "clr_citation", "regx_darpa", "pre_movielens",
                      "join_uniform", "sssp_citation"),
    [](const auto &info) { return std::string(info.param); });
