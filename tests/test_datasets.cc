/**
 * @file
 * Tests for the synthetic dataset generators and CPU oracles: each
 * generator must reproduce the structural property the corresponding
 * paper input is used for, across seeds (property-style sweeps).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/datasets/generators.hh"
#include "apps/datasets/graph.hh"

using namespace dtbl;

class GraphSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GraphSeeds, CitationIsHeavyTailed)
{
    const CsrGraph g = makeCitationGraph(4000, 14, GetParam());
    EXPECT_EQ(g.rowPtr.size(), g.n + 1u);
    EXPECT_EQ(g.colIdx.size(), g.m);
    // Heavy tail: high coefficient of variation and a hub far above
    // the mean degree.
    EXPECT_GT(g.degreeCv(), 1.0);
    EXPECT_GT(g.degree(g.maxDegreeVertex()), 8 * g.m / g.n);
}

TEST_P(GraphSeeds, RoadDegreesAreTiny)
{
    const CsrGraph g = makeRoadGraph(40, 40, GetParam());
    for (std::uint32_t v = 0; v < g.n; ++v)
        EXPECT_LE(g.degree(v), 4u);
    EXPECT_LT(g.degreeCv(), 0.5);
}

TEST_P(GraphSeeds, CageIsBalanced)
{
    const CsrGraph g = makeCageGraph(2000, 48, GetParam());
    EXPECT_LT(g.degreeCv(), 0.25);
    for (std::uint32_t v = 0; v < g.n; ++v) {
        EXPECT_GE(g.degree(v), 36u);
        EXPECT_LE(g.degree(v), 60u);
    }
}

TEST_P(GraphSeeds, Graph500IsVeryBalanced)
{
    const CsrGraph g = makeGraph500Graph(2000, 16, GetParam());
    for (std::uint32_t v = 0; v < g.n; ++v) {
        EXPECT_GE(g.degree(v), 15u);
        EXPECT_LE(g.degree(v), 17u);
    }
}

TEST_P(GraphSeeds, FlightIsHubAndSpoke)
{
    const std::uint32_t hubs = 100;
    const CsrGraph g = makeFlightGraph(2000, hubs, GetParam());
    // Spokes have degree <= 3; only hubs can be large.
    for (std::uint32_t v = hubs; v < g.n; ++v)
        EXPECT_LE(g.degree(v), 3u);
    EXPECT_GT(g.degree(g.maxDegreeVertex()), 10u);
}

TEST_P(GraphSeeds, SymmetrizeMakesAdjacencySymmetric)
{
    const CsrGraph g = symmetrize(makeCitationGraph(500, 6, GetParam()));
    for (std::uint32_t v = 0; v < g.n; ++v) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            EXPECT_NE(u, v); // no self loops
            const auto *lo = &g.colIdx[g.rowPtr[u]];
            const auto *hi = &g.colIdx[g.rowPtr[u + 1]];
            EXPECT_TRUE(std::binary_search(lo, hi, v))
                << "edge " << v << "->" << u << " not mirrored";
        }
    }
}

TEST_P(GraphSeeds, GeneratorsAreDeterministic)
{
    const std::uint64_t seed = GetParam();
    const CsrGraph a = makeCitationGraph(1000, 10, seed);
    const CsrGraph b = makeCitationGraph(1000, 10, seed);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.colIdx, b.colIdx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphSeeds,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0x123456789ull));

// --- CPU oracles on hand-checked inputs -----------------------------------

TEST(CpuOracles, BfsOnPath)
{
    // 0 - 1 - 2 - 3 (directed chain).
    CsrGraph g;
    g.n = 4;
    g.rowPtr = {0, 1, 2, 3, 3};
    g.colIdx = {1, 2, 3};
    g.m = 3;
    const auto d = cpuBfs(g, 0);
    EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
    const auto d2 = cpuBfs(g, 2);
    EXPECT_EQ(d2[0], 0xffffffffu); // unreachable
    EXPECT_EQ(d2[3], 1u);
}

TEST(CpuOracles, SsspPrefersLighterPath)
{
    // 0->1 (w10), 0->2 (w1), 2->1 (w2): best 0->2->1 = 3.
    CsrGraph g;
    g.n = 3;
    g.rowPtr = {0, 2, 2, 3};
    g.colIdx = {1, 2, 1};
    g.weights = {10, 1, 2};
    g.m = 3;
    const auto d = cpuSssp(g, 0);
    EXPECT_EQ(d[1], 3u);
    EXPECT_EQ(d[2], 1u);
}

TEST(CpuOracles, JpColoringTriangle)
{
    // Triangle: needs 3 colors; priorities decide the order.
    CsrGraph g;
    g.n = 3;
    g.rowPtr = {0, 2, 4, 6};
    g.colIdx = {1, 2, 0, 2, 0, 1};
    g.m = 6;
    const auto c = cpuJpColoring(g, {30, 20, 10});
    EXPECT_EQ(c, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(CpuOracles, MatchCountsFindPlantedPattern)
{
    PatternSet pats = makePatterns(4, 3, 6, 0, 99);
    PacketSet packets;
    // One packet that is exactly pattern 0 twice.
    const std::uint32_t len = pats.lengths[0];
    packets.offsets = {0};
    packets.lengths = {2 * len};
    for (int rep = 0; rep < 2; ++rep) {
        for (std::uint32_t i = 0; i < len; ++i)
            packets.bytes.push_back(pats.bytes[i]);
    }
    const auto counts = cpuMatchCounts(packets, pats);
    EXPECT_GE(counts[0], 2u);
}

TEST(CpuOracles, MatchCountCapMirror)
{
    PatternSet pats = makePatterns(8, 2, 4, 4, 7);
    PacketSet packets = makeRandomStrings(20, 100, 4, 8);
    const auto unbounded = cpuMatchCounts(packets, pats, 0);
    const auto capped = cpuMatchCounts(packets, pats, 5);
    for (std::size_t i = 0; i < unbounded.size(); ++i)
        EXPECT_LE(capped[i], unbounded[i]);
}

TEST(CpuOracles, JoinCountsMatchBruteForce)
{
    const JoinData j = makeJoinData(200, 800, 64, true, 5);
    const auto counts = cpuJoinCounts(j);
    for (std::size_t i = 0; i < j.rKeys.size(); ++i) {
        std::uint32_t brute = 0;
        for (std::uint32_t k : j.sKeys)
            brute += k == j.rKeys[i];
        EXPECT_EQ(counts[i], brute) << "tuple " << i;
    }
}

TEST(JoinData, GaussianSkewsBuckets)
{
    const JoinData uni = makeJoinData(100, 8000, 256, false, 3);
    const JoinData gau = makeJoinData(100, 8000, 256, true, 3);
    const auto maxBucket = [](const JoinData &j) {
        return *std::max_element(j.bucketCount.begin(),
                                 j.bucketCount.end());
    };
    EXPECT_GT(maxBucket(gau), 3u * maxBucket(uni));
}

// --- Quadtree invariants --------------------------------------------------

TEST(QuadTree, StructuralInvariants)
{
    const Bodies b = makeClusteredBodies(500, 3, 17);
    const QuadTree t = buildQuadTree(b);

    // Root mass equals the body count.
    EXPECT_EQ(t.mass[0], float(b.count()));

    std::uint32_t leafBodies = 0;
    for (std::uint32_t n = 0; n < t.count(); ++n) {
        if (t.isLeaf[n]) {
            leafBodies += std::uint32_t(t.mass[n]);
            EXPECT_EQ(t.subtreeSize[n], 1u);
        } else {
            // subtreeSize = 1 + sum of children subtree sizes; children
            // are contiguous in DFS order right after the parent.
            std::uint32_t sum = 1;
            float mass = 0;
            for (int q = 0; q < 4; ++q) {
                const std::int32_t c = t.child[n * 4 + q];
                if (c < 0)
                    continue;
                EXPECT_GT(std::uint32_t(c), n);
                EXPECT_LT(std::uint32_t(c), n + t.subtreeSize[n]);
                sum += t.subtreeSize[c];
                mass += t.mass[c];
            }
            EXPECT_EQ(t.subtreeSize[n], sum);
            EXPECT_EQ(t.mass[n], mass);
        }
    }
    EXPECT_EQ(leafBodies, b.count());
}

TEST(Ratings, ZipfPopularityAndWeights)
{
    const Ratings r = makeMovieLensRatings(256, 1000, 100, 3);
    EXPECT_EQ(r.itemPtr.size(), 257u);
    // Most popular item rated much more than the median item.
    const std::uint32_t first = r.itemPtr[1] - r.itemPtr[0];
    const std::uint32_t mid = r.itemPtr[129] - r.itemPtr[128];
    EXPECT_GT(first, 3 * mid);
    for (auto rt : r.rating) {
        EXPECT_GE(rt, 1u);
        EXPECT_LE(rt, 5u);
    }
}
