/**
 * @file
 * Golden-diagnostic tests for the static kernel IR verifier plus the
 * zero-diagnostic sweep over every registered application kernel.
 */

#include <gtest/gtest.h>

#include "analysis/verifier.hh"
#include "apps/registry.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/** Minimal legal kernel skeleton the fault cases mutate. */
KernelFunction
skeleton(std::uint32_t num_regs = 4, std::uint32_t num_preds = 2)
{
    KernelFunction fn;
    fn.name = "faulty";
    fn.tbDim = Dim3{32};
    fn.numRegs = num_regs;
    fn.numPreds = num_preds;
    return fn;
}

Instruction
movImm(std::int16_t dst, std::uint32_t v)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = dst;
    i.src[0] = Operand::imm(v);
    return i;
}

Instruction
exit()
{
    Instruction i;
    i.op = Opcode::Exit;
    return i;
}

/** The single diagnostic with @p rule, failing the test if absent. */
const Diagnostic *
find(const std::vector<Diagnostic> &diags, CheckRule rule)
{
    for (const Diagnostic &d : diags) {
        if (d.rule == rule)
            return &d;
    }
    return nullptr;
}

} // namespace

TEST(Verifier, BadBranchTarget)
{
    KernelFunction fn = skeleton();
    fn.code.push_back(movImm(0, 1));
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.target = 99;
    fn.code.push_back(bra);
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::BranchTarget);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 1);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->str().find("branch-target"), std::string::npos);
}

TEST(Verifier, PredicatedBranchNeedsReconvergence)
{
    KernelFunction fn = skeleton();
    Instruction setp;
    setp.op = Opcode::Setp;
    setp.pdst = 0;
    setp.src[0] = Operand::imm(0);
    setp.src[1] = Operand::imm(1);
    fn.code.push_back(setp);
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.target = 2;
    bra.pred = 0;
    // reconv left at -1.
    fn.code.push_back(bra);
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::ReconvTarget);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 1);
}

TEST(Verifier, UseBeforeDef)
{
    KernelFunction fn = skeleton();
    Instruction add;
    add.op = Opcode::Add;
    add.dst = 1;
    add.src[0] = Operand::reg(0); // r0 never written
    add.src[1] = Operand::imm(1);
    fn.code.push_back(add);
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::UseBeforeDef);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 0);
    EXPECT_EQ(d->severity, Severity::Error);
}

TEST(Verifier, MaybeUninitIsWarningOnly)
{
    // r1 defined only under a predicate, then read unconditionally:
    // defined on some paths but not all -> warning, not error.
    KernelFunction fn = skeleton();
    Instruction setp;
    setp.op = Opcode::Setp;
    setp.pdst = 0;
    setp.src[0] = Operand::imm(0);
    setp.src[1] = Operand::imm(1);
    fn.code.push_back(setp); // 0
    Instruction def = movImm(1, 7);
    def.pred = 0;
    fn.code.push_back(def); // 1
    Instruction use;
    use.op = Opcode::Add;
    use.dst = 2;
    use.src[0] = Operand::reg(1);
    use.src[1] = Operand::imm(1);
    fn.code.push_back(use); // 2
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::MaybeUninit);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 2);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(find(diags, CheckRule::UseBeforeDef), nullptr);
}

TEST(Verifier, DivergentBarrier)
{
    // Barrier inside the open (branch, reconv) interval of a
    // predicated branch; also a directly predicated barrier.
    KernelFunction fn = skeleton();
    Instruction setp;
    setp.op = Opcode::Setp;
    setp.pdst = 0;
    setp.src[0] = Operand::imm(0);
    setp.src[1] = Operand::imm(1);
    fn.code.push_back(setp); // 0
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.pred = 0;
    bra.predSense = false;
    bra.target = 3;
    bra.reconv = 3;
    fn.code.push_back(bra); // 1
    Instruction bar;
    bar.op = Opcode::Bar;
    fn.code.push_back(bar); // 2: divergent region (1, 3)
    fn.code.push_back(exit()); // 3

    {
        const auto diags = verifyKernel(fn, 1);
        const Diagnostic *d = find(diags, CheckRule::BarrierDivergence);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->pc, 2);
    }
    fn.code[2].pred = 1; // directly predicated barrier
    {
        const auto diags = verifyKernel(fn, 1);
        const Diagnostic *d = find(diags, CheckRule::BarrierDivergence);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->pc, 2);
    }
}

TEST(Verifier, MisalignedStore)
{
    KernelFunction fn = skeleton();
    fn.code.push_back(movImm(0, 64));
    Instruction st;
    st.op = Opcode::St;
    st.src[0] = Operand::reg(0);
    st.src[1] = Operand::imm(1);
    st.width = 4;
    st.memOffset = 2; // not 4-aligned
    fn.code.push_back(st);
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::MemAlign);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 1);
}

TEST(Verifier, RegisterIndexOutOfRange)
{
    KernelFunction fn = skeleton(/*num_regs=*/2);
    fn.code.push_back(movImm(5, 1)); // r5 with numRegs=2
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::RegIndex);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 0);
}

TEST(Verifier, MissingExit)
{
    KernelFunction fn = skeleton();
    fn.code.push_back(movImm(0, 1)); // falls off the end
    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::NoTerminator);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 0);
}

TEST(Verifier, ParamLoadOutOfBounds)
{
    KernelFunction fn = skeleton();
    fn.paramBytes = 8;
    Instruction ld;
    ld.op = Opcode::Ld;
    ld.space = MemSpace::Param;
    ld.dst = 0;
    ld.src[0] = Operand::imm(8); // bytes [8,12) outside paramBytes=8
    fn.code.push_back(ld);
    fn.code.push_back(exit());

    const auto diags = verifyKernel(fn, 1);
    const Diagnostic *d = find(diags, CheckRule::ParamBounds);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 0);
}

TEST(Verifier, LaunchOfUnregisteredFunction)
{
    KernelFunction fn = skeleton();
    Instruction l;
    l.op = Opcode::LaunchAgg;
    l.launch.func = KernelFuncId(7);
    l.launch.numTbs = Operand::imm(1);
    l.launch.paramAddr = Operand::reg(0);
    fn.code.push_back(movImm(0, 0));
    fn.code.push_back(l);
    fn.code.push_back(exit());

    // 7 known functions: id 7 still out of range (self-launch allows
    // only the id being registered, i.e. < known count).
    const auto diags = verifyKernel(fn, 7);
    const Diagnostic *d = find(diags, CheckRule::LaunchFunc);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 1);
    EXPECT_TRUE(verifyKernel(fn, 8).empty()); // self-launch id is legal
}

TEST(Verifier, ProgramAddRejectsFaultyKernel)
{
    KernelFunction fn = skeleton();
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.target = 42;
    fn.code.push_back(bra);
    fn.code.push_back(exit());

    Program prog;
    EXPECT_THROW(prog.add(std::move(fn)), std::runtime_error);
    EXPECT_EQ(prog.size(), 0u);
}

TEST(Verifier, ProgramAddAcceptsWarnings)
{
    KernelFunction fn = skeleton();
    Instruction setp;
    setp.op = Opcode::Setp;
    setp.pdst = 0;
    setp.src[0] = Operand::imm(0);
    setp.src[1] = Operand::imm(1);
    fn.code.push_back(setp);
    Instruction def = movImm(1, 7);
    def.pred = 0;
    fn.code.push_back(def);
    Instruction use = movImm(2, 0);
    use.src[0] = Operand::reg(1);
    fn.code.push_back(use);
    fn.code.push_back(exit());

    Program prog;
    EXPECT_NO_THROW(prog.add(std::move(fn)));
    EXPECT_EQ(prog.size(), 1u);
}

/**
 * Acceptance sweep: every kernel of every Table 4 benchmark in every
 * evaluation mode verifies with zero diagnostics — warnings included.
 */
TEST(Verifier, AllAppKernelsAreClean)
{
    const std::array<Mode, 5> modes = {Mode::Flat, Mode::CdpIdeal,
                                       Mode::DtblIdeal, Mode::Cdp,
                                       Mode::Dtbl};
    for (const auto &spec : allBenchmarks()) {
        for (Mode m : modes) {
            auto app = spec.make();
            Program prog;
            app->build(prog, m); // Program::add already rejects errors
            for (std::size_t f = 0; f < prog.size(); ++f) {
                const KernelFunction &fn = prog.function(KernelFuncId(f));
                const auto diags = verifyKernel(fn, prog.size());
                for (const Diagnostic &d : diags) {
                    ADD_FAILURE()
                        << spec.id << " [" << modeName(m) << "] kernel '"
                        << fn.name << "': " << d.str();
                }
            }
        }
    }
}
