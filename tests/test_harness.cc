/**
 * @file
 * Tests for the harness layer: the benchmark runner contract, mode
 * helpers and the report table utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/registry.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dtbl;

TEST(ModeHelpers, Names)
{
    EXPECT_STREQ(modeName(Mode::Flat), "Flat");
    EXPECT_STREQ(modeName(Mode::Cdp), "CDP");
    EXPECT_STREQ(modeName(Mode::CdpIdeal), "CDPI");
    EXPECT_STREQ(modeName(Mode::Dtbl), "DTBL");
    EXPECT_STREQ(modeName(Mode::DtblIdeal), "DTBLI");
}

TEST(ModeHelpers, Classification)
{
    EXPECT_FALSE(usesDynamicParallelism(Mode::Flat));
    EXPECT_TRUE(usesDynamicParallelism(Mode::Cdp));
    EXPECT_TRUE(usesDtbl(Mode::DtblIdeal));
    EXPECT_FALSE(usesDtbl(Mode::CdpIdeal));
    EXPECT_TRUE(isIdealMode(Mode::CdpIdeal));
    EXPECT_FALSE(isIdealMode(Mode::Dtbl));
}

TEST(ModeHelpers, ConfigForMode)
{
    EXPECT_TRUE(configForMode(Mode::Cdp, GpuConfig::k20c())
                    .modelLaunchLatency);
    EXPECT_FALSE(configForMode(Mode::CdpIdeal, GpuConfig::k20c())
                     .modelLaunchLatency);
}

TEST(Registry, HasAllSixteenBenchmarks)
{
    EXPECT_EQ(allBenchmarks().size(), 16u);
    for (const auto &s : allBenchmarks()) {
        auto app = s.make();
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->name(), s.id);
    }
}

TEST(Registry, UnknownIdIsFatal)
{
    EXPECT_THROW(makeBenchmark("nope"), std::runtime_error);
}

TEST(Runner, ProducesVerifiedReport)
{
    auto app = makeBenchmark("join_uniform");
    const BenchResult r = runBenchmark(*app, Mode::Flat);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.report.cycles, 0u);
    EXPECT_EQ(r.report.benchmark, "join_uniform");
    EXPECT_EQ(r.report.mode, "Flat");
    EXPECT_GT(r.report.warpActivityPct, 0.0);
}

TEST(Table, AlignedOutputAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream text, csv;
    t.print(text);
    t.printCsv(csv);
    EXPECT_NE(text.str().find("alpha"), std::string::npos);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,22\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, Geomean)
{
    EXPECT_DOUBLE_EQ(Table::geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(Table::geomean({}), 0.0);
    EXPECT_NEAR(Table::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}
