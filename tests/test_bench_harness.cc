/**
 * @file
 * dtbl-bench harness tests: BENCH JSON serialization golden + exact
 * round-trip (traceHash uses all 64 bits, past a double's mantissa),
 * the baseline-compare exit-code policy the CI bench job relies on,
 * and a small end-to-end grid run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/registry.hh"
#include "harness/perf_harness.hh"

using namespace dtbl;

namespace {

BenchRun
sampleRun()
{
    BenchRun run;
    run.label = "BENCH_TEST";
    run.repeat = 2;
    BenchPoint a;
    a.benchmark = "bht";
    a.mode = "dtbl";
    a.cycles = 12345;
    a.instrs = 678;
    a.traceHash = 0xDEADBEEFDEADBEEFull; // needs full 64-bit round-trip
    a.simWallClockSec = 0.5;
    a.simCyclesPerSec = 24690.0;
    a.hostPhases = {{"sim/smx", 1000}, {"sim/sched", 250}};
    BenchPoint b;
    b.benchmark = "regx_darpa";
    b.mode = "flat";
    b.cycles = 999;
    b.instrs = 111;
    b.traceHash = 42;
    run.points = {a, b};
    return run;
}

} // namespace

// --- serialization -------------------------------------------------------

TEST(BenchJson, GoldenDeterministicFields)
{
    const std::string j = benchJson(sampleRun());
    // Schema header and deterministic per-point fields are byte-stable.
    EXPECT_EQ(j.rfind("{\n  \"benchSchemaVersion\": 1,", 0), 0u);
    EXPECT_NE(j.find("\"label\": \"BENCH_TEST\""), std::string::npos);
    EXPECT_NE(j.find("\"repeat\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"benchmark\": \"bht\""), std::string::npos);
    EXPECT_NE(j.find("\"cycles\": 12345"), std::string::npos);
    EXPECT_NE(j.find("\"instrs\": 678"), std::string::npos);
    EXPECT_NE(j.find("\"traceHash\": 16045690984833335023"),
              std::string::npos);
    EXPECT_NE(j.find("\"path\": \"sim/smx\", \"exclusiveNs\": 1000"),
              std::string::npos);
    // Serializing twice is bit-identical (trajectory diffs are clean).
    EXPECT_EQ(j, benchJson(sampleRun()));
}

TEST(BenchJson, RoundTripIsExact)
{
    const BenchRun run = sampleRun();
    BenchRun parsed;
    std::string err;
    ASSERT_TRUE(parseBenchJson(benchJson(run), parsed, err)) << err;
    EXPECT_EQ(parsed.label, run.label);
    EXPECT_EQ(parsed.repeat, run.repeat);
    ASSERT_EQ(parsed.points.size(), run.points.size());
    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const BenchPoint &want = run.points[i];
        const BenchPoint &got = parsed.points[i];
        EXPECT_EQ(got.benchmark, want.benchmark);
        EXPECT_EQ(got.mode, want.mode);
        EXPECT_EQ(got.cycles, want.cycles);
        EXPECT_EQ(got.instrs, want.instrs);
        EXPECT_EQ(got.traceHash, want.traceHash); // full 64 bits
        EXPECT_DOUBLE_EQ(got.simWallClockSec, want.simWallClockSec);
        EXPECT_EQ(got.hostPhases, want.hostPhases);
    }
}

TEST(BenchJson, RejectsUnknownSchemaAndGarbage)
{
    BenchRun out;
    std::string err;
    EXPECT_FALSE(parseBenchJson(
        "{\"benchSchemaVersion\": 99, \"label\": \"x\", \"repeat\": 1, "
        "\"points\": []}",
        out, err));
    EXPECT_NE(err.find("benchSchemaVersion"), std::string::npos);
    EXPECT_FALSE(parseBenchJson("not json", out, err));
    EXPECT_FALSE(parseBenchJson("{\"label\": \"x\"}", out, err));
}

// --- baseline compare ----------------------------------------------------

TEST(BenchCompare, CleanRunPasses)
{
    const BenchRun base = sampleRun();
    std::ostringstream os;
    EXPECT_EQ(compareBenchRuns(base, base, {}, os),
              BenchCompareResult::Ok);
    EXPECT_NE(os.str().find("OK"), std::string::npos);
}

TEST(BenchCompare, PerturbedCyclesFail)
{
    const BenchRun base = sampleRun();
    BenchRun cur = base;
    cur.points[0].cycles += 1;
    std::ostringstream os;
    EXPECT_EQ(compareBenchRuns(base, cur, {}, os),
              BenchCompareResult::DeterministicMismatch);
    EXPECT_NE(os.str().find("MISMATCH"), std::string::npos);
}

TEST(BenchCompare, PerturbedTraceHashFails)
{
    const BenchRun base = sampleRun();
    BenchRun cur = base;
    cur.points[1].traceHash ^= 1;
    std::ostringstream os;
    EXPECT_EQ(compareBenchRuns(base, cur, {}, os),
              BenchCompareResult::DeterministicMismatch);
}

TEST(BenchCompare, WallClockGateIsOptIn)
{
    const BenchRun base = sampleRun();
    BenchRun cur = base;
    cur.points[0].simWallClockSec *= 2.0; // 100% slower

    // No tolerance given: wall-clock is informational only.
    std::ostringstream quiet;
    EXPECT_EQ(compareBenchRuns(base, cur, {}, quiet),
              BenchCompareResult::Ok);

    // 15% tolerance: 2x is a regression.
    BenchCompareOptions opts;
    opts.wallTolerance = 0.15;
    std::ostringstream os;
    EXPECT_EQ(compareBenchRuns(base, cur, opts, os),
              BenchCompareResult::WallClockRegression);
    EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);

    // Within tolerance passes.
    cur.points[0].simWallClockSec = base.points[0].simWallClockSec * 1.1;
    std::ostringstream ok;
    EXPECT_EQ(compareBenchRuns(base, cur, opts, ok),
              BenchCompareResult::Ok);
}

TEST(BenchCompare, SmokeSubsetOkButUnknownPointFails)
{
    const BenchRun base = sampleRun();

    // CI smoke runs a grid subset against the full committed baseline.
    BenchRun subset = base;
    subset.points.resize(1);
    std::ostringstream os;
    EXPECT_EQ(compareBenchRuns(base, subset, {}, os),
              BenchCompareResult::Ok);
    EXPECT_NE(os.str().find("not in this run"), std::string::npos);

    // A current point the baseline has never seen is a failure: the
    // grid grew and the baseline needs a refresh.
    BenchRun grown = base;
    BenchPoint extra;
    extra.benchmark = "new_bench";
    extra.mode = "flat";
    extra.cycles = 7;
    grown.points.push_back(extra);
    std::ostringstream os2;
    EXPECT_EQ(compareBenchRuns(base, grown, {}, os2),
              BenchCompareResult::DeterministicMismatch);
    EXPECT_NE(os2.str().find("NOT-IN-BASELINE"), std::string::npos);
}

// --- end-to-end grid run -------------------------------------------------

TEST(BenchGrid, SinglePointMatchesDirectRun)
{
    BenchGridOptions opts;
    opts.filters = {"bht/DTBL"};
    const BenchRun run =
        runBenchGrid({"bht"}, {Mode::Flat, Mode::Dtbl}, opts);
    ASSERT_EQ(run.points.size(), 1u); // filter kept only bht/DTBL
    const BenchPoint &p = run.points[0];
    EXPECT_EQ(p.benchmark, "bht");
    EXPECT_EQ(p.mode, "DTBL");
    EXPECT_GT(p.cycles, 0u);
    EXPECT_GT(p.instrs, 0u);
    EXPECT_GT(p.simWallClockSec, 0.0);
    EXPECT_GT(p.simCyclesPerSec, 0.0);

    // Deterministic fields agree with a plain runner invocation.
    auto app = makeBenchmark("bht");
    const BenchResult direct = runBenchmark(*app, Mode::Dtbl);
    EXPECT_EQ(p.cycles, direct.report.cycles);
    EXPECT_EQ(p.traceHash, direct.report.traceHash);
    EXPECT_EQ(p.instrs, direct.stats.warpInstrsIssued);
    // The plain run measured no wall-clock, so its report is untouched
    // by the v6 fields.
    EXPECT_EQ(direct.report.simWallClockSec, 0.0);
    EXPECT_EQ(direct.report.str().find("wallClock"), std::string::npos);
}
