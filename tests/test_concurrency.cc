/**
 * @file
 * Concurrency semantics tests: stream ordering, Hyper-Q overlap,
 * concurrent kernel execution on shared SMXs (Section 2.3), and the
 * kernel-concurrency ceiling that motivates DTBL (Section 3.1).
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/**
 * Kernel that spins for a fixed iteration count, then atomically
 * appends its tag to an order log.
 * Params: [0]=iters [4]=logAddr [8]=logCursor [12]=tag
 */
KernelFuncId
buildSpinTag(Program &prog)
{
    KernelBuilder b("spintag", Dim3{32}, 0, 16);
    Reg tid = b.mov(SReg::TidX);
    Pred notFirst = b.setp(CmpOp::Ne, DataType::U32, tid, Val(0u));
    Reg iters = b.ldParam(0);
    Reg sink = b.mov(0u);
    b.forRange(Val(0u), iters, [&](Reg i) {
        b.binaryTo(sink, Opcode::Add, DataType::U32, sink, i);
    });
    b.exitIf(notFirst);
    Reg log = b.ldParam(4);
    Reg cursor = b.ldParam(8);
    Reg tag = b.ldParam(12);
    Reg idx = b.atom(AtomOp::Add, DataType::U32, cursor, Val(1u));
    b.st(MemSpace::Global, b.add(log, b.shl(idx, 2)), tag);
    return b.build(prog);
}

struct LogRig
{
    Program prog;
    KernelFuncId k;
    std::unique_ptr<Gpu> gpu;
    Addr log = 0, cursor = 0;

    LogRig()
    {
        k = buildSpinTag(prog);
        gpu = std::make_unique<Gpu>(GpuConfig::k20c(), prog);
        log = gpu->mem().allocate(64 * 4);
        cursor = gpu->mem().allocate(4);
        gpu->mem().write32(cursor, 0);
    }

    void
    launch(std::uint32_t iters, std::uint32_t tag, std::int32_t stream)
    {
        gpu->launch(k, Dim3{1},
                    {iters, std::uint32_t(log), std::uint32_t(cursor),
                     tag},
                    stream);
    }

    std::vector<std::uint32_t>
    order()
    {
        const std::uint32_t n = gpu->mem().read32(cursor);
        return gpu->mem().download<std::uint32_t>(log, n);
    }
};

} // namespace

TEST(Concurrency, SameStreamSerializesInOrder)
{
    LogRig rig;
    // Long kernel first: if the short one could overtake, the order
    // would flip. Same stream -> must not.
    rig.launch(5000, 1, 0);
    rig.launch(10, 2, 0);
    rig.gpu->synchronize();
    EXPECT_EQ(rig.order(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Concurrency, DifferentStreamsOverlap)
{
    LogRig rig;
    const std::int32_t s1 = rig.gpu->createStream();
    // Long kernel on stream 0, short on stream s1: Hyper-Q lets the
    // short one finish first.
    rig.launch(5000, 1, 0);
    rig.launch(10, 2, s1);
    rig.gpu->synchronize();
    EXPECT_EQ(rig.order(), (std::vector<std::uint32_t>{2, 1}));
}

TEST(Concurrency, ManySmallKernelsShareSmxs)
{
    // 8 tiny kernels on 8 streams: total time must be far below 8x a
    // single kernel's latency-dominated runtime.
    LogRig solo;
    solo.launch(2000, 1, 0);
    solo.gpu->synchronize();
    const Cycle one = solo.gpu->now();

    LogRig rig;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const std::int32_t s = i == 0 ? 0 : rig.gpu->createStream();
        rig.launch(2000, i + 1, s);
    }
    rig.gpu->synchronize();
    EXPECT_LT(rig.gpu->now(), 3 * one);
    EXPECT_EQ(rig.order().size(), 8u);
}

TEST(Concurrency, SynchronizeIsIdempotent)
{
    LogRig rig;
    rig.launch(10, 1, 0);
    rig.gpu->synchronize();
    const Cycle t = rig.gpu->now();
    rig.gpu->synchronize(); // nothing queued: must not advance time
    EXPECT_EQ(rig.gpu->now(), t);
}

TEST(Concurrency, ReportIsStableAcrossCalls)
{
    LogRig rig;
    rig.launch(100, 1, 0);
    rig.gpu->synchronize();
    const auto a = rig.gpu->report("x", "flat");
    const auto b = rig.gpu->report("x", "flat");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.dramEfficiency, b.dramEfficiency);
    EXPECT_DOUBLE_EQ(a.warpActivityPct, b.warpActivityPct);
}
