/**
 * @file
 * Kernel-dispatch subsystem tests: policy parsing, the per-SMX
 * resource ledger (conservation + capacity invariants), bit-for-bit
 * seed goldens for the default fcfs-head policy, the concurrent
 * policy's resource-limit and result-invariance guarantees, and the
 * per-kernel stall attribution's exactness against the per-SMX
 * 9-reason taxonomy.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/registry.hh"
#include "gpu/dispatch/resource_ledger.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

// --- policy knob --------------------------------------------------------

TEST(DispatchPolicyConfig, ParseRoundTrip)
{
    DispatchPolicyKind k = DispatchPolicyKind::Concurrent;
    EXPECT_TRUE(parseDispatchPolicy("fcfs-head", k));
    EXPECT_EQ(k, DispatchPolicyKind::FcfsHead);
    EXPECT_TRUE(parseDispatchPolicy("concurrent", k));
    EXPECT_EQ(k, DispatchPolicyKind::Concurrent);
    EXPECT_FALSE(parseDispatchPolicy("round-robin", k));
    EXPECT_EQ(k, DispatchPolicyKind::Concurrent); // untouched on failure

    EXPECT_STREQ(dispatchPolicyName(DispatchPolicyKind::FcfsHead),
                 "fcfs-head");
    EXPECT_STREQ(dispatchPolicyName(DispatchPolicyKind::Concurrent),
                 "concurrent");
    EXPECT_EQ(GpuConfig::k20c().dispatchPolicy,
              DispatchPolicyKind::FcfsHead);
}

// --- resource ledger unit ----------------------------------------------

namespace {

KernelFunction
ledgerTestFn(unsigned threads, unsigned regs, std::uint32_t smem)
{
    KernelFunction fn;
    fn.name = "ledger_fn";
    fn.tbDim = Dim3{threads};
    fn.numRegs = regs;
    fn.sharedMemBytes = smem;
    return fn;
}

} // namespace

TEST(ResourceLedgerUnit, AcquireReleaseAndWatermarks)
{
    const GpuConfig cfg = GpuConfig::k20c();
    ResourceLedger led(cfg, 4);
    const KernelFunction fn = ledgerTestFn(128, 19, 256);

    EXPECT_TRUE(led.drained());
    EXPECT_TRUE(led.canAccept(0, fn, 128));
    led.acquire(0, 1, fn, 128);
    EXPECT_FALSE(led.drained());
    led.bindWarpSlot(0, 3, KernelFuncId(7));
    EXPECT_EQ(led.slotFunc(0, 3), KernelFuncId(7));

    // 128 threads -> 4 warps of 32 hw threads; regs/smem accordingly.
    EXPECT_EQ(led.freeTbSlots(0), cfg.maxResidentTbPerSmx - 1);
    EXPECT_EQ(led.freeThreads(0), cfg.maxResidentThreadsPerSmx - 128);
    EXPECT_EQ(led.freeRegs(0), std::int64_t(cfg.regsPerSmx) - 128 * 19);
    EXPECT_EQ(led.freeSmem(0),
              std::int64_t(cfg.sharedMemPerSmx) - 256 - 128);
    EXPECT_EQ(led.freeWarpSlots(0),
              std::int64_t(cfg.maxResidentWarpsPerSmx) - 1);
    EXPECT_EQ(led.acquiredTbs(1), 1u);
    EXPECT_EQ(led.acquiredTbsTotal(), 1u);

    led.unbindWarpSlot(0, 3);
    EXPECT_EQ(led.slotFunc(0, 3), invalidKernelFunc);
    EXPECT_EQ(led.slotLastFunc(0, 3), KernelFuncId(7)); // sticky
    led.release(0, 1, fn, 128);
    EXPECT_TRUE(led.drained());
    EXPECT_EQ(led.releasedTbs(1), 1u);

    // Watermarks remember the peak even after everything drained.
    EXPECT_EQ(led.minFreeTbSlots(0), cfg.maxResidentTbPerSmx - 1);
    EXPECT_EQ(led.minFreeWarpSlots(0),
              std::int64_t(cfg.maxResidentWarpsPerSmx) - 1);

    // Releasing what was never acquired is a simulator bug.
    EXPECT_THROW(led.release(0, 2, fn, 128), std::logic_error);
}

// --- fcfs-head seed goldens ---------------------------------------------

namespace {

struct SeedGolden
{
    const char *bench;
    Mode mode;
    std::uint64_t cycles;
    std::uint64_t traceHash;
};

/**
 * Cycles and trace hashes of the default configuration (contention
 * model on), captured at the commit that introduced the dispatch
 * subsystem. The default fcfs-head policy must reproduce these bit for
 * bit; any drift means the policy refactor perturbed dispatch order.
 */
const SeedGolden kSeedGoldens[] = {
    {"amr_combustion", Mode::Flat, 123768, 4658139560361093950ull},
    {"amr_combustion", Mode::Cdp, 270021, 15946984336878566418ull},
    {"amr_combustion", Mode::CdpIdeal, 16606, 16054546510854076346ull},
    {"amr_combustion", Mode::Dtbl, 39456, 13447222795925438511ull},
    {"amr_combustion", Mode::DtblIdeal, 8023, 2800653401835976424ull},
    {"bht", Mode::Flat, 3346204, 547536353691500331ull},
    {"bht", Mode::Cdp, 5325122, 16543751133928708041ull},
    {"bht", Mode::CdpIdeal, 4215052, 17338397850612638913ull},
    {"bht", Mode::Dtbl, 3153576, 315968335084890432ull},
    {"bht", Mode::DtblIdeal, 2873888, 12393728666318176751ull},
    {"bfs_citation", Mode::Flat, 267042, 12136001445467752835ull},
    {"bfs_citation", Mode::Cdp, 290645, 13949273510222020371ull},
    {"bfs_citation", Mode::CdpIdeal, 125719, 3511420549375220044ull},
    {"bfs_citation", Mode::Dtbl, 163346, 1756477701816872723ull},
    {"bfs_citation", Mode::DtblIdeal, 126412, 10430647450631718179ull},
    {"clr_citation", Mode::Flat, 5950588, 4857505098821920054ull},
    {"clr_citation", Mode::Cdp, 5069729, 17032841148146479108ull},
    {"clr_citation", Mode::CdpIdeal, 3357019, 16132149543914379875ull},
    {"clr_citation", Mode::Dtbl, 3694540, 4452129398687880027ull},
    {"clr_citation", Mode::DtblIdeal, 3351995, 10546271056976061534ull},
    {"regx_darpa", Mode::Flat, 195092, 12450702417961295712ull},
    {"regx_darpa", Mode::Cdp, 211606, 14609719395276599785ull},
    {"regx_darpa", Mode::CdpIdeal, 154151, 2132520290047245880ull},
    {"regx_darpa", Mode::Dtbl, 138024, 4702141898170549314ull},
    {"regx_darpa", Mode::DtblIdeal, 129308, 12454931707004830703ull},
    {"pre_movielens", Mode::Flat, 1876208, 6151995108298518970ull},
    {"pre_movielens", Mode::Cdp, 750618, 983441940516879346ull},
    {"pre_movielens", Mode::CdpIdeal, 663370, 11590589054260851295ull},
    {"pre_movielens", Mode::Dtbl, 708944, 11562943439345268445ull},
    {"pre_movielens", Mode::DtblIdeal, 685878, 10623120338068168123ull},
    {"join_uniform", Mode::Flat, 139777, 10206792076272559270ull},
    {"join_uniform", Mode::Cdp, 134658, 11504563751946621570ull},
    {"join_uniform", Mode::CdpIdeal, 134375, 2819314529639396750ull},
    {"join_uniform", Mode::Dtbl, 134658, 11504563751946621570ull},
    {"join_uniform", Mode::DtblIdeal, 134375, 2819314529639396750ull},
    {"sssp_citation", Mode::Flat, 754921, 4509356780197872694ull},
    {"sssp_citation", Mode::Cdp, 704572, 17321675765557674194ull},
    {"sssp_citation", Mode::CdpIdeal, 362556, 4611607146158609506ull},
    {"sssp_citation", Mode::Dtbl, 439129, 11303951203014136417ull},
    {"sssp_citation", Mode::DtblIdeal, 365331, 10232136812223978313ull},
};

} // namespace

class FcfsHeadGoldens : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FcfsHeadGoldens, ReproducesSeedBitForBit)
{
    const GpuConfig cfg = GpuConfig::k20c(); // dispatchPolicy: fcfs-head
    for (const SeedGolden &g : kSeedGoldens) {
        if (std::string(g.bench) != GetParam())
            continue;
        auto app = makeBenchmark(g.bench);
        const BenchResult r = runBenchmark(*app, g.mode, cfg);
        EXPECT_TRUE(r.verified) << g.bench << " " << modeName(g.mode);
        EXPECT_EQ(r.report.cycles, g.cycles)
            << g.bench << " " << modeName(g.mode);
        EXPECT_EQ(r.trace.hash, g.traceHash)
            << g.bench << " " << modeName(g.mode);
        EXPECT_EQ(r.report.dispatchPolicy, "fcfs-head");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seed, FcfsHeadGoldens,
    ::testing::Values("amr_combustion", "bht", "bfs_citation",
                      "clr_citation", "regx_darpa", "pre_movielens",
                      "join_uniform", "sssp_citation"),
    [](const auto &info) { return std::string(info.param); });

// --- ledger conservation at the application level -----------------------

namespace {

/** Direct-Gpu run mirroring runBenchmark() so the ledger is visible. */
void
runDirect(const std::string &bench, Mode mode, DispatchPolicyKind policy,
          Gpu *&out_gpu, std::unique_ptr<App> &out_app, Program &prog)
{
    out_app = makeBenchmark(bench);
    out_app->build(prog, mode);
    GpuConfig cfg = configForMode(mode, GpuConfig::k20c());
    cfg.dispatchPolicy = policy;
    out_gpu = new Gpu(cfg, prog);
    out_app->setup(*out_gpu);
    out_app->execute(*out_gpu, mode);
}

} // namespace

TEST(ResourceLedgerConservation, EverythingAcquiredIsReleasedAtDrain)
{
    for (const DispatchPolicyKind policy :
         {DispatchPolicyKind::FcfsHead, DispatchPolicyKind::Concurrent}) {
        Program prog;
        std::unique_ptr<App> app;
        Gpu *gpu = nullptr;
        runDirect("bfs_citation", Mode::Dtbl, policy, gpu, app, prog);

        const ResourceLedger &led = gpu->ledger();
        EXPECT_TRUE(led.drained()) << dispatchPolicyName(policy);
        EXPECT_EQ(led.acquiredTbsTotal(), led.releasedTbsTotal());
        EXPECT_EQ(led.acquiredTbsTotal(), gpu->stats().tbsCompleted);
        for (std::size_t k = 0; k < led.numKdes(); ++k) {
            EXPECT_EQ(led.acquiredTbs(std::int32_t(k)),
                      led.releasedTbs(std::int32_t(k)))
                << "KDE " << k;
        }
        EXPECT_EQ(gpu->scheduler().schedulableCount(), 0u);
        EXPECT_EQ(gpu->scheduler().residentKernelCount(), 0u);
        EXPECT_EQ(gpu->scheduler().policyKind(), policy);
        EXPECT_TRUE(app->verify(*gpu)) << dispatchPolicyName(policy);
        delete gpu;
    }
}

// --- concurrent policy: limits + result invariance ----------------------

TEST(ConcurrentPolicy, NeverExceedsPerSmxResourceLimits)
{
    for (const char *bench : {"amr_combustion", "bfs_citation"}) {
        Program prog;
        std::unique_ptr<App> app;
        Gpu *gpu = nullptr;
        runDirect(bench, Mode::Dtbl, DispatchPolicyKind::Concurrent, gpu,
                  app, prog);

        const ResourceLedger &led = gpu->ledger();
        for (unsigned s = 0; s < led.numSmx(); ++s) {
            EXPECT_GE(led.minFreeTbSlots(s), 0) << bench << " smx " << s;
            EXPECT_GE(led.minFreeThreads(s), 0) << bench << " smx " << s;
            EXPECT_GE(led.minFreeRegs(s), 0) << bench << " smx " << s;
            EXPECT_GE(led.minFreeSmem(s), 0) << bench << " smx " << s;
            EXPECT_GE(led.minFreeWarpSlots(s), 0)
                << bench << " smx " << s;
        }
        // The computed results must not depend on the dispatch policy.
        EXPECT_TRUE(app->verify(*gpu)) << bench;
        delete gpu;
    }
}

// --- per-kernel stall attribution ----------------------------------------

TEST(KernelStallAttribution, RowsSumExactlyToPerSmxTaxonomy)
{
    if (!Pmu::compiledIn)
        GTEST_SKIP() << "PMU compiled out";
    auto app = makeBenchmark("amr_combustion");
    RunOptions opts;
    opts.profileWindow = 512;
    const BenchResult r = runBenchmark(*app, Mode::Dtbl, GpuConfig::k20c(),
                                       opts);
    ASSERT_TRUE(r.verified);
    ASSERT_FALSE(r.report.kernelStallSlotCycles.empty());

    std::array<std::uint64_t, kNumStallReasons> sum{};
    for (const auto &[name, row] : r.report.kernelStallSlotCycles) {
        for (std::size_t i = 0; i < kNumStallReasons; ++i)
            sum[i] += row[i];
    }
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
        EXPECT_EQ(sum[i], r.stats.stallSlotCycles[i])
            << stallReasonName(StallReason(i));
    }
    // ... and the taxonomy itself accounts every warp-slot cycle.
    const GpuConfig cfg = GpuConfig::k20c();
    std::uint64_t total = 0;
    for (std::uint64_t v : sum)
        total += v;
    EXPECT_EQ(total, std::uint64_t(r.report.cycles) * cfg.numSmx *
                         cfg.maxResidentWarpsPerSmx);
    // The idle bucket exists and no kernel row is named like it.
    EXPECT_EQ(r.report.kernelStallSlotCycles.back().first, "(idle)");
}

// --- concurrent dispatch shrinks idle slots ------------------------------

namespace {

/** The quickstart SAXPY with a data-dependent loop: 32 TBs of 128. */
KernelFuncId
buildSaxpyRep(Program &prog)
{
    KernelBuilder b("saxpy_rep", Dim3{128});
    Reg tid = b.globalThreadIdX();
    Reg nR = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nR);
    b.exitIf(oob);
    Reg aVal = b.ldParam(4);
    Reg xBase = b.ldParam(8);
    Reg yBase = b.ldParam(12);
    Reg outBase = b.ldParam(16);
    Reg repBase = b.ldParam(20);
    Reg off = b.shl(tid, 2);
    Reg xR = b.ld(MemSpace::Global, b.add(xBase, off));
    Reg yR = b.ld(MemSpace::Global, b.add(yBase, off));
    Reg repR = b.ld(MemSpace::Global, b.add(repBase, off));
    Reg acc = b.mov(yR);
    b.forRange(Val(0u), repR, [&](Reg) {
        Reg ax = b.mul(aVal, xR, DataType::F32);
        b.binaryTo(acc, Opcode::Add, DataType::F32, acc, ax);
    });
    b.st(MemSpace::Global, b.add(outBase, off), acc);
    return b.build(prog);
}

struct SaxpyRun
{
    Cycle cycles = 0;
    std::uint64_t idleSlotCycles = 0;
    std::vector<std::uint32_t> out;
};

SaxpyRun
runSaxpy(DispatchPolicyKind policy)
{
    Program prog;
    const KernelFuncId fn = buildSaxpyRep(prog);
    GpuConfig cfg = GpuConfig::k20c();
    cfg.dispatchPolicy = policy;
    Gpu gpu(cfg, prog);
    gpu.enableProfiling();

    const std::uint32_t n = 4096;
    std::vector<std::uint32_t> x(n), y(n), rep(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        x[i] = std::bit_cast<std::uint32_t>(float(i % 17));
        y[i] = std::bit_cast<std::uint32_t>(1.0f);
        rep[i] = i % 7;
    }
    const Addr xAddr = gpu.mem().upload(x);
    const Addr yAddr = gpu.mem().upload(y);
    const Addr repAddr = gpu.mem().upload(rep);
    const Addr outAddr = gpu.mem().allocate(n * 4);
    gpu.launch(fn, Dim3{(n + 127) / 128},
               {n, std::bit_cast<std::uint32_t>(0.5f),
                std::uint32_t(xAddr), std::uint32_t(yAddr),
                std::uint32_t(outAddr), std::uint32_t(repAddr)});
    gpu.synchronize();

    SaxpyRun res;
    const MetricsReport r = gpu.report("saxpy", "flat");
    res.cycles = r.cycles;
    res.idleSlotCycles =
        gpu.stats().stallSlotCycles[std::size_t(StallReason::IdleNoWarp)];
    res.out = gpu.mem().download<std::uint32_t>(outAddr, n);
    return res;
}

} // namespace

TEST(ConcurrentPolicy, ReducesIdleSlotCyclesOnQuickstartKernel)
{
    if (!Pmu::compiledIn)
        GTEST_SKIP() << "PMU compiled out";
    const SaxpyRun fcfs = runSaxpy(DispatchPolicyKind::FcfsHead);
    const SaxpyRun conc = runSaxpy(DispatchPolicyKind::Concurrent);

    // Same computation, same answers -- only the dispatch order moved.
    EXPECT_EQ(fcfs.out, conc.out);
    // Filling the ramp in one cycle instead of numSmx TBs per cycle
    // must strictly shrink the empty-slot share (and not slow us down).
    EXPECT_LT(conc.idleSlotCycles, fcfs.idleSlotCycles);
    EXPECT_LE(conc.cycles, fcfs.cycles);
}

// --- DRAM write bypass (fire-and-forget writebacks) ----------------------

TEST(DramWriteBypass, WritebacksAreCountedPastTheL2BankPort)
{
    // L2 is write-back: benchmarks whose dirty footprint exceeds the
    // 1.5MB L2 must evict dirty lines straight to DRAM.
    std::uint64_t bypass = 0, writes = 0;
    for (const char *bench : {"bfs_citation", "pre_movielens"}) {
        auto app = makeBenchmark(bench);
        const BenchResult r = runBenchmark(*app, Mode::Flat);
        ASSERT_TRUE(r.verified) << bench;
        bypass += r.stats.dramWriteBypass;
        writes += r.stats.dramWrites;
    }
    EXPECT_GT(bypass, 0u);
    // Every bypassed writeback is itself a DRAM write.
    EXPECT_LE(bypass, writes);
}
