/**
 * @file
 * End-to-end tests for the runtime machine sanitizer ("dtbl-check"):
 * seeded out-of-bounds / uninitialized-read / shared-race kernels must
 * produce their golden findings, healthy runs must stay clean, and
 * checks must never perturb timing (identical trace hashes).
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "harness/runner.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

bool
hasRule(const std::vector<Diagnostic> &findings, CheckRule rule)
{
    for (const Diagnostic &d : findings) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** Run a one-kernel program with the sanitizer at @p level. */
const Sanitizer *
runChecked(Gpu &gpu, KernelFuncId k, CheckLevel level,
           const std::vector<std::uint32_t> &params, Dim3 grid = Dim3{1})
{
    gpu.enableChecks(level);
    gpu.launch(k, grid, params);
    gpu.synchronize();
    return gpu.sanitizer();
}

} // namespace

TEST(Sanitizer, OutOfBoundsGlobalAccess)
{
    Program prog;
    KernelBuilder b("oob_global", Dim3{32});
    Reg addr = b.ldParam(0);
    Reg v = b.ld(MemSpace::Global, addr);
    b.st(MemSpace::Global, b.add(addr, Val(4u)), v);
    const KernelFuncId k = b.build(prog);

    {
        Gpu gpu(GpuConfig::k20c(), prog);
        const Addr buf = gpu.mem().allocate(64);
        // First byte past the end of the allocation.
        const auto *san = runChecked(gpu, k, CheckLevel::Memory,
                                     {std::uint32_t(buf + 64)});
        ASSERT_NE(san, nullptr);
        EXPECT_TRUE(hasRule(san->findings(), CheckRule::OobGlobal));
        EXPECT_GT(san->errorCount(), 0u);
    }
    {
        // Same access in bounds: clean.
        Gpu gpu(GpuConfig::k20c(), prog);
        const Addr buf = gpu.mem().allocate(64);
        const auto *san = runChecked(gpu, k, CheckLevel::Memory,
                                     {std::uint32_t(buf)});
        ASSERT_NE(san, nullptr);
        EXPECT_EQ(san->errorCount(), 0u)
            << (san->findings().empty() ? "" : san->findings()[0].str());
    }
    {
        // Checks off: no sanitizer at all.
        Gpu gpu(GpuConfig::k20c(), prog);
        const Addr buf = gpu.mem().allocate(64);
        const auto *san = runChecked(gpu, k, CheckLevel::Off,
                                     {std::uint32_t(buf + 64)});
        EXPECT_EQ(san, nullptr);
    }
}

TEST(Sanitizer, UninitializedRegisterRead)
{
    // r defined only by lanes with tid < 16; every lane stores it.
    // Statically that is just a may-be-uninitialized warning, but at
    // runtime the upper 16 lanes really do read an undefined register.
    Program prog;
    KernelBuilder b("uninit_read", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg out = b.ldParam(0);
    Reg v = b.reg();
    Pred lower = b.setp(CmpOp::Lt, DataType::U32, tid, Val(16u));
    b.if_(lower, [&] { b.movTo(v, Val(7u)); });
    b.st(MemSpace::Global, b.add(out, b.shl(tid, 2)), v);
    const KernelFuncId k = b.build(prog);

    {
        Gpu gpu(GpuConfig::k20c(), prog);
        const Addr out_buf = gpu.mem().allocate(32 * 4);
        const auto *san = runChecked(gpu, k, CheckLevel::Full,
                                     {std::uint32_t(out_buf)});
        ASSERT_NE(san, nullptr);
        EXPECT_TRUE(hasRule(san->findings(), CheckRule::UninitRead));
    }
    {
        // The uninit tracker is a Full-level check only.
        Gpu gpu(GpuConfig::k20c(), prog);
        const Addr out_buf = gpu.mem().allocate(32 * 4);
        const auto *san = runChecked(gpu, k, CheckLevel::Memory,
                                     {std::uint32_t(out_buf)});
        ASSERT_NE(san, nullptr);
        EXPECT_FALSE(hasRule(san->findings(), CheckRule::UninitRead));
        EXPECT_EQ(san->errorCount(), 0u);
    }
}

TEST(Sanitizer, SharedMemoryRaceAcrossWarps)
{
    // Two warps of one TB write the same shared word with no barrier.
    Program prog;
    KernelBuilder b("shared_race", Dim3{64}, /*shared_mem_bytes=*/256);
    Reg tid = b.globalThreadIdX();
    b.st(MemSpace::Shared, Val(0u), tid);
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const auto *san = runChecked(gpu, k, CheckLevel::Full, {});
    ASSERT_NE(san, nullptr);
    EXPECT_TRUE(hasRule(san->findings(), CheckRule::SharedRace));
}

TEST(Sanitizer, BarrierSeparatedSharingIsNotARace)
{
    // Warp-disjoint writes, a barrier, then reads of the other warp's
    // data: the classic produce/consume shape must stay clean.
    Program prog;
    KernelBuilder b("shared_clean", Dim3{64}, /*shared_mem_bytes=*/256);
    Reg tid = b.globalThreadIdX();
    Reg out = b.ldParam(0);
    Reg off = b.shl(tid, 2);
    b.st(MemSpace::Shared, off, tid);
    b.bar();
    Reg mirror = b.shl(b.sub(Val(63u), tid), 2);
    Reg v = b.ld(MemSpace::Shared, mirror);
    b.st(MemSpace::Global, b.add(out, off), v);
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const Addr out_buf = gpu.mem().allocate(64 * 4);
    const auto *san = runChecked(gpu, k, CheckLevel::Full,
                                 {std::uint32_t(out_buf)});
    ASSERT_NE(san, nullptr);
    EXPECT_EQ(san->errorCount(), 0u)
        << (san->findings().empty() ? "" : san->findings()[0].str());
    // The kernel really exchanged data across the warps.
    EXPECT_EQ(gpu.mem().read32(out_buf), 63u);
}

TEST(Sanitizer, ChecksDoNotPerturbTiming)
{
    // Full checks on vs off over a complete DTBL benchmark: identical
    // trace hash, cycle count and result verification.
    auto run = [](int level) {
        auto app = makeBenchmark("bfs_citation");
        RunOptions opts;
        opts.checkLevel = level;
        return runBenchmark(*app, Mode::Dtbl, GpuConfig::k20c(), opts);
    };
    const BenchResult off = run(0);
    const BenchResult full = run(int(CheckLevel::Full));
    EXPECT_TRUE(off.verified);
    EXPECT_TRUE(full.verified);
    EXPECT_EQ(off.report.traceHash, full.report.traceHash);
    EXPECT_EQ(off.report.cycles, full.report.cycles);
    EXPECT_EQ(full.checkErrors, 0u)
        << (full.checkFindings.empty() ? ""
                                       : full.checkFindings[0].str());
    EXPECT_TRUE(off.checkFindings.empty());
}

TEST(Sanitizer, DrainInvariantsHoldOnHealthyDtblRun)
{
    // Tier-1 invariants over a benchmark that exercises aggregated
    // launches, KDE linkage and launch-byte accounting end to end.
    auto app = makeBenchmark("regx_darpa");
    RunOptions opts;
    opts.checkLevel = int(CheckLevel::Invariants);
    const BenchResult r =
        runBenchmark(*app, Mode::Dtbl, GpuConfig::k20c(), opts);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.checkErrors, 0u)
        << (r.checkFindings.empty() ? "" : r.checkFindings[0].str());
    EXPECT_EQ(r.checkWarnings, 0u);
}

TEST(Sanitizer, SummaryAndLevelNames)
{
    EXPECT_STREQ(checkLevelName(CheckLevel::Off), "off");
    EXPECT_STREQ(checkLevelName(CheckLevel::Invariants), "invariants");
    EXPECT_STREQ(checkLevelName(CheckLevel::Memory), "memory");
    EXPECT_STREQ(checkLevelName(CheckLevel::Full), "full");

    GlobalMemory mem(1 << 20);
    Sanitizer san(CheckLevel::Full, mem);
    EXPECT_EQ(san.summary(), "dtbl-check[full]: 0 error(s), 0 warning(s)");
    san.report(CheckRule::LeakAgt, Severity::Error, "leak");
    EXPECT_EQ(san.errorCount(), 1u);
    ASSERT_EQ(san.findings().size(), 1u);
    EXPECT_EQ(san.findings()[0].rule, CheckRule::LeakAgt);
}
