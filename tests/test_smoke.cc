/**
 * @file
 * End-to-end smoke tests: small kernels through the full simulator.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/** out[i] = a[i] + b[i] for i < n. */
KernelFuncId
buildVecAdd(Program &prog)
{
    KernelBuilder b("vecadd", Dim3{64});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, n);
    b.exitIf(oob);
    Reg aBase = b.ldParam(4);
    Reg bBase = b.ldParam(8);
    Reg oBase = b.ldParam(12);
    Reg off = b.shl(tid, 2);
    Reg av = b.ld(MemSpace::Global, b.add(aBase, off));
    Reg bv = b.ld(MemSpace::Global, b.add(bBase, off));
    Reg sum = b.add(av, bv);
    b.st(MemSpace::Global, b.add(oBase, off), sum);
    return b.build(prog);
}

} // namespace

TEST(Smoke, VectorAdd)
{
    Program prog;
    const KernelFuncId vecadd = buildVecAdd(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 1000;
    std::vector<std::uint32_t> a(n), bb(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        a[i] = i * 3;
        bb[i] = i + 7;
    }
    const Addr aAddr = gpu.mem().upload(a);
    const Addr bAddr = gpu.mem().upload(bb);
    const Addr oAddr = gpu.mem().allocate(n * 4);

    const Dim3 grid{(n + 63) / 64, 1, 1};
    gpu.launch(vecadd, grid,
               {n, std::uint32_t(aAddr), std::uint32_t(bAddr),
                std::uint32_t(oAddr)});
    gpu.synchronize();

    const auto out = gpu.mem().download<std::uint32_t>(oAddr, n);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], a[i] + bb[i]) << "i=" << i;

    EXPECT_GT(gpu.now(), 0u);
    EXPECT_EQ(gpu.stats().kernelsCompleted, 1u);
    EXPECT_EQ(gpu.stats().tbsCompleted, grid.count());
}

TEST(Smoke, DivergentLoopSum)
{
    // Each thread sums i..i+deg(i) with a data-dependent loop bound,
    // exercising the PDOM stack.
    Program prog;
    KernelBuilder b("divsum", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg nReg = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nReg);
    b.exitIf(oob);
    Reg degBase = b.ldParam(4);
    Reg outBase = b.ldParam(8);
    Reg off = b.shl(tid, 2);
    Reg degR = b.ld(MemSpace::Global, b.add(degBase, off));
    Reg acc = b.mov(0u);
    b.forRange(Val(0u), degR, [&](Reg i) {
        b.binaryTo(acc, Opcode::Add, DataType::U32, acc, i);
    });
    b.st(MemSpace::Global, b.add(outBase, off), acc);
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 100;
    std::vector<std::uint32_t> deg(n);
    for (std::uint32_t i = 0; i < n; ++i)
        deg[i] = i % 17;
    const Addr degAddr = gpu.mem().upload(deg);
    const Addr outAddr = gpu.mem().allocate(n * 4);
    gpu.launch(k, Dim3{(n + 31) / 32},
               {n, std::uint32_t(degAddr), std::uint32_t(outAddr)});
    gpu.synchronize();

    const auto out = gpu.mem().download<std::uint32_t>(outAddr, n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t d = deg[i];
        EXPECT_EQ(out[i], d * (d - 1) / 2) << "i=" << i;
    }
    // Divergence must show up in the warp-activity metric.
    auto r = gpu.report("divsum", "flat");
    EXPECT_LT(r.warpActivityPct, 100.0);
    EXPECT_GT(r.warpActivityPct, 0.0);
}

TEST(Smoke, BarrierAndSharedMemory)
{
    // Block-wide reverse through shared memory.
    Program prog;
    KernelBuilder b("reverse", Dim3{64}, /*shared*/ 64 * 4);
    Reg tid = b.mov(SReg::TidX);
    Reg gid = b.globalThreadIdX();
    Reg inBase = b.ldParam(0);
    Reg outBase = b.ldParam(4);
    Reg goff = b.shl(gid, 2);
    Reg v = b.ld(MemSpace::Global, b.add(inBase, goff));
    b.st(MemSpace::Shared, b.shl(tid, 2), v);
    b.bar();
    Reg rev = b.sub(63u, tid);
    Reg rv = b.ld(MemSpace::Shared, b.shl(rev, 2));
    b.st(MemSpace::Global, b.add(outBase, goff), rv);
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 256; // 4 blocks of 64
    std::vector<std::uint32_t> in(n);
    for (std::uint32_t i = 0; i < n; ++i)
        in[i] = i * 13 + 5;
    const Addr inAddr = gpu.mem().upload(in);
    const Addr outAddr = gpu.mem().allocate(n * 4);
    gpu.launch(k, Dim3{n / 64},
               {std::uint32_t(inAddr), std::uint32_t(outAddr)});
    gpu.synchronize();

    const auto out = gpu.mem().download<std::uint32_t>(outAddr, n);
    for (std::uint32_t blk = 0; blk < n / 64; ++blk) {
        for (std::uint32_t t = 0; t < 64; ++t)
            EXPECT_EQ(out[blk * 64 + t], in[blk * 64 + (63 - t)]);
    }
}

TEST(Smoke, AtomicAddHistogram)
{
    Program prog;
    KernelBuilder b("hist", Dim3{64});
    Reg tid = b.globalThreadIdX();
    Reg nReg = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nReg);
    b.exitIf(oob);
    Reg keyBase = b.ldParam(4);
    Reg histBase = b.ldParam(8);
    Reg key = b.ld(MemSpace::Global, b.add(keyBase, b.shl(tid, 2)));
    b.atom(AtomOp::Add, DataType::U32,
           b.add(histBase, b.shl(key, 2)), Val(1u));
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 500, buckets = 16;
    std::vector<std::uint32_t> keys(n);
    std::vector<std::uint32_t> expect(buckets, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        keys[i] = (i * 7919) % buckets;
        ++expect[keys[i]];
    }
    const Addr keyAddr = gpu.mem().upload(keys);
    const Addr histAddr = gpu.mem().allocate(buckets * 4);
    gpu.launch(k, Dim3{(n + 63) / 64},
               {n, std::uint32_t(keyAddr), std::uint32_t(histAddr)});
    gpu.synchronize();

    const auto hist = gpu.mem().download<std::uint32_t>(histAddr, buckets);
    for (std::uint32_t i = 0; i < buckets; ++i)
        EXPECT_EQ(hist[i], expect[i]) << "bucket " << i;
}
