/**
 * @file
 * Host self-profiler tests.
 *
 * The load-bearing property is the purity contract: the profiler reads
 * the host clock and nothing else, so enabling it (or compiling it out
 * with -DDTBL_ENABLE_HOSTPROF=OFF) must leave cycles, traceHash, stats
 * and sanitizer findings bit-identical. The sweep below runs in every
 * build flavour; the CI hostprof-off job re-runs it compiled out and
 * additionally diffs metrics lines across build flavours.
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/registry.hh"
#include "harness/runner.hh"
#include "stats/host_prof.hh"

using namespace dtbl;

namespace {

/** Run one (benchmark, mode) with the given hostprof state. */
BenchResult
runWith(const std::string &id, Mode m, bool hostprof)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.reset();
    prof.setEnabled(hostprof);
    auto app = makeBenchmark(id);
    RunOptions opts;
    opts.checkLevel = 3; // findings must match too
    const BenchResult r = runBenchmark(*app, m, GpuConfig::k20c(), opts);
    prof.setEnabled(false);
    return r;
}

} // namespace

// --- purity ------------------------------------------------------------

TEST(HostProfPurity, OnOffBitIdenticalSweep)
{
    const std::string benches[] = {"bht", "join_uniform"};
    const Mode modes[] = {Mode::Flat, Mode::Cdp, Mode::Dtbl};
    for (const std::string &id : benches) {
        for (Mode m : modes) {
            const std::string label = id + "/" + modeName(m);
            const BenchResult off = runWith(id, m, false);
            const BenchResult on = runWith(id, m, true);
            ASSERT_TRUE(off.verified) << label;
            ASSERT_TRUE(on.verified) << label;

            // Simulation results must not depend on host observation.
            EXPECT_EQ(on.report.cycles, off.report.cycles) << label;
            EXPECT_EQ(on.report.traceHash, off.report.traceHash) << label;
            EXPECT_EQ(on.report.traceEvents, off.report.traceEvents)
                << label;
            EXPECT_EQ(on.stats.warpInstrsIssued, off.stats.warpInstrsIssued)
                << label;
            EXPECT_EQ(on.stats.tbsCompleted, off.stats.tbsCompleted)
                << label;
            EXPECT_EQ(on.checkErrors, off.checkErrors) << label;
            EXPECT_EQ(on.checkWarnings, off.checkWarnings) << label;
            EXPECT_EQ(on.checkFindings.size(), off.checkFindings.size())
                << label;
            // The whole printed report (no wall-clock was measured, so
            // no machine-dependent fields appear in either line).
            EXPECT_EQ(on.report.str(), off.report.str()) << label;

            // When compiled in and enabled, phases were recorded.
            if (HostProfiler::compiledIn)
                EXPECT_GT(HostProfiler::instance().numPhases(), 1u)
                    << label;
        }
    }
}

TEST(HostProfPurity, DisabledScopesRecordNothing)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.reset();
    prof.setEnabled(false);
    {
        DTBL_HPROF_SCOPE("should-not-appear");
    }
    EXPECT_EQ(prof.numPhases(), 1u); // just the synthetic root
    EXPECT_EQ(prof.totalNs(), 0u);
}

// --- phase-tree invariants ----------------------------------------------

TEST(HostProfTree, QuickstartPhaseInvariants)
{
    if (!HostProfiler::compiledIn)
        GTEST_SKIP() << "hostprof compiled out";

    runWith("bht", Mode::Dtbl, true);
    HostProfiler &prof = HostProfiler::instance();

    // The run phases the harness brackets must all have fired.
    for (const char *path : {"build", "setup", "sim", "report", "verify"})
        EXPECT_GE(prof.find(path), 0) << path;
    // The cycle-loop phases nest under "sim".
    for (const char *path : {"sim/sched", "sim/smx", "sim/sched/kmu",
                             "sim/sched/dispatch", "sim/smx/mem"})
        EXPECT_GE(prof.find(path), 0) << path;
    // checkLevel=3 was on, so sanitizer hooks attributed time.
    EXPECT_GE(prof.find("sim/smx/check"), 0);

    for (std::size_t i = 1; i < prof.numPhases(); ++i) {
        const HostProfiler::Phase &p = prof.phase(i);
        EXPECT_GT(p.entries, 0u) << prof.path(i);
        // Children's inclusive time cannot exceed the parent's (the
        // exclusive accessor clamps tiny clock-granularity overshoot,
        // so assert through it rather than re-deriving).
        std::uint64_t childNs = 0;
        for (std::int32_t c : p.children)
            childNs += prof.phase(std::size_t(c)).inclusiveNs;
        EXPECT_EQ(prof.exclusiveNs(i),
                  p.inclusiveNs > childNs ? p.inclusiveNs - childNs : 0)
            << prof.path(i);
        // Every non-root phase's parent saw at least as many entries
        // as... not true in general (loops); but parent must exist.
        EXPECT_GE(p.parent, 0) << prof.path(i);
    }

    const std::string text = prof.textReport();
    EXPECT_NE(text.find("host profile"), std::string::npos);
    EXPECT_NE(text.find("sim"), std::string::npos);
    const std::string json = prof.json();
    EXPECT_NE(json.find("\"hostProfSchemaVersion\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"path\": \"sim/smx\""), std::string::npos);
}

TEST(HostProfTree, ScopeNestingAndReentry)
{
    if (!HostProfiler::compiledIn)
        GTEST_SKIP() << "hostprof compiled out";

    HostProfiler &prof = HostProfiler::instance();
    prof.reset();
    prof.setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        DTBL_HPROF_SCOPE("outer");
        {
            DTBL_HPROF_SCOPE("inner");
        }
        {
            DTBL_HPROF_SCOPE("inner");
        }
    }
    prof.setEnabled(false);

    const std::int32_t outer = prof.find("outer");
    const std::int32_t inner = prof.find("outer/inner");
    ASSERT_GE(outer, 0);
    ASSERT_GE(inner, 0);
    // Same name under the same parent folds into one node.
    EXPECT_EQ(prof.numPhases(), 3u);
    EXPECT_EQ(prof.phase(std::size_t(outer)).entries, 3u);
    EXPECT_EQ(prof.phase(std::size_t(inner)).entries, 6u);
    EXPECT_GE(prof.phase(std::size_t(outer)).inclusiveNs,
              prof.phase(std::size_t(inner)).inclusiveNs);
    EXPECT_EQ(prof.phase(std::size_t(inner)).parent, outer);
    EXPECT_EQ(prof.totalNs(), prof.phase(std::size_t(outer)).inclusiveNs);
}
