/**
 * @file
 * Golden-trace regression tests: scripted aggregated-launch scenarios
 * with a hand-checked expected event sequence. These pin down the exact
 * microarchitectural ordering of Section 4 — fallback device-kernel
 * launch when no eligible kernel exists, AGT insert + coalesce once one
 * does, the kernel-dispatch latency, and the AGT overflow fetch penalty
 * — so a change to any launch-path timing shows up as a readable diff
 * of the event stream, not just a different cycle total.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/**
 * Child writes out[slot] = 1 for each processed element.
 * Params: [0]=out [4]=start [8]=count
 */
KernelFuncId
buildMarkKernel(Program &prog)
{
    KernelBuilder b("mark", Dim3{32}, 0, 12);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(8);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg out = b.ldParam(0);
    Reg start = b.ldParam(4);
    Reg idx = b.add(start, gid);
    b.st(MemSpace::Global, b.add(out, b.shl(idx, 2)), Val(1u));
    return b.build(prog);
}

/** One aggregated group of @p num_tbs TBs covering [start, start+count). */
AggLaunchRequest
makeGroup(Gpu &gpu, KernelFuncId func, Addr out, std::uint32_t start,
          std::uint32_t count, std::uint32_t num_tbs, unsigned hw_tid)
{
    const Addr p = gpu.mem().allocate(12);
    gpu.mem().write32(p + 0, std::uint32_t(out));
    gpu.mem().write32(p + 4, start);
    gpu.mem().write32(p + 8, count);
    AggLaunchRequest r;
    r.func = func;
    r.numTbs = num_tbs;
    r.paramAddr = p;
    r.hwTid = hw_tid;
    r.launchCycle = 0;
    return r;
}

bool
isMemEvent(TraceEvent ev)
{
    return ev == TraceEvent::L1Miss || ev == TraceEvent::L2Miss ||
           ev == TraceEvent::DramRead || ev == TraceEvent::DramWrite;
}

/**
 * The captured trace minus memory traffic, one event per line:
 * "<cycle> <name> lane=<unit> <arg0> <arg1>" with args printed signed
 * so agei = -1 (native kernel) reads as -1.
 */
std::vector<std::string>
controlSequence(const TraceSink &sink)
{
    std::vector<std::string> out;
    for (const TraceRecord &r : sink.captured()) {
        if (isMemEvent(r.event))
            continue;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%llu %s lane=%u %lld %lld",
                      static_cast<unsigned long long>(r.cycle),
                      traceEventName(r.event), r.unit,
                      static_cast<long long>(r.arg0),
                      static_cast<long long>(r.arg1));
        out.emplace_back(buf);
    }
    return out;
}

std::string
join(const std::vector<std::string> &lines)
{
    std::string s;
    for (const auto &l : lines) {
        s += l;
        s += '\n';
    }
    return s;
}

} // namespace

TEST(TraceEvents, GoldenFallbackThenCoalesce)
{
    if (!TraceSink::compiledIn)
        GTEST_SKIP() << "tracing compiled out";
    // Two groups of the same kernel submitted when no eligible kernel
    // exists (Section 4.2): the first must fall back to a device-kernel
    // launch; the second retries, finds the fallback kernel's KDE entry
    // and coalesces onto it via an on-chip AGE.
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    gpu.trace().setCapture(4096);
    const Addr out = gpu.mem().allocate(64 * 4);
    gpu.submitAggLaunches({makeGroup(gpu, child, out, 0, 32, 1, 0),
                           makeGroup(gpu, child, out, 32, 32, 1, 1)},
                          0);
    gpu.synchronize();

    for (std::uint32_t i = 0; i < 64; ++i)
        ASSERT_EQ(gpu.mem().read32(out + i * 4), 1u) << i;

    // kernelDispatch = 283: the KDE entry allocated at cycle 1 becomes
    // schedulable at 284, when both the native TB and the aggregated
    // group's TB dispatch (agei -1 = native, 0 = first AGE).
    const std::vector<std::string> golden = {
        "0 AggLaunch lane=2 0 1",
        "0 AggLaunch lane=2 0 1",
        "0 AggFallback lane=2 0 1",
        "0 KmuPushDevice lane=0 0 1",
        "1 KmuPop lane=0 0 -1",
        "1 KdeAlloc lane=1 0 0",
        "1 AgtInsert lane=2 0 1",
        "1 AggCoalesce lane=2 0 0",
        "284 TbDispatch lane=18 -1 0",
        "284 TbDispatch lane=19 0 0",
    };
    const auto seq = controlSequence(gpu.trace());
    ASSERT_GE(seq.size(), golden.size());
    const std::vector<std::string> head(seq.begin(),
                                        seq.begin() + golden.size());
    EXPECT_EQ(join(head), join(golden)) << "full sequence:\n" << join(seq);

    // The tail is retirement: every dispatched TB retires, every AGE is
    // released, and the kernel completes exactly once.
    const TraceSummary sum = gpu.trace().summary();
    EXPECT_EQ(sum.count(TraceEvent::TbDispatch), 2u);
    EXPECT_EQ(sum.count(TraceEvent::TbRetire), 2u);
    EXPECT_EQ(sum.count(TraceEvent::AgtInsert), 1u);
    EXPECT_EQ(sum.count(TraceEvent::AgtRelease), 1u);
    EXPECT_EQ(sum.count(TraceEvent::KdeRelease), 1u);
    EXPECT_EQ(sum.count(TraceEvent::AgtSpill), 0u);
}

TEST(TraceEvents, GoldenOverflowSpill)
{
    if (!TraceSink::compiledIn)
        GTEST_SKIP() << "tracing compiled out";
    // agtSize = 1: with three groups the first falls back, the second
    // takes the only on-chip AGT slot, the third spills to global
    // memory and its dispatch pays the agtOverflowFetchCycles penalty.
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);

    GpuConfig cfg = GpuConfig::k20c();
    cfg.agtSize = 1;
    Gpu gpu(cfg, prog);
    gpu.trace().setCapture(4096);
    const Addr out = gpu.mem().allocate(96 * 4);
    gpu.submitAggLaunches({makeGroup(gpu, child, out, 0, 32, 1, 0),
                           makeGroup(gpu, child, out, 32, 32, 1, 1),
                           makeGroup(gpu, child, out, 64, 32, 1, 2)},
                          0);
    gpu.synchronize();

    for (std::uint32_t i = 0; i < 96; ++i)
        ASSERT_EQ(gpu.mem().read32(out + i * 4), 1u) << i;

    const TraceSummary sum = gpu.trace().summary();
    EXPECT_EQ(sum.count(TraceEvent::AggFallback), 1u);
    EXPECT_EQ(sum.count(TraceEvent::AgtInsert), 1u);
    EXPECT_EQ(sum.count(TraceEvent::AgtSpill), 1u);
    EXPECT_EQ(sum.count(TraceEvent::TbDispatch), 3u);
    EXPECT_EQ(sum.count(TraceEvent::TbRetire), 3u);

    // The on-chip AGE dispatches with the native TB; the spilled AGE
    // only after its entry is fetched back from global memory.
    Cycle onChipDispatch = 0, spillDispatch = 0;
    for (const TraceRecord &r : gpu.trace().captured()) {
        if (r.event != TraceEvent::TbDispatch)
            continue;
        const auto agei = static_cast<std::int64_t>(r.arg0);
        if (agei == 0)
            onChipDispatch = r.cycle;
        else if (agei > 0)
            spillDispatch = r.cycle;
    }
    ASSERT_GT(onChipDispatch, 0u);
    ASSERT_GT(spillDispatch, 0u);
    EXPECT_EQ(spillDispatch - onChipDispatch, cfg.agtOverflowFetchCycles);
}

TEST(TraceEvents, JsonExportIsWellFormed)
{
    if (!TraceSink::compiledIn)
        GTEST_SKIP() << "tracing compiled out";
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);

    const std::string path =
        ::testing::TempDir() + "/dtbl_trace_events.json";
    {
        Gpu gpu(GpuConfig::k20c(), prog);
        ASSERT_TRUE(gpu.trace().openJson(path));
        const Addr out = gpu.mem().allocate(64 * 4);
        gpu.submitAggLaunches({makeGroup(gpu, child, out, 0, 32, 1, 0),
                               makeGroup(gpu, child, out, 32, 32, 1, 1)},
                              0);
        gpu.synchronize();
        gpu.trace().closeJson();
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    ASSERT_FALSE(doc.empty());

    // Structural checks without a JSON parser: the document is one
    // object, braces/brackets balance, and the expected keys appear.
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.find_last_not_of(" \n\t"), doc.rfind('}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"AggCoalesce\""), std::string::npos);
    EXPECT_NE(doc.find("\"TbDispatch\""), std::string::npos);
    std::remove(path.c_str());
}
