/**
 * @file
 * Integration tests for device-side kernel launch (CDP) and dynamic
 * thread block launch (DTBL): functional correctness, coalescing
 * behaviour, launch-overhead ordering and metric plumbing.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/**
 * Child: params = [outAddr, start, count]; thread g < count writes
 * out[start + g] = start + g + 1.
 */
KernelFuncId
buildChild(Program &prog)
{
    KernelBuilder b("child", Dim3{32});
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(8);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg outBase = b.ldParam(0);
    Reg start = b.ldParam(4);
    Reg idx = b.add(start, gid);
    Reg val = b.add(idx, 1u);
    b.st(MemSpace::Global, b.add(outBase, b.shl(idx, 2)), val);
    return b.build(prog);
}

/**
 * Parent: params = [n, workAddr, offAddr, outAddr]; each thread i < n
 * with work[i] > 0 launches a child over work[i] elements starting at
 * off[i]. `useDtbl` selects cudaLaunchAggGroup vs cudaLaunchDevice.
 */
KernelFuncId
buildParent(Program &prog, KernelFuncId child, bool use_dtbl)
{
    KernelBuilder b(use_dtbl ? "parent_dtbl" : "parent_cdp", Dim3{64});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, n);
    b.exitIf(oob);
    Reg workBase = b.ldParam(4);
    Reg offBase = b.ldParam(8);
    Reg outAddr = b.ldParam(12);
    Reg off4 = b.shl(tid, 2);
    Reg work = b.ld(MemSpace::Global, b.add(workBase, off4));
    Reg start = b.ld(MemSpace::Global, b.add(offBase, off4));
    Pred has = b.setp(CmpOp::Gt, DataType::U32, work, Val(0u));
    b.if_(has, [&] {
        if (!use_dtbl)
            b.streamCreate();
        Reg buf = b.getParameterBuffer(12);
        b.st(MemSpace::Global, buf, outAddr, 0);
        b.st(MemSpace::Global, buf, start, 4);
        b.st(MemSpace::Global, buf, work, 8);
        Reg ntbs = b.div(b.add(work, 31u), Val(32u));
        if (use_dtbl)
            b.launchAggGroup(child, ntbs, buf);
        else
            b.launchDevice(child, ntbs, buf);
    });
    return b.build(prog);
}

struct Workload
{
    std::uint32_t n = 200;
    std::vector<std::uint32_t> work;
    std::vector<std::uint32_t> off;
    std::uint32_t total = 0;

    explicit Workload(std::uint32_t n_ = 200) : n(n_)
    {
        work.resize(n);
        off.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            work[i] = (i % 5 == 0) ? (i % 97) : 0;
            off[i] = total;
            total += work[i];
        }
    }
};

struct RunResult
{
    MetricsReport report;
    SimStats stats;
    bool correct = true;
};

RunResult
runNested(const GpuConfig &cfg, bool use_dtbl, std::uint32_t n = 200)
{
    Program prog;
    const KernelFuncId child = buildChild(prog);
    const KernelFuncId parent = buildParent(prog, child, use_dtbl);

    Gpu gpu(cfg, prog);
    Workload wl(n);
    const Addr workAddr = gpu.mem().upload(wl.work);
    const Addr offAddr = gpu.mem().upload(wl.off);
    const Addr outAddr = gpu.mem().allocate(std::max(wl.total, 1u) * 4);

    gpu.launch(parent, Dim3{(wl.n + 63) / 64},
               {wl.n, std::uint32_t(workAddr), std::uint32_t(offAddr),
                std::uint32_t(outAddr)});
    gpu.synchronize();

    RunResult r;
    r.report = gpu.report("nested", use_dtbl ? "dtbl" : "cdp");
    r.stats = gpu.stats();
    const auto out = gpu.mem().download<std::uint32_t>(outAddr, wl.total);
    for (std::uint32_t i = 0; i < wl.total; ++i) {
        if (out[i] != i + 1) {
            r.correct = false;
            break;
        }
    }
    return r;
}

} // namespace

TEST(DynamicLaunch, CdpFunctionalCorrectness)
{
    auto r = runNested(GpuConfig::k20c(), /*dtbl*/ false);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.deviceKernelLaunches, 0u);
    EXPECT_EQ(r.stats.aggGroupLaunches, 0u);
}

TEST(DynamicLaunch, DtblFunctionalCorrectness)
{
    auto r = runNested(GpuConfig::k20c(), /*dtbl*/ true);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.aggGroupLaunches, 0u);
    // The very first group(s) have no eligible kernel and fall back;
    // the overwhelming majority must coalesce (paper: ~98%).
    EXPECT_GT(r.stats.aggGroupsCoalesced, 0u);
    EXPECT_GE(r.report.aggCoalesceRate, 0.5);
}

TEST(DynamicLaunch, DtblFasterThanCdp)
{
    auto cdp = runNested(GpuConfig::k20c(), false);
    auto dtbl = runNested(GpuConfig::k20c(), true);
    ASSERT_TRUE(cdp.correct);
    ASSERT_TRUE(dtbl.correct);
    // The whole point of the paper: TB launch is much cheaper than a
    // device kernel launch.
    EXPECT_LT(dtbl.report.cycles, cdp.report.cycles);
}

TEST(DynamicLaunch, IdealModesFasterThanModeled)
{
    auto cdp = runNested(GpuConfig::k20c(), false);
    auto cdpi = runNested(GpuConfig::k20cIdeal(), false);
    auto dtbl = runNested(GpuConfig::k20c(), true);
    auto dtbli = runNested(GpuConfig::k20cIdeal(), true);
    EXPECT_LT(cdpi.report.cycles, cdp.report.cycles);
    EXPECT_LE(dtbli.report.cycles, dtbl.report.cycles);
    // Launch latency hurts CDP more than DTBL (Section 5.2B).
    const double cdpPenalty =
        double(cdp.report.cycles) / double(cdpi.report.cycles);
    const double dtblPenalty =
        double(dtbl.report.cycles) / double(dtbli.report.cycles);
    EXPECT_GT(cdpPenalty, dtblPenalty);
}

TEST(DynamicLaunch, DtblWaitingTimeLower)
{
    auto cdp = runNested(GpuConfig::k20c(), false);
    auto dtbl = runNested(GpuConfig::k20c(), true);
    ASSERT_GT(cdp.stats.launchWaitSamples, 0u);
    ASSERT_GT(dtbl.stats.launchWaitSamples, 0u);
    EXPECT_LT(dtbl.report.avgWaitingCycles, cdp.report.avgWaitingCycles);
}

TEST(DynamicLaunch, DtblFootprintLower)
{
    auto cdp = runNested(GpuConfig::k20c(), false);
    auto dtbl = runNested(GpuConfig::k20c(), true);
    EXPECT_LT(dtbl.report.peakFootprintBytes, cdp.report.peakFootprintBytes);
    // All reservations must be released by the end of the run.
    EXPECT_EQ(cdp.stats.pendingLaunchBytes, 0u);
    EXPECT_EQ(dtbl.stats.pendingLaunchBytes, 0u);
}
