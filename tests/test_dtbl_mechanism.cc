/**
 * @file
 * Targeted tests of the DTBL microarchitecture behaviour described in
 * Section 4: coalescing to self vs to another kernel (Figure 2), the
 * two NAGEI update scenarios, AGT spill handling, re-marking of
 * drained kernels, and footprint/waiting-time accounting.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/**
 * Child writes out[slot] = 1 for each processed element.
 * Params: [0]=out [4]=start [8]=count
 */
KernelFuncId
buildMarkKernel(Program &prog, const char *name = "mark")
{
    KernelBuilder b(name, Dim3{32}, 0, 12);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(8);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg out = b.ldParam(0);
    Reg start = b.ldParam(4);
    Reg idx = b.add(start, gid);
    b.st(MemSpace::Global, b.add(out, b.shl(idx, 2)), Val(1u));
    return b.build(prog);
}

/**
 * Parent: every thread launches one group of `span` elements.
 * Params: [0]=n [4]=out [8]=span
 */
KernelFuncId
buildLauncher(Program &prog, KernelFuncId child)
{
    KernelBuilder b("launcher", Dim3{32}, 0, 12);
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, n);
    b.exitIf(oob);
    Reg out = b.ldParam(4);
    Reg span = b.ldParam(8);
    Reg start = b.mul(tid, span);
    Reg ntbs = b.div(b.add(span, 31u), Val(32u));
    Reg buf = b.getParameterBuffer(12);
    b.st(MemSpace::Global, buf, out, 0);
    b.st(MemSpace::Global, buf, start, 4);
    b.st(MemSpace::Global, buf, span, 8);
    b.launchAggGroup(child, ntbs, buf);
    return b.build(prog);
}

} // namespace

TEST(DtblMechanism, GroupsCoalesceToFallbackKernel)
{
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);
    const KernelFuncId parent = buildLauncher(prog, child);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 64, span = 40;
    const Addr out = gpu.mem().allocate(n * span * 4);
    gpu.launch(parent, Dim3{2}, {n, std::uint32_t(out), span});
    gpu.synchronize();

    for (std::uint32_t i = 0; i < n * span; ++i)
        ASSERT_EQ(gpu.mem().read32(out + i * 4), 1u) << i;

    const auto &st = gpu.stats();
    EXPECT_EQ(st.aggGroupLaunches, n);
    // Only the very first group(s) lack an eligible kernel.
    EXPECT_GE(st.aggGroupsCoalesced, n - 4);
    EXPECT_LE(st.aggGroupsFallback, 4u);
}

TEST(DtblMechanism, SelfCoalescingRecursion)
{
    // A kernel launching groups of itself (Figure 2a): depth counter in
    // params, recursion terminates at depth 3.
    Program prog;
    KernelBuilder b("recurse", Dim3{32}, 0, 12);
    const KernelFuncId self = KernelFuncId(prog.size());
    Reg gid = b.globalThreadIdX();
    Pred notFirst = b.setp(CmpOp::Ne, DataType::U32, gid, Val(0u));
    b.exitIf(notFirst);
    Reg counterR = b.ldParam(0);
    Reg depth = b.ldParam(4);
    b.atom(AtomOp::Add, DataType::U32, counterR, Val(1u));
    Pred cont = b.setp(CmpOp::Lt, DataType::U32, depth, Val(3u));
    b.if_(cont, [&] {
        Reg buf = b.getParameterBuffer(8);
        b.st(MemSpace::Global, buf, counterR, 0);
        b.st(MemSpace::Global, buf, b.add(depth, 1u), 4);
        b.launchAggGroup(self, Val(2u), buf);
    });
    const KernelFuncId k = b.build(prog);
    ASSERT_EQ(k, self);

    Gpu gpu(GpuConfig::k20c(), prog);
    const Addr counter = gpu.mem().allocate(4);
    gpu.mem().write32(counter, 0);
    gpu.launch(k, Dim3{1}, {std::uint32_t(counter), 0u});
    gpu.synchronize();

    // Only global thread 0 of each launch is active, so the recursion
    // is a depth-4 chain: one increment per depth 0..3.
    EXPECT_EQ(gpu.mem().read32(counter), 4u);
    // Recursive groups coalesce onto the native kernel itself.
    EXPECT_GT(gpu.stats().aggGroupsCoalesced, 0u);
    EXPECT_EQ(gpu.stats().aggGroupsFallback, 0u);
}

TEST(DtblMechanism, ReMarkAfterDrainScenario)
{
    // Scenario 1 of the NAGEI update (Section 4.2): a kernel whose TBs
    // were all scheduled gets a late aggregated group and must be
    // re-marked. Achieved by making the parent slow (long loop before
    // launching) so the child kernel created by the first wave drains
    // before the second wave's groups arrive.
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);
    KernelBuilder b("two_waves", Dim3{32}, 0, 16);
    Reg tid = b.globalThreadIdX();
    Reg nR = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nR);
    b.exitIf(oob);
    Reg outR = b.ldParam(4);
    Reg spanR = b.ldParam(8);
    Pred second = b.setp(CmpOp::Ge, DataType::U32, tid, Val(32u));
    b.if_(second, [&] {
        // Busy-wait loop so the second wave launches much later.
        Reg sink = b.mov(0u);
        b.forRange(Val(0u), Val(3000u), [&](Reg i) {
            b.binaryTo(sink, Opcode::Add, DataType::U32, sink, i);
        });
    });
    Reg start = b.mul(tid, spanR);
    Reg ntbs = b.div(b.add(spanR, 31u), Val(32u));
    Reg buf = b.getParameterBuffer(12);
    b.st(MemSpace::Global, buf, outR, 0);
    b.st(MemSpace::Global, buf, start, 4);
    b.st(MemSpace::Global, buf, spanR, 8);
    b.launchAggGroup(child, ntbs, buf);
    const KernelFuncId parent = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const std::uint32_t n = 64, span = 33;
    const Addr out = gpu.mem().allocate(n * span * 4);
    gpu.launch(parent, Dim3{2}, {n, std::uint32_t(out), span});
    gpu.synchronize();
    for (std::uint32_t i = 0; i < n * span; ++i)
        ASSERT_EQ(gpu.mem().read32(out + i * 4), 1u) << i;
    EXPECT_EQ(gpu.stats().aggGroupLaunches, n);
}

TEST(DtblMechanism, AgtSpillStillExecutesCorrectly)
{
    // Tiny AGT forces most groups through the global-memory spill path.
    Program prog;
    const KernelFuncId child = buildMarkKernel(prog);
    const KernelFuncId parent = buildLauncher(prog, child);

    GpuConfig cfg = GpuConfig::k20c();
    cfg.agtSize = 2;
    Gpu gpu(cfg, prog);
    const std::uint32_t n = 96, span = 40;
    const Addr out = gpu.mem().allocate(n * span * 4);
    gpu.launch(parent, Dim3{3}, {n, std::uint32_t(out), span});
    gpu.synchronize();

    for (std::uint32_t i = 0; i < n * span; ++i)
        ASSERT_EQ(gpu.mem().read32(out + i * 4), 1u) << i;
    EXPECT_GT(gpu.stats().agtOverflows, 0u);
}

TEST(DtblMechanism, SmallerAgtIsSlower)
{
    auto run = [&](unsigned agt) {
        Program prog;
        const KernelFuncId child = buildMarkKernel(prog);
        const KernelFuncId parent = buildLauncher(prog, child);
        GpuConfig cfg = GpuConfig::k20c();
        cfg.agtSize = agt;
        Gpu gpu(cfg, prog);
        const std::uint32_t n = 512, span = 40;
        const Addr out = gpu.mem().allocate(n * span * 4);
        gpu.launch(parent, Dim3{16}, {n, std::uint32_t(out), span});
        gpu.synchronize();
        return gpu.now();
    };
    // Figure 12's mechanism: fewer on-chip AGEs -> more spill fetches.
    EXPECT_GT(run(4), run(1024));
}

TEST(DtblMechanism, IdealModeRemovesDtblLaunchCost)
{
    auto run = [&](bool ideal) {
        Program prog;
        const KernelFuncId child = buildMarkKernel(prog);
        const KernelFuncId parent = buildLauncher(prog, child);
        Gpu gpu(ideal ? GpuConfig::k20cIdeal() : GpuConfig::k20c(), prog);
        const std::uint32_t n = 128, span = 40;
        const Addr out = gpu.mem().allocate(n * span * 4);
        gpu.launch(parent, Dim3{4}, {n, std::uint32_t(out), span});
        gpu.synchronize();
        return gpu.now();
    };
    EXPECT_LT(run(true), run(false));
}
