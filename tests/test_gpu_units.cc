/**
 * @file
 * Unit tests for the scheduling-side units: stream table, KMU, Kernel
 * Distributor (incl. NAGEI/LAGEI linking), AGT and the Figure-5
 * coalescing procedure.
 */

#include <gtest/gtest.h>

#include "core/agt.hh"
#include "core/dtbl_scheduler.hh"
#include "gpu/kernel_distributor.hh"
#include "gpu/kmu.hh"
#include "gpu/stream.hh"

using namespace dtbl;

namespace {

KernelLaunch
makeLaunch(KernelFuncId f, std::uint32_t tbs)
{
    KernelLaunch l;
    l.func = f;
    l.grid = Dim3{tbs, 1, 1};
    return l;
}

} // namespace

// --- StreamTable ---------------------------------------------------------

TEST(StreamTable, DefaultStreamExists)
{
    StreamTable t(32);
    EXPECT_EQ(t.numStreams(), 1u);
    EXPECT_EQ(t.hwqFor(0), 0u);
}

TEST(StreamTable, StreamsMapRoundRobinOntoHwqs)
{
    StreamTable t(4);
    std::int32_t s1 = t.create();
    std::int32_t s2 = t.create();
    EXPECT_EQ(t.hwqFor(s1), 1u);
    EXPECT_EQ(t.hwqFor(s2), 2u);
    // More streams than HWQs: they share queues.
    for (int i = 0; i < 4; ++i)
        t.create();
    EXPECT_EQ(t.hwqFor(4), 0u);
}

TEST(StreamTable, OutstandingCounting)
{
    StreamTable t(4);
    t.kernelLaunched(0);
    t.kernelLaunched(0);
    EXPECT_EQ(t.outstanding(0), 2u);
    t.kernelCompleted(0);
    EXPECT_EQ(t.outstanding(0), 1u);
}

// --- KMU ---------------------------------------------------------------

TEST(Kmu, HwqBlocksUntilCompletion)
{
    GpuConfig cfg = GpuConfig::k20c();
    Kmu kmu(cfg);
    kmu.enqueueHost(makeLaunch(0, 1), 0);
    kmu.enqueueHost(makeLaunch(1, 1), 0);

    auto d1 = kmu.nextDispatch(0);
    ASSERT_TRUE(d1);
    EXPECT_EQ(d1->launch.func, 0u);
    // Same HWQ blocked: second kernel not dispatched yet.
    EXPECT_FALSE(kmu.nextDispatch(0));
    kmu.hwqKernelCompleted(0);
    auto d2 = kmu.nextDispatch(0);
    ASSERT_TRUE(d2);
    EXPECT_EQ(d2->launch.func, 1u);
}

TEST(Kmu, IndependentHwqsDispatchConcurrently)
{
    GpuConfig cfg = GpuConfig::k20c();
    Kmu kmu(cfg);
    kmu.enqueueHost(makeLaunch(0, 1), 0);
    kmu.enqueueHost(makeLaunch(1, 1), 1);
    EXPECT_TRUE(kmu.nextDispatch(0));
    EXPECT_TRUE(kmu.nextDispatch(0));
    EXPECT_FALSE(kmu.idle()); // two blocked HWQs
}

TEST(Kmu, DeviceKernelsRespectArrivalTime)
{
    GpuConfig cfg = GpuConfig::k20c();
    Kmu kmu(cfg);
    kmu.enqueueDevice(makeLaunch(5, 1), 100);
    EXPECT_FALSE(kmu.nextDispatch(50));
    auto d = kmu.nextDispatch(100);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->hwq, -1);
}

TEST(Kmu, DeviceQueueSortedByArrival)
{
    GpuConfig cfg = GpuConfig::k20c();
    Kmu kmu(cfg);
    kmu.enqueueDevice(makeLaunch(1, 1), 500); // long-latency launch
    kmu.enqueueDevice(makeLaunch(2, 1), 100); // arrives earlier
    EXPECT_EQ(kmu.nextDeviceArrival(), 100u);
    auto d = kmu.nextDispatch(200);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->launch.func, 2u);
}

// --- KernelDistributor ----------------------------------------------------

TEST(KernelDistributor, AllocateUpToCapacity)
{
    GpuConfig cfg = GpuConfig::k20c();
    KernelDistributor kd(cfg);
    for (unsigned i = 0; i < cfg.maxConcurrentKernels; ++i)
        EXPECT_GE(kd.allocate(makeLaunch(i, 1), -1, 0, 283), 0);
    EXPECT_FALSE(kd.hasFreeEntry());
    EXPECT_EQ(kd.allocate(makeLaunch(99, 1), -1, 0, 283), -1);
}

TEST(KernelDistributor, DispatchLatencyAppliesToSchedulableAt)
{
    GpuConfig cfg = GpuConfig::k20c();
    KernelDistributor kd(cfg);
    const std::int32_t idx = kd.allocate(makeLaunch(0, 4), -1, 1000, 283);
    EXPECT_EQ(kd.entry(idx).schedulableAt, 1283u);
    EXPECT_EQ(kd.entry(idx).totalNativeTbs, 4u);
}

TEST(KernelDistributor, LinkAggGroupChainsAndMarks)
{
    GpuConfig cfg = GpuConfig::k20c();
    KernelDistributor kd(cfg);
    Agt agt(64);
    const std::int32_t idx = kd.allocate(makeLaunch(0, 1), -1, 0, 0);
    Kde &e = kd.entry(idx);

    AggGroup proto;
    proto.numTbs = 2;
    const std::int32_t g1 = agt.allocate(proto, 0);
    const std::int32_t g2 = agt.allocate(proto, 1);

    // Unmarked kernel: first link must request (re)marking.
    EXPECT_TRUE(kd.linkAggGroup(idx, g1, agt));
    EXPECT_EQ(e.nagei, g1);
    EXPECT_EQ(e.lagei, g1);

    // Marked kernel: second link chains behind and does not re-mark.
    e.fcfsMarked = true;
    EXPECT_FALSE(kd.linkAggGroup(idx, g2, agt));
    EXPECT_EQ(e.nagei, g1);
    EXPECT_EQ(e.lagei, g2);
    EXPECT_EQ(agt.group(g1).next, g2);
    EXPECT_EQ(e.pendingAggGroups, 2u);
}

TEST(KernelDistributor, CompletionRequiresEverything)
{
    GpuConfig cfg = GpuConfig::k20c();
    KernelDistributor kd(cfg);
    const std::int32_t idx = kd.allocate(makeLaunch(0, 1), -1, 0, 0);
    Kde &e = kd.entry(idx);
    EXPECT_FALSE(e.complete()); // native TB not yet distributed
    e.nextNativeTb = 1;
    e.exeBl = 1;
    EXPECT_FALSE(e.complete()); // TB executing
    e.exeBl = 0;
    EXPECT_TRUE(e.complete());
    e.fcfsMarked = true;
    EXPECT_FALSE(e.complete());
}

// --- AGT --------------------------------------------------------------

TEST(Agt, HashedSlotAllocation)
{
    Agt agt(16);
    AggGroup proto;
    // Slot = (hw_tid + allocation seq) & 15; first allocation has seq 0.
    const std::int32_t a = agt.allocate(proto, 3);
    EXPECT_TRUE(agt.group(a).onChip);
    EXPECT_EQ(agt.group(a).agtSlot, 3);
    // Second allocation (seq 1) aimed at the same slot -> spill.
    const std::int32_t b = agt.allocate(proto, 2);
    EXPECT_FALSE(agt.group(b).onChip);
    EXPECT_EQ(agt.onChipCount(), 1u);
    EXPECT_EQ(agt.liveCount(), 2u);
}

TEST(Agt, CollisionRateTracksOccupancy)
{
    // With many live groups, a smaller table must spill more often.
    auto spills = [](unsigned size) {
        Agt agt(size);
        unsigned spilled = 0;
        for (unsigned i = 0; i < 256; ++i) {
            const std::int32_t id = agt.allocate(AggGroup{}, i * 37);
            spilled += !agt.group(id).onChip;
        }
        return spilled;
    };
    EXPECT_GT(spills(64), spills(512));
    EXPECT_EQ(spills(1024), 0u); // plenty of room, sequence spreads
}

TEST(Agt, ReleaseFreesSlotForReuse)
{
    Agt agt(16);
    AggGroup proto;
    const std::int32_t a = agt.allocate(proto, 5);
    agt.release(a);
    const std::int32_t b = agt.allocate(proto, 5);
    EXPECT_TRUE(agt.group(b).onChip);
    EXPECT_EQ(agt.liveCount(), 1u);
}

TEST(Agt, AccessAfterReleasePanics)
{
    Agt agt(16);
    const std::int32_t a = agt.allocate(AggGroup{}, 0);
    agt.release(a);
    EXPECT_THROW(agt.group(a), std::logic_error);
}

TEST(Agt, PoolIdsStableAcrossUnrelatedReleases)
{
    Agt agt(16);
    AggGroup proto;
    proto.numTbs = 7;
    const std::int32_t a = agt.allocate(proto, 0);
    const std::int32_t b = agt.allocate(proto, 1);
    agt.release(a);
    EXPECT_EQ(agt.group(b).numTbs, 7u);
}

// --- DtblScheduler (Figure 5) ----------------------------------------------

TEST(DtblScheduler, CoalescesToMatchingKernel)
{
    Agt agt(16);
    GpuConfig cfg = GpuConfig::k20c();
    SimStats stats;
    DtblScheduler sched(agt, cfg, stats);

    std::vector<CoalesceTarget> kdes(4);
    kdes[2] = {true, true, KernelFuncId(7), 0};

    AggLaunchRequest req;
    req.func = 7;
    req.numTbs = 3;
    req.hwTid = 11;
    const auto res = sched.process(req, kdes, 0);
    EXPECT_TRUE(res.coalesced);
    EXPECT_EQ(res.kdeIdx, 2);
    EXPECT_TRUE(res.onChip);
    EXPECT_EQ(agt.group(res.agei).numTbs, 3u);
    EXPECT_EQ(stats.aggGroupsCoalesced, 1u);
}

TEST(DtblScheduler, SharedMemMismatchPreventsCoalescing)
{
    Agt agt(16);
    GpuConfig cfg = GpuConfig::k20c();
    SimStats stats;
    DtblScheduler sched(agt, cfg, stats);

    std::vector<CoalesceTarget> kdes(1);
    kdes[0] = {true, true, KernelFuncId(7), 4096};

    AggLaunchRequest req;
    req.func = 7;
    req.sharedMemBytes = 0;
    EXPECT_FALSE(sched.process(req, kdes, 0).coalesced);
}

TEST(DtblScheduler, NoEligibleKernelFallsBack)
{
    Agt agt(16);
    GpuConfig cfg = GpuConfig::k20c();
    SimStats stats;
    DtblScheduler sched(agt, cfg, stats);

    std::vector<CoalesceTarget> kdes(2); // all invalid
    AggLaunchRequest req;
    req.func = 9;
    EXPECT_FALSE(sched.process(req, kdes, 0).coalesced);
    EXPECT_EQ(agt.liveCount(), 0u);
}

TEST(DtblScheduler, LaunchLatencyModel)
{
    Agt agt(16);
    GpuConfig cfg = GpuConfig::k20c();
    SimStats stats;
    DtblScheduler sched(agt, cfg, stats);
    EXPECT_EQ(sched.launchLatency(1),
              cfg.kdeSearchCycles + cfg.agtProbeCycles);
    EXPECT_EQ(sched.launchLatency(32),
              cfg.kdeSearchCycles + 32 * cfg.agtProbeCycles);

    GpuConfig ideal = GpuConfig::k20cIdeal();
    DtblScheduler idealSched(agt, ideal, stats);
    EXPECT_EQ(idealSched.launchLatency(32), 0u);
}

// --- Metrics derivation -----------------------------------------------------

TEST(Metrics, DerivedValues)
{
    SimStats s;
    s.warpInstrsIssued = 100;
    s.activeLaneSum = 1600; // 16 of 32 lanes on average
    s.dramReads = 30;
    s.dramWrites = 10;
    s.dramActivityCycles = 200;
    s.residentWarpCycleSum = 416;
    s.busyCycles = 1;
    s.launchWaitCycleSum = 500;
    s.launchWaitSamples = 5;
    s.totalCycles = 1234;

    const auto r = MetricsReport::from(s, "x", "Flat", 13, 64);
    EXPECT_DOUBLE_EQ(r.warpActivityPct, 50.0);
    EXPECT_DOUBLE_EQ(r.dramEfficiency, 0.2);
    EXPECT_DOUBLE_EQ(r.smxOccupancyPct, 50.0);
    EXPECT_DOUBLE_EQ(r.avgWaitingCycles, 100.0);
    EXPECT_EQ(r.cycles, 1234u);
}

TEST(Metrics, FootprintAccounting)
{
    SimStats s;
    s.reserveLaunchBytes(100);
    s.reserveLaunchBytes(50);
    EXPECT_EQ(s.peakPendingLaunchBytes, 150u);
    s.releaseLaunchBytes(100);
    s.reserveLaunchBytes(20);
    EXPECT_EQ(s.peakPendingLaunchBytes, 150u);
    EXPECT_EQ(s.pendingLaunchBytes, 70u);
    EXPECT_THROW(s.releaseLaunchBytes(1000), std::logic_error);
}
