/**
 * @file
 * Property tests for the SIMT execution engine: divergence/reconvergence
 * correctness under nested and data-dependent control flow, compared
 * against a scalar reference interpreter of the same logic.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/** Run a single-kernel program over `n` threads and return `out[]`. */
std::vector<std::uint32_t>
runKernel(Program &prog, KernelFuncId k, const std::vector<std::uint32_t> &in,
          unsigned tb_size)
{
    Gpu gpu(GpuConfig::k20c(), prog);
    const auto n = std::uint32_t(in.size());
    const Addr inAddr = gpu.mem().upload(in);
    const Addr outAddr = gpu.mem().allocate(n * 4 + 4);
    gpu.launch(k, Dim3{(n + tb_size - 1) / tb_size},
               {n, std::uint32_t(inAddr), std::uint32_t(outAddr)});
    gpu.synchronize();
    return gpu.mem().download<std::uint32_t>(outAddr, n);
}

} // namespace

TEST(SimtDivergence, NestedIfElse)
{
    // out = (v & 1) ? (v & 2 ? v*3 : v*5) : (v & 2 ? v+7 : v+11)
    Program prog;
    KernelBuilder b("nested", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Reg inR = b.ldParam(4);
    Reg outR = b.ldParam(8);
    Reg off = b.shl(tid, 2);
    Reg v = b.ld(MemSpace::Global, b.add(inR, off));
    Reg res = b.mov(0u);
    Pred p1 = b.setp(CmpOp::Ne, DataType::U32, b.and_(v, 1u), Val(0u));
    Pred p2 = b.setp(CmpOp::Ne, DataType::U32, b.and_(v, 2u), Val(0u));
    b.ifElse(
        p1,
        [&] {
            b.ifElse(p2, [&] { b.binaryTo(res, Opcode::Mul,
                                          DataType::U32, v, Val(3u)); },
                     [&] { b.binaryTo(res, Opcode::Mul, DataType::U32, v,
                                      Val(5u)); });
        },
        [&] {
            b.ifElse(p2, [&] { b.binaryTo(res, Opcode::Add,
                                          DataType::U32, v, Val(7u)); },
                     [&] { b.binaryTo(res, Opcode::Add, DataType::U32, v,
                                      Val(11u)); });
        });
    b.st(MemSpace::Global, b.add(outR, off), res);
    const KernelFuncId k = b.build(prog);

    std::vector<std::uint32_t> in(256);
    Rng rng(1);
    for (auto &x : in)
        x = std::uint32_t(rng.next());
    const auto got = runKernel(prog, k, in, 32);
    for (std::size_t i = 0; i < in.size(); ++i) {
        const std::uint32_t v = in[i];
        const std::uint32_t want =
            (v & 1) ? ((v & 2) ? v * 3 : v * 5)
                    : ((v & 2) ? v + 7 : v + 11);
        ASSERT_EQ(got[i], want) << "i=" << i;
    }
}

TEST(SimtDivergence, DataDependentNestedLoops)
{
    // out = sum_{i<a} sum_{j<(i%4)} (i*j), with a = v % 23.
    Program prog;
    KernelBuilder b("loops", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Reg inR = b.ldParam(4);
    Reg outR = b.ldParam(8);
    Reg off = b.shl(tid, 2);
    Reg v = b.ld(MemSpace::Global, b.add(inR, off));
    Reg a = b.rem(v, 23u);
    Reg acc = b.mov(0u);
    b.forRange(Val(0u), a, [&](Reg i) {
        Reg lim = b.rem(i, 4u);
        b.forRange(Val(0u), lim, [&](Reg j) {
            Reg ij = b.mul(i, j);
            b.binaryTo(acc, Opcode::Add, DataType::U32, acc, ij);
        });
    });
    b.st(MemSpace::Global, b.add(outR, off), acc);
    const KernelFuncId k = b.build(prog);

    std::vector<std::uint32_t> in(300);
    Rng rng(2);
    for (auto &x : in)
        x = std::uint32_t(rng.next());
    const auto got = runKernel(prog, k, in, 32);
    for (std::size_t t = 0; t < in.size(); ++t) {
        std::uint32_t want = 0;
        for (std::uint32_t i = 0; i < in[t] % 23; ++i) {
            for (std::uint32_t j = 0; j < i % 4; ++j)
                want += i * j;
        }
        ASSERT_EQ(got[t], want) << "t=" << t;
    }
}

TEST(SimtDivergence, BreakInsideDivergentLoop)
{
    // out = first multiple of 7 >= v, found by linear search with break.
    Program prog;
    KernelBuilder b("brk", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Reg inR = b.ldParam(4);
    Reg outR = b.ldParam(8);
    Reg off = b.shl(tid, 2);
    Reg v = b.ld(MemSpace::Global, b.add(inR, off));
    Reg found = b.mov(0u);
    Reg i = b.mov(v);
    b.whileLoop(
        [&] {
            return b.setp(CmpOp::Eq, DataType::U32, found, Val(0u));
        },
        [&] {
            Reg r = b.rem(i, 7u);
            Pred hit = b.setp(CmpOp::Eq, DataType::U32, r, Val(0u));
            b.if_(hit, [&] { b.movTo(found, Val(1u)); });
            b.breakIf(hit);
            b.binaryTo(i, Opcode::Add, DataType::U32, i, Val(1u));
        });
    b.st(MemSpace::Global, b.add(outR, off), i);
    const KernelFuncId k = b.build(prog);

    std::vector<std::uint32_t> in(200);
    for (std::size_t t = 0; t < in.size(); ++t)
        in[t] = std::uint32_t(t * 13 % 101);
    const auto got = runKernel(prog, k, in, 32);
    for (std::size_t t = 0; t < in.size(); ++t) {
        std::uint32_t want = in[t];
        while (want % 7 != 0)
            ++want;
        ASSERT_EQ(got[t], want) << "t=" << t;
    }
}

TEST(SimtDivergence, EarlyExitLanesDoNotPerturbOthers)
{
    // Odd lanes exit immediately; even lanes still compute.
    Program prog;
    KernelBuilder b("exit_mix", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Reg inR = b.ldParam(4);
    Reg outR = b.ldParam(8);
    Pred odd = b.setp(CmpOp::Ne, DataType::U32, b.and_(tid, 1u), Val(0u));
    b.exitIf(odd);
    Reg off = b.shl(tid, 2);
    Reg v = b.ld(MemSpace::Global, b.add(inR, off));
    b.st(MemSpace::Global, b.add(outR, off), b.mul(v, 2u));
    const KernelFuncId k = b.build(prog);

    std::vector<std::uint32_t> in(100, 21);
    const auto got = runKernel(prog, k, in, 32);
    for (std::size_t t = 0; t < in.size(); ++t) {
        if (t % 2 == 0)
            EXPECT_EQ(got[t], 42u);
        else
            EXPECT_EQ(got[t], 0u); // untouched
    }
}

TEST(SimtDivergence, WarpActivityReflectsMaskedLanes)
{
    // Half the lanes do 10x the work; warp activity must sit strictly
    // between the all-active and one-lane extremes.
    Program prog;
    KernelBuilder b("halfwork", Dim3{32});
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Pred heavy =
        b.setp(CmpOp::Lt, DataType::U32, b.and_(tid, 31u), Val(16u));
    b.if_(heavy, [&] {
        b.forRange(Val(0u), Val(64u), [&](Reg) {
            b.add(Val(1u), Val(2u));
        });
    });
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    gpu.launch(k, Dim3{4}, {128u, 0u, 0u});
    gpu.synchronize();
    const auto r = gpu.report("halfwork", "flat");
    EXPECT_GT(r.warpActivityPct, 30.0);
    EXPECT_LT(r.warpActivityPct, 80.0);
}

TEST(SimtDivergence, DeepRecursionBoundedStack)
{
    // Chain of nested ifs, each shaving one lane: exercises stack depth
    // up to ~warp size without overflow.
    Program prog;
    KernelBuilder b("peel", Dim3{32});
    Reg lane = b.mov(SReg::LaneId);
    Reg outR = b.ldParam(4);
    Reg acc = b.mov(0u);
    std::function<void(unsigned)> peel = [&](unsigned depth) {
        if (depth == 16)
            return;
        Pred p = b.setp(CmpOp::Gt, DataType::U32, lane, Val(depth));
        b.if_(p, [&] {
            b.binaryTo(acc, Opcode::Add, DataType::U32, acc, Val(1u));
            peel(depth + 1);
        });
    };
    peel(0);
    b.st(MemSpace::Global, b.add(outR, b.shl(lane, 2)), acc);
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    const Addr outAddr = gpu.mem().allocate(32 * 4);
    gpu.launch(k, Dim3{1}, {0u, std::uint32_t(outAddr)});
    gpu.synchronize();
    for (unsigned lane = 0; lane < 32; ++lane) {
        const std::uint32_t want = std::min(lane, 16u);
        EXPECT_EQ(gpu.mem().read32(outAddr + lane * 4), want)
            << "lane " << lane;
    }
}
