/**
 * @file
 * BFS application tests: functional equivalence of all execution modes
 * against the CPU oracle, plus the paper's expected mode ordering.
 */

#include <gtest/gtest.h>

#include "apps/bfs.hh"
#include "harness/runner.hh"

using namespace dtbl;

namespace {

BenchResult
run(BfsApp::Dataset d, Mode m)
{
    BfsApp app(d);
    return runBenchmark(app, m);
}

} // namespace

TEST(BfsApp, CitationAllModesCorrect)
{
    for (Mode m : evalModes) {
        auto r = run(BfsApp::Dataset::Citation, m);
        EXPECT_TRUE(r.verified) << modeName(m);
    }
}

TEST(BfsApp, RoadFlatAndDtblCorrect)
{
    EXPECT_TRUE(run(BfsApp::Dataset::UsaRoad, Mode::Flat).verified);
    EXPECT_TRUE(run(BfsApp::Dataset::UsaRoad, Mode::Dtbl).verified);
}

TEST(BfsApp, Cage15AllModesCorrect)
{
    EXPECT_TRUE(run(BfsApp::Dataset::Cage15, Mode::Flat).verified);
    EXPECT_TRUE(run(BfsApp::Dataset::Cage15, Mode::Cdp).verified);
    EXPECT_TRUE(run(BfsApp::Dataset::Cage15, Mode::Dtbl).verified);
}

TEST(BfsApp, CitationDtblBeatsCdp)
{
    auto cdp = run(BfsApp::Dataset::Citation, Mode::Cdp);
    auto dtbl = run(BfsApp::Dataset::Citation, Mode::Dtbl);
    EXPECT_GT(cdp.stats.deviceKernelLaunches, 0u);
    EXPECT_GT(dtbl.stats.aggGroupsCoalesced, 0u);
    EXPECT_LT(dtbl.report.cycles, cdp.report.cycles);
}

TEST(BfsApp, RoadHasLittleDynamicParallelism)
{
    // USA-road degrees are <= 4, far below the expansion threshold:
    // DFP almost never occurs (Section 5.2C).
    auto dtbl = run(BfsApp::Dataset::UsaRoad, Mode::Dtbl);
    EXPECT_EQ(dtbl.stats.aggGroupLaunches, 0u);
}
