/**
 * @file
 * Unit tests for the common layer: types, config validation, RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"

using namespace dtbl;

TEST(Dim3, CountAndEquality)
{
    EXPECT_EQ(Dim3(4, 3, 2).count(), 24u);
    EXPECT_EQ(Dim3(7).count(), 7u);
    EXPECT_EQ(Dim3(1, 1, 1).count(), 1u);
    EXPECT_EQ(Dim3(4, 3, 2), Dim3(4, 3, 2));
    EXPECT_FALSE(Dim3(4, 3, 2) == Dim3(4, 3, 1));
}

TEST(Dim3, FlattenUnflattenRoundTrip)
{
    const Dim3 extent{5, 4, 3};
    for (std::uint64_t flat = 0; flat < extent.count(); ++flat) {
        const Dim3 c = unflatten(flat, extent);
        EXPECT_LT(c.x, extent.x);
        EXPECT_LT(c.y, extent.y);
        EXPECT_LT(c.z, extent.z);
        EXPECT_EQ(flatten(c, extent), flat);
    }
}

TEST(Dim3, UnflattenXFastest)
{
    const Dim3 extent{4, 4, 4};
    EXPECT_EQ(unflatten(1, extent), Dim3(1, 0, 0));
    EXPECT_EQ(unflatten(4, extent), Dim3(0, 1, 0));
    EXPECT_EQ(unflatten(16, extent), Dim3(0, 0, 1));
}

TEST(GpuConfig, DefaultsAreValid)
{
    EXPECT_NO_THROW(GpuConfig::k20c().validate());
    EXPECT_NO_THROW(GpuConfig::k20cIdeal().validate());
}

TEST(GpuConfig, IdealDisablesLaunchLatency)
{
    EXPECT_TRUE(GpuConfig::k20c().modelLaunchLatency);
    EXPECT_FALSE(GpuConfig::k20cIdeal().modelLaunchLatency);
}

TEST(GpuConfig, RejectsNonPowerOfTwoAgt)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.agtSize = 1000;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(GpuConfig, RejectsInconsistentWarpCapacity)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.maxResidentWarpsPerSmx = 63;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(GpuConfig, RejectsMismatchedHwqKdeCount)
{
    GpuConfig cfg = GpuConfig::k20c();
    cfg.numHwqs = 16;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ApiLatency, LinearModel)
{
    const ApiLatency lat{100, 7};
    EXPECT_EQ(lat.forCallers(0), 100u);
    EXPECT_EQ(lat.forCallers(1), 107u);
    EXPECT_EQ(lat.forCallers(32), 100u + 7 * 32);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Log, PanicThrowsLogicError)
{
    EXPECT_THROW(DTBL_PANIC("boom ", 42), std::logic_error);
}

TEST(Log, FatalThrowsRuntimeError)
{
    EXPECT_THROW(DTBL_FATAL("bad config"), std::runtime_error);
}

TEST(Log, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(DTBL_ASSERT(1 + 1 == 2));
}
