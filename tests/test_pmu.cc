/**
 * @file
 * PMU counter registry + interval profiler tests.
 *
 * The load-bearing property is observer purity: enabling profiling (or
 * compiling the PMU out entirely) must not change a run's timing or its
 * event trace. The purity sweep below therefore runs in every build
 * flavour; the CI pmu-off job re-runs it with -DDTBL_ENABLE_PMU=OFF and
 * additionally diffs metrics lines across build flavours.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/registry.hh"
#include "harness/runner.hh"
#include "isa/kernel_builder.hh"
#include "stats/profiler.hh"

using namespace dtbl;

namespace {

/**
 * Deterministic micro-kernel: out[i] = x[i] + y[i] over n = 512 with
 * 64-thread TBs — one wave of 8 TBs, fixed memory walk, no divergence.
 */
KernelFuncId
buildMicroKernel(Program &prog)
{
    KernelBuilder b("micro_add", Dim3{64});
    Reg tid = b.globalThreadIdX();
    Reg nR = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nR);
    b.exitIf(oob);
    Reg xBase = b.ldParam(4);
    Reg yBase = b.ldParam(8);
    Reg outBase = b.ldParam(12);
    Reg off = b.shl(tid, 2);
    Reg xR = b.ld(MemSpace::Global, b.add(xBase, off));
    Reg yR = b.ld(MemSpace::Global, b.add(yBase, off));
    b.st(MemSpace::Global, b.add(outBase, off), b.add(xR, yR));
    return b.build(prog);
}

constexpr std::uint32_t kMicroN = 512;

/** Upload inputs and launch one grid of the micro kernel. */
void
runMicroKernel(Gpu &gpu, KernelFuncId fn)
{
    std::vector<std::uint32_t> x(kMicroN), y(kMicroN);
    for (std::uint32_t i = 0; i < kMicroN; ++i) {
        x[i] = i;
        y[i] = 1000 + i;
    }
    const Addr xAddr = gpu.mem().upload(x);
    const Addr yAddr = gpu.mem().upload(y);
    const Addr outAddr = gpu.mem().allocate(kMicroN * 4);
    gpu.launch(fn, Dim3{kMicroN / 64},
               {kMicroN, std::uint32_t(xAddr), std::uint32_t(yAddr),
                std::uint32_t(outAddr)});
    gpu.synchronize();
    for (std::uint32_t i = 0; i < kMicroN; ++i)
        ASSERT_EQ(gpu.mem().read32(outAddr + i * 4), x[i] + y[i]);
}

} // namespace

// --- registry -----------------------------------------------------------

TEST(PmuRegistry, CountersProbesAndLookup)
{
    Pmu pmu;
    if (!Pmu::compiledIn) {
        PmuCounter c = pmu.counter("a.b", PmuUnit::Gpu);
        c.add(7); // inert handle: must be safe to use
        EXPECT_EQ(c.value(), 0u);
        EXPECT_EQ(pmu.numCounters(), 0u);
        EXPECT_EQ(pmu.indexOf("a.b"), -1);
        return;
    }
    PmuCounter c = pmu.counter("unit.count", PmuUnit::Kmu);
    std::uint64_t probed = 41;
    pmu.probe("unit.probe", PmuUnit::Kd, [&] { return probed; });
    BusyTracker busy;
    busy.record(10, 20);
    pmu.busy("unit.busy", PmuUnit::Dram, &busy);

    c.add();
    c.add(9);
    probed = 42;
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(pmu.numCounters(), 3u);
    EXPECT_EQ(pmu.valueByName("unit.count"), 10u);
    EXPECT_EQ(pmu.valueByName("unit.probe"), 42u);
    EXPECT_EQ(pmu.valueByName("unit.busy"), 10u);
    EXPECT_EQ(pmu.indexOf("unit.probe"), 1);
    EXPECT_EQ(pmu.indexOf("nope"), -1);
    EXPECT_EQ(pmu.valueByName("nope"), 0u);
    EXPECT_STREQ(pmuUnitName(pmu.desc(0).unit), "kmu");

    // Registration order defines the sampling column order.
    EXPECT_EQ(pmu.desc(0).name, "unit.count");
    EXPECT_EQ(pmu.desc(1).name, "unit.probe");
    EXPECT_EQ(pmu.desc(2).name, "unit.busy");
}

TEST(PmuRegistry, CollectingRequiresCompiledIn)
{
    Pmu pmu;
    EXPECT_FALSE(pmu.collecting());
    pmu.setCollecting(true);
    EXPECT_EQ(pmu.collecting(), Pmu::compiledIn);
    pmu.setCollecting(false);
    EXPECT_FALSE(pmu.collecting());
}

TEST(PmuHistogram, MomentsAndPercentiles)
{
    PmuHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Log2 buckets: percentiles are upper bucket bounds, so p50 of
    // 1..100 lands in bucket [32,63] and p99 in [64,100].
    EXPECT_GE(h.percentile(50), 32u);
    EXPECT_LE(h.percentile(50), 63u);
    EXPECT_GE(h.percentile(99), 64u);
    EXPECT_LE(h.percentile(99), 100u);
    EXPECT_LE(h.percentile(10), h.percentile(90));

    PmuHistogram::note(nullptr, 5); // null-safe helper
}

// --- observer purity ----------------------------------------------------

TEST(PmuPurity, ProfilingDoesNotPerturbRuns)
{
    // Two benchmark families x three modes: enabling the profiler must
    // leave cycles, the event trace, and every raw counter untouched.
    const char *const ids[] = {"bht", "regx_darpa"};
    const Mode modes[] = {Mode::Flat, Mode::Cdp, Mode::Dtbl};
    for (const char *id : ids) {
        for (Mode m : modes) {
            const std::string label =
                std::string(id) + "/" + modeName(m);
            auto plainApp = makeBenchmark(id);
            auto profApp = makeBenchmark(id);
            RunOptions profOpts;
            profOpts.profileWindow = 256;
            const BenchResult plain =
                runBenchmark(*plainApp, m, GpuConfig::k20c(), {});
            const BenchResult prof =
                runBenchmark(*profApp, m, GpuConfig::k20c(), profOpts);
            ASSERT_TRUE(plain.verified) << label;
            ASSERT_TRUE(prof.verified) << label;

            EXPECT_EQ(plain.report.cycles, prof.report.cycles) << label;
            EXPECT_EQ(plain.report.traceHash, prof.report.traceHash)
                << label;
            EXPECT_EQ(plain.report.traceEvents, prof.report.traceEvents)
                << label;
            EXPECT_EQ(plain.stats.warpInstrsIssued,
                      prof.stats.warpInstrsIssued)
                << label;
            EXPECT_EQ(plain.stats.activeLaneSum, prof.stats.activeLaneSum)
                << label;
            EXPECT_EQ(plain.stats.launchWaitCycleSum,
                      prof.stats.launchWaitCycleSum)
                << label;
            EXPECT_EQ(plain.stats.busyCycles, prof.stats.busyCycles)
                << label;
            EXPECT_EQ(plain.stats.l2Hits, prof.stats.l2Hits) << label;
            EXPECT_EQ(plain.stats.dramReads, prof.stats.dramReads)
                << label;

            // The derived figure metrics must be bit-identical too.
            EXPECT_EQ(plain.report.warpActivityPct,
                      prof.report.warpActivityPct)
                << label;
            EXPECT_EQ(plain.report.dramEfficiency,
                      prof.report.dramEfficiency)
                << label;
            EXPECT_EQ(plain.report.smxOccupancyPct,
                      prof.report.smxOccupancyPct)
                << label;
            EXPECT_EQ(plain.report.avgWaitingCycles,
                      prof.report.avgWaitingCycles)
                << label;

            // Plain runs carry no stall/profile payload; profiled runs
            // do exactly when the PMU is compiled in.
            EXPECT_EQ(plain.report.stallSlotCyclesTotal, 0u) << label;
            EXPECT_EQ(plain.report.profileSamples, 0u) << label;
            if (Pmu::compiledIn) {
                EXPECT_GT(prof.report.stallSlotCyclesTotal, 0u) << label;
                EXPECT_GT(prof.report.profileSamples, 0u) << label;
                double pctSum = 0.0;
                for (double p : prof.report.stallPct)
                    pctSum += p;
                EXPECT_NEAR(pctSum, 100.0, 1e-6) << label;
            } else {
                EXPECT_EQ(prof.report.stallSlotCyclesTotal, 0u) << label;
                EXPECT_EQ(prof.report.profileSamples, 0u) << label;
            }

            // The str() prefix (everything the seed reported) must be
            // byte-identical; profiled runs may only append.
            const std::string ps = plain.report.str();
            EXPECT_EQ(prof.report.str().substr(0, ps.size()), ps)
                << label;
        }
    }
}

// --- stall taxonomy -----------------------------------------------------

TEST(PmuStallAttribution, SlotCyclesSumExactlyPerSmx)
{
    if (!Pmu::compiledIn)
        GTEST_SKIP() << "PMU compiled out";
    const Mode modes[] = {Mode::Flat, Mode::Cdp, Mode::Dtbl};
    for (Mode m : modes) {
        const std::string label = std::string("bht/") + modeName(m);
        auto app = makeBenchmark("bht");
        Program prog;
        app->build(prog, m);
        const GpuConfig cfg = configForMode(m, GpuConfig::k20c());
        Gpu gpu(cfg, prog);
        gpu.enableProfiling(128);
        app->setup(gpu);
        app->execute(gpu, m);
        ASSERT_TRUE(app->verify(gpu)) << label;

        // Every warp slot of every SMX is classified exactly once per
        // simulated cycle (including fast-forwarded spans).
        std::uint64_t issuedSlots = 0;
        for (unsigned s = 0; s < cfg.numSmx; ++s) {
            const auto &sc = gpu.smx(s).stallSlotCycles();
            std::uint64_t sum = 0;
            for (std::uint64_t v : sc)
                sum += v;
            EXPECT_EQ(sum,
                      gpu.now() * cfg.maxResidentWarpsPerSmx)
                << label << " smx " << s;
            issuedSlots += sc[std::size_t(StallReason::Issued)];
        }
        // A slot is Issued exactly when a warp instruction issued.
        EXPECT_EQ(issuedSlots, gpu.stats().warpInstrsIssued) << label;
    }
}

// --- interval profiler --------------------------------------------------

TEST(PmuProfiler, DeterministicTimelineAndGoldenSamples)
{
    if (!Pmu::compiledIn)
        GTEST_SKIP() << "PMU compiled out";

    auto run = [](std::vector<std::vector<std::uint64_t>> &series,
                  std::vector<Cycle> &cycles,
                  std::vector<std::string> &names) {
        Program prog;
        const KernelFuncId fn = buildMicroKernel(prog);
        Gpu gpu(GpuConfig::k20c(), prog);
        gpu.enableProfiling(64);
        runMicroKernel(gpu, fn);
        const MetricsReport r = gpu.report("micro_add", "flat");
        ASSERT_GT(r.profileSamples, 0u);
        const IntervalProfiler *prof = gpu.profiler();
        ASSERT_NE(prof, nullptr);
        for (std::size_t i = 0; i < prof->numSamples(); ++i)
            cycles.push_back(prof->sampleCycle(i));
        series.resize(prof->numCounters());
        for (std::size_t c = 0; c < prof->numCounters(); ++c) {
            names.push_back(gpu.pmu().desc(c).name);
            for (std::size_t i = 0; i < prof->numSamples(); ++i)
                series[c].push_back(prof->value(i, c));
        }
    };

    std::vector<std::vector<std::uint64_t>> seriesA, seriesB;
    std::vector<Cycle> cyclesA, cyclesB;
    std::vector<std::string> namesA, namesB;
    run(seriesA, cyclesA, namesA);
    run(seriesB, cyclesB, namesB);
    EXPECT_EQ(namesA, namesB);

    // Re-running the identical workload must reproduce the timeline
    // bit for bit.
    EXPECT_EQ(cyclesA, cyclesB);
    EXPECT_EQ(seriesA, seriesB);

    // Golden first samples for the micro kernel (window 64). These pin
    // the sampling grid and a few load-bearing counters, including the
    // host-launch latency ramp (the kernel reaches the SMXs shortly
    // before cycle 320). Any timing-model change shows up here; the
    // expected values are what the current model produces and were
    // captured from a reference run.
    ASSERT_GE(cyclesA.size(), 8u);
    const std::vector<Cycle> goldCycles(cyclesA.begin(),
                                        cyclesA.begin() + 8);
    EXPECT_EQ(goldCycles, (std::vector<Cycle>{64, 128, 192, 256, 320,
                                              384, 448, 512}));

    const auto firstEight = [&](const char *name) {
        for (std::size_t c = 0; c < namesA.size(); ++c) {
            if (namesA[c] == name) {
                auto &s = seriesA[c];
                return std::vector<std::uint64_t>(s.begin(),
                                                  s.begin() + 8);
            }
        }
        ADD_FAILURE() << "counter not registered: " << name;
        return std::vector<std::uint64_t>{};
    };
    EXPECT_EQ(firstEight("gpu.resident_warps"),
              (std::vector<std::uint64_t>{0, 0, 0, 0, 16, 16, 16, 16}));
    EXPECT_EQ(firstEight("gpu.warp_instrs"),
              (std::vector<std::uint64_t>{0, 0, 0, 0, 80, 112, 160,
                                          160}));
    EXPECT_EQ(firstEight("dram.reads"),
              (std::vector<std::uint64_t>{0, 0, 0, 0, 0, 0, 16, 16}));
    EXPECT_EQ(firstEight("smx0.slot.issued"),
              (std::vector<std::uint64_t>{0, 0, 0, 0, 10, 14, 20, 20}));
}

TEST(PmuProfiler, CsvJsonAndTextReportOutputs)
{
    if (!Pmu::compiledIn)
        GTEST_SKIP() << "PMU compiled out";
    Program prog;
    const KernelFuncId fn = buildMicroKernel(prog);
    Gpu gpu(GpuConfig::k20c(), prog);
    gpu.enableProfiling(64);
    runMicroKernel(gpu, fn);
    gpu.report("micro_add", "flat");
    const IntervalProfiler *prof = gpu.profiler();
    ASSERT_NE(prof, nullptr);

    const auto dir = std::filesystem::temp_directory_path() /
                     "dtbl_pmu_test";
    std::filesystem::create_directories(dir);
    const std::string csvPath = (dir / "micro.csv").string();
    const std::string jsonPath = (dir / "micro.json").string();
    prof->writeCsv(csvPath);
    prof->writeJson(jsonPath);

    std::ifstream csv(csvPath);
    ASSERT_TRUE(csv.good());
    std::string header;
    std::getline(csv, header);
    EXPECT_EQ(header.rfind("cycle,", 0), 0u);
    // One CSV column per counter plus the leading cycle column.
    std::size_t cols = 1;
    for (char c : header)
        cols += c == ',';
    EXPECT_EQ(cols, prof->numCounters() + 1);
    std::size_t dataLines = 0;
    for (std::string line; std::getline(csv, line);)
        dataLines += !line.empty();
    EXPECT_EQ(dataLines, prof->numSamples());

    std::ifstream json(jsonPath);
    ASSERT_TRUE(json.good());
    std::stringstream js;
    js << json.rdbuf();
    EXPECT_NE(js.str().find("\"schemaVersion\": " +
                            std::to_string(kTimelineSchemaVersion)),
              std::string::npos);
    EXPECT_NE(js.str().find("\"gpu.resident_warps\""), std::string::npos);

    const std::string report = prof->textReport("micro_add", "flat");
    EXPECT_NE(report.find("issue-slot utilisation"), std::string::npos);
    EXPECT_NE(report.find("kernel.micro_add.tbs"), std::string::npos);
    EXPECT_NE(report.find("sampled peaks"), std::string::npos);

    std::filesystem::remove_all(dir);
}

// --- report schema ------------------------------------------------------

TEST(MetricsReportSchema, JsonAndCsvAreVersioned)
{
    MetricsReport r;
    r.benchmark = "b";
    r.mode = "flat";
    r.cycles = 123;

    const std::string j = r.json();
    EXPECT_EQ(j.rfind("{\n  \"schemaVersion\": 6,", 0), 0u);
    // Last-listed field stays last so appends are backwards-visible.
    EXPECT_NE(j.find("\"simCyclesPerSec\": 0\n}"), std::string::npos);

    const std::string header = MetricsReport::csvHeader();
    EXPECT_EQ(header.rfind("schema_version,", 0), 0u);
    const std::string row = r.csvRow();
    const auto commas = [](const std::string &s) {
        std::size_t n = 0;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(row.rfind("6,b,flat,123,", 0), 0u);
}
