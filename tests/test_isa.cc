/**
 * @file
 * Unit tests for the ISA layer: builder emission, structured control
 * flow shapes (branch targets and reconvergence annotations), operand
 * encoding and the disassembler.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

KernelFunction
buildAndGet(KernelBuilder &b)
{
    Program prog;
    const KernelFuncId id = b.build(prog);
    return prog.function(id);
}

} // namespace

TEST(Operand, Encodings)
{
    EXPECT_EQ(Operand::reg(7).kind, Operand::Kind::Reg);
    EXPECT_EQ(Operand::reg(7).value, 7u);
    EXPECT_EQ(Operand::imm(42).value, 42u);
    EXPECT_EQ(Operand::immF(1.0f).value, 0x3f800000u);
    EXPECT_EQ(Operand::special(SReg::TidX).kind, Operand::Kind::Special);
    EXPECT_TRUE(Operand::none().isNone());
}

TEST(KernelBuilder, AppendsTerminalExit)
{
    KernelBuilder b("k", Dim3{32});
    b.add(Val(1u), Val(2u));
    const auto fn = buildAndGet(b);
    EXPECT_EQ(fn.code.back().op, Opcode::Exit);
    EXPECT_LT(fn.code.back().pred, 0);
}

TEST(KernelBuilder, NoDuplicateExitWhenPresent)
{
    KernelBuilder b("k", Dim3{32});
    b.add(Val(1u), Val(2u));
    b.exit();
    const auto fn = buildAndGet(b);
    EXPECT_EQ(fn.code.size(), 2u);
}

TEST(KernelBuilder, PredicatedExitStillGetsTerminal)
{
    KernelBuilder b("k", Dim3{32});
    Pred p = b.setp(CmpOp::Eq, DataType::U32, Val(1u), Val(1u));
    b.exitIf(p);
    const auto fn = buildAndGet(b);
    // setp, predicated exit, unconditional exit.
    EXPECT_EQ(fn.code.size(), 3u);
    EXPECT_GE(fn.code[1].pred, 0);
    EXPECT_LT(fn.code[2].pred, 0);
}

TEST(KernelBuilder, RegisterAndPredicateCountsRecorded)
{
    KernelBuilder b("k", Dim3{64});
    Reg r1 = b.reg();
    Reg r2 = b.reg();
    (void)r1;
    (void)r2;
    b.pred();
    const auto fn = buildAndGet(b);
    EXPECT_EQ(fn.numRegs, 2u);
    EXPECT_EQ(fn.numPreds, 1u);
    EXPECT_EQ(fn.tbDim, Dim3(64));
}

TEST(KernelBuilder, IfEmitsForwardBranchWithReconv)
{
    KernelBuilder b("k", Dim3{32});
    Pred p = b.setp(CmpOp::Lt, DataType::U32, Val(SReg::TidX), Val(16u));
    b.if_(p, [&] {
        b.add(Val(1u), Val(2u));
        b.add(Val(3u), Val(4u));
    });
    const auto fn = buildAndGet(b);
    const Instruction &bra = fn.code[1];
    ASSERT_EQ(bra.op, Opcode::Bra);
    EXPECT_EQ(bra.pred, 0);
    EXPECT_FALSE(bra.predSense); // jump over body when condition false
    EXPECT_EQ(bra.target, 4);    // past the two adds
    EXPECT_EQ(bra.reconv, 4);
}

TEST(KernelBuilder, IfElseBranchShape)
{
    KernelBuilder b("k", Dim3{32});
    Pred p = b.setp(CmpOp::Lt, DataType::U32, Val(SReg::TidX), Val(16u));
    b.ifElse(p, [&] { b.add(Val(1u), Val(1u)); },
             [&] { b.add(Val(2u), Val(2u)); });
    const auto fn = buildAndGet(b);
    // 0: setp, 1: bra !p -> else, 2: then-add, 3: bra -> end, 4: else-add
    const Instruction &cond = fn.code[1];
    const Instruction &skip = fn.code[3];
    EXPECT_EQ(cond.target, 4);
    EXPECT_EQ(cond.reconv, 5);
    EXPECT_EQ(skip.op, Opcode::Bra);
    EXPECT_LT(skip.pred, 0);
    EXPECT_EQ(skip.target, 5);
}

TEST(KernelBuilder, WhileLoopBackEdgeAndExit)
{
    KernelBuilder b("k", Dim3{32});
    Reg i = b.mov(0u);
    b.whileLoop(
        [&] { return b.setp(CmpOp::Lt, DataType::U32, i, Val(10u)); },
        [&] { b.binaryTo(i, Opcode::Add, DataType::U32, i, Val(1u)); });
    const auto fn = buildAndGet(b);
    // 0: mov, 1: setp (head), 2: bra !p -> exit, 3: add, 4: bra -> head
    const Instruction &exitBra = fn.code[2];
    const Instruction &backBra = fn.code[4];
    EXPECT_EQ(exitBra.target, 5);
    EXPECT_EQ(exitBra.reconv, 5);
    EXPECT_FALSE(exitBra.predSense);
    EXPECT_EQ(backBra.target, 1);
    EXPECT_LT(backBra.pred, 0);
}

TEST(KernelBuilder, BreakIfPatchesToLoopExit)
{
    KernelBuilder b("k", Dim3{32});
    Reg i = b.mov(0u);
    b.whileLoop(
        [&] { return b.setp(CmpOp::Lt, DataType::U32, i, Val(10u)); },
        [&] {
            Pred stop =
                b.setp(CmpOp::Eq, DataType::U32, i, Val(5u));
            b.breakIf(stop);
            b.binaryTo(i, Opcode::Add, DataType::U32, i, Val(1u));
        });
    const auto fn = buildAndGet(b);
    // Find the break branch (predicated, sense true) and check target.
    bool found = false;
    for (const auto &inst : fn.code) {
        if (inst.op == Opcode::Bra && inst.pred >= 0 && inst.predSense) {
            EXPECT_EQ(inst.target, inst.reconv);
            EXPECT_EQ(std::size_t(inst.target), fn.code.size() - 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(KernelBuilder, BreakOutsideLoopPanics)
{
    KernelBuilder b("k", Dim3{32});
    Pred p = b.setp(CmpOp::Eq, DataType::U32, Val(0u), Val(0u));
    EXPECT_THROW(b.breakIf(p), std::logic_error);
}

TEST(KernelBuilder, LdParamGrowsParamBytes)
{
    KernelBuilder b("k", Dim3{32}, 0, 8);
    b.ldParam(48);
    const auto fn = buildAndGet(b);
    EXPECT_GE(fn.paramBytes, 52u);
}

TEST(KernelBuilder, LaunchOperandsEncoded)
{
    // Register three children so func id 3 is the builder's own id:
    // the verifier permits self-launch (AMR-style recursion).
    Program prog;
    for (int i = 0; i < 3; ++i) {
        KernelBuilder child("child" + std::to_string(i), Dim3{32});
        child.build(prog);
    }
    KernelBuilder b("k", Dim3{32});
    Reg buf = b.getParameterBuffer(24);
    b.launchAggGroup(KernelFuncId(3), Val(7u), buf, 128);
    const KernelFunction fn = prog.function(b.build(prog));
    const Instruction &launch = fn.code[1];
    ASSERT_EQ(launch.op, Opcode::LaunchAgg);
    EXPECT_EQ(launch.launch.func, 3u);
    EXPECT_EQ(launch.launch.numTbs.value, 7u);
    EXPECT_EQ(launch.launch.sharedMemBytes, 128u);
    EXPECT_EQ(launch.launch.paramAddr.kind, Operand::Kind::Reg);
}

TEST(Disasm, EveryOpcodeHasDistinctMnemonic)
{
    // Diagnostics embed disasm text, so every opcode must render to
    // something readable and unambiguous.
    std::set<std::string> seen;
    for (int op = 0; op <= int(Opcode::LaunchAgg); ++op) {
        Instruction inst;
        inst.op = Opcode(op);
        const std::string text = disasm(inst);
        EXPECT_FALSE(text.empty()) << "opcode " << op;
        EXPECT_EQ(text.find("???"), std::string::npos)
            << "opcode " << op << " renders as '" << text << "'";
        // Mnemonic = first whitespace-delimited token.
        const std::string mnemonic = text.substr(0, text.find(' '));
        EXPECT_TRUE(seen.insert(mnemonic).second)
            << "duplicate mnemonic '" << mnemonic << "' for opcode " << op;
    }
    EXPECT_EQ(seen.size(), std::size_t(Opcode::LaunchAgg) + 1);
}

TEST(KernelBuilder, DoubleBuildPanics)
{
    KernelBuilder b("k", Dim3{32});
    Program prog;
    b.build(prog);
    EXPECT_THROW(b.build(prog), std::logic_error);
}

TEST(Program, AssignsSequentialIds)
{
    Program prog;
    KernelBuilder a("a", Dim3{32}), bb("b", Dim3{32});
    EXPECT_EQ(a.build(prog), 0u);
    EXPECT_EQ(bb.build(prog), 1u);
    EXPECT_EQ(prog.function(1).name, "b");
    EXPECT_THROW(prog.function(2), std::logic_error);
}

TEST(Disasm, CoversRepresentativeInstructions)
{
    KernelBuilder b("k", Dim3{32});
    Reg r = b.add(Val(1u), Val(SReg::TidX));
    Pred p = b.setp(CmpOp::Lt, DataType::F32, r, Val(2.0f));
    b.if_(p, [&] { b.st(MemSpace::Shared, r, Val(5u), 8); });
    b.atom(AtomOp::Add, DataType::U32, r, Val(1u));
    b.bar();
    const auto fn = buildAndGet(b);
    const std::string text = fn.disassemble();
    EXPECT_NE(text.find("add.u32"), std::string::npos);
    EXPECT_NE(text.find("%tid.x"), std::string::npos);
    EXPECT_NE(text.find("setp.lt.f32"), std::string::npos);
    EXPECT_NE(text.find("st.shared.b32"), std::string::npos);
    EXPECT_NE(text.find("atom.global.b32"), std::string::npos);
    EXPECT_NE(text.find("bar.sync"), std::string::npos);
    EXPECT_NE(text.find("reconv"), std::string::npos);
}
