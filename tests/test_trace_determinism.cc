/**
 * @file
 * Golden-trace determinism: running the same (benchmark, mode) twice
 * must produce bit-identical event traces and counters. The trace hash
 * (stats/trace.hh) folds every event the simulator emits, so any hidden
 * nondeterminism — iteration over unordered containers, uninitialised
 * state, address-dependent ordering — shows up as a hash mismatch even
 * when the aggregate metrics happen to agree.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "harness/runner.hh"

using namespace dtbl;

namespace {

/** One small benchmark per application family (Table 4). */
const char *const kBenchIds[] = {
    "amr_combustion", "bht",           "bfs_citation",  "clr_citation",
    "regx_darpa",     "pre_movielens", "join_gaussian", "sssp_flight",
};

const Mode kModes[] = {Mode::Flat, Mode::Cdp, Mode::Dtbl};

void
expectIdenticalStats(const SimStats &a, const SimStats &b,
                     const std::string &label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.warpInstrsIssued, b.warpInstrsIssued) << label;
    EXPECT_EQ(a.activeLaneSum, b.activeLaneSum) << label;
    EXPECT_EQ(a.dramReads, b.dramReads) << label;
    EXPECT_EQ(a.dramWrites, b.dramWrites) << label;
    EXPECT_EQ(a.dramActivityCycles, b.dramActivityCycles) << label;
    EXPECT_EQ(a.residentWarpCycleSum, b.residentWarpCycleSum) << label;
    EXPECT_EQ(a.busyCycles, b.busyCycles) << label;
    EXPECT_EQ(a.deviceKernelLaunches, b.deviceKernelLaunches) << label;
    EXPECT_EQ(a.aggGroupLaunches, b.aggGroupLaunches) << label;
    EXPECT_EQ(a.aggGroupsCoalesced, b.aggGroupsCoalesced) << label;
    EXPECT_EQ(a.aggGroupsFallback, b.aggGroupsFallback) << label;
    EXPECT_EQ(a.agtOverflows, b.agtOverflows) << label;
    EXPECT_EQ(a.launchWaitCycleSum, b.launchWaitCycleSum) << label;
    EXPECT_EQ(a.launchWaitSamples, b.launchWaitSamples) << label;
    EXPECT_EQ(a.dynamicLaunchThreadSum, b.dynamicLaunchThreadSum) << label;
    EXPECT_EQ(a.peakPendingLaunchBytes, b.peakPendingLaunchBytes) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.tbsCompleted, b.tbsCompleted) << label;
    EXPECT_EQ(a.kernelsCompleted, b.kernelsCompleted) << label;
}

void
expectIdenticalTraces(const TraceSummary &a, const TraceSummary &b,
                      const std::string &label)
{
    EXPECT_EQ(a.hash, b.hash) << label;
    EXPECT_EQ(a.total, b.total) << label;
    for (std::size_t ev = 0; ev < kNumTraceEvents; ++ev) {
        EXPECT_EQ(a.counts[ev], b.counts[ev])
            << label << " event "
            << traceEventName(static_cast<TraceEvent>(ev));
    }
}

} // namespace

class TraceDeterminism : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TraceDeterminism, IdenticalHashAndStatsAcrossReruns)
{
    const std::string id = GetParam();
    for (Mode m : kModes) {
        const std::string label = id + "/" + modeName(m);
        auto appA = makeBenchmark(id);
        auto appB = makeBenchmark(id);
        const BenchResult a = runBenchmark(*appA, m);
        const BenchResult b = runBenchmark(*appB, m);
        ASSERT_TRUE(a.verified) << label;
        ASSERT_TRUE(b.verified) << label;

        expectIdenticalStats(a.stats, b.stats, label);
        if (!TraceSink::compiledIn)
            continue; // hooks compiled out: only the stats can be checked
        ASSERT_GT(a.trace.total, 0u) << label;
        expectIdenticalTraces(a.trace, b.trace, label);
        EXPECT_EQ(a.report.traceHash, a.trace.hash) << label;
        EXPECT_EQ(a.report.traceEvents, a.trace.total) << label;
    }
}

TEST(TraceDeterminism, ModesProduceDistinctTraces)
{
    // A benchmark with dynamic work must behave differently per mode —
    // if Flat, CDP and DTBL fold to the same hash the hooks are dead.
    if (!TraceSink::compiledIn)
        GTEST_SKIP() << "tracing compiled out";
    auto runOnce = [](Mode m) {
        auto app = makeBenchmark("join_gaussian");
        return runBenchmark(*app, m).trace.hash;
    };
    const std::uint64_t flat = runOnce(Mode::Flat);
    const std::uint64_t cdp = runOnce(Mode::Cdp);
    const std::uint64_t dtbl = runOnce(Mode::Dtbl);
    EXPECT_NE(flat, cdp);
    EXPECT_NE(flat, dtbl);
    EXPECT_NE(cdp, dtbl);
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceDeterminism,
                         ::testing::ValuesIn(kBenchIds),
                         [](const auto &info) {
                             return std::string(info.param);
                         });
