/**
 * @file
 * Cross-mode metric invariants on fast benchmarks — the properties the
 * paper's evaluation relies on, asserted as tests so regressions in the
 * launch paths or metrics are caught without running the full sweep.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "harness/runner.hh"

using namespace dtbl;

namespace {

BenchResult
run(const std::string &id, Mode m)
{
    auto app = makeBenchmark(id);
    return runBenchmark(*app, m);
}

} // namespace

TEST(ModeInvariants, CdpAndDtblMatchWarpActivity)
{
    // Both launch the same dynamic workloads (Section 5.2A).
    const auto cdp = run("join_gaussian", Mode::Cdp);
    const auto dtbl = run("join_gaussian", Mode::Dtbl);
    EXPECT_NEAR(cdp.report.warpActivityPct, dtbl.report.warpActivityPct,
                1.0);
    EXPECT_EQ(cdp.report.dynamicLaunches, dtbl.report.dynamicLaunches);
}

TEST(ModeInvariants, IdealNeverSlowerThanModeled)
{
    for (const char *id : {"join_gaussian", "bfs_citation"}) {
        const auto cdp = run(id, Mode::Cdp);
        const auto cdpi = run(id, Mode::CdpIdeal);
        const auto dtbl = run(id, Mode::Dtbl);
        const auto dtbli = run(id, Mode::DtblIdeal);
        EXPECT_LE(cdpi.report.cycles, cdp.report.cycles) << id;
        EXPECT_LE(dtbli.report.cycles, dtbl.report.cycles) << id;
    }
}

TEST(ModeInvariants, DtblOccupancyAtLeastCdp)
{
    const auto cdp = run("bfs_citation", Mode::Cdp);
    const auto dtbl = run("bfs_citation", Mode::Dtbl);
    EXPECT_GE(dtbl.report.smxOccupancyPct,
              cdp.report.smxOccupancyPct * 0.95);
}

TEST(ModeInvariants, DtblFootprintNeverAboveCdp)
{
    for (const char *id : {"bfs_citation", "join_gaussian", "regx_darpa"}) {
        const auto cdp = run(id, Mode::Cdp);
        const auto dtbl = run(id, Mode::Dtbl);
        EXPECT_LE(dtbl.report.peakFootprintBytes,
                  cdp.report.peakFootprintBytes)
            << id;
    }
}

TEST(ModeInvariants, NoDfpBenchmarksAreModeInsensitive)
{
    // bfs_usa_road has no vertex above the launch threshold: all modes
    // must run essentially the same schedule (Section 5.2C).
    const auto flat = run("bfs_usa_road", Mode::Flat);
    const auto dtbl = run("bfs_usa_road", Mode::Dtbl);
    EXPECT_EQ(dtbl.report.dynamicLaunches, 0u);
    const double ratio =
        double(flat.report.cycles) / double(dtbl.report.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(ModeInvariants, HighCoalesceRateWithDynamicWork)
{
    // The paper's ~98% eligibility-match claim (Section 4.2).
    for (const char *id : {"bfs_citation", "join_gaussian"}) {
        const auto dtbl = run(id, Mode::Dtbl);
        ASSERT_GT(dtbl.stats.aggGroupLaunches, 0u) << id;
        EXPECT_GE(dtbl.report.aggCoalesceRate, 0.9) << id;
    }
}

TEST(ModeInvariants, AggAccountingReconciles)
{
    // Every aggregated-group launch either coalesces onto an eligible
    // kernel or falls back to a device-kernel launch — never both,
    // never neither (Section 4.2).
    for (const char *id : {"bfs_citation", "join_gaussian", "regx_darpa",
                           "amr_combustion"}) {
        const auto dtbl = run(id, Mode::Dtbl);
        const auto &st = dtbl.stats;
        EXPECT_EQ(st.aggGroupsCoalesced + st.aggGroupsFallback,
                  st.aggGroupLaunches)
            << id;
        EXPECT_LE(st.agtOverflows, st.aggGroupsCoalesced) << id;
    }
}

TEST(ModeInvariants, TraceCountsReconcileWithStats)
{
    // The trace subsystem observes the same events the SimStats
    // counters count; if the two disagree a hook is missing or doubled.
    if (!TraceSink::compiledIn)
        GTEST_SKIP() << "tracing compiled out";
    for (const char *id : {"join_gaussian", "bfs_citation"}) {
        for (Mode m : {Mode::Flat, Mode::Cdp, Mode::Dtbl}) {
            const auto r = run(id, m);
            const auto &st = r.stats;
            const auto &tr = r.trace;
            const std::string label =
                std::string(id) + "/" + modeName(m);
            EXPECT_EQ(tr.count(TraceEvent::AggLaunch),
                      st.aggGroupLaunches)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::AggCoalesce),
                      st.aggGroupsCoalesced)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::AggFallback),
                      st.aggGroupsFallback)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::AgtSpill), st.agtOverflows)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::AgtInsert) +
                          tr.count(TraceEvent::AgtSpill),
                      st.aggGroupsCoalesced)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::TbRetire), st.tbsCompleted)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::TbDispatch),
                      tr.count(TraceEvent::TbRetire))
                << label;
            EXPECT_EQ(tr.count(TraceEvent::KdeRelease),
                      st.kernelsCompleted)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::KmuPushDevice),
                      st.deviceKernelLaunches + st.aggGroupsFallback)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::L1Miss), st.l1Misses) << label;
            EXPECT_EQ(tr.count(TraceEvent::L2Miss), st.l2Misses) << label;
            EXPECT_EQ(tr.count(TraceEvent::DramRead), st.dramReads)
                << label;
            EXPECT_EQ(tr.count(TraceEvent::DramWrite), st.dramWrites)
                << label;
        }
    }
}

TEST(ModeInvariants, DeterministicAcrossRuns)
{
    // Same benchmark + mode twice: identical cycle counts and metrics
    // (the simulator has no hidden nondeterminism).
    const auto a = run("join_gaussian", Mode::Dtbl);
    const auto b = run("join_gaussian", Mode::Dtbl);
    EXPECT_EQ(a.report.cycles, b.report.cycles);
    EXPECT_EQ(a.stats.warpInstrsIssued, b.stats.warpInstrsIssued);
    EXPECT_EQ(a.stats.aggGroupsCoalesced, b.stats.aggGroupsCoalesced);
}
