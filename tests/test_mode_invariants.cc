/**
 * @file
 * Cross-mode metric invariants on fast benchmarks — the properties the
 * paper's evaluation relies on, asserted as tests so regressions in the
 * launch paths or metrics are caught without running the full sweep.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "harness/runner.hh"

using namespace dtbl;

namespace {

BenchResult
run(const std::string &id, Mode m)
{
    auto app = makeBenchmark(id);
    return runBenchmark(*app, m);
}

} // namespace

TEST(ModeInvariants, CdpAndDtblMatchWarpActivity)
{
    // Both launch the same dynamic workloads (Section 5.2A).
    const auto cdp = run("join_gaussian", Mode::Cdp);
    const auto dtbl = run("join_gaussian", Mode::Dtbl);
    EXPECT_NEAR(cdp.report.warpActivityPct, dtbl.report.warpActivityPct,
                1.0);
    EXPECT_EQ(cdp.report.dynamicLaunches, dtbl.report.dynamicLaunches);
}

TEST(ModeInvariants, IdealNeverSlowerThanModeled)
{
    for (const char *id : {"join_gaussian", "bfs_citation"}) {
        const auto cdp = run(id, Mode::Cdp);
        const auto cdpi = run(id, Mode::CdpIdeal);
        const auto dtbl = run(id, Mode::Dtbl);
        const auto dtbli = run(id, Mode::DtblIdeal);
        EXPECT_LE(cdpi.report.cycles, cdp.report.cycles) << id;
        EXPECT_LE(dtbli.report.cycles, dtbl.report.cycles) << id;
    }
}

TEST(ModeInvariants, DtblOccupancyAtLeastCdp)
{
    const auto cdp = run("bfs_citation", Mode::Cdp);
    const auto dtbl = run("bfs_citation", Mode::Dtbl);
    EXPECT_GE(dtbl.report.smxOccupancyPct,
              cdp.report.smxOccupancyPct * 0.95);
}

TEST(ModeInvariants, DtblFootprintNeverAboveCdp)
{
    for (const char *id : {"bfs_citation", "join_gaussian", "regx_darpa"}) {
        const auto cdp = run(id, Mode::Cdp);
        const auto dtbl = run(id, Mode::Dtbl);
        EXPECT_LE(dtbl.report.peakFootprintBytes,
                  cdp.report.peakFootprintBytes)
            << id;
    }
}

TEST(ModeInvariants, NoDfpBenchmarksAreModeInsensitive)
{
    // bfs_usa_road has no vertex above the launch threshold: all modes
    // must run essentially the same schedule (Section 5.2C).
    const auto flat = run("bfs_usa_road", Mode::Flat);
    const auto dtbl = run("bfs_usa_road", Mode::Dtbl);
    EXPECT_EQ(dtbl.report.dynamicLaunches, 0u);
    const double ratio =
        double(flat.report.cycles) / double(dtbl.report.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(ModeInvariants, HighCoalesceRateWithDynamicWork)
{
    // The paper's ~98% eligibility-match claim (Section 4.2).
    for (const char *id : {"bfs_citation", "join_gaussian"}) {
        const auto dtbl = run(id, Mode::Dtbl);
        ASSERT_GT(dtbl.stats.aggGroupLaunches, 0u) << id;
        EXPECT_GE(dtbl.report.aggCoalesceRate, 0.9) << id;
    }
}

TEST(ModeInvariants, DeterministicAcrossRuns)
{
    // Same benchmark + mode twice: identical cycle counts and metrics
    // (the simulator has no hidden nondeterminism).
    const auto a = run("join_gaussian", Mode::Dtbl);
    const auto b = run("join_gaussian", Mode::Dtbl);
    EXPECT_EQ(a.report.cycles, b.report.cycles);
    EXPECT_EQ(a.stats.warpInstrsIssued, b.stats.warpInstrsIssued);
    EXPECT_EQ(a.stats.aggGroupsCoalesced, b.stats.aggGroupsCoalesced);
}
