/**
 * @file
 * Cross-application integration tests: every benchmark of Table 4 must
 * produce CPU-oracle-identical results in Flat, CDP and DTBL modes.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "harness/runner.hh"

using namespace dtbl;

class AllApps : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllApps, FlatMatchesOracle)
{
    auto app = makeBenchmark(GetParam());
    auto r = runBenchmark(*app, Mode::Flat);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.deviceKernelLaunches, 0u);
    EXPECT_EQ(r.stats.aggGroupLaunches, 0u);
}

TEST_P(AllApps, CdpMatchesOracle)
{
    auto app = makeBenchmark(GetParam());
    auto r = runBenchmark(*app, Mode::Cdp);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.aggGroupLaunches, 0u);
}

TEST_P(AllApps, DtblMatchesOracle)
{
    auto app = makeBenchmark(GetParam());
    auto r = runBenchmark(*app, Mode::Dtbl);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.deviceKernelLaunches, 0u);
    // No launch-footprint accounting leaks.
    EXPECT_EQ(r.stats.pendingLaunchBytes, 0u);
}

namespace {

std::vector<std::string>
benchmarkIds()
{
    std::vector<std::string> ids;
    for (const auto &s : allBenchmarks())
        ids.push_back(s.id);
    return ids;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Table4, AllApps, ::testing::ValuesIn(benchmarkIds()),
                         [](const auto &info) { return info.param; });
