/**
 * @file
 * Tests for the dtbl-analyze static analysis framework: CFG +
 * dominators, interval value ranges, warp uniformity, the
 * interprocedural launch graph with AGT budgets, the static race
 * check, and — end to end — sanitizer check-elision, which must speed
 * runs up without changing a single finding, cycle or trace bit.
 */

#include <chrono>

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "analysis/cfg.hh"
#include "apps/registry.hh"
#include "harness/runner.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

/** One representative per application family (paper Table 4 order). */
const std::vector<std::string> kFamilyReps = {
    "amr_combustion", "bht",           "bfs_citation", "clr_citation",
    "regx_darpa",     "pre_movielens", "join_uniform", "sssp_citation",
};

bool
hasRule(const std::vector<Diagnostic> &diags, CheckRule rule)
{
    for (const Diagnostic &d : diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** Everything two runs of the same benchmark must agree on. */
void
expectIdenticalRuns(const BenchResult &a, const BenchResult &b,
                    const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.report.cycles, b.report.cycles);
    EXPECT_EQ(a.trace.hash, b.trace.hash);
    EXPECT_EQ(a.trace.total, b.trace.total);
    EXPECT_EQ(a.report.csvRow(), b.report.csvRow());
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.checkErrors, b.checkErrors);
    EXPECT_EQ(a.checkWarnings, b.checkWarnings);
    ASSERT_EQ(a.checkFindings.size(), b.checkFindings.size());
    for (std::size_t i = 0; i < a.checkFindings.size(); ++i) {
        EXPECT_EQ(a.checkFindings[i].funcId, b.checkFindings[i].funcId);
        EXPECT_EQ(a.checkFindings[i].pc, b.checkFindings[i].pc);
        EXPECT_EQ(int(a.checkFindings[i].rule),
                  int(b.checkFindings[i].rule));
        EXPECT_EQ(a.checkFindings[i].message, b.checkFindings[i].message);
    }
}

} // namespace

// --- CFG ---------------------------------------------------------------

TEST(Cfg, DiamondDominators)
{
    Program prog;
    KernelBuilder b("diamond", Dim3{32});
    Reg tid = b.mov(SReg::TidX);
    Pred p = b.setp(CmpOp::Lt, DataType::U32, tid, Val(16u));
    Reg r = b.reg();
    b.ifElse(
        p, [&] { b.movTo(r, Val(1u)); }, [&] { b.movTo(r, Val(2u)); });
    Reg out = b.ldParam(0);
    b.st(MemSpace::Global, b.add(out, b.shl(tid, 2)), r);
    const KernelFuncId k = b.build(prog);

    const Cfg cfg(prog.function(k));
    ASSERT_GE(cfg.numBlocks(), 4u);
    EXPECT_FALSE(cfg.fallsOffEnd());

    const std::uint32_t entry = cfg.blockOf(0);
    EXPECT_EQ(cfg.rpo().front(), entry);
    // Every reachable block is dominated by the entry.
    for (std::uint32_t bb : cfg.rpo())
        EXPECT_TRUE(cfg.dominates(entry, bb));

    // Locate then / else / join via the movTo(1)/movTo(2) defs and the
    // final store.
    const KernelFunction &fn = prog.function(k);
    std::uint32_t thenB = Cfg::noBlock, elseB = Cfg::noBlock;
    for (std::int32_t pc = 0; pc < std::int32_t(fn.code.size()); ++pc) {
        const Instruction &inst = fn.code[pc];
        if (inst.op == Opcode::Mov &&
            inst.src[0].kind == Operand::Kind::Imm) {
            if (inst.src[0].value == 1u)
                thenB = cfg.blockOf(pc);
            if (inst.src[0].value == 2u)
                elseB = cfg.blockOf(pc);
        }
    }
    const std::uint32_t joinB =
        cfg.blockOf(std::int32_t(fn.code.size()) - 1);
    ASSERT_NE(thenB, Cfg::noBlock);
    ASSERT_NE(elseB, Cfg::noBlock);
    EXPECT_NE(thenB, elseB);
    // Neither arm dominates the join; the entry does, and the arms'
    // immediate dominator chains reach the entry.
    EXPECT_FALSE(cfg.dominates(thenB, joinB));
    EXPECT_FALSE(cfg.dominates(elseB, joinB));
    EXPECT_TRUE(cfg.dominates(entry, joinB));
    EXPECT_TRUE(cfg.dominates(entry, thenB));
}

TEST(Cfg, InstSuccessors)
{
    std::vector<std::int32_t> out;

    Instruction bra;
    bra.op = Opcode::Bra;
    bra.target = 7;
    instSuccessors(bra, 2, 10, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 7);

    bra.pred = 0; // predicated: also falls through
    instSuccessors(bra, 2, 10, out);
    ASSERT_EQ(out.size(), 2u);

    Instruction exit;
    exit.op = Opcode::Exit;
    instSuccessors(exit, 2, 10, out);
    EXPECT_TRUE(out.empty());

    Instruction add;
    add.op = Opcode::Add;
    instSuccessors(add, 9, 10, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 10); // falls off the end
}

// --- interval ranges ---------------------------------------------------

TEST(Ranges, ProvesTidIndexedAccesses)
{
    Program prog;
    KernelBuilder b("proven", Dim3{64}, /*shared_mem_bytes=*/256);
    Reg tid = b.mov(SReg::TidX);           // [0, 63]
    Reg n = b.ldParam(0);                  // proven param site
    Reg off = b.shl(tid, Val(2u));         // [0, 252]
    b.st(MemSpace::Shared, off, n);        // 252 + 4 <= 256: proven
    const KernelFuncId k = b.build(prog);

    const Cfg cfg(prog.function(k));
    const RangeResult rr = analyzeRanges(cfg);
    EXPECT_EQ(rr.paramSites, rr.paramProven);
    EXPECT_GE(rr.paramProven, 1u);
    EXPECT_GE(rr.paramProvenEnd, 4u);
    EXPECT_EQ(rr.sharedSites, 1u);
    EXPECT_EQ(rr.sharedProven, 1u);
    EXPECT_TRUE(rr.diags.empty());
}

TEST(Ranges, FlagsDefiniteSharedOob)
{
    Program prog;
    KernelBuilder b("oob_static", Dim3{32}, /*shared_mem_bytes=*/256);
    Reg addr = b.mov(Val(512u)); // constant, provably past the segment
    b.st(MemSpace::Shared, addr, Val(1u));
    const KernelFuncId k = b.build(prog);

    const Cfg cfg(prog.function(k));
    const RangeResult rr = analyzeRanges(cfg);
    EXPECT_EQ(rr.sharedProven, 0u);
    ASSERT_TRUE(hasRule(rr.diags, CheckRule::StaticOob));
    for (const Diagnostic &d : rr.diags)
        EXPECT_EQ(int(d.severity), int(Severity::Warning));
}

// --- uniformity --------------------------------------------------------

TEST(Uniformity, ClassifiesRegisters)
{
    Program prog;
    KernelBuilder b("shapes", Dim3{64});
    Reg ntid = b.mov(SReg::NTidX);       // uniform
    Reg tid = b.mov(SReg::TidX);         // affine stride 1
    Reg scaled = b.shl(tid, Val(2u));    // affine stride 4
    Reg base = b.ldParam(0);             // uniform (TB-wide constant)
    Reg addr = b.add(base, scaled);      // affine stride 4
    Reg v = b.ld(MemSpace::Global, addr); // non-uniform address: divergent
    b.st(MemSpace::Global, addr, b.add(v, Val(1u)));
    const KernelFuncId k = b.build(prog);

    const UniformityResult ur = analyzeUniformity(prog.function(k));
    EXPECT_TRUE(ur.regs[ntid.idx].isUniform());
    EXPECT_TRUE(ur.regs[base.idx].isUniform());
    EXPECT_EQ(ur.regs[tid.idx], LaneFact::affine(1));
    EXPECT_EQ(ur.regs[scaled.idx], LaneFact::affine(4));
    EXPECT_EQ(ur.regs[addr.idx], LaneFact::affine(4));
    EXPECT_TRUE(ur.regs[v.idx].isDivergent());
    EXPECT_GE(ur.uniformRegs, 2u);
    EXPECT_GE(ur.affineRegs, 3u);
    EXPECT_GE(ur.divergentRegs, 1u);
}

TEST(Uniformity, FlagsDivergentLaunchSites)
{
    // Child first so the parent can reference its id.
    Program prog;
    KernelBuilder child("child", Dim3{32});
    child.st(MemSpace::Global, child.ldParam(0), Val(1u));
    const KernelFuncId c = child.build(prog);

    KernelBuilder b("parent", Dim3{32}, 0, 64);
    // Load from a lane-varying address: divergent TB count.
    Reg lanePtr =
        b.add(b.ldParam(0), b.shl(b.mov(SReg::TidX), Val(2u)));
    Reg cnt = b.ld(MemSpace::Global, lanePtr);
    Reg buf = b.getParameterBuffer(16);             // per-lane buffer
    b.st(MemSpace::Global, buf, Val(0u));
    b.launchDevice(c, cnt, buf);
    const KernelFuncId p = b.build(prog);

    const UniformityResult ur = analyzeUniformity(prog.function(p));
    ASSERT_EQ(ur.launches.size(), 1u);
    EXPECT_EQ(ur.launches[0].callee, c);
    EXPECT_FALSE(ur.launches[0].numTbs.isUniform());
    EXPECT_FALSE(ur.launches[0].paramAddr.isUniform());
    EXPECT_TRUE(ur.launches[0].divergentFanOut());
    EXPECT_TRUE(hasRule(ur.diags, CheckRule::DivergentLaunch));

    // A fully uniform launch site must stay silent.
    Program prog2;
    KernelBuilder child2("child2", Dim3{32});
    child2.st(MemSpace::Global, child2.ldParam(0), Val(1u));
    const KernelFuncId c2 = child2.build(prog2);
    KernelBuilder u("uparent", Dim3{32}, 0, 64);
    Reg uaddr = u.mov(u.ldParam(0)); // TB-uniform parameter address
    u.launchDevice(c2, Val(4u), uaddr);
    const KernelFuncId p2 = u.build(prog2);

    const UniformityResult ur2 = analyzeUniformity(prog2.function(p2));
    ASSERT_EQ(ur2.launches.size(), 1u);
    EXPECT_FALSE(ur2.launches[0].divergentFanOut());
    EXPECT_FALSE(hasRule(ur2.diags, CheckRule::DivergentLaunch));
}

// --- launch graph ------------------------------------------------------

TEST(LaunchGraph, DepthChainAndBudget)
{
    // leaf <- mid <- root: depth 2 from the root, no cycle.
    Program prog;
    KernelBuilder leaf("leaf", Dim3{32});
    leaf.st(MemSpace::Global, leaf.ldParam(0), Val(1u));
    const KernelFuncId l = leaf.build(prog);

    KernelBuilder mid("mid", Dim3{32}, 0, 64);
    {
        Reg buf = mid.getParameterBuffer(8);
        mid.st(MemSpace::Global, buf, Val(0u));
        mid.launchAggGroup(l, Val(1u), buf);
    }
    const KernelFuncId m = mid.build(prog);

    KernelBuilder root("root", Dim3{32}, 0, 64);
    {
        Reg buf = root.getParameterBuffer(8);
        root.st(MemSpace::Global, buf, Val(0u));
        root.launchAggGroup(m, Val(1u), buf);
    }
    const KernelFuncId r = root.build(prog);

    std::vector<UniformityResult> uni;
    for (KernelFuncId id = 0; id < prog.size(); ++id)
        uni.push_back(analyzeUniformity(prog.function(id)));
    const GpuConfig cfg = GpuConfig::k20c();
    const LaunchGraph g = buildLaunchGraph(prog, cfg, uni);

    ASSERT_EQ(g.nodes.size(), 3u);
    ASSERT_EQ(g.edges.size(), 2u);
    EXPECT_FALSE(g.hasCycle);
    EXPECT_EQ(g.maxDepth, 2);
    EXPECT_EQ(g.nodes[l].depth, 0);
    EXPECT_EQ(g.nodes[m].depth, 1);
    EXPECT_EQ(g.nodes[r].depth, 2);
    EXPECT_TRUE(g.nodes[r].isRoot);
    EXPECT_FALSE(g.nodes[m].isRoot);

    // Per-lane launch semantics: every resident warp at an agg site can
    // produce warpSize launches, which dwarfs the paper's 1024-entry
    // aggregation table on the 13-SMX K20c.
    const std::uint64_t residentWarps =
        std::uint64_t(cfg.numSmx) * cfg.maxResidentWarpsPerSmx;
    EXPECT_EQ(g.worstCaseAggLaunches, residentWarps * warpSize);
    EXPECT_EQ(g.aggTableCapacity, cfg.agtSize);
    EXPECT_TRUE(g.aggBudgetExceeded);
    EXPECT_TRUE(hasRule(g.diags, CheckRule::LaunchBudget));
    EXPECT_FALSE(hasRule(g.diags, CheckRule::LaunchRecursion));
}

TEST(LaunchGraph, RecursionIsUnbounded)
{
    // AMR-style self-launching kernel: its own id is prog.size() at
    // build time (Program::add allows exactly this).
    Program prog;
    const KernelFuncId self = KernelFuncId(prog.size());
    KernelBuilder b("recurse", Dim3{32}, 0, 64);
    Reg buf = b.getParameterBuffer(8);
    b.st(MemSpace::Global, buf, Val(0u));
    b.launchDevice(self, Val(1u), buf);
    const KernelFuncId k = b.build(prog);
    ASSERT_EQ(k, self);

    std::vector<UniformityResult> uni;
    uni.push_back(analyzeUniformity(prog.function(k)));
    const LaunchGraph g =
        buildLaunchGraph(prog, GpuConfig::k20c(), uni);
    EXPECT_TRUE(g.hasCycle);
    EXPECT_EQ(g.maxDepth, -1);
    EXPECT_TRUE(g.nodes[k].onCycle);
    EXPECT_EQ(g.nodes[k].depth, -1);
    EXPECT_TRUE(hasRule(g.diags, CheckRule::LaunchRecursion));
}

// --- static races ------------------------------------------------------

TEST(Races, SameWordCrossWarpWriteIsFlagged)
{
    Program prog;
    KernelBuilder b("racy", Dim3{64}, /*shared_mem_bytes=*/256);
    b.st(MemSpace::Shared, Val(0u), b.mov(SReg::TidX));
    const KernelFuncId k = b.build(prog);

    const Cfg cfg(prog.function(k));
    const RaceResult rr = analyzeRaces(cfg);
    EXPECT_TRUE(rr.usesShared);
    EXPECT_TRUE(rr.hasSharedWrites);
    EXPECT_FALSE(rr.singleWarp);
    EXPECT_FALSE(rr.trivialRaceFree);
    EXPECT_FALSE(rr.provenRaceFree);
    EXPECT_GE(rr.conflictPairs, 1u);
    EXPECT_TRUE(hasRule(rr.diags, CheckRule::StaticRace));
}

TEST(Races, AffineDisjointAccessesAreProvenFree)
{
    // Each thread owns its own 4-byte slot: scale 4 >= width 4.
    Program prog;
    KernelBuilder b("disjoint", Dim3{64}, /*shared_mem_bytes=*/256);
    Reg off = b.shl(b.mov(SReg::TidX), Val(2u));
    b.st(MemSpace::Shared, off, b.mov(SReg::TidX));
    Reg v = b.ld(MemSpace::Shared, off);
    b.st(MemSpace::Global, b.add(b.ldParam(0), off), v);
    const KernelFuncId k = b.build(prog);

    const Cfg cfg(prog.function(k));
    const RaceResult rr = analyzeRaces(cfg);
    EXPECT_TRUE(rr.hasSharedWrites);
    EXPECT_FALSE(rr.trivialRaceFree); // affine proofs are not elision-grade
    EXPECT_TRUE(rr.provenRaceFree);
    EXPECT_TRUE(rr.diags.empty());
}

TEST(Races, BarrierSeparatesConflictingSites)
{
    // Two stores with different per-thread strides overlap across
    // threads, so only the barrier between them makes the kernel clean.
    const auto buildKernel = [](Program &prog, bool with_bar) {
        KernelBuilder b(with_bar ? "sync" : "nosync", Dim3{64},
                        /*shared_mem_bytes=*/512);
        Reg tid = b.mov(SReg::TidX);
        b.st(MemSpace::Shared, b.shl(tid, Val(2u)), tid); // 4 * tid
        if (with_bar)
            b.bar();
        b.st(MemSpace::Shared, b.shl(tid, Val(3u)), tid); // 8 * tid
        return b.build(prog);
    };

    Program racy;
    const Cfg cfgRacy(racy.function(buildKernel(racy, false)));
    const RaceResult rrRacy = analyzeRaces(cfgRacy);
    EXPECT_FALSE(rrRacy.provenRaceFree);
    EXPECT_TRUE(hasRule(rrRacy.diags, CheckRule::StaticRace));

    Program clean;
    const Cfg cfgClean(clean.function(buildKernel(clean, true)));
    const RaceResult rrClean = analyzeRaces(cfgClean);
    EXPECT_TRUE(rrClean.provenRaceFree);
    EXPECT_TRUE(rrClean.diags.empty());
}

TEST(Races, TrivialProofs)
{
    // Single-warp TB: the runtime cross-warp predicate can never fire.
    Program prog;
    KernelBuilder b("onewarp", Dim3{32}, /*shared_mem_bytes=*/256);
    b.st(MemSpace::Shared, Val(0u), b.mov(SReg::TidX));
    const Cfg cfg(prog.function(b.build(prog)));
    const RaceResult rr = analyzeRaces(cfg);
    EXPECT_TRUE(rr.singleWarp);
    EXPECT_TRUE(rr.trivialRaceFree);
    EXPECT_TRUE(rr.diags.empty());

    // Read-only shared use is race-free regardless of TB shape.
    Program prog2;
    KernelBuilder ro("readonly", Dim3{64}, /*shared_mem_bytes=*/256);
    Reg v = ro.ld(MemSpace::Shared, ro.shl(ro.mov(SReg::TidX), Val(2u)));
    ro.st(MemSpace::Global, ro.add(ro.ldParam(0), v), v);
    const Cfg cfg2(prog2.function(ro.build(prog2)));
    const RaceResult rr2 = analyzeRaces(cfg2);
    EXPECT_FALSE(rr2.hasSharedWrites);
    EXPECT_TRUE(rr2.trivialRaceFree);
}

// --- whole-program analysis over the benchmark suite -------------------

TEST(Analyzer, AllFamiliesAnalyzeClean)
{
    for (const std::string &id : kFamilyReps) {
        for (Mode m : evalModes) {
            SCOPED_TRACE(id + " " + modeName(m));
            auto app = makeBenchmark(id);
            Program prog;
            app->build(prog, m);
            const ProgramAnalysis pa = analyzeProgram(
                prog, configForMode(m, GpuConfig::k20c()));

            // The benchmark kernels are correct code: any
            // Error-severity diagnostic is a false positive.
            EXPECT_EQ(pa.errorCount, 0u);
            for (const Diagnostic &d : pa.diagnostics)
                EXPECT_EQ(int(d.severity), int(Severity::Warning));

            EXPECT_EQ(pa.kernels.size(), prog.size());
            for (const KernelAnalysis &ka : pa.kernels)
                EXPECT_GE(ka.numBlocks, 1u);

            // Dynamic-parallelism modes must produce a launch graph
            // with at least one device-launch edge; Flat must not.
            if (usesDynamicParallelism(m)) {
                EXPECT_GE(pa.graph.edges.size(), 1u);
                EXPECT_TRUE(pa.graph.maxDepth >= 1 || pa.graph.hasCycle);
            } else {
                EXPECT_TRUE(pa.graph.edges.empty());
                EXPECT_EQ(pa.graph.maxDepth, 0);
            }
        }
    }
}

TEST(Analyzer, ReportsAreDeterministic)
{
    auto app = makeBenchmark("bfs_citation");
    Program prog;
    app->build(prog, Mode::Dtbl);
    const ProgramAnalysis a = analyzeProgram(prog);
    const ProgramAnalysis b = analyzeProgram(prog);
    EXPECT_FALSE(a.textReport("t").empty());
    EXPECT_EQ(a.textReport("t"), b.textReport("t"));
    EXPECT_EQ(a.jsonReport("bfs_citation", "DTBL"),
              b.jsonReport("bfs_citation", "DTBL"));
}

TEST(Analyzer, AccessSafetyFactsForCleanKernel)
{
    Program prog;
    KernelBuilder b("clean", Dim3{32}, /*shared_mem_bytes=*/128);
    Reg tid = b.mov(SReg::TidX);
    Reg base = b.ldParam(0);
    Reg off = b.shl(tid, 2);
    b.st(MemSpace::Shared, off, tid);
    Reg v = b.ld(MemSpace::Shared, off);
    b.st(MemSpace::Global, b.add(base, off), v);
    const KernelFuncId k = b.build(prog);

    const AccessSafety safety = computeAccessSafety(prog);
    const KernelAccessSafety *ks = safety.of(k);
    ASSERT_NE(ks, nullptr);
    EXPECT_TRUE(ks->uninitAllSafe);
    EXPECT_TRUE(ks->sharedRaceFree); // single warp
    EXPECT_GE(ks->paramProvenEnd, 4u);
    unsigned paramProven = 0, sharedProven = 0;
    for (bool safe : ks->paramSafe)
        paramProven += safe;
    for (bool safe : ks->sharedSafe)
        sharedProven += safe;
    EXPECT_EQ(paramProven, 1u);
    EXPECT_EQ(sharedProven, 2u);
}

// --- check-elision: identical findings, measurable speedup -------------

TEST(Elision, SweepIsBitIdenticalAndFaster)
{
    using clock = std::chrono::steady_clock;
    std::chrono::nanoseconds elidedWall{0}, fullWall{0};
    std::uint64_t totalElided = 0;
    std::uint64_t totalBatched = 0;

    for (const std::string &id : kFamilyReps) {
        RunOptions on;
        on.checkLevel = int(CheckLevel::Full);
        on.elideChecks = true;
        RunOptions off = on;
        off.elideChecks = false;

        auto appOn = makeBenchmark(id);
        const auto t0 = clock::now();
        const BenchResult a = runBenchmark(*appOn, Mode::Dtbl,
                                           GpuConfig::k20c(), on);
        const auto t1 = clock::now();
        auto appOff = makeBenchmark(id);
        const BenchResult b = runBenchmark(*appOff, Mode::Dtbl,
                                           GpuConfig::k20c(), off);
        const auto t2 = clock::now();
        elidedWall += t1 - t0;
        fullWall += t2 - t1;

        expectIdenticalRuns(a, b, id);
        EXPECT_TRUE(a.verified);
        EXPECT_EQ(a.checkErrors, 0u);
        EXPECT_EQ(b.checkElided, 0u);
        EXPECT_EQ(b.checkBatched, 0u);
        totalElided += a.checkElided;
        totalBatched += a.checkBatched;
    }

    // The proofs must actually fire...
    EXPECT_GT(totalElided, 0u);
    EXPECT_GT(totalBatched, 0u);
    // ...and buy wall-clock time across the sweep. The margin is large
    // (elision removes the per-instruction Full-tier shadow tracking
    // for proven kernels), so this is robust to scheduler noise.
    EXPECT_LT(elidedWall.count(), fullWall.count())
        << "elided sweep took " << elidedWall.count() / 1e6
        << " ms vs " << fullWall.count() / 1e6 << " ms without elision";
}

TEST(Elision, FaultyProgramsKeepIdenticalFindings)
{
    // Seeded-bug kernels: elision must take its fallback paths and
    // report exactly what the unelided sanitizer reports.
    struct Case
    {
        const char *name;
        CheckRule rule;
        std::function<KernelFuncId(Program &)> build;
        std::function<std::vector<std::uint32_t>(Gpu &)> params;
    };
    const std::vector<Case> cases = {
        {"oob_global", CheckRule::OobGlobal,
         [](Program &prog) {
             KernelBuilder b("oob_global", Dim3{32});
             Reg addr = b.ldParam(0);
             b.st(MemSpace::Global, b.add(addr, b.shl(b.mov(SReg::TidX), 2)),
                  Val(1u));
             return b.build(prog);
         },
         [](Gpu &gpu) {
             // 64-byte buffer, 32 lanes x 4 bytes starting at +64: every
             // lane lands past the end.
             const Addr buf = gpu.mem().allocate(64);
             return std::vector<std::uint32_t>{std::uint32_t(buf + 64)};
         }},
        {"oob_param", CheckRule::OobParam,
         [](Program &prog) {
             // The child's load at offset 32 is inside its declared
             // 64-byte param space (statically proven safe), but the
             // parent binds only an 8-byte parameter buffer — the
             // hoisted per-TB liveness check fails and elision must
             // fall back to the per-lane loop that reports the bug.
             KernelBuilder child("oob_param_child", Dim3{1}, 0, 64);
             Reg out = child.ldParam(0);
             Reg v = child.ldParam(32);
             child.st(MemSpace::Global, out, v);
             const KernelFuncId c = child.build(prog);

             KernelBuilder b("oob_param", Dim3{1}, 0, 8);
             Reg dst = b.ldParam(0);
             Reg buf = b.getParameterBuffer(8);
             b.st(MemSpace::Global, buf, dst);
             b.launchDevice(c, Val(1u), buf);
             return b.build(prog);
         },
         [](Gpu &gpu) {
             const Addr buf = gpu.mem().allocate(64);
             return std::vector<std::uint32_t>{std::uint32_t(buf)};
         }},
        {"uninit", CheckRule::UninitRead,
         [](Program &prog) {
             KernelBuilder b("uninit", Dim3{32});
             Reg tid = b.mov(SReg::TidX);
             Reg out = b.ldParam(0);
             Reg v = b.reg();
             Pred lower = b.setp(CmpOp::Lt, DataType::U32, tid, Val(16u));
             b.if_(lower, [&] { b.movTo(v, Val(7u)); });
             b.st(MemSpace::Global, b.add(out, b.shl(tid, 2)), v);
             return b.build(prog);
         },
         [](Gpu &gpu) {
             const Addr buf = gpu.mem().allocate(32 * 4);
             return std::vector<std::uint32_t>{std::uint32_t(buf)};
         }},
        {"shared_race", CheckRule::SharedRace,
         [](Program &prog) {
             KernelBuilder b("shared_race", Dim3{64},
                             /*shared_mem_bytes=*/256);
             b.st(MemSpace::Shared, Val(0u), b.mov(SReg::TidX));
             return b.build(prog);
         },
         [](Gpu &) { return std::vector<std::uint32_t>{}; }},
    };

    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        Program prog;
        const KernelFuncId k = c.build(prog);

        const auto run = [&](bool elide) {
            Gpu gpu(GpuConfig::k20c(), prog);
            const auto params = c.params(gpu);
            gpu.enableChecks(CheckLevel::Full, elide);
            gpu.launch(k, Dim3{1}, params);
            gpu.synchronize();
            const Sanitizer *san = gpu.sanitizer();
            EXPECT_NE(san, nullptr);
            return std::make_tuple(san->findings(), san->errorCount(),
                                   san->warningCount());
        };
        const auto [fa, ea, wa] = run(true);
        const auto [fb, eb, wb] = run(false);
        EXPECT_TRUE(hasRule(fa, c.rule));
        EXPECT_EQ(ea, eb);
        EXPECT_EQ(wa, wb);
        ASSERT_EQ(fa.size(), fb.size());
        for (std::size_t i = 0; i < fa.size(); ++i) {
            EXPECT_EQ(fa[i].funcId, fb[i].funcId);
            EXPECT_EQ(fa[i].pc, fb[i].pc);
            EXPECT_EQ(int(fa[i].rule), int(fb[i].rule));
            EXPECT_EQ(fa[i].message, fb[i].message);
        }
    }
}
