/**
 * @file
 * Launch-overhead explorer: sweeps the dynamic-workload granularity of a
 * synthetic nested kernel and prints, for CDP and DTBL, where each
 * launch mechanism breaks even against inline (flat) execution — the
 * trade-off at the heart of the paper.
 *
 * Each parent thread owns `span` elements of work. In flat mode it
 * processes them in a serial loop; in CDP/DTBL mode it launches a child
 * over them. Small spans are dominated by launch overhead; large spans
 * amortize it.
 */

#include <cstdio>
#include <vector>

#include "gpu/gpu.hh"
#include "harness/report.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

enum class Variant { Flat, Cdp, Dtbl };

/** Child: out[start+g] += g for g < count. */
KernelFuncId
buildChild(Program &prog)
{
    KernelBuilder b("work_child", Dim3{32}, 0, 12);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(8);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, gid, count));
    Reg out = b.ldParam(0);
    Reg start = b.ldParam(4);
    Reg idx = b.add(start, gid);
    Reg addr = b.add(out, b.shl(idx, 2));
    Reg v = b.ld(MemSpace::Global, addr);
    b.st(MemSpace::Global, addr, b.add(v, gid));
    return b.build(prog);
}

KernelFuncId
buildParent(Program &prog, Variant var, KernelFuncId child)
{
    KernelBuilder b("work_parent", Dim3{64}, 0, 12);
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    b.exitIf(b.setp(CmpOp::Ge, DataType::U32, tid, n));
    Reg out = b.ldParam(4);
    Reg span = b.ldParam(8);
    Reg start = b.mul(tid, span);
    if (var == Variant::Flat) {
        b.forRange(Val(0u), span, [&](Reg g) {
            Reg idx = b.add(start, g);
            Reg addr = b.add(out, b.shl(idx, 2));
            Reg v = b.ld(MemSpace::Global, addr);
            b.st(MemSpace::Global, addr, b.add(v, g));
        });
    } else {
        if (var == Variant::Cdp)
            b.streamCreate();
        Reg ntbs = b.div(b.add(span, 31u), Val(32u));
        Reg buf = b.getParameterBuffer(12);
        b.st(MemSpace::Global, buf, out, 0);
        b.st(MemSpace::Global, buf, start, 4);
        b.st(MemSpace::Global, buf, span, 8);
        if (var == Variant::Cdp)
            b.launchDevice(child, ntbs, buf);
        else
            b.launchAggGroup(child, ntbs, buf);
    }
    return b.build(prog);
}

Cycle
runOnce(Variant var, std::uint32_t parents, std::uint32_t span)
{
    Program prog;
    const KernelFuncId child = buildChild(prog);
    const KernelFuncId parent = buildParent(prog, var, child);
    Gpu gpu(GpuConfig::k20c(), prog);
    const Addr out = gpu.mem().allocate(
        std::uint64_t(parents) * span * 4);
    gpu.launch(parent, Dim3{(parents + 63) / 64},
               {parents, std::uint32_t(out), span});
    gpu.synchronize();
    return gpu.now();
}

} // namespace

int
main()
{
    const std::uint32_t parents = 256;
    Table t({"span (work/thread)", "Flat", "CDP", "DTBL", "CDP/Flat",
             "DTBL/Flat"});
    for (std::uint32_t span : {8u, 32u, 128u, 512u, 2048u}) {
        const Cycle f = runOnce(Variant::Flat, parents, span);
        const Cycle c = runOnce(Variant::Cdp, parents, span);
        const Cycle d = runOnce(Variant::Dtbl, parents, span);
        t.addRow({std::to_string(span), std::to_string(f),
                  std::to_string(c), std::to_string(d),
                  Table::num(double(f) / double(c), 2),
                  Table::num(double(f) / double(d), 2)});
    }
    std::printf("Break-even sweep: 256 parent threads, each owning "
                "`span` work items\n(speedup > 1 means the dynamic "
                "variant beats inline execution)\n\n");
    t.print();
    std::printf(
        "\nDTBL's cheap thread-block launch moves the break-even point "
        "to much\nfiner granularities than CDP's device-kernel launch — "
        "the core claim\nof the paper, in one table.\n");
    return 0;
}
