/**
 * @file
 * Adaptive mesh refinement example: demonstrates self-coalescing DTBL
 * launches (Figure 2(a) of the paper) — every refined cell spawns an
 * aggregated group that coalesces back onto the refinement kernel
 * itself, so one native kernel absorbs the whole recursion.
 */

#include <cstdio>

#include "apps/amr.hh"
#include "harness/runner.hh"

using namespace dtbl;

int
main()
{
    const auto [cells, depthSum] = AmrApp::cpuRefine();
    std::printf("AMR reference: %llu cells evaluated, mean depth %.2f\n\n",
                static_cast<unsigned long long>(cells),
                double(depthSum) / double(cells));

    for (Mode m : {Mode::Flat, Mode::Cdp, Mode::Dtbl}) {
        AmrApp app;
        const BenchResult r = runBenchmark(app, m);
        std::printf("%-5s cycles=%-10llu dynLaunches=%-6llu "
                    "coalesceRate=%4.2f warpAct=%5.1f%% verified=%s\n",
                    modeName(m),
                    static_cast<unsigned long long>(r.report.cycles),
                    static_cast<unsigned long long>(
                        r.report.dynamicLaunches),
                    r.report.aggCoalesceRate,
                    r.report.warpActivityPct,
                    r.verified ? "yes" : "NO");
    }

    std::printf(
        "\nIn DTBL mode the recursive refinement groups coalesce onto the\n"
        "refinement kernel itself; the coalesce rate above shows how many\n"
        "of the dynamically spawned groups avoided a device-kernel\n"
        "launch.\n");
    return 0;
}
