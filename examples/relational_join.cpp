/**
 * @file
 * Relational-join example: shows how key-distribution skew changes the
 * benefit of dynamic parallelism. With uniform keys the flat kernel is
 * already balanced; with Gaussian keys a few hash buckets are huge and
 * the flat per-tuple probe loop serializes — exactly the workload
 * imbalance DTBL targets.
 */

#include <cstdio>

#include "apps/join.hh"
#include "harness/runner.hh"

using namespace dtbl;

namespace {

void
runOne(JoinApp::Dataset d, const char *label)
{
    std::printf("%s keys:\n", label);
    double flat = 0;
    for (Mode m : {Mode::Flat, Mode::Cdp, Mode::Dtbl}) {
        JoinApp app(d);
        const BenchResult r = runBenchmark(app, m);
        if (m == Mode::Flat)
            flat = double(r.report.cycles);
        std::printf("  %-5s cycles=%-9llu speedup=%.2fx warpAct=%5.1f%% "
                    "launches=%llu verified=%s\n",
                    modeName(m),
                    static_cast<unsigned long long>(r.report.cycles),
                    flat / double(r.report.cycles),
                    r.report.warpActivityPct,
                    static_cast<unsigned long long>(
                        r.report.dynamicLaunches),
                    r.verified ? "yes" : "NO");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    runOne(JoinApp::Dataset::Uniform, "Uniform");
    runOne(JoinApp::Dataset::Gaussian, "Gaussian (skewed)");
    std::printf("Skewed buckets make the flat probe loop the straggler;\n"
                "dynamic TB launches rebalance it without paying CDP's\n"
                "kernel-launch cost.\n");
    return 0;
}
