/**
 * @file
 * Quickstart: build a kernel with the IR builder, run it on the
 * simulated K20c, and read back results and metrics.
 *
 * The kernel is a SAXPY with a data-dependent inner loop so that the
 * control-divergence and memory metrics in the report are non-trivial.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "stats/host_prof.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    // --trace-out <path>: write a Chrome trace_event JSON of the run
    // (open it in chrome://tracing or https://ui.perfetto.dev).
    // --check[=N]: enable the runtime sanitizer at level N (default 3 =
    // full; see analysis/sanitizer.hh for the tiers).
    // --no-elide: disable static-analysis check-elision (run every
    // runtime check even where the analyzer proved it redundant).
    // --profile[=W]: enable the PMU interval profiler (window W cycles,
    // default 512). --profile-out <dir>: write the sampled timelines
    // (csv/json) and the nvprof-style text report there.
    // --no-contention: flat-latency memory model (no MSHR merging or L2
    // bank contention), for regression comparison against old runs.
    // --dispatch-policy <p>: TB dispatch policy (fcfs-head | concurrent).
    // --hostprof: enable the host wall-clock self-profiler and print
    // its phase tree after the metrics (observation only — the metrics
    // line itself is unchanged).
    std::string traceOut;
    std::string profileOut;
    std::string dispatchPolicy;
    int checkLevel = 0;
    bool elideChecks = true;
    Cycle profileWindow = 0;
    bool profile = false;
    bool contention = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            traceOut = argv[++i];
        } else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                   i + 1 < argc) {
            profileOut = argv[++i];
            profile = true;
        } else if (std::strncmp(argv[i], "--profile", 9) == 0) {
            profile = true;
            if (argv[i][9] == '=')
                profileWindow = Cycle(std::atoll(argv[i] + 10));
        } else if (std::strcmp(argv[i], "--no-elide") == 0) {
            elideChecks = false;
        } else if (std::strncmp(argv[i], "--check", 7) == 0) {
            checkLevel = argv[i][7] == '=' ? std::atoi(argv[i] + 8)
                                           : int(CheckLevel::Full);
        } else if (std::strcmp(argv[i], "--hostprof") == 0) {
            if (!HostProfiler::compiledIn) {
                std::fprintf(stderr, "warning: --hostprof requested but "
                                     "compiled out\n");
            }
            HostProfiler::instance().setEnabled(true);
        } else if (std::strcmp(argv[i], "--no-contention") == 0) {
            contention = false;
        } else if (std::strcmp(argv[i], "--dispatch-policy") == 0 &&
                   i + 1 < argc) {
            dispatchPolicy = argv[++i];
        } else if (std::strncmp(argv[i], "--dispatch-policy=", 18) == 0) {
            dispatchPolicy = argv[i] + 18;
        }
    }

    // --- 1. Describe the kernel in the SIMT IR -----------------------
    // out[i] = a * x[i] + y[i], repeated rep[i] times.
    Program prog;
    KernelFuncId saxpy;
    {
        KernelBuilder b("saxpy_rep", Dim3{128});
        Reg tid = b.globalThreadIdX();
        Reg nR = b.ldParam(0);
        Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nR);
        b.exitIf(oob);
        Reg aVal = b.ldParam(4); // f32 bits
        Reg xBase = b.ldParam(8);
        Reg yBase = b.ldParam(12);
        Reg outBase = b.ldParam(16);
        Reg repBase = b.ldParam(20);
        Reg off = b.shl(tid, 2);
        Reg xR = b.ld(MemSpace::Global, b.add(xBase, off));
        Reg yR = b.ld(MemSpace::Global, b.add(yBase, off));
        Reg repR = b.ld(MemSpace::Global, b.add(repBase, off));
        Reg acc = b.mov(yR);
        b.forRange(Val(0u), repR, [&](Reg) {
            Reg ax = b.mul(aVal, xR, DataType::F32);
            b.binaryTo(acc, Opcode::Add, DataType::F32, acc, ax);
        });
        b.st(MemSpace::Global, b.add(outBase, off), acc);
        saxpy = b.build(prog);
    }
    std::printf("--- kernel IR ---\n%s\n",
                prog.function(saxpy).disassemble().c_str());

    // --- 2. Create the device and upload data -------------------------
    GpuConfig cfg = GpuConfig::k20c();
    cfg.modelMemContention = contention;
    if (!dispatchPolicy.empty() &&
        !parseDispatchPolicy(dispatchPolicy, cfg.dispatchPolicy)) {
        std::fprintf(stderr,
                     "unknown --dispatch-policy '%s' (expected "
                     "fcfs-head or concurrent)\n",
                     dispatchPolicy.c_str());
        return 2;
    }
    Gpu gpu(cfg, prog);
    if (!traceOut.empty() && gpu.trace().openJson(traceOut))
        std::printf("writing Chrome trace to %s\n", traceOut.c_str());
    if (checkLevel > 0)
        gpu.enableChecks(CheckLevel(checkLevel), elideChecks);
    if (profile)
        gpu.enableProfiling(profileWindow);
    const std::uint32_t n = 4096;
    std::vector<std::uint32_t> x(n), y(n), rep(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        x[i] = std::bit_cast<std::uint32_t>(float(i % 17));
        y[i] = std::bit_cast<std::uint32_t>(1.0f);
        rep[i] = i % 7; // data-dependent loop count -> divergence
    }
    const Addr xAddr = gpu.mem().upload(x);
    const Addr yAddr = gpu.mem().upload(y);
    const Addr repAddr = gpu.mem().upload(rep);
    const Addr outAddr = gpu.mem().allocate(n * 4);

    // --- 3. Launch and synchronize --------------------------------------
    gpu.launch(saxpy, Dim3{(n + 127) / 128},
               {n, std::bit_cast<std::uint32_t>(0.5f),
                std::uint32_t(xAddr), std::uint32_t(yAddr),
                std::uint32_t(outAddr), std::uint32_t(repAddr)});
    gpu.synchronize();

    // --- 4. Check a few results and print the metrics -------------------
    bool ok = true;
    for (std::uint32_t i = 0; i < n; ++i) {
        float want = 1.0f;
        for (std::uint32_t r = 0; r < rep[i]; ++r)
            want += 0.5f * float(i % 17);
        const float got =
            std::bit_cast<float>(gpu.mem().read32(outAddr + i * 4));
        if (got != want) {
            std::printf("MISMATCH at %u: got %f want %f\n", i, got, want);
            ok = false;
            break;
        }
    }
    std::printf("result check: %s\n", ok ? "PASS" : "FAIL");

    const MetricsReport r = gpu.report("quickstart", "flat");
    std::printf("\n--- metrics ---\n%s\n", r.str().c_str());
    if (const IntervalProfiler *prof = gpu.profiler()) {
        std::printf("\n%s",
                    prof->textReport("quickstart", "flat").c_str());
        if (!profileOut.empty()) {
            std::filesystem::create_directories(profileOut);
            prof->writeCsv(profileOut + "/quickstart_flat.csv");
            prof->writeJson(profileOut + "/quickstart_flat.json");
            std::printf("profiler timelines written to %s\n",
                        profileOut.c_str());
        }
    }
    if (HostProfiler::instance().enabled())
        std::printf("\n%s", HostProfiler::instance().textReport().c_str());
    if (const Sanitizer *san = gpu.sanitizer()) {
        for (const Diagnostic &d : san->findings())
            std::printf("%s\n", d.str().c_str());
        std::printf("%s\n", san->summary().c_str());
        ok = ok && san->errorCount() == 0;
    }
    gpu.trace().closeJson();
    return ok ? 0 : 1;
}
