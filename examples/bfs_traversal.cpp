/**
 * @file
 * Graph-traversal example: runs BFS on the citation-like graph in all
 * five execution modes (flat, CDP, CDP-ideal, DTBL, DTBL-ideal) and
 * prints a side-by-side comparison — a miniature of the paper's
 * evaluation on one benchmark.
 */

#include <cstdio>

#include "apps/bfs.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dtbl;

int
main()
{
    Table t({"mode", "cycles", "speedup", "warpAct%", "dramEff",
             "occup%", "avgWait", "dynLaunch", "verified"});

    double flatCycles = 0;
    for (Mode m : evalModes) {
        BfsApp app(BfsApp::Dataset::Citation);
        const BenchResult r = runBenchmark(app, m);
        if (m == Mode::Flat)
            flatCycles = double(r.report.cycles);
        t.addRow({modeName(m), std::to_string(r.report.cycles),
                  Table::num(flatCycles / double(r.report.cycles), 2),
                  Table::num(r.report.warpActivityPct, 1),
                  Table::num(r.report.dramEfficiency, 3),
                  Table::num(r.report.smxOccupancyPct, 1),
                  Table::num(r.report.avgWaitingCycles, 0),
                  std::to_string(r.report.dynamicLaunches),
                  r.verified ? "yes" : "NO"});
    }

    std::printf("BFS on the citation-network stand-in (10k vertices):\n\n");
    t.print();
    std::printf(
        "\nDTBL keeps CDP's regularization benefits (warp activity, DRAM\n"
        "efficiency) while avoiding most of the device-kernel launch\n"
        "overhead — compare the CDP and DTBL speedup columns.\n");
    return 0;
}
