/**
 * @file
 * Table/CSV output helpers used by the per-figure bench binaries.
 */

#ifndef DTBL_HARNESS_REPORT_HH
#define DTBL_HARNESS_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

namespace dtbl {

/** Fixed-width text table with an optional CSV dump. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);

    /** Format a double with @p prec decimals. */
    static std::string num(double v, int prec = 3);

    void print(std::ostream &os = std::cout) const;
    void printCsv(std::ostream &os) const;

    /** Geometric mean over a series (paper-style "average" speedups). */
    static double geomean(const std::vector<double> &v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dtbl

#endif // DTBL_HARNESS_REPORT_HH
