#include "harness/report.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace dtbl {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    DTBL_ASSERT(row.size() == header_.size(), "table row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    auto line = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(int(width[c]) + 2) << row[c];
        }
        os << "\n";
    };
    line(header_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        line(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    line(header_);
    for (const auto &row : rows_)
        line(row);
}

double
Table::geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(std::max(x, 1e-12));
    return std::exp(acc / double(v.size()));
}

} // namespace dtbl
