/**
 * @file
 * Benchmark runner: builds, executes and verifies one (application,
 * mode) combination on a fresh simulated GPU and returns its metrics.
 */

#ifndef DTBL_HARNESS_RUNNER_HH
#define DTBL_HARNESS_RUNNER_HH

#include <array>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/sanitizer.hh"
#include "apps/app.hh"
#include "stats/trace.hh"

namespace dtbl {

struct BenchResult
{
    MetricsReport report;
    SimStats stats;
    bool verified = false;
    /** Per-event trace counts and the run's trace hash. */
    TraceSummary trace;
    /** Sanitizer findings (empty when checks are off or clean). */
    std::vector<Diagnostic> checkFindings;
    std::uint64_t checkErrors = 0;
    std::uint64_t checkWarnings = 0;
    /** Checks skipped / span-batched thanks to static proofs. */
    std::uint64_t checkElided = 0;
    std::uint64_t checkBatched = 0;
};

/** Optional per-run knobs that don't belong in GpuConfig. */
struct RunOptions
{
    /** When non-empty, stream a Chrome trace_event JSON file here. */
    std::string traceJsonPath;
    /** Runtime sanitizer tier (cast to CheckLevel); 0 = off. */
    int checkLevel = 0;
    /**
     * Let the static analyzer elide checks it proved redundant
     * (analysis/access_safety.hh). Findings are identical either way;
     * false forces the check-everything path for A/B testing.
     */
    bool elideChecks = true;
    /**
     * PMU sampling window in cycles; 0 = profiling off (unless
     * profileOutDir is set, which turns it on at the default window).
     */
    Cycle profileWindow = 0;
    /**
     * When non-empty, write `<dir>/<bench>_<mode>.{csv,json,txt}`
     * profiler timelines + text report after the run.
     */
    std::string profileOutDir;
    /**
     * Time App::execute on the host clock and fill the report's
     * simWallClockSec / simCyclesPerSec (MetricsReport v6). Off by
     * default so ordinary runs (goldens, CI metric diffs) never print
     * machine-dependent fields; dtbl-bench turns it on.
     */
    bool measureWallClock = false;
};

/** Run one benchmark in one mode. */
BenchResult runBenchmark(App &app, Mode mode,
                         const GpuConfig &base = GpuConfig::k20c(),
                         const RunOptions &opts = {});

/** The five evaluation modes in the paper's plotting order. */
constexpr std::array<Mode, 5> evalModes = {
    Mode::Flat, Mode::CdpIdeal, Mode::DtblIdeal, Mode::Cdp, Mode::Dtbl};

} // namespace dtbl

#endif // DTBL_HARNESS_RUNNER_HH
