#include "harness/perf_harness.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>

#include "apps/registry.hh"
#include "common/log.hh"
#include "harness/report.hh"
#include "stats/host_prof.hh"

namespace dtbl {

namespace {

/** Shortest round-trippable double representation (as metrics.cc). */
std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    char buf15[40];
    std::snprintf(buf15, sizeof buf15, "%.15g", v);
    double back = 0.0;
    std::sscanf(buf15, "%lf", &back);
    return back == v ? buf15 : buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Minimal JSON value for the baseline reader. Numbers keep an exact
 * uint64 alongside the double: traceHash uses all 64 bits and must not
 * round-trip through a double's 53-bit mantissa.
 */
struct JValue
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::uint64_t u64 = 0;
    bool isU64 = false;
    std::string str;
    std::vector<JValue> arr;
    std::vector<std::pair<std::string, JValue>> obj;

    const JValue *
    get(const char *key) const
    {
        for (const auto &[k, v] : obj) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

struct JParser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("dangling escape");
                switch (*p) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default: out += *p; break;
                }
            } else {
                out += *p;
            }
            ++p;
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        return true;
    }

    bool
    parseValue(JValue &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        const char c = *p;
        if (c == '{') {
            ++p;
            out.kind = JValue::Kind::Obj;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                std::string key;
                if (!parseString(key) || !consume(':'))
                    return false;
                JValue v;
                if (!parseValue(v))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++p;
            out.kind = JValue::Kind::Arr;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JValue v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JValue::Kind::Str;
            return parseString(out.str);
        }
        if (std::strncmp(p, "true", 4) == 0 && end - p >= 4) {
            out.kind = JValue::Kind::Bool;
            out.b = true;
            p += 4;
            return true;
        }
        if (std::strncmp(p, "false", 5) == 0 && end - p >= 5) {
            out.kind = JValue::Kind::Bool;
            p += 5;
            return true;
        }
        if (std::strncmp(p, "null", 4) == 0 && end - p >= 4) {
            out.kind = JValue::Kind::Null;
            p += 4;
            return true;
        }
        // Number.
        const char *start = p;
        if (p < end && (*p == '-' || *p == '+'))
            ++p;
        bool integral = true;
        while (p < end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                *p == '+')) {
            if (!std::isdigit(static_cast<unsigned char>(*p)))
                integral = *p == '-' && p == start;
            ++p;
        }
        if (p == start)
            return fail("unexpected character");
        out.kind = JValue::Kind::Num;
        const std::string tok(start, p);
        out.num = std::strtod(tok.c_str(), nullptr);
        if (integral && tok[0] != '-') {
            out.u64 = std::strtoull(tok.c_str(), nullptr, 10);
            out.isU64 = true;
        }
        return true;
    }
};

bool
readU64(const JValue &obj, const char *key, std::uint64_t &out,
        std::string &err)
{
    const JValue *v = obj.get(key);
    if (!v || v->kind != JValue::Kind::Num || !v->isU64) {
        err = std::string("missing or non-integer field '") + key + "'";
        return false;
    }
    out = v->u64;
    return true;
}

bool
readStr(const JValue &obj, const char *key, std::string &out,
        std::string &err)
{
    const JValue *v = obj.get(key);
    if (!v || v->kind != JValue::Kind::Str) {
        err = std::string("missing string field '") + key + "'";
        return false;
    }
    out = v->str;
    return true;
}

double
readNumOr0(const JValue &obj, const char *key)
{
    const JValue *v = obj.get(key);
    return v && v->kind == JValue::Kind::Num ? v->num : 0.0;
}

} // namespace

const BenchPoint *
BenchRun::find(const std::string &benchmark, const std::string &mode) const
{
    for (const BenchPoint &p : points) {
        if (p.benchmark == benchmark && p.mode == mode)
            return &p;
    }
    return nullptr;
}

std::string
benchJson(const BenchRun &run)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"benchSchemaVersion\": " << BenchRun::schemaVersion << ",\n";
    os << "  \"label\": " << jsonStr(run.label) << ",\n";
    os << "  \"metricsSchemaVersion\": " << MetricsReport::schemaVersion
       << ",\n";
    os << "  \"repeat\": " << run.repeat << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const BenchPoint &p = run.points[i];
        os << (i == 0 ? "" : ",") << "\n    {\n";
        os << "      \"benchmark\": " << jsonStr(p.benchmark) << ",\n";
        os << "      \"mode\": " << jsonStr(p.mode) << ",\n";
        os << "      \"cycles\": " << p.cycles << ",\n";
        os << "      \"instrs\": " << p.instrs << ",\n";
        os << "      \"traceHash\": " << p.traceHash << ",\n";
        os << "      \"simWallClockSec\": " << jsonNum(p.simWallClockSec)
           << ",\n";
        os << "      \"simCyclesPerSec\": " << jsonNum(p.simCyclesPerSec)
           << ",\n";
        os << "      \"hostPhases\": [";
        for (std::size_t h = 0; h < p.hostPhases.size(); ++h) {
            os << (h == 0 ? "" : ",") << "\n        {\"path\": "
               << jsonStr(p.hostPhases[h].first)
               << ", \"exclusiveNs\": " << p.hostPhases[h].second << "}";
        }
        os << (p.hostPhases.empty() ? "" : "\n      ") << "]\n";
        os << "    }";
    }
    os << (run.points.empty() ? "" : "\n  ") << "]\n";
    os << "}\n";
    return os.str();
}

bool
parseBenchJson(const std::string &text, BenchRun &out, std::string &err)
{
    JParser parser{text.data(), text.data() + text.size(), {}};
    JValue root;
    if (!parser.parseValue(root)) {
        err = parser.err;
        return false;
    }
    if (root.kind != JValue::Kind::Obj) {
        err = "top-level value is not an object";
        return false;
    }
    std::uint64_t schema = 0;
    if (!readU64(root, "benchSchemaVersion", schema, err))
        return false;
    if (schema != std::uint64_t(BenchRun::schemaVersion)) {
        err = "unknown benchSchemaVersion " + std::to_string(schema);
        return false;
    }
    out = BenchRun{};
    if (!readStr(root, "label", out.label, err))
        return false;
    std::uint64_t repeat = 1;
    if (!readU64(root, "repeat", repeat, err))
        return false;
    out.repeat = int(repeat);
    const JValue *points = root.get("points");
    if (!points || points->kind != JValue::Kind::Arr) {
        err = "missing 'points' array";
        return false;
    }
    for (const JValue &jp : points->arr) {
        if (jp.kind != JValue::Kind::Obj) {
            err = "non-object entry in 'points'";
            return false;
        }
        BenchPoint p;
        std::uint64_t cycles = 0;
        if (!readStr(jp, "benchmark", p.benchmark, err) ||
            !readStr(jp, "mode", p.mode, err) ||
            !readU64(jp, "cycles", cycles, err) ||
            !readU64(jp, "instrs", p.instrs, err) ||
            !readU64(jp, "traceHash", p.traceHash, err)) {
            return false;
        }
        p.cycles = cycles;
        p.simWallClockSec = readNumOr0(jp, "simWallClockSec");
        p.simCyclesPerSec = readNumOr0(jp, "simCyclesPerSec");
        if (const JValue *phases = jp.get("hostPhases");
            phases && phases->kind == JValue::Kind::Arr) {
            for (const JValue &ph : phases->arr) {
                std::string path;
                std::uint64_t ns = 0;
                std::string ignore;
                if (readStr(ph, "path", path, ignore) &&
                    readU64(ph, "exclusiveNs", ns, ignore)) {
                    p.hostPhases.emplace_back(std::move(path), ns);
                }
            }
        }
        out.points.push_back(std::move(p));
    }
    return true;
}

BenchCompareResult
compareBenchRuns(const BenchRun &baseline, const BenchRun &current,
                 const BenchCompareOptions &opts, std::ostream &out)
{
    const bool gateWall = opts.wallTolerance > 0.0;
    Table table({"benchmark", "mode", "cycles", "Δcycles", "hash",
                 "wall(s)", "Δwall%"});
    std::size_t detMismatches = 0;
    std::size_t wallRegressions = 0;

    for (const BenchPoint &cur : current.points) {
        const BenchPoint *base = baseline.find(cur.benchmark, cur.mode);
        if (!base) {
            ++detMismatches;
            table.addRow({cur.benchmark, cur.mode,
                          std::to_string(cur.cycles), "NOT-IN-BASELINE",
                          "-", Table::num(cur.simWallClockSec), "-"});
            continue;
        }
        const bool cyclesOk =
            cur.cycles == base->cycles && cur.instrs == base->instrs;
        const bool hashOk = cur.traceHash == base->traceHash;
        if (!cyclesOk || !hashOk)
            ++detMismatches;
        const std::int64_t dCycles =
            std::int64_t(cur.cycles) - std::int64_t(base->cycles);
        double dWallPct = 0.0;
        std::string wallCol = "-";
        if (base->simWallClockSec > 0.0 && cur.simWallClockSec > 0.0) {
            dWallPct = 100.0 * (cur.simWallClockSec /
                                    base->simWallClockSec -
                                1.0);
            wallCol = Table::num(dWallPct, 1) + "%";
            if (gateWall &&
                cur.simWallClockSec >
                    base->simWallClockSec * (1.0 + opts.wallTolerance)) {
                ++wallRegressions;
                wallCol += " REGRESSED";
            }
        }
        table.addRow({cur.benchmark, cur.mode, std::to_string(cur.cycles),
                      cyclesOk ? (dCycles == 0 ? "0" : "INSTRS-DIFF")
                               : std::to_string(dCycles) + " MISMATCH",
                      hashOk ? "ok" : "MISMATCH",
                      Table::num(cur.simWallClockSec), wallCol});
    }

    std::size_t baselineOnly = 0;
    for (const BenchPoint &base : baseline.points) {
        if (!current.find(base.benchmark, base.mode))
            ++baselineOnly;
    }

    table.print(out);
    out << current.points.size() << " point(s) compared against baseline '"
        << baseline.label << "'";
    if (baselineOnly > 0)
        out << " (" << baselineOnly
            << " baseline point(s) not in this run)";
    out << "\n";
    if (detMismatches > 0) {
        out << "FAIL: " << detMismatches
            << " deterministic mismatch(es) (cycles/instrs/traceHash)\n";
        return BenchCompareResult::DeterministicMismatch;
    }
    if (wallRegressions > 0) {
        out << "FAIL: " << wallRegressions
            << " wall-clock regression(s) beyond "
            << Table::num(100.0 * opts.wallTolerance, 1) << "%\n";
        return BenchCompareResult::WallClockRegression;
    }
    out << "OK: deterministic fields match"
        << (gateWall ? " and wall-clock is within tolerance" : "") << "\n";
    return BenchCompareResult::Ok;
}

BenchRun
runBenchGrid(const std::vector<std::string> &ids,
             const std::vector<Mode> &modes, const BenchGridOptions &opts,
             const GpuConfig &base)
{
    DTBL_ASSERT(opts.repeat >= 1, "repeat must be >= 1");
    BenchRun run;
    run.repeat = opts.repeat;
    HostProfiler &hprof = HostProfiler::instance();
    const bool hprofWasEnabled = hprof.enabled();
    for (const std::string &id : ids) {
        for (Mode m : modes) {
            const std::string key = id + "/" + modeName(m);
            if (!opts.filters.empty()) {
                bool keep = false;
                for (const std::string &f : opts.filters)
                    keep = keep || key.find(f) != std::string::npos;
                if (!keep)
                    continue;
            }
            BenchPoint p;
            p.benchmark = id;
            p.mode = modeName(m);
            for (int rep = 0; rep < opts.repeat; ++rep) {
                std::fprintf(stderr, "  bench %-24s rep %d/%d ...",
                             key.c_str(), rep + 1, opts.repeat);
                std::fflush(stderr);
                if (opts.hostProfile) {
                    hprof.reset();
                    hprof.setEnabled(true);
                }
                auto app = makeBenchmark(id);
                RunOptions ro;
                ro.measureWallClock = true;
                const BenchResult r = runBenchmark(*app, m, base, ro);
                if (!r.verified)
                    DTBL_FATAL("verification failed for ", key);
                std::fprintf(stderr, " %10llu cycles  %8.3f s\n",
                             static_cast<unsigned long long>(
                                 r.report.cycles),
                             r.report.simWallClockSec);
                if (rep == 0) {
                    p.cycles = r.report.cycles;
                    p.instrs = r.stats.warpInstrsIssued;
                    p.traceHash = r.report.traceHash;
                    p.simWallClockSec = r.report.simWallClockSec;
                } else {
                    // Repeats only tighten the wall-clock; deterministic
                    // fields must reproduce bit for bit.
                    if (p.cycles != r.report.cycles ||
                        p.traceHash != r.report.traceHash) {
                        DTBL_FATAL("non-deterministic repeat for ", key,
                                   ": cycles ", p.cycles, " vs ",
                                   r.report.cycles);
                    }
                    p.simWallClockSec = std::min(p.simWallClockSec,
                                                 r.report.simWallClockSec);
                }
            }
            if (p.simWallClockSec > 0.0)
                p.simCyclesPerSec = double(p.cycles) / p.simWallClockSec;
            if (opts.hostProfile && HostProfiler::compiledIn) {
                // Phases of the last repeat, largest exclusive share
                // first. Skip the synthetic root.
                std::vector<std::size_t> order;
                for (std::size_t i = 1; i < hprof.numPhases(); ++i)
                    order.push_back(i);
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return hprof.exclusiveNs(a) >
                                     hprof.exclusiveNs(b);
                          });
                for (std::size_t i = 0;
                     i < order.size() && i < opts.hostPhaseTopK; ++i) {
                    p.hostPhases.emplace_back(
                        hprof.path(order[i]),
                        hprof.exclusiveNs(order[i]));
                }
            }
            run.points.push_back(std::move(p));
        }
    }
    hprof.setEnabled(hprofWasEnabled);
    return run;
}

} // namespace dtbl
