#include "harness/runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "stats/host_prof.hh"

namespace dtbl {

BenchResult
runBenchmark(App &app, Mode mode, const GpuConfig &base,
             const RunOptions &opts)
{
    Program prog;
    {
        DTBL_HPROF_SCOPE("build");
        app.build(prog, mode);
    }
    const GpuConfig cfg = configForMode(mode, base);
    Gpu gpu(cfg, prog);
    if (!opts.traceJsonPath.empty())
        gpu.trace().openJson(opts.traceJsonPath);
    if (opts.checkLevel > 0)
        gpu.enableChecks(CheckLevel(opts.checkLevel), opts.elideChecks);
    if (opts.profileWindow > 0 || !opts.profileOutDir.empty())
        gpu.enableProfiling(opts.profileWindow);
    {
        DTBL_HPROF_SCOPE("setup");
        app.setup(gpu);
    }
    // The wall-clock measurement brackets App::execute only: that is
    // the cycle loop, the part the BENCH trajectory tracks. It reads
    // the host clock and writes report fields after the fact, so it
    // cannot influence the simulation.
    std::chrono::steady_clock::time_point simStart;
    if (opts.measureWallClock)
        simStart = std::chrono::steady_clock::now();
    {
        DTBL_HPROF_SCOPE("sim");
        app.execute(gpu, mode);
    }
    double simSec = 0.0;
    if (opts.measureWallClock) {
        simSec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - simStart)
                     .count();
    }

    BenchResult r;
    {
        DTBL_HPROF_SCOPE("report");
        r.report = gpu.report(app.name(), modeName(mode));
    }
    if (opts.measureWallClock && simSec > 0.0) {
        r.report.simWallClockSec = simSec;
        r.report.simCyclesPerSec = double(r.report.cycles) / simSec;
    }
    if (const IntervalProfiler *prof = gpu.profiler();
        prof && !opts.profileOutDir.empty()) {
        std::filesystem::create_directories(opts.profileOutDir);
        const std::string stem =
            opts.profileOutDir + "/" + app.name() + "_" + modeName(mode);
        prof->writeCsv(stem + ".csv");
        prof->writeJson(stem + ".json");
        const std::string txt =
            prof->textReport(app.name(), modeName(mode));
        if (std::FILE *f = std::fopen((stem + ".txt").c_str(), "w")) {
            std::fwrite(txt.data(), 1, txt.size(), f);
            std::fclose(f);
        }
    }
    r.stats = gpu.stats();
    {
        DTBL_HPROF_SCOPE("verify");
        r.verified = app.verify(gpu);
    }
    r.trace = gpu.trace().summary();
    if (const Sanitizer *san = gpu.sanitizer()) {
        r.checkFindings = san->findings();
        r.checkErrors = san->errorCount();
        r.checkWarnings = san->warningCount();
        r.checkElided = san->elidedChecks();
        r.checkBatched = san->batchedChecks();
    }
    gpu.trace().closeJson();
    return r;
}

} // namespace dtbl
