#include "harness/runner.hh"

namespace dtbl {

BenchResult
runBenchmark(App &app, Mode mode, const GpuConfig &base)
{
    Program prog;
    app.build(prog, mode);
    const GpuConfig cfg = configForMode(mode, base);
    Gpu gpu(cfg, prog);
    app.setup(gpu);
    app.execute(gpu, mode);

    BenchResult r;
    r.report = gpu.report(app.name(), modeName(mode));
    r.stats = gpu.stats();
    r.verified = app.verify(gpu);
    return r;
}

} // namespace dtbl
