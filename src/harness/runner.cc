#include "harness/runner.hh"

namespace dtbl {

BenchResult
runBenchmark(App &app, Mode mode, const GpuConfig &base,
             const RunOptions &opts)
{
    Program prog;
    app.build(prog, mode);
    const GpuConfig cfg = configForMode(mode, base);
    Gpu gpu(cfg, prog);
    if (!opts.traceJsonPath.empty())
        gpu.trace().openJson(opts.traceJsonPath);
    if (opts.checkLevel > 0)
        gpu.enableChecks(CheckLevel(opts.checkLevel));
    app.setup(gpu);
    app.execute(gpu, mode);

    BenchResult r;
    r.report = gpu.report(app.name(), modeName(mode));
    r.stats = gpu.stats();
    r.verified = app.verify(gpu);
    r.trace = gpu.trace().summary();
    if (const Sanitizer *san = gpu.sanitizer()) {
        r.checkFindings = san->findings();
        r.checkErrors = san->errorCount();
        r.checkWarnings = san->warningCount();
    }
    gpu.trace().closeJson();
    return r;
}

} // namespace dtbl
