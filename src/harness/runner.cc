#include "harness/runner.hh"

#include <cstdio>
#include <filesystem>

namespace dtbl {

BenchResult
runBenchmark(App &app, Mode mode, const GpuConfig &base,
             const RunOptions &opts)
{
    Program prog;
    app.build(prog, mode);
    const GpuConfig cfg = configForMode(mode, base);
    Gpu gpu(cfg, prog);
    if (!opts.traceJsonPath.empty())
        gpu.trace().openJson(opts.traceJsonPath);
    if (opts.checkLevel > 0)
        gpu.enableChecks(CheckLevel(opts.checkLevel), opts.elideChecks);
    if (opts.profileWindow > 0 || !opts.profileOutDir.empty())
        gpu.enableProfiling(opts.profileWindow);
    app.setup(gpu);
    app.execute(gpu, mode);

    BenchResult r;
    r.report = gpu.report(app.name(), modeName(mode));
    if (const IntervalProfiler *prof = gpu.profiler();
        prof && !opts.profileOutDir.empty()) {
        std::filesystem::create_directories(opts.profileOutDir);
        const std::string stem =
            opts.profileOutDir + "/" + app.name() + "_" + modeName(mode);
        prof->writeCsv(stem + ".csv");
        prof->writeJson(stem + ".json");
        const std::string txt =
            prof->textReport(app.name(), modeName(mode));
        if (std::FILE *f = std::fopen((stem + ".txt").c_str(), "w")) {
            std::fwrite(txt.data(), 1, txt.size(), f);
            std::fclose(f);
        }
    }
    r.stats = gpu.stats();
    r.verified = app.verify(gpu);
    r.trace = gpu.trace().summary();
    if (const Sanitizer *san = gpu.sanitizer()) {
        r.checkFindings = san->findings();
        r.checkErrors = san->errorCount();
        r.checkWarnings = san->warningCount();
        r.checkElided = san->elidedChecks();
        r.checkBatched = san->batchedChecks();
    }
    gpu.trace().closeJson();
    return r;
}

} // namespace dtbl
