/**
 * @file
 * Perf-regression harness backing the `dtbl-bench` tool: run a
 * (benchmark, mode) grid with host wall-clock measurement, serialize
 * the results as a schema-versioned BENCH JSON trajectory point, and
 * compare a run against a committed baseline.
 *
 * Two field classes exist per point and the compare treats them
 * differently:
 *  - deterministic fields (cycles, instrs, traceHash) are products of
 *    the simulation alone, reproducible on any machine — the baseline
 *    diff requires exact equality;
 *  - wall-clock fields (simWallClockSec, simCyclesPerSec, hostPhases)
 *    are host-machine facts — the compare gates them only when a
 *    tolerance is given (same-machine runs; CI diffs deterministic
 *    fields only, since runners differ).
 */

#ifndef DTBL_HARNESS_PERF_HARNESS_HH
#define DTBL_HARNESS_PERF_HARNESS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace dtbl {

/** One (benchmark, mode) grid point of a bench run. */
struct BenchPoint
{
    std::string benchmark;
    std::string mode;

    // --- deterministic (exact-match in baseline compare) ---------------
    Cycle cycles = 0;
    /** Warp instructions issued (SimStats::warpInstrsIssued). */
    std::uint64_t instrs = 0;
    std::uint64_t traceHash = 0;

    // --- host wall-clock (machine-dependent; gated by tolerance) -------
    /** Min-of-N wall-clock seconds of the sim phase (App::execute). */
    double simWallClockSec = 0.0;
    /** cycles / simWallClockSec (simulator throughput). */
    double simCyclesPerSec = 0.0;
    /** Top host phases by exclusive ns, from the host self-profiler. */
    std::vector<std::pair<std::string, std::uint64_t>> hostPhases;
};

/** A whole trajectory point: the grid plus its run parameters. */
struct BenchRun
{
    /** Version of the serialized layout; readers reject unknown ones. */
    static constexpr int schemaVersion = 1;

    std::string label = "BENCH";
    /** min-of-N repeats behind each wall-clock figure. */
    int repeat = 1;
    std::vector<BenchPoint> points;

    const BenchPoint *find(const std::string &benchmark,
                           const std::string &mode) const;
};

/** Serialize @p run with a stable key order (deterministic fields are
 *  byte-stable across machines; wall-clock fields vary). */
std::string benchJson(const BenchRun &run);

/**
 * Parse a benchJson() document. Returns false (and sets @p err) on
 * malformed input or an unknown schema version.
 */
bool parseBenchJson(const std::string &text, BenchRun &out,
                    std::string &err);

/** Baseline-compare policy. */
struct BenchCompareOptions
{
    /**
     * Fractional wall-clock regression gate: fail when current >
     * baseline * (1 + wallTolerance). <= 0 disables the gate (the
     * default — wall-clock is only comparable across runs of the same
     * machine; pass a tolerance for local baseline-refresh workflows).
     */
    double wallTolerance = 0.0;
};

/** compareBenchRuns result, ordered by severity. */
enum class BenchCompareResult : int
{
    Ok = 0,
    /** cycles/instrs/traceHash mismatch or point missing from baseline. */
    DeterministicMismatch = 1,
    /** wall-clock beyond the tolerance on some point. */
    WallClockRegression = 2,
};

/**
 * Compare @p current against @p baseline, printing a per-point delta
 * table to @p out. Every current point must exist in the baseline and
 * match it exactly on the deterministic fields; baseline points absent
 * from the current run are reported but not failures (smoke-scale CI
 * runs a grid subset against the full committed baseline).
 */
BenchCompareResult compareBenchRuns(const BenchRun &baseline,
                                    const BenchRun &current,
                                    const BenchCompareOptions &opts,
                                    std::ostream &out);

/** Grid-runner knobs (the dtbl-bench CLI surface). */
struct BenchGridOptions
{
    /** min-of-N wall-clock per point (deterministic fields asserted
     *  identical across repeats). */
    int repeat = 1;
    /** Enable the host self-profiler and record top phases per point. */
    bool hostProfile = false;
    /** Phases kept per point when hostProfile is on. */
    std::size_t hostPhaseTopK = 8;
    /** Keep only points whose "<benchmark>/<mode>" contains one of
     *  these substrings (empty = keep all). */
    std::vector<std::string> filters;
};

/**
 * Run @p ids x @p modes on @p base and return the measured grid.
 * Progress goes to stderr; verification failures are fatal (a
 * trajectory point is never produced from wrong results).
 */
BenchRun runBenchGrid(const std::vector<std::string> &ids,
                      const std::vector<Mode> &modes,
                      const BenchGridOptions &opts,
                      const GpuConfig &base = GpuConfig::k20c());

} // namespace dtbl

#endif // DTBL_HARNESS_PERF_HARNESS_HH
