#include "mem/global_memory.hh"

#include <algorithm>
#include <bit>

namespace dtbl {

GlobalMemory::GlobalMemory(std::uint64_t size_bytes)
    : data_(size_bytes, 0)
{
    DTBL_ASSERT(size_bytes < (1ull << 32),
                "device addresses are 32-bit; memory must be < 4GB");
}

Addr
GlobalMemory::allocate(std::uint64_t bytes, std::uint64_t align)
{
    DTBL_ASSERT(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
    const Addr base = (brk_ + align - 1) & ~(align - 1);
    if (base + bytes > data_.size()) {
        DTBL_FATAL("device out of memory: need ", bytes, "B at ", base,
                   ", have ", data_.size(), "B total");
    }
    brk_ = base + bytes;
    allocs_.push_back({base, bytes});
    return base;
}

bool
GlobalMemory::inLiveAllocation(Addr a, std::uint64_t bytes) const
{
    // Bases are strictly increasing: find the last allocation at or
    // below a and test containment.
    auto it = std::upper_bound(allocs_.begin(), allocs_.end(), a,
                               [](Addr v, const Allocation &al) {
                                   return v < al.base;
                               });
    if (it == allocs_.begin())
        return false;
    --it;
    return a >= it->base && a + bytes <= it->base + it->bytes;
}

void
GlobalMemory::check(Addr a, std::uint64_t bytes) const
{
    if (a + bytes > data_.size() || a == 0) {
        DTBL_PANIC("device memory access out of bounds: addr=", a,
                   " size=", bytes, " mem=", data_.size());
    }
}

std::uint32_t
GlobalMemory::read32(Addr a) const
{
    check(a, 4);
    std::uint32_t v;
    std::memcpy(&v, &data_[a], 4);
    return v;
}

void
GlobalMemory::write32(Addr a, std::uint32_t v)
{
    check(a, 4);
    std::memcpy(&data_[a], &v, 4);
}

std::uint16_t
GlobalMemory::read16(Addr a) const
{
    check(a, 2);
    std::uint16_t v;
    std::memcpy(&v, &data_[a], 2);
    return v;
}

void
GlobalMemory::write16(Addr a, std::uint16_t v)
{
    check(a, 2);
    std::memcpy(&data_[a], &v, 2);
}

std::uint8_t
GlobalMemory::read8(Addr a) const
{
    check(a, 1);
    return data_[a];
}

void
GlobalMemory::write8(Addr a, std::uint8_t v)
{
    check(a, 1);
    data_[a] = v;
}

std::uint32_t
GlobalMemory::read(Addr a, unsigned width) const
{
    switch (width) {
      case 1: return read8(a);
      case 2: return read16(a);
      case 4: return read32(a);
      default: DTBL_PANIC("bad access width ", width);
    }
}

void
GlobalMemory::write(Addr a, std::uint32_t v, unsigned width)
{
    switch (width) {
      case 1: write8(a, std::uint8_t(v)); return;
      case 2: write16(a, std::uint16_t(v)); return;
      case 4: write32(a, v); return;
      default: DTBL_PANIC("bad access width ", width);
    }
}

float
GlobalMemory::readF32(Addr a) const
{
    return std::bit_cast<float>(read32(a));
}

void
GlobalMemory::writeF32(Addr a, float v)
{
    write32(a, std::bit_cast<std::uint32_t>(v));
}

void
GlobalMemory::copyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    check(dst, bytes);
    std::memcpy(&data_[dst], src, bytes);
}

void
GlobalMemory::copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const
{
    check(src, bytes);
    std::memcpy(dst, &data_[src], bytes);
}

} // namespace dtbl
