/**
 * @file
 * The GPU memory hierarchy: per-SMX L1 caches, shared L2, DRAM.
 *
 * Timing-only: functional data lives in GlobalMemory and is read/written
 * at issue time by the SMX. Each call here models the latency of one
 * coalesced 128B transaction.
 *
 * Two timing paths exist, selected by GpuConfig::modelMemContention:
 *  - the flat path charges every transaction the full independent
 *    L1 -> L2 -> DRAM latency (the original model, kept bit-for-bit for
 *    regression comparison);
 *  - the contention path adds per-L1 and shared-L2 MSHR files
 *    (mem/mshr.hh) so a second request to an in-flight line merges onto
 *    the pending fill, MSHR exhaustion back-pressures the requester,
 *    and an address-interleaved banked L2 port serializes conflicting
 *    transactions. L2 miss fills forward the critical word after
 *    l2FillForwardCycles instead of re-charging the whole L2 pipeline.
 */

#ifndef DTBL_MEM_MEMORY_SYSTEM_HH
#define DTBL_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "stats/metrics.hh"
#include "stats/trace.hh"

namespace dtbl {

class MemorySystem
{
  public:
    MemorySystem(const GpuConfig &cfg, SimStats &stats,
                 TraceSink *trace = nullptr, Pmu *pmu = nullptr);

    /** Load transaction; returns data-ready cycle for the warp. */
    Cycle load(unsigned smx, Addr addr, Cycle now);

    /**
     * Store transaction; returns the cycle at which the store has been
     * accepted (stores do not block the warp past acceptance). Under
     * the contention model acceptance is delayed by L2 bank-port
     * queuing; the flat path accepts at the L2 pipeline exit as before.
     */
    Cycle store(unsigned smx, Addr addr, Cycle now);

    /**
     * Atomic read-modify-write: performed at the L2 (L1 bypass +
     * invalidate). Returns the warp-visible completion cycle.
     */
    Cycle atomic(unsigned smx, Addr addr, Cycle now);

    /** Copy DRAM-side counters into the run stats. */
    void finalizeInto(SimStats &stats) const;

    const Dram &dram() const { return dram_; }

    /** L2 bank-port conflicts observed on @p bank (tests/PMU). */
    std::uint64_t
    bankConflicts(unsigned bank) const
    {
        return bankConflictCounts_[bank];
    }

  private:
    /** L2 + DRAM portion shared by loads and L1 write-through stores. */
    Cycle accessL2(Addr addr, bool is_write, Cycle now);

    // --- contention path ----------------------------------------------
    Cycle loadContended(unsigned smx, Addr addr, Cycle now);
    Cycle storeContended(unsigned smx, Addr addr, Cycle now);
    /**
     * Banked-port + MSHR L2/DRAM path. @p now is the cycle the request
     * leaves the L1 (or the SMX for atomics). Writes return port
     * acceptance + pipeline; reads return the fill-forward cycle.
     */
    Cycle accessL2Contended(Addr addr, bool is_write, Cycle now);
    /**
     * Arbitrate for the port of the bank holding @p line. Returns the
     * grant cycle (>= @p now) and accounts/serializes conflicts.
     */
    Cycle l2PortGrant(Addr line, Cycle now);

    const GpuConfig &cfg_;
    SimStats &stats_;
    TraceSink *trace_;
    std::vector<Cache> l1s_;
    Cache l2_;
    Dram dram_;

    std::vector<Mshr> l1Mshrs_;
    Mshr l2Mshr_;
    /** Per-bank cycle until which the port is occupied. */
    std::vector<Cycle> bankBusyUntil_;
    std::vector<std::uint64_t> bankConflictCounts_;
};

} // namespace dtbl

#endif // DTBL_MEM_MEMORY_SYSTEM_HH
