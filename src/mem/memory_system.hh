/**
 * @file
 * The GPU memory hierarchy: per-SMX L1 caches, shared L2, DRAM.
 *
 * Timing-only: functional data lives in GlobalMemory and is read/written
 * at issue time by the SMX. Each call here models the latency of one
 * coalesced 128B transaction.
 */

#ifndef DTBL_MEM_MEMORY_SYSTEM_HH
#define DTBL_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "stats/metrics.hh"
#include "stats/trace.hh"

namespace dtbl {

class MemorySystem
{
  public:
    MemorySystem(const GpuConfig &cfg, SimStats &stats,
                 TraceSink *trace = nullptr, Pmu *pmu = nullptr);

    /** Load transaction; returns data-ready cycle for the warp. */
    Cycle load(unsigned smx, Addr addr, Cycle now);

    /**
     * Store transaction; returns the cycle at which the store has been
     * accepted (stores do not block the warp past acceptance).
     */
    Cycle store(unsigned smx, Addr addr, Cycle now);

    /**
     * Atomic read-modify-write: performed at the L2 (L1 bypass +
     * invalidate). Returns the warp-visible completion cycle.
     */
    Cycle atomic(unsigned smx, Addr addr, Cycle now);

    /** Copy DRAM-side counters into the run stats. */
    void finalizeInto(SimStats &stats) const;

    const Dram &dram() const { return dram_; }

  private:
    /** L2 + DRAM portion shared by loads and L1 write-through stores. */
    Cycle accessL2(Addr addr, bool is_write, Cycle now);

    const GpuConfig &cfg_;
    SimStats &stats_;
    TraceSink *trace_;
    std::vector<Cache> l1s_;
    Cache l2_;
    Dram dram_;
};

} // namespace dtbl

#endif // DTBL_MEM_MEMORY_SYSTEM_HH
