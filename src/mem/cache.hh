/**
 * @file
 * Timing-only set-associative cache model (tags + LRU, no data array).
 *
 * Functional values always come from GlobalMemory at issue time; the
 * cache decides hit/miss and victim writebacks for the timing model.
 */

#ifndef DTBL_MEM_CACHE_HH
#define DTBL_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace dtbl {

/** Result of a cache probe-and-update. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty victim line was evicted; its address follows. */
    bool writeback = false;
    Addr writebackAddr = 0;
};

class Cache
{
  public:
    enum class WritePolicy
    {
        /** Write-through, no write-allocate (L1 data cache). */
        WriteThrough,
        /** Write-back, write-allocate without fetch (L2). */
        WriteBack,
    };

    Cache(const CacheConfig &cfg, WritePolicy policy);

    /**
     * Probe for the line containing @p addr and update tag/LRU state.
     * Misses allocate (except write misses under WriteThrough).
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Invalidate the line containing @p addr if present (atomics). */
    void invalidate(Addr addr);

    /**
     * Mark the line containing @p addr dirty without touching LRU or
     * allocating (atomics' read-modify-write: the read already probed
     * the tags; a full second access() would double-touch LRU state
     * and could silently drop a victim writeback). No-op when the line
     * is absent — an in-flight fill's line can have been evicted by an
     * interleaved access before the atomic's write half lands.
     */
    void markDirty(Addr addr);

    Cycle hitLatency() const { return cfg_.hitLatency; }
    std::uint32_t lineBytes() const { return cfg_.lineBytes; }
    std::uint32_t numSets() const { return numSets_; }

    void reset();

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    Line *findLine(Addr tag, std::uint32_t set);

    CacheConfig cfg_;
    WritePolicy policy_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; // numSets_ * ways, set-major
    std::uint64_t useClock_ = 0;
};

} // namespace dtbl

#endif // DTBL_MEM_CACHE_HH
