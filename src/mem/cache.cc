#include "mem/cache.hh"

#include "common/log.hh"

namespace dtbl {

Cache::Cache(const CacheConfig &cfg, WritePolicy policy)
    : cfg_(cfg), policy_(policy)
{
    DTBL_ASSERT(cfg_.ways > 0);
    numSets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    DTBL_ASSERT(numSets_ > 0, "cache with zero sets");
    lines_.resize(std::size_t(numSets_) * cfg_.ways);
}

Cache::Line *
Cache::findLine(Addr tag, std::uint32_t set)
{
    Line *base = &lines_[std::size_t(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    const Addr lineAddr = addr / cfg_.lineBytes;
    const std::uint32_t set = std::uint32_t(lineAddr % numSets_);
    const Addr tag = lineAddr / numSets_;
    ++useClock_;

    CacheAccessResult res;
    if (Line *line = findLine(tag, set)) {
        res.hit = true;
        line->lastUse = useClock_;
        if (is_write) {
            if (policy_ == WritePolicy::WriteBack)
                line->dirty = true;
            // WriteThrough: data goes downstream, line stays clean.
        }
        return res;
    }

    // Miss. Write misses under write-through do not allocate.
    if (is_write && policy_ == WritePolicy::WriteThrough)
        return res;

    // Choose victim: first invalid way, else LRU.
    Line *base = &lines_[std::size_t(set) * cfg_.ways];
    Line *victim = &base[0];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.writebackAddr =
            (victim->tag * numSets_ + set) * cfg_.lineBytes;
    }
    victim->valid = true;
    victim->dirty = is_write && policy_ == WritePolicy::WriteBack;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return res;
}

void
Cache::invalidate(Addr addr)
{
    const Addr lineAddr = addr / cfg_.lineBytes;
    const std::uint32_t set = std::uint32_t(lineAddr % numSets_);
    const Addr tag = lineAddr / numSets_;
    if (Line *line = findLine(tag, set)) {
        line->valid = false;
        line->dirty = false;
    }
}

void
Cache::markDirty(Addr addr)
{
    const Addr lineAddr = addr / cfg_.lineBytes;
    const std::uint32_t set = std::uint32_t(lineAddr % numSets_);
    const Addr tag = lineAddr / numSets_;
    if (Line *line = findLine(tag, set))
        line->dirty = true;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    useClock_ = 0;
}

} // namespace dtbl
