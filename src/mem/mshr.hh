/**
 * @file
 * Miss-status holding registers (MSHRs) for the analytic memory model.
 *
 * The memory hierarchy computes every transaction's completion cycle
 * synchronously, so an "in-flight fill" is simply a (line, fillDone)
 * pair whose fillDone lies in the future. The MSHR file tracks those
 * pairs with a bounded entry count:
 *  - a second request to a line whose fill is pending *merges* onto the
 *    pending entry and completes when the fill does, instead of paying
 *    a second L2/DRAM round trip;
 *  - a primary miss arriving while every entry is occupied waits for
 *    the earliest entry to retire (MSHR exhaustion back-pressure), and
 *    the wait is accounted in stallCycles();
 *  - at most mergeWidth requests (primary included) share one entry;
 *    requests beyond the width wait for the fill but count as stalls,
 *    not merges, mirroring how real secondary-miss slots run out.
 *
 * Entries are pruned lazily: callers present a current cycle and any
 * entry whose fill has retired by then is dropped. Calls arrive in
 * non-decreasing simulated time (the same precondition Dram::access
 * documents), so pruning never resurrects completed fills.
 */

#ifndef DTBL_MEM_MSHR_HH
#define DTBL_MEM_MSHR_HH

#include <cstdint>
#include <map>

#include "common/types.hh"
#include "stats/pmu.hh"

namespace dtbl {

class Mshr
{
  public:
    struct Entry
    {
        /** Cycle the fill retires and the entry frees. */
        Cycle fillDone = 0;
        /** Requests sharing the entry, primary miss included. */
        unsigned requests = 1;
    };

    Mshr(unsigned entries, unsigned merge_width)
        : entries_(entries), mergeWidth_(merge_width)
    {
    }

    /** Occupancy histogram recorded at each allocation (may be null). */
    void setOccupancyHistogram(PmuHistogram *h) { occupancyHist_ = h; }

    /**
     * The pending entry covering @p line, or nullptr when no fill is in
     * flight at @p now. Retired entries are pruned first.
     */
    Entry *find(Addr line, Cycle now);

    /** True when no entry is free at @p now. */
    bool full(Cycle now);

    /** Earliest cycle an entry frees. @pre full(now). */
    Cycle nextFree() const;

    /**
     * Occupy one entry for the fill of @p line retiring at
     * @p fill_done. @pre !full(now) after any back-pressure wait.
     */
    void allocate(Addr line, Cycle fill_done, Cycle now);

    /**
     * Attach one more request to @p e. Returns true when a merge slot
     * was available (counted in merges()); false when the entry's merge
     * width is exhausted and the request must wait for the fill without
     * sharing it (callers account the wait via noteStall()).
     */
    bool merge(Entry &e);

    /** Account @p cycles of exhaustion/merge-width back-pressure. */
    void noteStall(Cycle cycles) { stallCycles_ += cycles; }

    // --- counters -----------------------------------------------------
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t merges() const { return merges_; }
    Cycle stallCycles() const { return stallCycles_; }

    void reset();

  private:
    void prune(Cycle now);

    unsigned entries_;
    unsigned mergeWidth_;
    /** line -> pending fill; ordered map keeps iteration deterministic. */
    std::map<Addr, Entry> inflight_;
    PmuHistogram *occupancyHist_ = nullptr;

    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
    Cycle stallCycles_ = 0;
};

} // namespace dtbl

#endif // DTBL_MEM_MSHR_HH
