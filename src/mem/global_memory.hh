/**
 * @file
 * Functional backing store for device global memory plus a bump allocator.
 *
 * The timing model (caches/DRAM) is separate; this class only holds the
 * bytes. Device addresses are 32-bit in the ISA, so the store is < 4GB.
 */

#ifndef DTBL_MEM_GLOBAL_MEMORY_HH
#define DTBL_MEM_GLOBAL_MEMORY_HH

#include <cstring>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dtbl {

class GlobalMemory
{
  public:
    explicit GlobalMemory(std::uint64_t size_bytes);

    std::uint64_t size() const { return data_.size(); }

    /**
     * Allocate @p bytes with the given alignment; never freed (bump
     * allocation, matching the simple device-side allocator the paper's
     * runtime uses for parameter buffers).
     */
    Addr allocate(std::uint64_t bytes, std::uint64_t align = 256);

    /** Bytes currently allocated. */
    std::uint64_t allocated() const { return brk_; }

    /**
     * Does [a, a+bytes) fall inside one allocation? Backs the runtime
     * sanitizer's OOB checks; the registry is always maintained (one
     * record per allocate call, negligible cost under bump allocation).
     */
    bool inLiveAllocation(Addr a, std::uint64_t bytes) const;

    std::size_t numAllocations() const { return allocs_.size(); }

    // --- typed access -----------------------------------------------
    std::uint32_t read32(Addr a) const;
    void write32(Addr a, std::uint32_t v);
    std::uint16_t read16(Addr a) const;
    void write16(Addr a, std::uint16_t v);
    std::uint8_t read8(Addr a) const;
    void write8(Addr a, std::uint8_t v);

    /** Width-dispatched read/write (width in {1, 2, 4}). */
    std::uint32_t read(Addr a, unsigned width) const;
    void write(Addr a, std::uint32_t v, unsigned width);

    float readF32(Addr a) const;
    void writeF32(Addr a, float v);

    // --- bulk host access ---------------------------------------------
    void copyToDevice(Addr dst, const void *src, std::uint64_t bytes);
    void copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const;

    /** Host-side convenience: upload a vector, returns its address. */
    template <typename T>
    Addr
    upload(const std::vector<T> &v, std::uint64_t align = 256)
    {
        Addr a = allocate(v.size() * sizeof(T) + (v.empty() ? 4 : 0), align);
        if (!v.empty())
            copyToDevice(a, v.data(), v.size() * sizeof(T));
        return a;
    }

    template <typename T>
    std::vector<T>
    download(Addr a, std::size_t count) const
    {
        std::vector<T> v(count);
        if (count)
            copyFromDevice(v.data(), a, count * sizeof(T));
        return v;
    }

  private:
    struct Allocation
    {
        Addr base = 0;
        std::uint64_t bytes = 0;
    };

    void check(Addr a, std::uint64_t bytes) const;

    std::vector<std::uint8_t> data_;
    /** All allocations, base-ascending (bump allocation never frees). */
    std::vector<Allocation> allocs_;
    std::uint64_t brk_ = 256; // keep address 0 unused (null)
};

} // namespace dtbl

#endif // DTBL_MEM_GLOBAL_MEMORY_HH
