#include "mem/memory_system.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "stats/host_prof.hh"

namespace dtbl {

MemorySystem::MemorySystem(const GpuConfig &cfg, SimStats &stats,
                           TraceSink *trace, Pmu *pmu)
    : cfg_(cfg), stats_(stats), trace_(trace),
      l2_(cfg.l2, Cache::WritePolicy::WriteBack),
      dram_(cfg.dram, cfg.l2.lineBytes, trace, pmu),
      l2Mshr_(cfg.l2MshrEntries, cfg.mshrMergeWidth),
      bankBusyUntil_(std::max(1u, cfg.l2Banks), 0),
      bankConflictCounts_(std::max(1u, cfg.l2Banks), 0)
{
    l1s_.reserve(cfg.numSmx);
    l1Mshrs_.reserve(cfg.numSmx);
    for (unsigned i = 0; i < cfg.numSmx; ++i) {
        l1s_.emplace_back(cfg.l1, Cache::WritePolicy::WriteThrough);
        l1Mshrs_.emplace_back(cfg.l1MshrEntries, cfg.mshrMergeWidth);
    }
    if (pmu) {
        pmu->probe("l1.mshr_merges", PmuUnit::Mem,
                   [this] { return stats_.l1MshrMerges; });
        pmu->probe("l2.mshr_merges", PmuUnit::Mem,
                   [this] { return stats_.l2MshrMerges; });
        pmu->probe("mem.mshr_stall_cycles", PmuUnit::Mem,
                   [this] { return stats_.mshrStallCycles; });
        pmu->probe("l2.bank_conflicts", PmuUnit::Mem,
                   [this] { return stats_.l2BankConflicts; });
        pmu->probe("dram.write_bypass", PmuUnit::Mem,
                   [this] { return stats_.dramWriteBypass; });
        for (unsigned b = 0; b < cfg.l2Banks; ++b) {
            pmu->probe("l2.b" + std::to_string(b) + ".conflicts",
                       PmuUnit::Mem,
                       [this, b] { return bankConflictCounts_[b]; },
                       std::int32_t(b));
        }
        PmuHistogram *l1Occ =
            pmu->histogram("l1.mshr_occupancy", PmuUnit::Mem);
        for (Mshr &m : l1Mshrs_)
            m.setOccupancyHistogram(l1Occ);
        l2Mshr_.setOccupancyHistogram(
            pmu->histogram("l2.mshr_occupancy", PmuUnit::Mem));
    }
}

// --- flat-latency path (pre-MSHR model, kept bit-for-bit) ---------------

Cycle
MemorySystem::accessL2(Addr addr, bool is_write, Cycle now)
{
    const auto res = l2_.access(addr, is_write);
    if (res.writeback) {
        // Writeback is fire-and-forget: it never re-arbitrates for an
        // L2 bank port, so count it as a DRAM write bypass.
        ++stats_.dramWriteBypass;
        dram_.access(res.writebackAddr, true, now);
    }
    if (res.hit) {
        ++stats_.l2Hits;
        return now + cfg_.l2.hitLatency;
    }
    ++stats_.l2Misses;
    TraceSink::emit(trace_, now, TraceEvent::L2Miss, traceLaneMem, is_write,
                    addr);
    if (is_write) {
        // Write-allocate without fetch: accepted after L2 pipeline.
        return now + cfg_.l2.hitLatency;
    }
    const Cycle dramDone = dram_.access(addr, false, now);
    return dramDone + cfg_.l2.hitLatency;
}

// --- contention path (MSHR merge + banked L2 port) ----------------------

Cycle
MemorySystem::l2PortGrant(Addr line, Cycle now)
{
    const unsigned bank = unsigned(line % bankBusyUntil_.size());
    const Cycle start = std::max(now, bankBusyUntil_[bank]);
    if (start > now) {
        ++stats_.l2BankConflicts;
        ++bankConflictCounts_[bank];
        TraceSink::emit(trace_, now, TraceEvent::L2BankConflict,
                        traceLaneMem, bank, start - now);
    }
    bankBusyUntil_[bank] = start + cfg_.l2BankBusyCycles;
    return start;
}

Cycle
MemorySystem::accessL2Contended(Addr addr, bool is_write, Cycle now)
{
    const Addr line = addr / cfg_.l2.lineBytes;
    const Cycle start = l2PortGrant(line, now);
    if (!is_write) {
        if (Mshr::Entry *e = l2Mshr_.find(line, start)) {
            // Secondary miss: the line's fill is still in flight.
            if (l2Mshr_.merge(*e)) {
                ++stats_.l2MshrMerges;
                TraceSink::emit(trace_, start, TraceEvent::MshrMerge,
                                traceLaneMem, 2, addr);
                return std::max(e->fillDone, start + cfg_.l2.hitLatency);
            }
            // Merge width exhausted: wait for the fill to retire, then
            // the re-probe hits in the tag array.
            const Cycle wait = e->fillDone - start;
            l2Mshr_.noteStall(wait);
            stats_.mshrStallCycles += wait;
            return e->fillDone + cfg_.l2.hitLatency;
        }
    }
    const auto res = l2_.access(addr, is_write);
    if (res.writeback) {
        ++stats_.dramWriteBypass;
        dram_.access(res.writebackAddr, true, start);
    }
    if (res.hit) {
        ++stats_.l2Hits;
        return start + cfg_.l2.hitLatency;
    }
    ++stats_.l2Misses;
    TraceSink::emit(trace_, start, TraceEvent::L2Miss, traceLaneMem,
                    is_write, addr);
    if (is_write) {
        // Write-allocate without fetch: accepted after L2 pipeline.
        return start + cfg_.l2.hitLatency;
    }
    // Primary miss: occupy an L2 MSHR for the DRAM round trip; a full
    // file delays the DRAM issue until the earliest entry retires.
    Cycle issue = start;
    if (l2Mshr_.full(start)) {
        const Cycle free = l2Mshr_.nextFree();
        const Cycle wait = free - start;
        l2Mshr_.noteStall(wait);
        stats_.mshrStallCycles += wait;
        issue = free;
    }
    const Cycle dramDone = dram_.access(addr, false, issue);
    // Critical-word-first fill bypass: the requester gets its data
    // l2FillForwardCycles after DRAM data return instead of re-paying
    // the whole L2 pipeline like the flat path does.
    const Cycle fillDone = dramDone + cfg_.l2FillForwardCycles;
    l2Mshr_.allocate(line, fillDone, issue);
    return fillDone;
}

Cycle
MemorySystem::loadContended(unsigned smx, Addr addr, Cycle now)
{
    const Addr line = addr / cfg_.l1.lineBytes;
    Mshr &mshr = l1Mshrs_[smx];
    const auto res = l1s_[smx].access(addr, false);
    const Cycle l1Done = now + cfg_.l1.hitLatency;
    if (Mshr::Entry *e = mshr.find(line, now)) {
        // The line's fill is still in flight: a secondary miss. Tags
        // allocate at the primary miss so this usually probes as a hit
        // (the flat model's fake hit), but an interleaved miss can have
        // evicted the line meanwhile — the pending fill serves the
        // request either way. Merge onto it instead of re-fetching.
        if (mshr.merge(*e)) {
            ++stats_.l1MshrMerges;
            TraceSink::emit(trace_, now, TraceEvent::MshrMerge,
                            traceLaneMem, 1, addr);
            return std::max(e->fillDone, l1Done);
        }
        // Merge width exhausted: wait out the fill, then re-probe hits.
        const Cycle wait = e->fillDone - now;
        mshr.noteStall(wait);
        stats_.mshrStallCycles += wait;
        return e->fillDone + cfg_.l1.hitLatency;
    }
    if (res.hit) {
        ++stats_.l1Hits;
        return l1Done;
    }
    ++stats_.l1Misses;
    TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                    addr);
    // Primary miss: needs a free MSHR before the request can leave the
    // SMX; exhaustion back-pressures the warp until one retires.
    Cycle issue = now + cfg_.l1.hitLatency;
    if (mshr.full(now)) {
        const Cycle free = mshr.nextFree();
        const Cycle wait = free - now;
        mshr.noteStall(wait);
        stats_.mshrStallCycles += wait;
        issue = std::max(issue, free);
    }
    const Cycle fillDone = accessL2Contended(addr, false, issue);
    mshr.allocate(line, fillDone, issue);
    return fillDone;
}

Cycle
MemorySystem::storeContended(unsigned smx, Addr addr, Cycle now)
{
    // Write-through: update L1 if present, always go to L2.
    const auto res = l1s_[smx].access(addr, true);
    if (res.hit) {
        ++stats_.l1Hits;
    } else {
        ++stats_.l1Misses;
        TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                        addr);
    }
    const Cycle reqStart = now + cfg_.l1.hitLatency;
    const Cycle done = accessL2Contended(addr, true, reqStart);
    // Write path returns grant + L2 pipeline; the store is *accepted*
    // (write buffer slot granted) as soon as the bank port is, so only
    // the queuing delay back-pressures the warp.
    const Cycle queue = done - (reqStart + cfg_.l2.hitLatency);
    return now + queue;
}

// --- public entry points ------------------------------------------------

Cycle
MemorySystem::load(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    DTBL_HPROF_SCOPE("mem");
    if (cfg_.modelMemContention)
        return loadContended(smx, addr, now);
    const auto res = l1s_[smx].access(addr, false);
    if (res.hit) {
        ++stats_.l1Hits;
        return now + cfg_.l1.hitLatency;
    }
    ++stats_.l1Misses;
    TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                    addr);
    return accessL2(addr, false, now + cfg_.l1.hitLatency);
}

Cycle
MemorySystem::store(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    DTBL_HPROF_SCOPE("mem");
    if (cfg_.modelMemContention)
        return storeContended(smx, addr, now);
    // Write-through: update L1 if present, always go to L2.
    const auto res = l1s_[smx].access(addr, true);
    if (res.hit) {
        ++stats_.l1Hits;
    } else {
        ++stats_.l1Misses;
        TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                        addr);
    }
    return accessL2(addr, true, now + cfg_.l1.hitLatency);
}

Cycle
MemorySystem::atomic(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    DTBL_HPROF_SCOPE("mem");
    // Atomics are resolved at the L2; keep L1 copies coherent by
    // invalidating (other SMXs' stale L1 lines are a timing-only
    // artifact since data is functional-at-issue).
    l1s_[smx].invalidate(addr);
    const Cycle done = cfg_.modelMemContention
                           ? accessL2Contended(addr, false, now)
                           : accessL2(addr, false, now);
    // Mark the read-modify-write's line dirty without a second tag
    // access: the old double access() bumped LRU state twice and would
    // have dropped any victim writeback it produced.
    l2_.markDirty(addr);
    return std::max(done, now + cfg_.atomicLatency);
}

void
MemorySystem::finalizeInto(SimStats &stats) const
{
    stats.dramReads = dram_.reads();
    stats.dramWrites = dram_.writes();
    stats.dramActivityCycles = dram_.activityCycles();
}

} // namespace dtbl
