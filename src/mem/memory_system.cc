#include "mem/memory_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtbl {

MemorySystem::MemorySystem(const GpuConfig &cfg, SimStats &stats,
                           TraceSink *trace, Pmu *pmu)
    : cfg_(cfg), stats_(stats), trace_(trace),
      l2_(cfg.l2, Cache::WritePolicy::WriteBack),
      dram_(cfg.dram, cfg.l2.lineBytes, trace, pmu)
{
    l1s_.reserve(cfg.numSmx);
    for (unsigned i = 0; i < cfg.numSmx; ++i)
        l1s_.emplace_back(cfg.l1, Cache::WritePolicy::WriteThrough);
}

Cycle
MemorySystem::accessL2(Addr addr, bool is_write, Cycle now)
{
    const auto res = l2_.access(addr, is_write);
    if (res.writeback)
        dram_.access(res.writebackAddr, true, now);
    if (res.hit) {
        ++stats_.l2Hits;
        return now + cfg_.l2.hitLatency;
    }
    ++stats_.l2Misses;
    TraceSink::emit(trace_, now, TraceEvent::L2Miss, traceLaneMem, is_write,
                    addr);
    if (is_write) {
        // Write-allocate without fetch: accepted after L2 pipeline.
        return now + cfg_.l2.hitLatency;
    }
    const Cycle dramDone = dram_.access(addr, false, now);
    return dramDone + cfg_.l2.hitLatency;
}

Cycle
MemorySystem::load(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    const auto res = l1s_[smx].access(addr, false);
    if (res.hit) {
        ++stats_.l1Hits;
        return now + cfg_.l1.hitLatency;
    }
    ++stats_.l1Misses;
    TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                    addr);
    return accessL2(addr, false, now + cfg_.l1.hitLatency);
}

Cycle
MemorySystem::store(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    // Write-through: update L1 if present, always go to L2.
    const auto res = l1s_[smx].access(addr, true);
    if (res.hit) {
        ++stats_.l1Hits;
    } else {
        ++stats_.l1Misses;
        TraceSink::emit(trace_, now, TraceEvent::L1Miss, traceLaneMem, smx,
                        addr);
    }
    return accessL2(addr, true, now + cfg_.l1.hitLatency);
}

Cycle
MemorySystem::atomic(unsigned smx, Addr addr, Cycle now)
{
    DTBL_ASSERT(smx < l1s_.size());
    // Atomics are resolved at the L2; keep L1 copies coherent by
    // invalidating (other SMXs' stale L1 lines are a timing-only
    // artifact since data is functional-at-issue).
    l1s_[smx].invalidate(addr);
    const Cycle done = accessL2(addr, false, now);
    l2_.access(addr, true); // mark the line dirty (read-modify-write)
    return std::max(done, now + cfg_.atomicLatency);
}

void
MemorySystem::finalizeInto(SimStats &stats) const
{
    stats.dramReads = dram_.reads();
    stats.dramWrites = dram_.writes();
    stats.dramActivityCycles = dram_.activityCycles();
}

} // namespace dtbl
