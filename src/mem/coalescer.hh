/**
 * @file
 * Per-warp memory access coalescer.
 *
 * Accesses by the 32 lanes of a warp are merged into the minimal set of
 * 128B-segment transactions (Section 2.2); divergent address patterns
 * therefore replay into many transactions, which is how the model
 * reproduces memory-divergence penalties.
 */

#ifndef DTBL_MEM_COALESCER_HH
#define DTBL_MEM_COALESCER_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace dtbl {

class Coalescer
{
  public:
    explicit Coalescer(std::uint32_t segment_bytes = 128)
        : segmentBytes_(segment_bytes)
    {}

    /**
     * Compute the distinct segment base addresses touched by the active
     * lanes. Addresses are per-lane byte addresses; @p width is the
     * per-lane access width in bytes.
     * @return segment-aligned base addresses, deduplicated, issue order.
     */
    std::vector<Addr> coalesce(const std::array<Addr, warpSize> &lane_addrs,
                               ActiveMask mask, unsigned width) const;

    std::uint32_t segmentBytes() const { return segmentBytes_; }

  private:
    std::uint32_t segmentBytes_;
};

} // namespace dtbl

#endif // DTBL_MEM_COALESCER_HH
