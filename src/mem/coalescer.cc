#include "mem/coalescer.hh"

#include <algorithm>

namespace dtbl {

std::vector<Addr>
Coalescer::coalesce(const std::array<Addr, warpSize> &lane_addrs,
                    ActiveMask mask, unsigned width) const
{
    std::vector<Addr> segments;
    segments.reserve(4);
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        // An access may straddle a segment boundary (rare: unaligned);
        // cover both touched segments.
        const Addr first = lane_addrs[lane] / segmentBytes_;
        const Addr last = (lane_addrs[lane] + width - 1) / segmentBytes_;
        for (Addr seg = first; seg <= last; ++seg) {
            const Addr base = seg * segmentBytes_;
            if (std::find(segments.begin(), segments.end(), base) ==
                segments.end()) {
                segments.push_back(base);
            }
        }
    }
    return segments;
}

} // namespace dtbl
