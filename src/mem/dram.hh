/**
 * @file
 * GDDR5-like DRAM timing model with per-partition buses and per-bank
 * row-buffer state, plus the activity/commands counters used for the
 * paper's DRAM-efficiency metric (Figure 7).
 */

#ifndef DTBL_MEM_DRAM_HH
#define DTBL_MEM_DRAM_HH

#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "stats/pmu.hh"
#include "stats/trace.hh"

namespace dtbl {

class Dram
{
  public:
    explicit Dram(const DramConfig &cfg, std::uint32_t line_bytes,
                  TraceSink *trace = nullptr, Pmu *pmu = nullptr);

    /**
     * Issue one line-sized command and return its completion cycle.
     * @param addr line-aligned device address
     * @param is_write write command (no response data needed)
     * @param now issue cycle (must be non-decreasing across calls)
     */
    Cycle access(Addr addr, bool is_write, Cycle now);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    /** Union of cycles with a pending request, over all partitions. */
    Cycle activityCycles() const;

    /** Row-buffer hit-rate (for tests/ablation). */
    double rowHitRate() const;

    void reset();

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycle readyUntil = 0;
    };

    struct Partition
    {
        std::vector<Bank> banks;
        Cycle busUntil = 0;
        BusyTracker activity;
    };

    DramConfig cfg_;
    std::uint32_t lineBytes_;
    TraceSink *trace_;
    std::vector<Partition> partitions_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace dtbl

#endif // DTBL_MEM_DRAM_HH
