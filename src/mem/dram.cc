#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtbl {

Dram::Dram(const DramConfig &cfg, std::uint32_t line_bytes, TraceSink *trace,
           Pmu *pmu)
    : cfg_(cfg), lineBytes_(line_bytes), trace_(trace)
{
    partitions_.resize(cfg_.numPartitions);
    for (auto &p : partitions_)
        p.banks.resize(cfg_.banksPerPartition);
    if (pmu) {
        pmu->probe("dram.reads", PmuUnit::Dram, [this] { return reads_; });
        pmu->probe("dram.writes", PmuUnit::Dram, [this] { return writes_; });
        pmu->probe("dram.row_hits", PmuUnit::Dram,
                   [this] { return rowHits_; });
        pmu->probe("dram.row_misses", PmuUnit::Dram,
                   [this] { return rowMisses_; });
        for (std::size_t i = 0; i < partitions_.size(); ++i)
            pmu->busy("dram.p" + std::to_string(i) + ".busy", PmuUnit::Dram,
                      &partitions_[i].activity, std::int32_t(i));
    }
}

Cycle
Dram::access(Addr addr, bool is_write, Cycle now)
{
    const Addr line = addr / lineBytes_;
    Partition &part = partitions_[line % cfg_.numPartitions];
    const std::uint64_t rowGlobal = addr / cfg_.rowBytes;
    Bank &bank = part.banks[rowGlobal % cfg_.banksPerPartition];
    const std::uint64_t row = rowGlobal / cfg_.banksPerPartition;

    Cycle ready = std::max(now + cfg_.accessLatency, bank.readyUntil);
    if (bank.openRow != row) {
        ready += cfg_.rowMissCycles;
        bank.openRow = row;
        ++rowMisses_;
    } else {
        ++rowHits_;
    }
    const Cycle busStart = std::max(ready, part.busUntil);
    const Cycle end = busStart + cfg_.burstCycles;
    part.busUntil = end;
    bank.readyUntil = end;
    part.activity.record(now, end);

    if (is_write)
        ++writes_;
    else
        ++reads_;
    TraceSink::emit(trace_, now,
                    is_write ? TraceEvent::DramWrite : TraceEvent::DramRead,
                    traceLaneMem, line % cfg_.numPartitions, addr);
    return end;
}

Cycle
Dram::activityCycles() const
{
    Cycle total = 0;
    for (const auto &p : partitions_)
        total += p.activity.busyCycles();
    return total;
}

double
Dram::rowHitRate() const
{
    const std::uint64_t total = rowHits_ + rowMisses_;
    return total ? double(rowHits_) / double(total) : 0.0;
}

void
Dram::reset()
{
    for (auto &p : partitions_) {
        p.busUntil = 0;
        p.activity.reset();
        for (auto &b : p.banks)
            b = Bank{};
    }
    reads_ = writes_ = rowHits_ = rowMisses_ = 0;
}

} // namespace dtbl
