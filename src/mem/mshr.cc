#include "mem/mshr.hh"

#include "common/log.hh"

namespace dtbl {

void
Mshr::prune(Cycle now)
{
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second.fillDone <= now)
            it = inflight_.erase(it);
        else
            ++it;
    }
}

Mshr::Entry *
Mshr::find(Addr line, Cycle now)
{
    prune(now);
    auto it = inflight_.find(line);
    return it == inflight_.end() ? nullptr : &it->second;
}

bool
Mshr::full(Cycle now)
{
    prune(now);
    return inflight_.size() >= entries_;
}

Cycle
Mshr::nextFree() const
{
    DTBL_ASSERT(!inflight_.empty(), "nextFree on an empty MSHR file");
    Cycle earliest = ~Cycle(0);
    for (const auto &[line, e] : inflight_)
        earliest = std::min(earliest, e.fillDone);
    return earliest;
}

void
Mshr::allocate(Addr line, Cycle fill_done, Cycle now)
{
    prune(now);
    DTBL_ASSERT(inflight_.size() < entries_, "MSHR overflow");
    DTBL_ASSERT(inflight_.find(line) == inflight_.end(),
                "allocating an already-pending line");
    inflight_.emplace(line, Entry{fill_done, 1});
    ++allocations_;
    PmuHistogram::note(occupancyHist_, inflight_.size());
}

bool
Mshr::merge(Entry &e)
{
    if (e.requests >= mergeWidth_)
        return false;
    ++e.requests;
    ++merges_;
    return true;
}

void
Mshr::reset()
{
    inflight_.clear();
    allocations_ = 0;
    merges_ = 0;
    stallCycles_ = 0;
}

} // namespace dtbl
