#include "analysis/race.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace dtbl {
namespace {

/**
 * Thread-affine address fact: value = scale * linearThreadId + base,
 * where base is a TB-uniform symbolic value tracked by value number
 * (vn 0 = the constant zero) plus a constant offset.
 */
struct AffineAddr
{
    enum class State : std::uint8_t { Unknown, Affine, Invalid };

    State state = State::Unknown;
    std::int64_t scale = 0;
    std::uint32_t baseVn = 0;
    std::int64_t baseOff = 0;

    static AffineAddr invalid() { return {State::Invalid, 0, 0, 0}; }

    static AffineAddr
    constant(std::int64_t c)
    {
        return {State::Affine, 0, 0, c};
    }

    bool operator==(const AffineAddr &) const = default;
};

AffineAddr
joinAffine(const AffineAddr &a, const AffineAddr &b)
{
    if (a.state == AffineAddr::State::Unknown)
        return b;
    if (b.state == AffineAddr::State::Unknown)
        return a;
    return a == b ? a : AffineAddr::invalid();
}

class AffinePass
{
  public:
    explicit AffinePass(const KernelFunction &fn)
        : fn_(fn), regs_(fn.numRegs)
    {
    }

    void
    run()
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Instruction &inst : fn_.code)
                changed |= step(inst);
        }
    }

    AffineAddr
    operandFact(const Operand &op) const
    {
        switch (op.kind) {
          case Operand::Kind::Imm:
            return AffineAddr::constant(std::int64_t(op.value));
          case Operand::Kind::Special:
            return sregFact(SReg(op.value));
          case Operand::Kind::Reg:
            return op.value < regs_.size() ? regs_[op.value]
                                           : AffineAddr::invalid();
          default:
            return AffineAddr::invalid();
        }
    }

  private:
    AffineAddr
    sregFact(SReg s) const
    {
        const Dim3 &tb = fn_.tbDim;
        const bool linearX = tb.y == 1 && tb.z == 1;
        switch (s) {
          case SReg::TidX:
            if (linearX)
                return {AffineAddr::State::Affine, 1, 0, 0};
            return AffineAddr::invalid();
          case SReg::TidY:
            return tb.y == 1 ? AffineAddr::constant(0)
                             : AffineAddr::invalid();
          case SReg::TidZ:
            return tb.z == 1 ? AffineAddr::constant(0)
                             : AffineAddr::invalid();
          case SReg::NTidX: return AffineAddr::constant(tb.x);
          case SReg::NTidY: return AffineAddr::constant(tb.y);
          case SReg::NTidZ: return AffineAddr::constant(tb.z);
          case SReg::CtaIdX:
          case SReg::CtaIdY:
          case SReg::CtaIdZ:
          case SReg::NCtaIdX:
          case SReg::NCtaIdY:
          case SReg::NCtaIdZ:
          case SReg::IsAggregated:
            // TB-uniform symbolic values.
            return {AffineAddr::State::Affine, 0,
                    vnFor({1, std::uint32_t(s), 0}), 0};
          default: // LaneId is linearTid mod warpSize: not affine
            return AffineAddr::invalid();
        }
    }

    /** Deterministic value-number for a symbolic expression key. */
    std::uint32_t
    vnFor(const std::tuple<std::uint32_t, std::uint32_t, std::int64_t> &k)
        const
    {
        auto it = vns_.find(k);
        if (it != vns_.end())
            return it->second;
        const std::uint32_t id = std::uint32_t(vns_.size()) + 1;
        vns_.emplace(k, id);
        return id;
    }

    std::uint32_t
    combineVn(std::uint32_t a, std::uint32_t b, std::uint32_t op) const
    {
        if (a == 0)
            return b;
        if (b == 0)
            return a;
        return vnFor({op, a ^ (b << 8) ^ (b >> 24), std::int64_t(b)});
    }

    bool
    step(const Instruction &inst)
    {
        std::int16_t dst = -1;
        AffineAddr v = AffineAddr::invalid();
        switch (inst.op) {
          case Opcode::Mov:
            dst = inst.dst;
            v = operandFact(inst.src[0]);
            break;
          case Opcode::Add:
          case Opcode::Sub: {
            dst = inst.dst;
            const AffineAddr a = operandFact(inst.src[0]);
            const AffineAddr b = operandFact(inst.src[1]);
            if (a.state == AffineAddr::State::Affine &&
                b.state == AffineAddr::State::Affine) {
                const std::int64_t sgn = inst.op == Opcode::Add ? 1 : -1;
                if (inst.op == Opcode::Add || b.baseVn == 0 ||
                    a.baseVn != b.baseVn) {
                    v.state = AffineAddr::State::Affine;
                    v.scale = a.scale + sgn * b.scale;
                    v.baseOff = a.baseOff + sgn * b.baseOff;
                    v.baseVn =
                        sgn > 0 ? combineVn(a.baseVn, b.baseVn, 2)
                        : b.baseVn == 0
                            ? a.baseVn
                            : combineVn(a.baseVn, b.baseVn, 3);
                } else { // x - x style cancellation of the same base
                    v = AffineAddr::constant(a.baseOff - b.baseOff);
                    v.scale = a.scale - b.scale;
                }
            }
            break;
          }
          case Opcode::Mul:
          case Opcode::Shl: {
            dst = inst.dst;
            const AffineAddr a = operandFact(inst.src[0]);
            const Operand &bo = inst.src[1];
            std::int64_t c = 0;
            bool haveC = false;
            if (bo.kind == Operand::Kind::Imm) {
                c = std::int64_t(std::int32_t(bo.value));
                if (inst.op == Opcode::Shl) {
                    if (bo.value < 32)
                        c = std::int64_t(1) << bo.value;
                    else
                        break;
                }
                haveC = true;
            }
            if (haveC && a.state == AffineAddr::State::Affine) {
                v.state = AffineAddr::State::Affine;
                v.scale = a.scale * c;
                v.baseOff = a.baseOff * c;
                v.baseVn = a.baseVn == 0
                               ? 0
                               : vnFor({4, a.baseVn, c});
            }
            break;
          }
          case Opcode::Ld:
            dst = inst.dst;
            // A parameter load at a constant offset is TB-uniform (one
            // bound buffer per TB); model it as a symbolic base.
            if (inst.space == MemSpace::Param &&
                inst.src[0].kind == Operand::Kind::Imm) {
                v = {AffineAddr::State::Affine, 0,
                     vnFor({5, inst.src[0].value,
                            std::int64_t(inst.memOffset)}),
                     0};
            }
            break;
          case Opcode::Atom:
          case Opcode::GetPBuf:
          case Opcode::Selp:
          case Opcode::Mad:
          default:
            dst = inst.op == Opcode::St || inst.op == Opcode::Bra ||
                          inst.op == Opcode::Bar ||
                          inst.op == Opcode::Exit ||
                          inst.op == Opcode::Nop ||
                          inst.op == Opcode::Setp ||
                          inst.op == Opcode::StreamCreate ||
                          inst.op == Opcode::LaunchDevice ||
                          inst.op == Opcode::LaunchAgg
                      ? -1
                      : inst.dst;
            break;
        }
        if (dst < 0 || std::uint32_t(dst) >= fn_.numRegs)
            return false;
        if (inst.pred >= 0) // guarded def: lanes may keep old values
            v = v == regs_[std::size_t(dst)] ? v : AffineAddr::invalid();
        const AffineAddr j = joinAffine(regs_[std::size_t(dst)], v);
        if (j == regs_[std::size_t(dst)])
            return false;
        regs_[std::size_t(dst)] = j;
        return true;
    }

    const KernelFunction &fn_;
    std::vector<AffineAddr> regs_;
    mutable std::map<std::tuple<std::uint32_t, std::uint32_t, std::int64_t>,
                     std::uint32_t>
        vns_;
};

struct SharedSite
{
    std::int32_t pc = -1;
    bool isWrite = false;
    unsigned width = 4;
    AffineAddr addr; //!< src0 fact; memOffset folded into baseOff
};

/** Can @p from reach @p to along a path crossing no Bar? */
bool
reachesWithoutBarrier(const KernelFunction &fn, std::int32_t from,
                      std::int32_t to)
{
    const std::int32_t n = std::int32_t(fn.code.size());
    std::vector<bool> seen(std::size_t(n), false);
    std::vector<std::int32_t> stack, succ;
    instSuccessors(fn.code[std::size_t(from)], from, n, stack);
    while (!stack.empty()) {
        const std::int32_t pc = stack.back();
        stack.pop_back();
        if (pc >= n || seen[std::size_t(pc)])
            continue;
        seen[std::size_t(pc)] = true;
        if (pc == to)
            return true;
        if (fn.code[std::size_t(pc)].op == Opcode::Bar)
            continue; // the barrier orders the epochs
        instSuccessors(fn.code[std::size_t(pc)], pc, n, succ);
        for (std::int32_t s : succ)
            stack.push_back(s);
    }
    return false;
}

/** Different threads can never touch the same byte via these sites. */
bool
affineDisjoint(const SharedSite &a, const SharedSite &b)
{
    if (a.addr.state != AffineAddr::State::Affine ||
        b.addr.state != AffineAddr::State::Affine)
        return false;
    if (a.addr.scale != b.addr.scale || a.addr.baseVn != b.addr.baseVn)
        return false;
    const std::int64_t s = std::llabs(a.addr.scale);
    const std::int64_t w = std::int64_t(std::max(a.width, b.width));
    if (s < w)
        return false;
    const std::int64_t delta = std::llabs(a.addr.baseOff - b.addr.baseOff);
    // addr_a(t1) - addr_b(t2) = scale*(t1-t2) + delta; with t1 != t2
    // the magnitude is at least |scale| - |delta| >= width.
    return delta <= s - w;
}

} // namespace

RaceResult
analyzeRaces(const Cfg &cfg)
{
    const KernelFunction &fn = cfg.fn();
    RaceResult res;
    res.singleWarp = fn.tbDim.count() <= warpSize;

    std::vector<SharedSite> sites;
    AffinePass pass(fn);
    bool factsComputed = false;

    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
        const Instruction &inst = fn.code[pc];
        if (!inst.isMemory() || inst.space != MemSpace::Shared)
            continue;
        res.usesShared = true;
        if (inst.op != Opcode::Ld)
            res.hasSharedWrites = true;
        if (!factsComputed) {
            pass.run();
            factsComputed = true;
        }
        SharedSite site;
        site.pc = std::int32_t(pc);
        site.isWrite = inst.op != Opcode::Ld;
        site.width = inst.width;
        site.addr = pass.operandFact(inst.src[0]);
        if (site.addr.state == AffineAddr::State::Affine)
            site.addr.baseOff += inst.memOffset;
        sites.push_back(site);
    }

    res.trivialRaceFree = !res.hasSharedWrites || res.singleWarp;
    if (res.trivialRaceFree) {
        res.provenRaceFree = true;
        return res;
    }

    std::set<std::int32_t> flagged;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        for (std::size_t j = i; j < sites.size(); ++j) {
            const SharedSite &a = sites[i], &b = sites[j];
            if (!a.isWrite && !b.isWrite)
                continue;
            // Same-pc pairs conflict across warps by construction; for
            // distinct sites one must reach the other barrier-free.
            const bool live =
                a.pc == b.pc || reachesWithoutBarrier(fn, a.pc, b.pc) ||
                reachesWithoutBarrier(fn, b.pc, a.pc);
            if (!live)
                continue;
            ++res.conflictPairs;
            if (affineDisjoint(a, b)) {
                ++res.disjointPairs;
                continue;
            }
            const SharedSite &w = a.isWrite ? a : b;
            if (!flagged.insert(w.pc).second)
                continue;
            std::ostringstream os;
            os << fn.name << ": shared "
               << (a.pc == b.pc ? "access races with itself across warps"
                                : "write/read pair can race across warps")
               << " (no barrier orders pc " << a.pc << " and pc " << b.pc
               << ", and no per-thread address separation was proven)";
            Diagnostic d;
            d.funcId = fn.id;
            d.pc = w.pc;
            d.severity = Severity::Warning;
            d.rule = CheckRule::StaticRace;
            d.message = os.str();
            res.diags.push_back(std::move(d));
        }
    }
    res.provenRaceFree = res.conflictPairs == res.disjointPairs;
    return res;
}

} // namespace dtbl
