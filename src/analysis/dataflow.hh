/**
 * @file
 * Generic forward worklist dataflow solver over a Cfg.
 *
 * A Domain supplies the abstract state and its lattice operations:
 *
 *   struct Domain {
 *       using State = ...;
 *       State boundary() const;  // state at the function entry
 *       State initial() const;   // optimistic initial state elsewhere
 *       // Join @p from into @p into; @p widen is set once the solver
 *       // has merged into this block more than its widening threshold
 *       // (domains with infinite ascending chains must then widen).
 *       bool merge(State &into, const State &from, bool widen) const;
 *       // Apply the whole block's transfer function in place.
 *       void transfer(const Cfg &cfg, std::uint32_t block, State &s) const;
 *   };
 *
 * The solver owns one in-state per block and iterates to a fixpoint in
 * reverse post-order, which converges in O(depth) passes for reducible
 * flow graphs (all KernelBuilder output is reducible).
 */

#ifndef DTBL_ANALYSIS_DATAFLOW_HH
#define DTBL_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/cfg.hh"

namespace dtbl {

template <typename Domain>
class ForwardSolver
{
  public:
    using State = typename Domain::State;

    ForwardSolver(const Cfg &cfg, Domain domain, unsigned widen_after = 8)
        : cfg_(cfg), domain_(std::move(domain)), widenAfter_(widen_after)
    {
    }

    void
    solve()
    {
        const std::size_t n = cfg_.numBlocks();
        in_.clear();
        in_.reserve(n);
        for (std::size_t b = 0; b < n; ++b)
            in_.push_back(b == 0 ? domain_.boundary() : domain_.initial());
        merges_.assign(n, 0);

        std::vector<bool> queued(n, false);
        std::deque<std::uint32_t> wl;
        for (std::uint32_t b : cfg_.rpo()) {
            wl.push_back(b);
            queued[b] = true;
        }
        while (!wl.empty()) {
            const std::uint32_t b = wl.front();
            wl.pop_front();
            queued[b] = false;
            State out = in_[b];
            domain_.transfer(cfg_, b, out);
            for (std::uint32_t s : cfg_.block(b).succs) {
                ++merges_[s];
                const bool widen = merges_[s] > widenAfter_;
                if (domain_.merge(in_[s], out, widen) && !queued[s]) {
                    wl.push_back(s);
                    queued[s] = true;
                }
            }
        }
    }

    /** State on entry to block @p b (valid after solve()). */
    const State &inState(std::uint32_t b) const { return in_[b]; }

    /** State on exit of block @p b (recomputed on demand). */
    State
    outState(std::uint32_t b) const
    {
        State s = in_[b];
        domain_.transfer(cfg_, b, s);
        return s;
    }

    const Domain &domain() const { return domain_; }

  private:
    const Cfg &cfg_;
    Domain domain_;
    unsigned widenAfter_;
    std::vector<State> in_;
    std::vector<std::uint32_t> merges_;
};

} // namespace dtbl

#endif // DTBL_ANALYSIS_DATAFLOW_HH
