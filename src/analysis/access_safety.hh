/**
 * @file
 * Per-kernel static safety facts consumed by the runtime sanitizer's
 * check-elision (--check with elision on, the default).
 *
 * The contract: every fact recorded here must make the corresponding
 * runtime check provably redundant — eliding it can never change the
 * sanitizer's findings, so a run with elision produces bit-identical
 * diagnostics, metrics and trace hashes to a run without (and both to
 * a run with checks off, since checks are pure observers).
 *
 * Soundness arguments per fact:
 *  - uninitAllSafe: the verifier's must-definedness dataflow excludes
 *    predicated defs, and each lane's sequence of active PCs is a path
 *    through the per-instruction CFG; a kernel with no UseBeforeDef or
 *    MaybeUninit diagnostic therefore has every lane-read dominated by
 *    an unpredicated def on that lane's own path.
 *  - paramSafe/paramProvenEnd: interval analysis bounds every proven
 *    load inside [0, paramProvenEnd) <= fn.paramBytes. The backing
 *    buffer is a runtime value, so the sanitizer still performs ONE
 *    hoisted per-TB check that [paramAddr, paramAddr+paramProvenEnd)
 *    is live; global memory is bump-allocated and never freed, so the
 *    check holds for the TB's lifetime. If it fails, the sanitizer
 *    falls back to the unelided per-lane loops (identical findings).
 *  - sharedSafe: offsets proven < fn.sharedMemBytes; the sanitizer
 *    additionally verifies the TB segment is at least that large
 *    before skipping (dynamic launches can size the segment).
 *  - sharedRaceFree: trivial facts only (no shared writes, or a TB
 *    shape that can never have two warps) — see race.hh.
 */

#ifndef DTBL_ANALYSIS_ACCESS_SAFETY_HH
#define DTBL_ANALYSIS_ACCESS_SAFETY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dtbl {

struct KernelAccessSafety
{
    /** Skip all uninitialized-read tracking for this kernel. */
    bool uninitAllSafe = false;
    /** Skip the shared-memory race checker for this kernel. */
    bool sharedRaceFree = false;
    /** Bytes covered by the hoisted per-TB param check; 0 = none. */
    std::uint32_t paramProvenEnd = 0;
    /** Per-pc: skip the param bounds loop (after the hoisted check). */
    std::vector<bool> paramSafe;
    /** Per-pc: skip the shared bounds loop. */
    std::vector<bool> sharedSafe;
};

struct AccessSafety
{
    std::vector<KernelAccessSafety> kernels; //!< indexed by KernelFuncId

    const KernelAccessSafety *
    of(KernelFuncId id) const
    {
        return id < kernels.size() ? &kernels[id] : nullptr;
    }
};

} // namespace dtbl

#endif // DTBL_ANALYSIS_ACCESS_SAFETY_HH
