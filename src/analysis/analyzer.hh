/**
 * @file
 * dtbl-analyze driver: runs every static analysis over a Program and
 * aggregates the results into one report.
 *
 * Three consumers:
 *  - the dtbl-analyze CLI (tools/dtbl_analyze.cc) renders the text and
 *    JSON reports;
 *  - tests golden-match the diagnostics (rule + pc per kernel);
 *  - the runtime sanitizer consumes the AccessSafety side-table via
 *    computeAccessSafety(), a fast path that skips the analyses whose
 *    results elision cannot use (uniformity, launch graph).
 */

#ifndef DTBL_ANALYSIS_ANALYZER_HH
#define DTBL_ANALYSIS_ANALYZER_HH

#include <string>
#include <vector>

#include "analysis/access_safety.hh"
#include "analysis/diagnostics.hh"
#include "analysis/launch_graph.hh"
#include "analysis/race.hh"
#include "analysis/ranges.hh"
#include "analysis/uniformity.hh"
#include "common/config.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

struct KernelAnalysis
{
    KernelFuncId id = invalidKernelFunc;
    std::string name;
    unsigned codeLen = 0;
    unsigned numBlocks = 0;

    RangeResult ranges;
    UniformityResult uniformity;
    RaceResult races;

    /** Launch depth below this kernel; -1 = unbounded (recursion). */
    int launchDepth = 0;
    bool onLaunchCycle = false;
};

struct ProgramAnalysis
{
    std::vector<KernelAnalysis> kernels;
    LaunchGraph graph;
    AccessSafety safety;

    /** All diagnostics from every pass, in kernel/pc order. */
    std::vector<Diagnostic> diagnostics;
    std::uint64_t errorCount = 0;
    std::uint64_t warningCount = 0;

    /** Human-readable report; @p title heads the output. */
    std::string textReport(const std::string &title) const;

    /**
     * Machine-readable JSON object for this program (no trailing
     * newline). Deterministic: fixed key order, integers only, so CI
     * can diff it against a pinned golden byte-for-byte.
     */
    std::string jsonReport(const std::string &bench,
                           const std::string &mode,
                           unsigned indent = 2) const;
};

/** Run every analysis over @p prog. */
ProgramAnalysis analyzeProgram(const Program &prog,
                               const GpuConfig &cfg = GpuConfig::k20c());

/**
 * Elision fast path: only the facts the sanitizer can consume, namely
 * verifier cleanliness (uninit), interval bounds proofs and trivial
 * race freedom.
 */
AccessSafety computeAccessSafety(const Program &prog);

} // namespace dtbl

#endif // DTBL_ANALYSIS_ANALYZER_HH
