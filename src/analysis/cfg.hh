/**
 * @file
 * Control-flow graph over kernel IR: basic blocks, reachability,
 * reverse post-order and dominators.
 *
 * The verifier's original per-instruction successor walk is factored
 * out here (instSuccessors) so the verifier, the dataflow solver and
 * every dtbl-analyze pass agree on one CFG semantics:
 *
 *  - Bra: edge to target; predicated branches also fall through.
 *  - Exit: no successors; predicated exits fall through.
 *  - Everything else: falls through to pc+1. A fallthrough to
 *    code.size() means control can run off the end (the verifier's
 *    NoTerminator error); the Cfg records it but adds no edge.
 *
 * Blocks are maximal single-entry single-exit instruction runs; the
 * dominator tree is computed with the Cooper-Harvey-Kennedy iterative
 * algorithm over reverse post-order, which is plenty for kernels of a
 * few hundred instructions.
 */

#ifndef DTBL_ANALYSIS_CFG_HH
#define DTBL_ANALYSIS_CFG_HH

#include <cstdint>
#include <vector>

#include "isa/kernel_function.hh"

namespace dtbl {

/** Successor PCs of @p inst at @p pc; may include n (= falls off end). */
void instSuccessors(const Instruction &inst, std::int32_t pc,
                    std::int32_t n, std::vector<std::int32_t> &out);

struct BasicBlock
{
    std::int32_t first = 0; //!< pc of the first instruction
    std::int32_t last = 0;  //!< pc of the last instruction (inclusive)
    std::vector<std::uint32_t> succs;
    std::vector<std::uint32_t> preds;
    bool reachable = false;

    std::int32_t
    size() const
    {
        return last - first + 1;
    }
};

class Cfg
{
  public:
    static constexpr std::uint32_t noBlock = 0xffffffffu;

    explicit Cfg(const KernelFunction &fn);

    const KernelFunction &fn() const { return *fn_; }

    std::size_t numBlocks() const { return blocks_.size(); }
    const BasicBlock &block(std::uint32_t b) const { return blocks_[b]; }

    /** Block containing @p pc (every pc belongs to exactly one block). */
    std::uint32_t blockOf(std::int32_t pc) const { return blockOf_[pc]; }

    /** Reachable blocks in reverse post-order (entry first). */
    const std::vector<std::uint32_t> &rpo() const { return rpo_; }

    /** Immediate dominator of @p b; noBlock for entry / unreachable. */
    std::uint32_t idom(std::uint32_t b) const { return idom_[b]; }

    /** Does block @p a dominate block @p b? (reflexive) */
    bool dominates(std::uint32_t a, std::uint32_t b) const;

    /** Some reachable instruction's fallthrough leaves the code. */
    bool fallsOffEnd() const { return fallsOffEnd_; }

  private:
    void buildBlocks();
    void computeOrderAndDominators();

    const KernelFunction *fn_;
    std::vector<BasicBlock> blocks_;
    std::vector<std::uint32_t> blockOf_;
    std::vector<std::uint32_t> rpo_;
    std::vector<std::uint32_t> rpoIndex_; //!< per block; ~0u if unreachable
    std::vector<std::uint32_t> idom_;
    bool fallsOffEnd_ = false;
};

} // namespace dtbl

#endif // DTBL_ANALYSIS_CFG_HH
