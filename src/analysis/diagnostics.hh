/**
 * @file
 * Structured diagnostics shared by the static kernel verifier and the
 * runtime sanitizer ("dtbl-check").
 *
 * Every finding carries a stable rule id so tests can assert on exact
 * diagnostics (golden rule + pc) and CI can grep for classes of
 * failures. Severities follow the usual compiler convention: an Error
 * means the kernel (or machine state) is definitely broken; a Warning
 * flags a construct that is only wrong on some execution paths.
 */

#ifndef DTBL_ANALYSIS_DIAGNOSTICS_HH
#define DTBL_ANALYSIS_DIAGNOSTICS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dtbl {

enum class Severity : std::uint8_t { Warning, Error };

/**
 * Stable check identifiers. The first block is produced by the static
 * verifier (verifier.hh), the second by the runtime sanitizer
 * (sanitizer.hh), the third by the drain-time invariant pass.
 */
enum class CheckRule : std::uint8_t
{
    // --- static verifier -------------------------------------------------
    BranchTarget,      //!< Bra target outside [0, code.size())
    ReconvTarget,      //!< reconvergence PC outside [0, code.size()]
    RegIndex,          //!< register operand >= numRegs
    PredIndex,         //!< predicate index >= numPreds
    OperandKind,       //!< operand missing / wrong kind for the opcode
    MemWidth,          //!< access width not in {1, 2, 4}
    MemAlign,          //!< memOffset not a multiple of the access width
    ParamBounds,       //!< constant param load beyond paramBytes
    LaunchFunc,        //!< launch references an unregistered function
    LaunchOperand,     //!< launch numTbs/paramAddr operand malformed
    UseBeforeDef,      //!< register/predicate read with no def on any path
    MaybeUninit,       //!< read defined on some but not all paths
    BarrierDivergence, //!< Bar predicated or inside a divergent region
    NoTerminator,      //!< control flow can run off the end of code
    // --- static analyzer (dtbl-analyze) -----------------------------------
    StaticOob,         //!< access proven out of bounds on every path
    StaticRace,        //!< shared conflict with no proof of separation
    DivergentLaunch,   //!< launch operands divergent: per-lane fan-out
    LaunchRecursion,   //!< launch graph cycle: unbounded launch depth
    LaunchBudget,      //!< worst-case fan-out exceeds AGT/KDE capacity
    // --- runtime sanitizer ----------------------------------------------
    OobGlobal,         //!< global access outside any live allocation
    OobShared,         //!< shared access outside the TB segment
    OobParam,          //!< param access outside the parameter buffer
    UninitRead,        //!< lane read a register it never wrote
    SharedRace,        //!< cross-warp shared access with no barrier
    // --- drain invariants -------------------------------------------------
    LeakKde,           //!< Kernel Distributor entry valid after drain
    LeakAgt,           //!< AGT group record or slot live after drain
    KdeLinkage,        //!< NAGEI/LAGEI linkage malformed
    AggCount,          //!< coalesced + fallback != aggregated launches
    LeakLaunchBytes,   //!< pending launch-metadata bytes not released
};

/** Stable kebab-case rule name ("branch-target", "oob-global", ...). */
const char *ruleName(CheckRule rule);

const char *severityName(Severity sev);

/** One finding; pc / funcId are -1 / invalid for machine-level rules. */
struct Diagnostic
{
    KernelFuncId funcId = invalidKernelFunc;
    std::int32_t pc = -1;
    Severity severity = Severity::Error;
    CheckRule rule = CheckRule::OperandKind;
    std::string message;

    /** "error[use-before-def] func=2 pc=7: ..." */
    std::string str() const;
};

} // namespace dtbl

#endif // DTBL_ANALYSIS_DIAGNOSTICS_HH
