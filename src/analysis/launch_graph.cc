#include "analysis/launch_graph.hh"

#include <algorithm>
#include <sstream>

namespace dtbl {
namespace {

/** Tarjan-free cycle + longest-path pass via iterative DFS colors. */
class DepthPass
{
  public:
    explicit DepthPass(LaunchGraph &g) : g_(g) {}

    void
    run()
    {
        color_.assign(g_.nodes.size(), 0);
        depth_.assign(g_.nodes.size(), 0);
        for (std::uint32_t n = 0; n < g_.nodes.size(); ++n)
            visit(n);
        for (std::uint32_t n = 0; n < g_.nodes.size(); ++n) {
            g_.nodes[n].depth = g_.nodes[n].onCycle ? -1 : depth_[n];
            if (g_.nodes[n].onCycle)
                g_.hasCycle = true;
        }
        g_.maxDepth = 0;
        for (const LaunchGraph::Node &n : g_.nodes) {
            if (n.depth < 0) {
                g_.maxDepth = -1;
                break;
            }
            g_.maxDepth = std::max(g_.maxDepth, n.depth);
        }
    }

  private:
    int
    visit(std::uint32_t n)
    {
        if (color_[n] == 2)
            return g_.nodes[n].onCycle ? -1 : depth_[n];
        if (color_[n] == 1) { // back edge: cycle
            g_.nodes[n].onCycle = true;
            return -1;
        }
        color_[n] = 1;
        int best = 0;
        bool unbounded = false;
        for (std::uint32_t e : g_.nodes[n].outEdges) {
            const std::uint32_t callee = g_.edges[e].callee;
            const int d = visit(callee);
            if (d < 0 || g_.nodes[callee].onCycle)
                unbounded = true;
            else
                best = std::max(best, d + 1);
        }
        color_[n] = 2;
        if (unbounded)
            g_.nodes[n].onCycle = true;
        depth_[n] = best;
        return unbounded ? -1 : best;
    }

    LaunchGraph &g_;
    std::vector<std::uint8_t> color_;
    std::vector<int> depth_;
};

} // namespace

LaunchGraph
buildLaunchGraph(const Program &prog, const GpuConfig &cfg,
                 const std::vector<UniformityResult> &uniformity)
{
    LaunchGraph g;
    g.nodes.resize(prog.size());
    for (KernelFuncId id = 0; id < prog.size(); ++id) {
        const KernelFunction &fn = prog.function(id);
        g.nodes[id].id = id;
        g.nodes[id].name = fn.name;
    }

    for (KernelFuncId id = 0; id < prog.size(); ++id) {
        if (id >= uniformity.size())
            break;
        for (const UniformityResult::LaunchSite &site :
             uniformity[id].launches) {
            if (site.callee == invalidKernelFunc ||
                site.callee >= g.nodes.size())
                continue;
            LaunchEdge e;
            e.caller = id;
            e.callee = site.callee;
            e.pc = site.pc;
            e.aggregated = site.aggregated;
            e.divergentFanOut = site.divergentFanOut();
            e.maxFanOutPerWarp = warpSize; // launches execute per lane
            g.nodes[id].outEdges.push_back(std::uint32_t(g.edges.size()));
            g.nodes[site.callee].isRoot = false;
            g.edges.push_back(e);
        }
    }

    DepthPass(g).run();

    // Worst-case concurrent launches: every resident warp sitting at
    // one launch site, all lanes active (Section 4.2 sizing argument).
    const std::uint64_t residentWarps =
        std::uint64_t(cfg.numSmx) * cfg.maxResidentWarpsPerSmx;
    std::uint64_t aggSites = 0, cdpSites = 0;
    for (const LaunchEdge &e : g.edges)
        (e.aggregated ? aggSites : cdpSites) += 1;
    g.worstCaseAggLaunches =
        aggSites ? residentWarps * warpSize : 0;
    g.worstCaseCdpLaunches =
        cdpSites ? residentWarps * warpSize : 0;
    g.aggTableCapacity = cfg.agtSize;
    g.cdpPendingBytes = g.worstCaseCdpLaunches * cfg.cdpKernelRecordBytes;
    if (g.worstCaseAggLaunches > g.aggTableCapacity) {
        g.aggBudgetExceeded = true;
        g.aggSpillBytes = (g.worstCaseAggLaunches - g.aggTableCapacity) *
                          cfg.aggGroupRecordBytes;
    }

    for (const LaunchGraph::Node &n : g.nodes) {
        if (!n.onCycle)
            continue;
        // Report on the first cycle-forming edge out of this node.
        for (std::uint32_t ei : n.outEdges) {
            const LaunchEdge &e = g.edges[ei];
            if (!g.nodes[e.callee].onCycle)
                continue;
            std::ostringstream os;
            os << n.name << " launches " << g.nodes[e.callee].name
               << " on a launch-graph cycle; launch depth is unbounded "
                  "and resource use is data-dependent";
            Diagnostic d;
            d.funcId = n.id;
            d.pc = e.pc;
            d.severity = Severity::Warning;
            d.rule = CheckRule::LaunchRecursion;
            d.message = os.str();
            g.diags.push_back(std::move(d));
            break;
        }
    }

    if (g.aggBudgetExceeded) {
        std::ostringstream os;
        os << "worst-case concurrent aggregated launches ("
           << g.worstCaseAggLaunches << " = " << residentWarps
           << " resident warps x " << warpSize
           << " lanes) exceed the aggregation table ("
           << g.aggTableCapacity
           << " entries); overflow falls back to non-coalesced dispatch ("
           << g.aggSpillBytes << " spill bytes worst case)";
        Diagnostic d;
        d.severity = Severity::Warning;
        d.rule = CheckRule::LaunchBudget;
        d.message = os.str();
        g.diags.push_back(std::move(d));
    }
    return g;
}

} // namespace dtbl
