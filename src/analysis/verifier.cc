#include "analysis/verifier.hh"

#include <algorithm>
#include <sstream>

#include "analysis/cfg.hh"

namespace dtbl {
namespace {

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::Min:
      case Opcode::Max: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Shl: case Opcode::Shr:
        return true;
      default:
        return false;
    }
}

class KernelVerifier
{
  public:
    KernelVerifier(const KernelFunction &fn, std::size_t num_funcs)
        : fn_(fn), numFuncs_(num_funcs)
    {}

    std::vector<Diagnostic>
    run()
    {
        if (fn_.code.empty()) {
            report(-1, Severity::Error, CheckRule::NoTerminator,
                   "kernel has no code");
            return std::move(diags_);
        }
        for (std::size_t pc = 0; pc < fn_.code.size(); ++pc)
            checkInstruction(std::int32_t(pc), fn_.code[pc]);
        checkBarrierDivergence();
        if (!anyError_) {
            // The CFG walks assume in-bounds targets and indices.
            checkTermination();
            checkDataflow();
        }
        return std::move(diags_);
    }

  private:
    void
    report(std::int32_t pc, Severity sev, CheckRule rule, std::string msg)
    {
        if (sev == Severity::Error)
            anyError_ = true;
        Diagnostic d;
        d.funcId = fn_.id;
        d.pc = pc;
        d.severity = sev;
        d.rule = rule;
        if (pc >= 0 && pc < std::int32_t(fn_.code.size()))
            msg += " in '" + disasm(fn_.code[pc]) + "'";
        d.message = std::move(msg);
        diags_.push_back(std::move(d));
    }

    void
    requireSrc(std::int32_t pc, const Instruction &inst, unsigned i)
    {
        if (inst.src[i].isNone()) {
            std::ostringstream os;
            os << "opcode requires src" << i;
            report(pc, Severity::Error, CheckRule::OperandKind, os.str());
        }
    }

    void
    requireDst(std::int32_t pc, const Instruction &inst)
    {
        if (inst.dst < 0) {
            report(pc, Severity::Error, CheckRule::OperandKind,
                   "opcode requires a destination register");
        }
    }

    void
    checkRegOperand(std::int32_t pc, const Operand &op)
    {
        if (op.kind == Operand::Kind::Reg && op.value >= fn_.numRegs) {
            std::ostringstream os;
            os << "register r" << op.value << " out of range (numRegs="
               << fn_.numRegs << ")";
            report(pc, Severity::Error, CheckRule::RegIndex, os.str());
        }
    }

    void
    checkInstruction(std::int32_t pc, const Instruction &inst)
    {
        const std::int32_t n = std::int32_t(fn_.code.size());

        // Register/predicate indices within the declared budgets.
        if (inst.dst >= 0 && std::uint32_t(inst.dst) >= fn_.numRegs) {
            std::ostringstream os;
            os << "destination r" << inst.dst << " out of range (numRegs="
               << fn_.numRegs << ")";
            report(pc, Severity::Error, CheckRule::RegIndex, os.str());
        }
        if (inst.pdst >= 0 && std::uint32_t(inst.pdst) >= fn_.numPreds) {
            std::ostringstream os;
            os << "destination p" << inst.pdst << " out of range (numPreds="
               << fn_.numPreds << ")";
            report(pc, Severity::Error, CheckRule::PredIndex, os.str());
        }
        if (inst.pred >= 0 && std::uint32_t(inst.pred) >= fn_.numPreds) {
            std::ostringstream os;
            os << "guard p" << inst.pred << " out of range (numPreds="
               << fn_.numPreds << ")";
            report(pc, Severity::Error, CheckRule::PredIndex, os.str());
        }
        for (const Operand &s : inst.src)
            checkRegOperand(pc, s);

        // Operand kinds and per-opcode structure.
        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::Bar:
          case Opcode::Exit:
          case Opcode::StreamCreate:
            break;
          case Opcode::Setp:
            requireSrc(pc, inst, 0);
            requireSrc(pc, inst, 1);
            if (inst.pdst < 0) {
                report(pc, Severity::Error, CheckRule::OperandKind,
                       "setp requires a destination predicate");
            }
            break;
          case Opcode::Selp:
            requireSrc(pc, inst, 0);
            requireSrc(pc, inst, 1);
            requireDst(pc, inst);
            if (inst.src[2].kind != Operand::Kind::Imm) {
                report(pc, Severity::Error, CheckRule::OperandKind,
                       "selp selector (src2) must be an immediate "
                       "predicate index");
            } else if (inst.src[2].value >= fn_.numPreds) {
                std::ostringstream os;
                os << "selector p" << inst.src[2].value
                   << " out of range (numPreds=" << fn_.numPreds << ")";
                report(pc, Severity::Error, CheckRule::PredIndex, os.str());
            }
            break;
          case Opcode::Mad:
            requireSrc(pc, inst, 0);
            requireSrc(pc, inst, 1);
            requireSrc(pc, inst, 2);
            requireDst(pc, inst);
            break;
          case Opcode::Ld:
          case Opcode::St:
          case Opcode::Atom:
            checkMemory(pc, inst);
            break;
          case Opcode::Bra:
            if (inst.target < 0 || inst.target >= n) {
                std::ostringstream os;
                os << "branch target " << inst.target
                   << " out of range (code size " << n << ")";
                report(pc, Severity::Error, CheckRule::BranchTarget,
                       os.str());
            }
            if (inst.pred >= 0 && inst.reconv < 0) {
                report(pc, Severity::Error, CheckRule::ReconvTarget,
                       "predicated branch missing a reconvergence pc");
            }
            if (inst.reconv >= 0 && inst.reconv > n) {
                std::ostringstream os;
                os << "reconvergence pc " << inst.reconv
                   << " out of range (code size " << n << ")";
                report(pc, Severity::Error, CheckRule::ReconvTarget,
                       os.str());
            }
            break;
          case Opcode::GetPBuf:
            requireDst(pc, inst);
            if (inst.src[0].kind != Operand::Kind::Imm) {
                report(pc, Severity::Error, CheckRule::OperandKind,
                       "getpbuf size (src0) must be an immediate");
            }
            break;
          case Opcode::LaunchDevice:
          case Opcode::LaunchAgg:
            if (inst.launch.func == invalidKernelFunc ||
                inst.launch.func >= numFuncs_) {
                std::ostringstream os;
                os << "launch references unregistered function "
                   << inst.launch.func << " (known: " << numFuncs_ << ")";
                report(pc, Severity::Error, CheckRule::LaunchFunc,
                       os.str());
            }
            if (inst.launch.numTbs.isNone()) {
                report(pc, Severity::Error, CheckRule::LaunchOperand,
                       "launch requires a TB-count operand");
            }
            if (inst.launch.paramAddr.isNone()) {
                report(pc, Severity::Error, CheckRule::LaunchOperand,
                       "launch requires a parameter-address operand");
            }
            break;
          default: // remaining ALU opcodes
            requireSrc(pc, inst, 0);
            if (isBinaryAlu(inst.op) && inst.op != Opcode::Not)
                requireSrc(pc, inst, 1);
            requireDst(pc, inst);
            break;
        }
    }

    void
    checkMemory(std::int32_t pc, const Instruction &inst)
    {
        requireSrc(pc, inst, 0);
        if (inst.op != Opcode::Ld)
            requireSrc(pc, inst, 1);
        if (inst.op == Opcode::Ld)
            requireDst(pc, inst);

        if (inst.width != 1 && inst.width != 2 && inst.width != 4) {
            std::ostringstream os;
            os << "access width " << int(inst.width) << " not in {1,2,4}";
            report(pc, Severity::Error, CheckRule::MemWidth, os.str());
            return;
        }
        if (inst.op == Opcode::Atom && inst.width != 4) {
            report(pc, Severity::Error, CheckRule::MemWidth,
                   "atomics are 32-bit only");
        }
        if (inst.memOffset % std::int32_t(inst.width) != 0) {
            std::ostringstream os;
            os << "memOffset " << inst.memOffset
               << " not aligned to width " << int(inst.width);
            report(pc, Severity::Error, CheckRule::MemAlign, os.str());
        }

        if (inst.space == MemSpace::Param) {
            if (inst.op != Opcode::Ld) {
                report(pc, Severity::Error, CheckRule::OperandKind,
                       "parameter space is read-only");
            } else if (inst.src[0].kind == Operand::Kind::Imm) {
                const std::int64_t off =
                    std::int64_t(inst.src[0].value) + inst.memOffset;
                if (off < 0 || off + inst.width > fn_.paramBytes) {
                    std::ostringstream os;
                    os << "param load at byte " << off << " (+"
                       << int(inst.width) << ") outside paramBytes="
                       << fn_.paramBytes;
                    report(pc, Severity::Error, CheckRule::ParamBounds,
                           os.str());
                }
            }
        }
        if (inst.op == Opcode::Atom && inst.space != MemSpace::Global) {
            report(pc, Severity::Error, CheckRule::OperandKind,
                   "atomics are global-memory only");
        }
        if (inst.op == Opcode::Atom && inst.atom == AtomOp::Cas)
            requireSrc(pc, inst, 2);
    }

    void
    checkBarrierDivergence()
    {
        const std::int32_t n = std::int32_t(fn_.code.size());
        for (std::int32_t pc = 0; pc < n; ++pc) {
            const Instruction &inst = fn_.code[pc];
            if (inst.op != Opcode::Bar)
                continue;
            if (inst.pred >= 0) {
                report(pc, Severity::Error, CheckRule::BarrierDivergence,
                       "barrier must not be predicated");
                continue;
            }
            // Inside the open interval (branch, reconv) of a predicated
            // branch the warp can be divergent; a barrier there can wait
            // on lanes that will never arrive.
            for (std::int32_t b = 0; b < n; ++b) {
                const Instruction &br = fn_.code[b];
                if (br.op == Opcode::Bra && br.pred >= 0 &&
                    br.reconv >= 0 && b < pc && pc < br.reconv) {
                    std::ostringstream os;
                    os << "barrier inside divergent region of branch at pc "
                       << b << " (reconv " << br.reconv << ")";
                    report(pc, Severity::Error,
                           CheckRule::BarrierDivergence, os.str());
                    break;
                }
            }
        }
    }

    /** Flag reachable instructions whose fallthrough runs off the end. */
    void
    checkTermination()
    {
        const std::int32_t n = std::int32_t(fn_.code.size());
        reachable_.assign(fn_.code.size(), false);
        std::vector<std::int32_t> stack{0}, succ;
        while (!stack.empty()) {
            const std::int32_t pc = stack.back();
            stack.pop_back();
            if (reachable_[pc])
                continue;
            reachable_[pc] = true;
            instSuccessors(fn_.code[pc], pc, n, succ);
            for (std::int32_t s : succ) {
                if (s >= n) {
                    report(pc, Severity::Error, CheckRule::NoTerminator,
                           "control flow can run off the end of the "
                           "kernel (missing exit)");
                } else if (!reachable_[s]) {
                    stack.push_back(s);
                }
            }
        }
    }

    /**
     * Forward must/may definedness over registers and predicates.
     * Index space: [0, numRegs) registers, [numRegs, numRegs+numPreds)
     * predicates. must = intersection over predecessors (defined on
     * every path), may = union (defined on some path).
     */
    void
    checkDataflow()
    {
        const std::size_t n = fn_.code.size();
        const std::size_t bits = fn_.numRegs + fn_.numPreds;
        if (bits == 0)
            return;

        std::vector<std::vector<std::int32_t>> preds(n);
        std::vector<std::int32_t> succ;
        for (std::size_t pc = 0; pc < n; ++pc) {
            instSuccessors(fn_.code[pc], std::int32_t(pc), std::int32_t(n),
                       succ);
            for (std::int32_t s : succ) {
                if (s < std::int32_t(n))
                    preds[s].push_back(std::int32_t(pc));
            }
        }

        // IN sets; entry starts empty, everything else starts "all
        // defined" so the intersection converges from above.
        std::vector<std::vector<bool>> mustIn(n), mayIn(n);
        for (std::size_t pc = 0; pc < n; ++pc) {
            mustIn[pc].assign(bits, pc != 0);
            mayIn[pc].assign(bits, false);
        }

        const auto defsOf = [&](std::size_t pc, std::vector<bool> &set,
                                bool predicated_counts) {
            const Instruction &inst = fn_.code[pc];
            if (inst.pred >= 0 && !predicated_counts)
                return;
            const InstAccess a = instAccess(inst);
            if (a.regWrite >= 0)
                set[std::size_t(a.regWrite)] = true;
            if (a.predWrite >= 0)
                set[fn_.numRegs + std::size_t(a.predWrite)] = true;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t pc = 0; pc < n; ++pc) {
                if (!reachable_[pc])
                    continue;
                std::vector<bool> must(bits, pc != 0), may(bits, false);
                for (std::int32_t p : preds[pc]) {
                    std::vector<bool> mustOut = mustIn[p];
                    defsOf(std::size_t(p), mustOut, false);
                    std::vector<bool> mayOut = mayIn[p];
                    defsOf(std::size_t(p), mayOut, true);
                    for (std::size_t i = 0; i < bits; ++i) {
                        must[i] = must[i] && mustOut[i];
                        may[i] = may[i] || mayOut[i];
                    }
                }
                if (must != mustIn[pc] || may != mayIn[pc]) {
                    mustIn[pc] = std::move(must);
                    mayIn[pc] = std::move(may);
                    changed = true;
                }
            }
        }

        for (std::size_t pc = 0; pc < n; ++pc) {
            if (!reachable_[pc])
                continue;
            const InstAccess a = instAccess(fn_.code[pc]);
            const auto checkRead = [&](std::size_t bit, char prefix,
                                       unsigned idx) {
                if (!mayIn[pc][bit]) {
                    std::ostringstream os;
                    os << prefix << idx << " read before any definition";
                    report(std::int32_t(pc), Severity::Error,
                           CheckRule::UseBeforeDef, os.str());
                } else if (!mustIn[pc][bit]) {
                    std::ostringstream os;
                    os << prefix << idx
                       << " may be uninitialized on some paths";
                    report(std::int32_t(pc), Severity::Warning,
                           CheckRule::MaybeUninit, os.str());
                }
            };
            for (unsigned i = 0; i < a.numRegReads; ++i)
                checkRead(a.regReads[i], 'r', a.regReads[i]);
            for (unsigned i = 0; i < a.numPredReads; ++i)
                checkRead(fn_.numRegs + a.predReads[i], 'p',
                          a.predReads[i]);
        }
    }

    const KernelFunction &fn_;
    std::size_t numFuncs_;
    std::vector<Diagnostic> diags_;
    std::vector<bool> reachable_;
    bool anyError_ = false;
};

} // namespace

InstAccess
instAccess(const Instruction &inst)
{
    InstAccess a;
    const auto readReg = [&](const Operand &op) {
        if (op.kind == Operand::Kind::Reg &&
            a.numRegReads < a.regReads.size())
            a.regReads[a.numRegReads++] = std::uint16_t(op.value);
    };
    if (inst.pred >= 0 && a.numPredReads < a.predReads.size())
        a.predReads[a.numPredReads++] = std::uint16_t(inst.pred);

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Bar:
      case Opcode::Exit:
      case Opcode::Bra:
      case Opcode::StreamCreate:
        break;
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::CvtF2I:
      case Opcode::CvtI2F:
        readReg(inst.src[0]);
        a.regWrite = inst.dst;
        break;
      case Opcode::Setp:
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        a.predWrite = inst.pdst;
        break;
      case Opcode::Selp:
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        if (inst.src[2].kind == Operand::Kind::Imm &&
            a.numPredReads < a.predReads.size())
            a.predReads[a.numPredReads++] =
                std::uint16_t(inst.src[2].value);
        a.regWrite = inst.dst;
        break;
      case Opcode::Mad:
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        readReg(inst.src[2]);
        a.regWrite = inst.dst;
        break;
      case Opcode::Ld:
        readReg(inst.src[0]);
        a.regWrite = inst.dst;
        break;
      case Opcode::St:
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        break;
      case Opcode::Atom:
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        if (inst.atom == AtomOp::Cas)
            readReg(inst.src[2]);
        a.regWrite = inst.dst;
        break;
      case Opcode::GetPBuf:
        a.regWrite = inst.dst;
        break;
      case Opcode::LaunchDevice:
      case Opcode::LaunchAgg:
        readReg(inst.launch.numTbs);
        readReg(inst.launch.paramAddr);
        break;
      default: // remaining binary ALU ops
        readReg(inst.src[0]);
        readReg(inst.src[1]);
        a.regWrite = inst.dst;
        break;
    }
    return a;
}

std::vector<Diagnostic>
verifyKernel(const KernelFunction &fn, std::size_t num_funcs_known)
{
    return KernelVerifier(fn, num_funcs_known).run();
}

} // namespace dtbl
