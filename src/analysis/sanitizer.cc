#include "analysis/sanitizer.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "analysis/verifier.hh"
#include "stats/host_prof.hh"

namespace dtbl {
namespace {

/** Bound on stored diagnostics; counters keep running past it. */
constexpr std::size_t kMaxStoredFindings = 100;

unsigned
firstLane(ActiveMask m)
{
    return unsigned(std::countr_zero(m));
}

} // namespace

const char *
checkLevelName(CheckLevel lvl)
{
    switch (lvl) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Invariants: return "invariants";
      case CheckLevel::Memory: return "memory";
      case CheckLevel::Full: return "full";
    }
    return "?";
}

Sanitizer::Sanitizer(CheckLevel level, const GlobalMemory &mem,
                     const AccessSafety *safety)
    : level_(level), mem_(mem), safety_(safety)
{
}

void
Sanitizer::reportAt(const KernelFunction *fn, std::int32_t pc,
                    CheckRule rule, Severity sev, std::string msg)
{
    const KernelFuncId func = fn ? fn->id : invalidKernelFunc;
    if (!seen_.insert({func, pc, int(rule)}).second)
        return;
    if (sev == Severity::Error)
        ++errors_;
    else
        ++warnings_;
    if (findings_.size() >= kMaxStoredFindings) {
        ++dropped_;
        return;
    }
    Diagnostic d;
    d.funcId = func;
    d.pc = pc;
    d.severity = sev;
    d.rule = rule;
    if (fn && pc >= 0 && pc < std::int32_t(fn->code.size()))
        msg += " in '" + disasm(fn->code[pc]) + "'";
    d.message = std::move(msg);
    findings_.push_back(std::move(d));
}

void
Sanitizer::report(CheckRule rule, Severity sev, std::string msg)
{
    reportAt(nullptr, -1, rule, sev, std::move(msg));
}

Sanitizer::WarpShadow &
Sanitizer::shadowOf(const Warp &w)
{
    WarpShadow &s = warpShadows_[&w];
    if (s.regInit.empty() && s.predInit.empty()) {
        s.regInit.assign(w.fn()->numRegs, 0);
        s.predInit.assign(w.fn()->numPreds, 0);
    }
    return s;
}

void
Sanitizer::onIssue(const Warp &w, const Instruction &inst, std::int32_t pc,
                   ActiveMask exec, ActiveMask active)
{
    if (level_ < CheckLevel::Full)
        return;
    DTBL_HPROF_SCOPE("check");
    if (safety_ != nullptr) {
        const KernelAccessSafety *ks = safety_->of(w.fn()->id);
        if (ks != nullptr && ks->uninitAllSafe) {
            // The verifier's must-dataflow proved every read dominated
            // by an unconditional write; shadow tracking cannot fire.
            ++elided_;
            return;
        }
    }
    WarpShadow &s = shadowOf(w);
    const InstAccess a = instAccess(inst);

    const auto flagUninit = [&](char prefix, unsigned idx,
                                ActiveMask lanes) {
        std::ostringstream os;
        os << w.fn()->name << ": " << prefix << idx << " read by "
           << std::popcount(lanes) << " lane(s) (first " << firstLane(lanes)
           << ") before any write";
        reportAt(w.fn(), pc, CheckRule::UninitRead, Severity::Error,
                 os.str());
    };

    // The guard predicate is read by every active lane; the remaining
    // operands only by the lanes that pass the guard.
    if (inst.pred >= 0) {
        const ActiveMask uninit =
            active & ~s.predInit[std::size_t(inst.pred)];
        if (uninit)
            flagUninit('p', unsigned(inst.pred), uninit);
    }
    for (unsigned i = 0; i < a.numRegReads; ++i) {
        const ActiveMask uninit = exec & ~s.regInit[a.regReads[i]];
        if (uninit)
            flagUninit('r', a.regReads[i], uninit);
    }
    for (unsigned i = 0; i < a.numPredReads; ++i) {
        if (a.predReads[i] == inst.pred)
            continue; // guard handled above against the active mask
        const ActiveMask uninit = exec & ~s.predInit[a.predReads[i]];
        if (uninit)
            flagUninit('p', a.predReads[i], uninit);
    }

    if (a.regWrite >= 0)
        s.regInit[std::size_t(a.regWrite)] |= exec;
    if (a.predWrite >= 0)
        s.predInit[std::size_t(a.predWrite)] |= exec;
}

void
Sanitizer::onMemory(const Warp &w, const Instruction &inst, std::int32_t pc,
                    const std::array<Addr, warpSize> &addrs,
                    ActiveMask exec)
{
    if (level_ < CheckLevel::Memory)
        return;
    DTBL_HPROF_SCOPE("check");
    const ThreadBlock &tb = *w.tb();
    const KernelAccessSafety *ks =
        safety_ != nullptr ? safety_->of(w.fn()->id) : nullptr;

    switch (inst.space) {
      case MemSpace::Global:
        if (safety_ != nullptr) {
            // Span-batch: one live-allocation probe over [min, max+w)
            // replaces up to 32 per-lane probes. Allocations are
            // contiguous, so span coverage implies per-lane coverage.
            // On failure fall back to the per-lane loop so the first
            // offending lane is reported exactly as without elision.
            Addr lo = ~Addr(0);
            Addr hi = 0;
            for (unsigned lane = 0; lane < warpSize; ++lane) {
                if (!(exec & (1u << lane)))
                    continue;
                lo = std::min(lo, addrs[lane]);
                hi = std::max(hi, addrs[lane]);
            }
            if (exec != 0 &&
                mem_.inLiveAllocation(lo, std::size_t(hi - lo) +
                                              inst.width)) {
                ++batched_;
                break;
            }
        }
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            if (!mem_.inLiveAllocation(addrs[lane], inst.width)) {
                std::ostringstream os;
                os << w.fn()->name << ": lane " << lane << " "
                   << (inst.op == Opcode::Ld ? "reads" : "writes")
                   << " global addr " << addrs[lane] << " (+"
                   << int(inst.width) << ") outside any live allocation";
                reportAt(w.fn(), pc, CheckRule::OobGlobal, Severity::Error,
                         os.str());
                break;
            }
        }
        break;
      case MemSpace::Shared:
        if (ks != nullptr && pc >= 0 &&
            std::size_t(pc) < ks->sharedSafe.size() &&
            ks->sharedSafe[std::size_t(pc)] &&
            tb.sharedMem.size() >= w.fn()->sharedMemBytes) {
            // Interval analysis proved the access inside the declared
            // segment; the runtime guard covers the declared-vs-actual
            // segment size the proof is relative to.
            ++elided_;
        } else
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            if (addrs[lane] + inst.width > tb.sharedMem.size()) {
                std::ostringstream os;
                os << w.fn()->name << ": lane " << lane
                   << " accesses shared offset " << addrs[lane] << " (+"
                   << int(inst.width) << ") outside the "
                   << tb.sharedMem.size() << "-byte TB segment";
                reportAt(w.fn(), pc, CheckRule::OobShared, Severity::Error,
                         os.str());
                break;
            }
        }
        if (level_ >= CheckLevel::Full) {
            if (ks != nullptr && ks->sharedRaceFree)
                ++elided_; // no shared writes / single warp: no races
            else
                checkShared(w, inst, pc, addrs, exec);
        }
        break;
      case MemSpace::Param:
        if (ks != nullptr && pc >= 0 &&
            std::size_t(pc) < ks->paramSafe.size() &&
            ks->paramSafe[std::size_t(pc)] &&
            tbParamCovered(tb, ks->paramProvenEnd)) {
            // Offsets proven within [0, paramProvenEnd); the memoized
            // per-TB probe confirms that whole window is live.
            ++elided_;
            break;
        }
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const Addr a = tb.asg.paramAddr + addrs[lane];
            if (!mem_.inLiveAllocation(a, inst.width)) {
                std::ostringstream os;
                os << w.fn()->name << ": lane " << lane
                   << " reads param offset " << addrs[lane]
                   << " outside the bound parameter buffer at "
                   << tb.asg.paramAddr;
                reportAt(w.fn(), pc, CheckRule::OobParam, Severity::Error,
                         os.str());
                break;
            }
        }
        break;
    }
}

void
Sanitizer::checkShared(const Warp &w, const Instruction &inst,
                       std::int32_t pc,
                       const std::array<Addr, warpSize> &addrs,
                       ActiveMask exec)
{
    const ThreadBlock &tb = *w.tb();
    if (tb.numWarps < 2)
        return; // races need two warps; intra-warp lanes are lock-step
    TbShadow &s = tbShadows_[&tb];
    if (s.bytes.size() < tb.sharedMem.size())
        s.bytes.resize(tb.sharedMem.size());

    const bool isWrite = inst.op != Opcode::Ld;
    const std::int16_t warp = std::int16_t(w.warpInTb());
    const std::uint64_t warpBit = 1ull << w.warpInTb();

    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(exec & (1u << lane)))
            continue;
        const Addr base = addrs[lane];
        for (unsigned b = 0; b < inst.width; ++b) {
            if (base + b >= s.bytes.size())
                break; // out of bounds reported separately
            SharedByte &sb = s.bytes[base + b];
            if (isWrite) {
                const bool otherWriter =
                    sb.writerWarp >= 0 && sb.writerWarp != warp;
                const bool otherReader = (sb.readers & ~warpBit) != 0;
                if (otherWriter || otherReader) {
                    std::ostringstream os;
                    os << w.fn()->name << ": warp " << warp
                       << " writes shared byte " << base + b << " also "
                       << (otherWriter ? "written" : "read")
                       << " by another warp with no barrier in between";
                    reportAt(w.fn(), pc, CheckRule::SharedRace,
                             Severity::Error, os.str());
                }
                sb.writerWarp = warp;
                sb.readers = 0;
            } else {
                if (sb.writerWarp >= 0 && sb.writerWarp != warp) {
                    std::ostringstream os;
                    os << w.fn()->name << ": warp " << warp
                       << " reads shared byte " << base + b
                       << " written by warp " << sb.writerWarp
                       << " with no barrier in between";
                    reportAt(w.fn(), pc, CheckRule::SharedRace,
                             Severity::Error, os.str());
                }
                sb.readers |= warpBit;
            }
        }
    }
}

bool
Sanitizer::tbParamCovered(const ThreadBlock &tb, std::uint32_t bytes)
{
    if (bytes == 0)
        return false;
    auto [it, fresh] = paramOk_.try_emplace(&tb, false);
    if (fresh)
        it->second = mem_.inLiveAllocation(tb.asg.paramAddr, bytes);
    return it->second;
}

void
Sanitizer::onBarrierRelease(const ThreadBlock &tb)
{
    auto it = tbShadows_.find(&tb);
    if (it == tbShadows_.end())
        return;
    for (SharedByte &sb : it->second.bytes)
        sb = SharedByte{};
}

void
Sanitizer::onWarpFinish(const Warp &w)
{
    warpShadows_.erase(&w);
}

void
Sanitizer::onTbFinish(const ThreadBlock &tb)
{
    tbShadows_.erase(&tb);
    paramOk_.erase(&tb);
}

std::string
Sanitizer::summary() const
{
    std::ostringstream os;
    os << "dtbl-check[" << checkLevelName(level_) << "]: " << errors_
       << " error(s), " << warnings_ << " warning(s)";
    if (dropped_ > 0)
        os << " (" << dropped_ << " not stored)";
    return os.str();
}

} // namespace dtbl
