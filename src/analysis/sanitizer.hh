/**
 * @file
 * Runtime sanitizer for the simulated machine ("dtbl-check").
 *
 * Plays the role cuda-memcheck/racecheck plays for real CDP code, but
 * over the simulator's architectural state. All checks are pure
 * observers: they read warp/TB/memory state at the Smx hook points and
 * never touch simulated timing, so a run with checks on produces
 * bit-identical stats and trace hashes to a run with checks off.
 *
 * Check levels (RunOptions::checkLevel / --check):
 *   Off        (0) no sanitizer; hooks still compiled in when enabled.
 *   Invariants (1) microarchitectural drain asserts only: no leaked
 *                  KDE/AGT entries, NAGEI/LAGEI linkage well-formed,
 *                  coalesced + fallback == launches, launch-metadata
 *                  bytes fully released.
 *   Memory     (2) + every Ld/St/Atom bounds-checked: global accesses
 *                  against the live-allocation map (including GetPBuf
 *                  parameter buffers), shared against the TB segment,
 *                  param against the bound parameter buffer.
 *   Full       (3) + per-lane uninitialized-register-read tracking and
 *                  a shared-memory race checker (same-byte WW/RW pairs
 *                  from different warps of a TB with no intervening
 *                  barrier).
 *
 * Compile-time gate: configure with -DDTBL_ENABLE_CHECK=OFF (defines
 * DTBL_CHECK_ENABLED=0) and every hook call site in the hot path
 * compiles out entirely; the trace-hash regression tests then prove the
 * OFF build behaves identically to the seed.
 */

#ifndef DTBL_ANALYSIS_SANITIZER_HH
#define DTBL_ANALYSIS_SANITIZER_HH

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/access_safety.hh"
#include "analysis/diagnostics.hh"
#include "gpu/thread_block.hh"
#include "gpu/warp.hh"
#include "mem/global_memory.hh"

#ifndef DTBL_CHECK_ENABLED
#define DTBL_CHECK_ENABLED 1
#endif

namespace dtbl {

enum class CheckLevel : std::uint8_t
{
    Off = 0,
    Invariants = 1,
    Memory = 2,
    Full = 3,
};

const char *checkLevelName(CheckLevel lvl);

class Sanitizer
{
  public:
    /** True when the build carries the hook call sites. */
    static constexpr bool compiledIn = DTBL_CHECK_ENABLED != 0;

    /**
     * @p safety, when non-null, enables check-elision: runtime checks
     * the static analyzer proved redundant are skipped (and coalesced
     * global bounds checks are span-batched). Elision never changes
     * findings — see access_safety.hh for the soundness contract. The
     * pointer must outlive the sanitizer.
     */
    Sanitizer(CheckLevel level, const GlobalMemory &mem,
              const AccessSafety *safety = nullptr);

    CheckLevel level() const { return level_; }

    /** Per-hook checks skipped thanks to static proofs. */
    std::uint64_t elidedChecks() const { return elided_; }
    /** Global bounds loops collapsed into one span check. */
    std::uint64_t batchedChecks() const { return batched_; }

    // --- Smx hook points (observers; never mutate machine state) -------
    /** Before an instruction executes; @p exec is the post-guard mask. */
    void onIssue(const Warp &w, const Instruction &inst, std::int32_t pc,
                 ActiveMask exec, ActiveMask active);
    /** Before a memory instruction performs its per-lane accesses. */
    void onMemory(const Warp &w, const Instruction &inst, std::int32_t pc,
                  const std::array<Addr, warpSize> &addrs,
                  ActiveMask exec);
    /** All warps of @p tb passed a barrier (race epoch boundary). */
    void onBarrierRelease(const ThreadBlock &tb);
    /** Warp is about to be destroyed (its slot may be reused). */
    void onWarpFinish(const Warp &w);
    /** TB is about to be destroyed. */
    void onTbFinish(const ThreadBlock &tb);

    // --- machine-level reporting (drain invariants live in Gpu) --------
    void report(CheckRule rule, Severity sev, std::string msg);

    // --- results --------------------------------------------------------
    const std::vector<Diagnostic> &findings() const { return findings_; }
    std::uint64_t errorCount() const { return errors_; }
    std::uint64_t warningCount() const { return warnings_; }
    /** "dtbl-check[full]: 2 errors, 0 warnings" */
    std::string summary() const;

  private:
    struct WarpShadow
    {
        /** Per-register mask of lanes that have written it. */
        std::vector<ActiveMask> regInit;
        std::vector<ActiveMask> predInit;
    };

    struct SharedByte
    {
        std::int16_t writerWarp = -1; //!< warp-in-TB of last writer
        std::uint64_t readers = 0;    //!< warp-in-TB read mask
    };

    struct TbShadow
    {
        std::vector<SharedByte> bytes;
    };

    void reportAt(const KernelFunction *fn, std::int32_t pc,
                  CheckRule rule, Severity sev, std::string msg);
    WarpShadow &shadowOf(const Warp &w);
    void checkShared(const Warp &w, const Instruction &inst,
                     std::int32_t pc, const std::array<Addr, warpSize> &addrs,
                     ActiveMask exec);
    /**
     * The hoisted per-TB parameter check backing param-site elision:
     * is [paramAddr, paramAddr + bytes) inside one live allocation?
     * Memoized per TB (allocations are never freed).
     */
    bool tbParamCovered(const ThreadBlock &tb, std::uint32_t bytes);

    CheckLevel level_;
    const GlobalMemory &mem_;
    const AccessSafety *safety_;
    std::uint64_t elided_ = 0;
    std::uint64_t batched_ = 0;
    std::unordered_map<const ThreadBlock *, bool> paramOk_;

    std::vector<Diagnostic> findings_;
    std::uint64_t errors_ = 0;
    std::uint64_t warnings_ = 0;
    std::uint64_t dropped_ = 0;
    /** Dedup key: one report per (func, pc, rule) site. */
    std::set<std::tuple<KernelFuncId, std::int32_t, int>> seen_;

    std::unordered_map<const Warp *, WarpShadow> warpShadows_;
    std::unordered_map<const ThreadBlock *, TbShadow> tbShadows_;
};

} // namespace dtbl

#endif // DTBL_ANALYSIS_SANITIZER_HH
