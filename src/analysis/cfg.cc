#include "analysis/cfg.hh"

#include <algorithm>

namespace dtbl {

void
instSuccessors(const Instruction &inst, std::int32_t pc, std::int32_t n,
               std::vector<std::int32_t> &out)
{
    out.clear();
    switch (inst.op) {
      case Opcode::Bra:
        if (inst.target >= 0 && inst.target < n)
            out.push_back(inst.target);
        if (inst.pred >= 0)
            out.push_back(pc + 1);
        break;
      case Opcode::Exit:
        // An unpredicated exit retires every live lane; lanes in other
        // stack entries resume at their own reconvergence PCs, which the
        // branch edges already model.
        if (inst.pred >= 0)
            out.push_back(pc + 1);
        break;
      default:
        out.push_back(pc + 1);
        break;
    }
}

Cfg::Cfg(const KernelFunction &fn) : fn_(&fn)
{
    if (fn.code.empty())
        return;
    buildBlocks();
    computeOrderAndDominators();
}

void
Cfg::buildBlocks()
{
    const std::int32_t n = std::int32_t(fn_->code.size());

    // Leaders: entry, branch targets, and the instruction after any
    // control transfer (so a block never straddles a branch).
    std::vector<bool> leader(std::size_t(n), false);
    leader[0] = true;
    std::vector<std::int32_t> succ;
    for (std::int32_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = fn_->code[std::size_t(pc)];
        const bool transfers =
            inst.op == Opcode::Bra || inst.op == Opcode::Exit;
        if (transfers && pc + 1 < n)
            leader[std::size_t(pc + 1)] = true;
        if (inst.op == Opcode::Bra && inst.target >= 0 && inst.target < n)
            leader[std::size_t(inst.target)] = true;
    }

    blockOf_.assign(std::size_t(n), 0);
    for (std::int32_t pc = 0; pc < n; ++pc) {
        if (leader[std::size_t(pc)]) {
            BasicBlock b;
            b.first = pc;
            blocks_.push_back(b);
        }
        blockOf_[std::size_t(pc)] = std::uint32_t(blocks_.size() - 1);
        blocks_.back().last = pc;
    }

    for (std::uint32_t bi = 0; bi < blocks_.size(); ++bi) {
        BasicBlock &b = blocks_[bi];
        instSuccessors(fn_->code[std::size_t(b.last)], b.last, n, succ);
        for (std::int32_t s : succ) {
            if (s >= n) {
                fallsOffEnd_ = true;
                continue;
            }
            const std::uint32_t sb = blockOf_[std::size_t(s)];
            if (std::find(b.succs.begin(), b.succs.end(), sb) ==
                b.succs.end())
                b.succs.push_back(sb);
        }
    }
    for (std::uint32_t bi = 0; bi < blocks_.size(); ++bi)
        for (std::uint32_t s : blocks_[bi].succs)
            blocks_[s].preds.push_back(bi);
}

void
Cfg::computeOrderAndDominators()
{
    // Iterative DFS post-order from the entry block.
    std::vector<std::uint32_t> post;
    std::vector<std::uint8_t> state(blocks_.size(), 0); // 0 new 1 open 2 done
    std::vector<std::uint32_t> stack{0};
    while (!stack.empty()) {
        const std::uint32_t b = stack.back();
        if (state[b] == 0) {
            state[b] = 1;
            blocks_[b].reachable = true;
            for (std::uint32_t s : blocks_[b].succs)
                if (state[s] == 0)
                    stack.push_back(s);
        } else {
            stack.pop_back();
            if (state[b] == 1) {
                state[b] = 2;
                post.push_back(b);
            }
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    rpoIndex_.assign(blocks_.size(), noBlock);
    for (std::uint32_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;

    // Cooper-Harvey-Kennedy iterative dominators over RPO.
    idom_.assign(blocks_.size(), noBlock);
    if (rpo_.empty())
        return;
    idom_[rpo_[0]] = rpo_[0];
    const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t i = 1; i < rpo_.size(); ++i) {
            const std::uint32_t b = rpo_[i];
            std::uint32_t newIdom = noBlock;
            for (std::uint32_t p : blocks_[b].preds) {
                if (idom_[p] == noBlock)
                    continue; // unprocessed or unreachable
                newIdom = newIdom == noBlock ? p : intersect(p, newIdom);
            }
            if (newIdom != noBlock && idom_[b] != newIdom) {
                idom_[b] = newIdom;
                changed = true;
            }
        }
    }
    idom_[rpo_[0]] = noBlock; // entry has no idom
}

bool
Cfg::dominates(std::uint32_t a, std::uint32_t b) const
{
    if (a >= blocks_.size() || b >= blocks_.size())
        return false;
    if (!blocks_[a].reachable || !blocks_[b].reachable)
        return false;
    while (b != noBlock) {
        if (a == b)
            return true;
        b = idom_[b];
    }
    return false;
}

} // namespace dtbl
