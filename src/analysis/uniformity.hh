/**
 * @file
 * Warp-uniformity (divergence) analysis.
 *
 * Classifies every register as warp-uniform (all lanes hold the same
 * value), lane-affine (value = base + stride * laneId for a known
 * constant stride; uniform is the stride-0 special case) or divergent.
 * The lattice is Unknown < Affine(stride) < Divergent and the pass is
 * a flow-insensitive fixpoint: one fact per register joined over every
 * def, which is sound for the classification and cheap to compute.
 *
 * Divergence sources: tid specials whose lane mapping is non-linear,
 * per-lane parameter buffers (GetPBuf), atomics, loads from divergent
 * addresses, defs under a divergent guard predicate, and any def
 * inside the (branch, reconv) region of a branch on a divergent
 * predicate (KernelBuilder emits structured control flow, so the
 * region is the contiguous pc interval).
 *
 * The launch-site facts drive the DivergentLaunch diagnostic: the
 * simulator's launch opcodes are per-lane (each active lane issues its
 * own launch, the paper's Section 3 semantics), so a launch whose
 * TB-count or parameter-address operand is divergent — or which sits
 * in a divergent region — fans out into up to warpSize independent
 * launches with distinct arguments.
 */

#ifndef DTBL_ANALYSIS_UNIFORMITY_HH
#define DTBL_ANALYSIS_UNIFORMITY_HH

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

enum class LaneShape : std::uint8_t { Unknown, Affine, Divergent };

/** Per-register lane-value fact; Affine with stride 0 == uniform. */
struct LaneFact
{
    LaneShape shape = LaneShape::Unknown;
    std::int64_t stride = 0; //!< valid when shape == Affine

    static LaneFact unknown() { return {}; }
    static LaneFact uniform() { return {LaneShape::Affine, 0}; }
    static LaneFact affine(std::int64_t s) { return {LaneShape::Affine, s}; }
    static LaneFact divergent() { return {LaneShape::Divergent, 0}; }

    bool isUniform() const
    {
        return shape == LaneShape::Affine && stride == 0;
    }
    bool isDivergent() const { return shape == LaneShape::Divergent; }

    bool operator==(const LaneFact &) const = default;
};

LaneFact joinFacts(const LaneFact &a, const LaneFact &b);

const char *laneShapeName(const LaneFact &f);

struct UniformityResult
{
    std::vector<LaneFact> regs;  //!< final per-register facts
    std::vector<LaneFact> preds; //!< per-predicate (uniform/divergent)

    struct LaunchSite
    {
        std::int32_t pc = -1;
        KernelFuncId callee = invalidKernelFunc;
        bool aggregated = false; //!< LaunchAgg (DTBL) vs LaunchDevice
        LaneFact numTbs;
        LaneFact paramAddr;
        bool inDivergentRegion = false;
        bool divergentGuard = false;

        /** Lanes can issue differing launches. */
        bool
        divergentFanOut() const
        {
            return !numTbs.isUniform() || !paramAddr.isUniform() ||
                   inDivergentRegion || divergentGuard;
        }
    };
    std::vector<LaunchSite> launches;

    unsigned uniformRegs = 0;
    unsigned affineRegs = 0; //!< affine with non-zero stride
    unsigned divergentRegs = 0;

    /** DivergentLaunch warnings. */
    std::vector<Diagnostic> diags;
};

UniformityResult analyzeUniformity(const KernelFunction &fn);

} // namespace dtbl

#endif // DTBL_ANALYSIS_UNIFORMITY_HH
