/**
 * @file
 * Interprocedural launch graph over all registered kernels.
 *
 * Nodes are kernel functions; one edge per LaunchDevice/LaunchAgg site.
 * On top of the graph:
 *
 *  - launch depth: longest chain of device-side launches below each
 *    kernel (0 = leaf). Cycles (self-launching AMR-style kernels or
 *    mutual recursion) make the depth unbounded and raise the
 *    LaunchRecursion warning — the hardware has no depth limit, but
 *    resource exhaustion becomes data-dependent;
 *  - worst-case resource budgets per the paper's Section 4: every
 *    launch opcode executes per lane, so one warp instruction can
 *    produce up to warpSize launches. With every resident warp at a
 *    launch site simultaneously, aggregated launches demand
 *    residentWarps x warpSize AGT groups (vs the fixed-size
 *    aggregation table, Section 4.2, agtSize entries of
 *    aggGroupRecordBytes) and CDP launches the same number of pending
 *    kernel records of cdpKernelRecordBytes each (the Figure 10
 *    footprint). Exceeding agtSize is legal — the simulator falls back
 *    to non-coalesced dispatch — but it is the regime where DTBL loses
 *    its benefit, so LaunchBudget flags it.
 */

#ifndef DTBL_ANALYSIS_LAUNCH_GRAPH_HH
#define DTBL_ANALYSIS_LAUNCH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/uniformity.hh"
#include "common/config.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

struct LaunchEdge
{
    KernelFuncId caller = invalidKernelFunc;
    KernelFuncId callee = invalidKernelFunc;
    std::int32_t pc = -1;
    bool aggregated = false;
    /** Lanes can issue differing launches (see uniformity.hh). */
    bool divergentFanOut = false;
    /** Worst-case launches from one warp executing this site once. */
    std::uint32_t maxFanOutPerWarp = warpSize;
};

struct LaunchGraph
{
    struct Node
    {
        KernelFuncId id = invalidKernelFunc;
        std::string name;
        std::vector<std::uint32_t> outEdges; //!< indices into edges
        /** Longest launch chain below this kernel; -1 = unbounded. */
        int depth = 0;
        /** Kernel sits on a launch cycle (directly or mutually). */
        bool onCycle = false;
        /** Host-reachable root (no in-edges). */
        bool isRoot = true;
    };

    std::vector<Node> nodes;
    std::vector<LaunchEdge> edges;

    /** Longest chain anywhere; -1 when any cycle exists. */
    int maxDepth = 0;
    bool hasCycle = false;

    // Worst-case concurrent-launch budgets (machine-wide).
    std::uint64_t worstCaseAggLaunches = 0;
    std::uint64_t worstCaseCdpLaunches = 0;
    std::uint64_t aggTableCapacity = 0;    //!< cfg.agtSize
    std::uint64_t aggSpillBytes = 0;       //!< overflow x record size
    std::uint64_t cdpPendingBytes = 0;     //!< records x record size
    bool aggBudgetExceeded = false;

    std::vector<Diagnostic> diags; //!< LaunchRecursion + LaunchBudget
};

/**
 * Build the launch graph. @p uniformity holds one entry per kernel id
 * (the per-kernel uniformity results supply the launch-site facts).
 */
LaunchGraph buildLaunchGraph(const Program &prog, const GpuConfig &cfg,
                             const std::vector<UniformityResult> &uniformity);

} // namespace dtbl

#endif // DTBL_ANALYSIS_LAUNCH_GRAPH_HH
