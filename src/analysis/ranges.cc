#include "analysis/ranges.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "analysis/dataflow.hh"

namespace dtbl {
namespace {

constexpr std::uint64_t kU32Max = 0xffffffffull;

Interval
fromU64(std::uint64_t lo, std::uint64_t hi)
{
    if (hi > kU32Max)
        return Interval::top();
    return Interval::range(std::uint32_t(lo), std::uint32_t(hi));
}

/** Smallest all-ones mask covering @p v (0 -> 0). */
std::uint32_t
maskUpTo(std::uint32_t v)
{
    const unsigned w = unsigned(std::bit_width(v));
    return w >= 32 ? 0xffffffffu : (1u << w) - 1;
}

Interval
sregInterval(SReg s, const Dim3 &tb)
{
    switch (s) {
      case SReg::TidX: return Interval::range(0, tb.x ? tb.x - 1 : 0);
      case SReg::TidY: return Interval::range(0, tb.y ? tb.y - 1 : 0);
      case SReg::TidZ: return Interval::range(0, tb.z ? tb.z - 1 : 0);
      case SReg::NTidX: return Interval::constant(tb.x);
      case SReg::NTidY: return Interval::constant(tb.y);
      case SReg::NTidZ: return Interval::constant(tb.z);
      case SReg::LaneId: return Interval::range(0, warpSize - 1);
      case SReg::IsAggregated: return Interval::range(0, 1);
      default: // grid shape and block index are launch-time values
        return Interval::top();
    }
}

class IntervalDomain
{
  public:
    using State = std::vector<Interval>;

    explicit IntervalDomain(const KernelFunction &fn) : fn_(&fn) {}

    State
    boundary() const
    {
        // Registers hold unspecified bits at entry; the verifier's
        // def-before-use pass keeps reads of them out of clean kernels.
        return State(fn_->numRegs, Interval::top());
    }

    State initial() const { return State(fn_->numRegs, Interval::bottom()); }

    bool
    merge(State &into, const State &from, bool widen_now) const
    {
        bool changed = false;
        for (std::size_t r = 0; r < into.size(); ++r) {
            Interval j = join(into[r], from[r]);
            if (widen_now)
                j = widen(into[r], j);
            if (!(j == into[r])) {
                into[r] = j;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(const Cfg &cfg, std::uint32_t block, State &s) const
    {
        const BasicBlock &b = cfg.block(block);
        for (std::int32_t pc = b.first; pc <= b.last; ++pc)
            step(cfg.fn().code[std::size_t(pc)], s);
    }

    /** Apply one instruction's effect to @p s. */
    void
    step(const Instruction &inst, State &s) const
    {
        const std::int16_t dst = destOf(inst);
        if (dst < 0 || std::uint32_t(dst) >= fn_->numRegs)
            return;
        Interval v = value(inst, s);
        if (inst.pred >= 0) // guarded def: lanes may keep the old value
            v = join(s[std::size_t(dst)], v);
        s[std::size_t(dst)] = v;
    }

    Interval
    operand(const Operand &op, const State &s) const
    {
        switch (op.kind) {
          case Operand::Kind::Imm:
            return Interval::constant(op.value);
          case Operand::Kind::Special:
            return sregInterval(SReg(op.value), fn_->tbDim);
          case Operand::Kind::Reg:
            return op.value < s.size() ? s[op.value] : Interval::top();
          default:
            return Interval::top();
        }
    }

  private:
    static std::int16_t
    destOf(const Instruction &inst)
    {
        switch (inst.op) {
          case Opcode::Setp:
          case Opcode::St:
          case Opcode::Bra:
          case Opcode::Bar:
          case Opcode::Exit:
          case Opcode::Nop:
          case Opcode::StreamCreate:
          case Opcode::LaunchDevice:
          case Opcode::LaunchAgg:
            return -1;
          default:
            return inst.dst;
        }
    }

    Interval
    value(const Instruction &inst, const State &s) const
    {
        const auto a = [&] { return operand(inst.src[0], s); };
        const auto b = [&] { return operand(inst.src[1], s); };

        switch (inst.op) {
          case Opcode::Mov:
          case Opcode::Selp:
            break; // handled below (bit copies, type-agnostic)
          case Opcode::Ld:
          case Opcode::Atom:
          case Opcode::GetPBuf:
          case Opcode::CvtF2I:
          case Opcode::CvtI2F:
            return Interval::top();
          default:
            if (inst.type == DataType::F32)
                return Interval::top();
            break;
        }

        switch (inst.op) {
          case Opcode::Mov:
            return a();
          case Opcode::Selp:
            return join(a(), b());
          case Opcode::Add:
            return binOp(a(), b(), [](std::uint64_t x, std::uint64_t y) {
                return x + y;
            });
          case Opcode::Mad: {
            const Interval p = mul(a(), b());
            return binOp(p, operand(inst.src[2], s),
                         [](std::uint64_t x, std::uint64_t y) {
                             return x + y;
                         });
          }
          case Opcode::Sub: {
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            if (x.lo < y.hi)
                return Interval::top(); // may wrap below zero
            return Interval::range(x.lo - y.hi, x.hi - y.lo);
          }
          case Opcode::Mul:
            return mul(a(), b());
          case Opcode::Div: {
            if (inst.type != DataType::U32)
                return Interval::top();
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            if (y.lo == 0)
                return Interval::top();
            return Interval::range(x.lo / y.hi, x.hi / y.lo);
          }
          case Opcode::Rem: {
            if (inst.type != DataType::U32)
                return Interval::top();
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            if (y.lo == 0)
                return Interval::top();
            return Interval::range(0, std::min(x.hi, y.hi - 1));
          }
          case Opcode::Min: {
            if (inst.type != DataType::U32)
                return Interval::top();
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            return Interval::range(std::min(x.lo, y.lo),
                                   std::min(x.hi, y.hi));
          }
          case Opcode::Max: {
            if (inst.type != DataType::U32)
                return Interval::top();
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            return Interval::range(std::max(x.lo, y.lo),
                                   std::max(x.hi, y.hi));
          }
          case Opcode::And: {
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            return Interval::range(0, std::min(x.hi, y.hi));
          }
          case Opcode::Or: {
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            return Interval::range(std::max(x.lo, y.lo),
                                   maskUpTo(x.hi | y.hi));
          }
          case Opcode::Xor: {
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            return Interval::range(0, maskUpTo(x.hi | y.hi));
          }
          case Opcode::Not: {
            const Interval x = a();
            if (x.bot)
                return Interval::bottom();
            return Interval::range(~x.hi, ~x.lo);
          }
          case Opcode::Shl: {
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            if (y.hi >= 32)
                return Interval::top();
            return fromU64(std::uint64_t(x.lo) << y.lo,
                           std::uint64_t(x.hi) << y.hi);
          }
          case Opcode::Shr: {
            if (inst.type != DataType::U32)
                return Interval::top(); // S32 shr is arithmetic
            const Interval x = a(), y = b();
            if (x.bot || y.bot)
                return Interval::bottom();
            if (y.hi >= 32)
                return Interval::top();
            return Interval::range(x.lo >> y.hi, x.hi >> y.lo);
          }
          default:
            return Interval::top();
        }
    }

    template <typename F>
    static Interval
    binOp(const Interval &x, const Interval &y, F f)
    {
        if (x.bot || y.bot)
            return Interval::bottom();
        return fromU64(f(x.lo, y.lo), f(x.hi, y.hi));
    }

    static Interval
    mul(const Interval &x, const Interval &y)
    {
        if (x.bot || y.bot)
            return Interval::bottom();
        // All-unsigned product is monotone in both operands.
        return fromU64(std::uint64_t(x.lo) * y.lo,
                       std::uint64_t(x.hi) * y.hi);
    }

    const KernelFunction *fn_;
};

} // namespace

Interval
join(const Interval &a, const Interval &b)
{
    if (a.bot)
        return b;
    if (b.bot)
        return a;
    return Interval::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval
widen(const Interval &prev, const Interval &next)
{
    if (prev.bot)
        return next;
    if (next.bot)
        return prev;
    Interval w = next;
    if (next.lo < prev.lo)
        w.lo = 0;
    if (next.hi > prev.hi)
        w.hi = 0xffffffffu;
    return w;
}

RangeResult
analyzeRanges(const Cfg &cfg)
{
    const KernelFunction &fn = cfg.fn();
    RangeResult res;
    res.paramSafe.assign(fn.code.size(), false);
    res.sharedSafe.assign(fn.code.size(), false);
    if (fn.code.empty())
        return res;

    IntervalDomain domain(fn);
    ForwardSolver<IntervalDomain> solver(cfg, domain);
    solver.solve();

    const auto oob = [&](std::int32_t pc, const char *space,
                         std::int64_t lo_end, std::uint32_t limit) {
        std::ostringstream os;
        os << fn.name << ": " << space << " access spans bytes up to "
           << lo_end << " on every path, beyond the " << limit
           << "-byte segment";
        Diagnostic d;
        d.funcId = fn.id;
        d.pc = pc;
        d.severity = Severity::Warning; // the site may be dynamically dead
        d.rule = CheckRule::StaticOob;
        d.message = os.str();
        res.diags.push_back(std::move(d));
    };

    for (std::uint32_t bi = 0; bi < cfg.numBlocks(); ++bi) {
        const BasicBlock &b = cfg.block(bi);
        if (!b.reachable)
            continue;
        IntervalDomain::State s = solver.inState(bi);
        for (std::int32_t pc = b.first; pc <= b.last; ++pc) {
            const Instruction &inst = fn.code[std::size_t(pc)];
            if (inst.isMemory()) {
                const Interval addr = domain.operand(inst.src[0], s);
                // Effective byte range [addr.lo+off, addr.hi+off+width).
                const std::int64_t loEnd = std::int64_t(addr.lo) +
                                           inst.memOffset + inst.width;
                const std::int64_t hiEnd = std::int64_t(addr.hi) +
                                           inst.memOffset + inst.width;
                const std::int64_t loBegin =
                    std::int64_t(addr.lo) + inst.memOffset;
                switch (inst.space) {
                  case MemSpace::Param:
                    ++res.paramSites;
                    if (!addr.bot && loBegin >= 0 &&
                        hiEnd <= std::int64_t(fn.paramBytes)) {
                        res.paramSafe[std::size_t(pc)] = true;
                        ++res.paramProven;
                        res.paramProvenEnd =
                            std::max<std::uint32_t>(res.paramProvenEnd,
                                                    std::uint32_t(hiEnd));
                    } else if (!addr.bot &&
                               inst.src[0].kind == Operand::Kind::Reg &&
                               loEnd > std::int64_t(fn.paramBytes)) {
                        // Imm-addressed OOB is the verifier's
                        // ParamBounds error; only reg sites are new.
                        oob(pc, "param", loEnd, fn.paramBytes);
                    }
                    break;
                  case MemSpace::Shared:
                    ++res.sharedSites;
                    if (!addr.bot && loBegin >= 0 &&
                        hiEnd <= std::int64_t(fn.sharedMemBytes)) {
                        res.sharedSafe[std::size_t(pc)] = true;
                        ++res.sharedProven;
                    } else if (!addr.bot &&
                               loEnd > std::int64_t(fn.sharedMemBytes)) {
                        oob(pc, "shared", loEnd, fn.sharedMemBytes);
                    }
                    break;
                  case MemSpace::Global:
                    // Allocation addresses are runtime values; global
                    // safety stays with the sanitizer (span-batched).
                    ++res.globalSites;
                    break;
                }
            }
            domain.step(inst, s);
        }
    }
    return res;
}

} // namespace dtbl
