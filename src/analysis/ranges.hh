/**
 * @file
 * Interval value-range analysis (constant propagation generalised to
 * [lo, hi] ranges over 32-bit register bit patterns).
 *
 * The domain is per-register unsigned intervals with widening at loop
 * heads; thread-index specials seed the ranges (tid.x in
 * [0, tbDim.x-1], ntid.x = tbDim.x, ...), which is what lets the
 * analysis prove tid-indexed shared/param accesses in bounds without
 * any path sensitivity. Transfer functions are bit-pattern-accurate:
 * ops whose low 32 result bits are sign-agnostic (add/sub/mul/shl and
 * the bitwise ops) are modelled for both U32 and S32 as long as the
 * mathematical result cannot wrap; sign-sensitive ops (div/rem/min/
 * max/shr) are modelled for U32 only; float-typed results are top.
 *
 * Outputs:
 *  - per-pc proof bits that a Param load / Shared access stays inside
 *    fn.paramBytes / fn.sharedMemBytes on every path (consumed by the
 *    sanitizer's check-elision, see access_safety.hh);
 *  - paramProvenEnd, the largest proven param byte end, backing the
 *    sanitizer's single hoisted per-TB parameter-buffer check;
 *  - StaticOob warnings for accesses proven out of bounds whenever
 *    they execute.
 */

#ifndef DTBL_ANALYSIS_RANGES_HH
#define DTBL_ANALYSIS_RANGES_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"

namespace dtbl {

/** Unsigned 32-bit bit-pattern interval [lo, hi]; bot = no value. */
struct Interval
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xffffffffu;
    bool bot = false;

    static Interval top() { return {}; }

    static Interval
    bottom()
    {
        Interval i;
        i.bot = true;
        return i;
    }

    static Interval
    constant(std::uint32_t c)
    {
        return {c, c, false};
    }

    static Interval
    range(std::uint32_t l, std::uint32_t h)
    {
        return {l, h, false};
    }

    bool isTop() const { return !bot && lo == 0 && hi == 0xffffffffu; }
    bool isConst() const { return !bot && lo == hi; }

    bool operator==(const Interval &) const = default;
};

Interval join(const Interval &a, const Interval &b);

/** One-step widening: bounds that grew jump to the type extreme. */
Interval widen(const Interval &prev, const Interval &next);

struct RangeResult
{
    /** Per-pc: Param load proven inside fn.paramBytes on every path. */
    std::vector<bool> paramSafe;
    /** Per-pc: Shared access proven inside fn.sharedMemBytes. */
    std::vector<bool> sharedSafe;
    /**
     * Largest proven param byte end over all proven sites; one runtime
     * check that [paramAddr, paramAddr+paramProvenEnd) is live covers
     * every proven site for the TB's lifetime (allocations are never
     * freed).
     */
    std::uint32_t paramProvenEnd = 0;

    // Site counts for the dtbl-analyze report.
    unsigned paramSites = 0;
    unsigned paramProven = 0;
    unsigned sharedSites = 0;
    unsigned sharedProven = 0;
    unsigned globalSites = 0;

    /** StaticOob warnings (definitely-OOB register-addressed sites). */
    std::vector<Diagnostic> diags;
};

RangeResult analyzeRanges(const Cfg &cfg);

} // namespace dtbl

#endif // DTBL_ANALYSIS_RANGES_HH
