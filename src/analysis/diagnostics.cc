#include "analysis/diagnostics.hh"

#include <sstream>

namespace dtbl {

const char *
ruleName(CheckRule rule)
{
    switch (rule) {
      case CheckRule::BranchTarget: return "branch-target";
      case CheckRule::ReconvTarget: return "reconv-target";
      case CheckRule::RegIndex: return "reg-index";
      case CheckRule::PredIndex: return "pred-index";
      case CheckRule::OperandKind: return "operand-kind";
      case CheckRule::MemWidth: return "mem-width";
      case CheckRule::MemAlign: return "mem-align";
      case CheckRule::ParamBounds: return "param-bounds";
      case CheckRule::LaunchFunc: return "launch-func";
      case CheckRule::LaunchOperand: return "launch-operand";
      case CheckRule::UseBeforeDef: return "use-before-def";
      case CheckRule::MaybeUninit: return "maybe-uninit";
      case CheckRule::BarrierDivergence: return "barrier-divergence";
      case CheckRule::NoTerminator: return "no-terminator";
      case CheckRule::StaticOob: return "static-oob";
      case CheckRule::StaticRace: return "static-race";
      case CheckRule::DivergentLaunch: return "divergent-launch";
      case CheckRule::LaunchRecursion: return "launch-recursion";
      case CheckRule::LaunchBudget: return "launch-budget";
      case CheckRule::OobGlobal: return "oob-global";
      case CheckRule::OobShared: return "oob-shared";
      case CheckRule::OobParam: return "oob-param";
      case CheckRule::UninitRead: return "uninit-read";
      case CheckRule::SharedRace: return "shared-race";
      case CheckRule::LeakKde: return "leak-kde";
      case CheckRule::LeakAgt: return "leak-agt";
      case CheckRule::KdeLinkage: return "kde-linkage";
      case CheckRule::AggCount: return "agg-count";
      case CheckRule::LeakLaunchBytes: return "leak-launch-bytes";
    }
    return "unknown";
}

const char *
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << ruleName(rule) << "]";
    if (funcId != invalidKernelFunc)
        os << " func=" << funcId;
    if (pc >= 0)
        os << " pc=" << pc;
    os << ": " << message;
    return os.str();
}

} // namespace dtbl
