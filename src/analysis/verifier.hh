/**
 * @file
 * Static verifier for kernel IR.
 *
 * Runs automatically in Program::add, so every kernel — hand-built or
 * emitted by KernelBuilder — is validated before the simulator can
 * execute it. The checks mirror what a PTX assembler plus cuda-memcheck
 * style tooling would reject up front:
 *
 *  - structural: branch/reconvergence targets in bounds, register and
 *    predicate indices within the declared budgets, operand kinds legal
 *    per opcode, memory width in {1,2,4} with aligned memOffset,
 *    constant param loads inside paramBytes, launch func ids registered
 *    (a function may reference itself for recursive launches);
 *  - dataflow: def-before-use via a forward must/may analysis over the
 *    per-instruction CFG. A read with no def on any path is an Error
 *    (use-before-def); a read defined on some paths only is a Warning
 *    (maybe-uninit) — the runtime sanitizer catches the lanes that
 *    actually hit it;
 *  - SIMT legality: Bar must not be predicated or sit inside the
 *    (branch, reconv) region of a predicated branch, where warps can be
 *    divergent; and no reachable instruction may fall off the end of
 *    code (every path must end in an unpredicated Exit).
 */

#ifndef DTBL_ANALYSIS_VERIFIER_HH
#define DTBL_ANALYSIS_VERIFIER_HH

#include <array>
#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

/**
 * Verify one kernel. @p num_funcs_known bounds the launch func-id
 * space: Program::add passes its post-insert size so a kernel may
 * launch itself or any previously registered function.
 */
std::vector<Diagnostic> verifyKernel(const KernelFunction &fn,
                                     std::size_t num_funcs_known);

/**
 * The registers/predicates one instruction semantically reads and
 * writes (shared between the dataflow pass and the runtime
 * uninitialized-read tracker). Only Reg-kind operands that the
 * interpreter actually consumes are listed; guard predicates and the
 * Selp selector are reported as predicate reads.
 */
struct InstAccess
{
    std::array<std::uint16_t, 4> regReads{};
    unsigned numRegReads = 0;
    std::array<std::uint16_t, 2> predReads{};
    unsigned numPredReads = 0;
    std::int16_t regWrite = -1;
    std::int16_t predWrite = -1;
};

InstAccess instAccess(const Instruction &inst);

} // namespace dtbl

#endif // DTBL_ANALYSIS_VERIFIER_HH
