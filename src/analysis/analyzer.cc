#include "analysis/analyzer.hh"

#include <algorithm>
#include <sstream>

#include "analysis/verifier.hh"

namespace dtbl {
namespace {

bool
verifierUninitClean(const KernelFunction &fn, std::size_t num_funcs)
{
    for (const Diagnostic &d : verifyKernel(fn, num_funcs)) {
        if (d.rule == CheckRule::UseBeforeDef ||
            d.rule == CheckRule::MaybeUninit ||
            d.severity == Severity::Error)
            return false;
    }
    return true;
}

KernelAccessSafety
kernelSafety(const KernelFunction &fn, std::size_t num_funcs)
{
    const Cfg cfg(fn);
    const RangeResult ranges = analyzeRanges(cfg);
    const RaceResult races = analyzeRaces(cfg);
    KernelAccessSafety ks;
    ks.uninitAllSafe = verifierUninitClean(fn, num_funcs);
    ks.sharedRaceFree = races.trivialRaceFree;
    ks.paramProvenEnd = ranges.paramProvenEnd;
    ks.paramSafe = ranges.paramSafe;
    ks.sharedSafe = ranges.sharedSafe;
    return ks;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (std::uint8_t(c) < 0x20) {
            out += "\\u0020"; // control chars never appear in practice
            continue;
        }
        out += c;
    }
    return out;
}

const char *
boolStr(bool b)
{
    return b ? "true" : "false";
}

} // namespace

ProgramAnalysis
analyzeProgram(const Program &prog, const GpuConfig &cfg)
{
    ProgramAnalysis pa;
    std::vector<UniformityResult> uniformity;
    uniformity.reserve(prog.size());

    for (KernelFuncId id = 0; id < prog.size(); ++id) {
        const KernelFunction &fn = prog.function(id);
        const Cfg cfg_fn(fn);

        KernelAnalysis ka;
        ka.id = id;
        ka.name = fn.name;
        ka.codeLen = unsigned(fn.code.size());
        ka.numBlocks = unsigned(cfg_fn.numBlocks());
        ka.ranges = analyzeRanges(cfg_fn);
        ka.uniformity = analyzeUniformity(fn);
        ka.races = analyzeRaces(cfg_fn);
        uniformity.push_back(ka.uniformity);

        KernelAccessSafety ks;
        ks.uninitAllSafe = verifierUninitClean(fn, prog.size());
        ks.sharedRaceFree = ka.races.trivialRaceFree;
        ks.paramProvenEnd = ka.ranges.paramProvenEnd;
        ks.paramSafe = ka.ranges.paramSafe;
        ks.sharedSafe = ka.ranges.sharedSafe;
        pa.safety.kernels.push_back(std::move(ks));
        pa.kernels.push_back(std::move(ka));
    }

    pa.graph = buildLaunchGraph(prog, cfg, uniformity);
    for (KernelFuncId id = 0; id < prog.size(); ++id) {
        pa.kernels[id].launchDepth = pa.graph.nodes[id].depth;
        pa.kernels[id].onLaunchCycle = pa.graph.nodes[id].onCycle;
    }

    for (const KernelAnalysis &ka : pa.kernels) {
        for (const Diagnostic &d : ka.ranges.diags)
            pa.diagnostics.push_back(d);
        for (const Diagnostic &d : ka.uniformity.diags)
            pa.diagnostics.push_back(d);
        for (const Diagnostic &d : ka.races.diags)
            pa.diagnostics.push_back(d);
    }
    for (const Diagnostic &d : pa.graph.diags)
        pa.diagnostics.push_back(d);
    std::stable_sort(pa.diagnostics.begin(), pa.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.funcId != b.funcId)
                             return a.funcId < b.funcId;
                         return a.pc < b.pc;
                     });
    for (const Diagnostic &d : pa.diagnostics) {
        if (d.severity == Severity::Error)
            ++pa.errorCount;
        else
            ++pa.warningCount;
    }
    return pa;
}

AccessSafety
computeAccessSafety(const Program &prog)
{
    AccessSafety safety;
    safety.kernels.reserve(prog.size());
    for (KernelFuncId id = 0; id < prog.size(); ++id)
        safety.kernels.push_back(
            kernelSafety(prog.function(id), prog.size()));
    return safety;
}

std::string
ProgramAnalysis::textReport(const std::string &title) const
{
    std::ostringstream os;
    os << "dtbl-analyze: " << title << "\n";
    os << "  kernels: " << kernels.size()
       << ", launch depth: ";
    if (graph.maxDepth < 0)
        os << "unbounded (recursive)";
    else
        os << graph.maxDepth;
    os << ", launch edges: " << graph.edges.size() << "\n";

    for (const KernelAnalysis &ka : kernels) {
        os << "  kernel " << ka.id << " '" << ka.name << "': "
           << ka.codeLen << " insts, " << ka.numBlocks << " blocks\n";
        os << "    regs: " << ka.uniformity.uniformRegs << " uniform, "
           << ka.uniformity.affineRegs << " affine, "
           << ka.uniformity.divergentRegs << " divergent\n";
        os << "    mem: param " << ka.ranges.paramProven << "/"
           << ka.ranges.paramSites << " proven (end "
           << ka.ranges.paramProvenEnd << "), shared "
           << ka.ranges.sharedProven << "/" << ka.ranges.sharedSites
           << " proven, global " << ka.ranges.globalSites
           << " (runtime-checked)\n";
        os << "    race: "
           << (ka.races.trivialRaceFree  ? "free (trivial)"
               : ka.races.provenRaceFree ? "free (affine-disjoint)"
                                         : "unproven")
           << ", depth: ";
        if (ka.launchDepth < 0)
            os << "unbounded";
        else
            os << ka.launchDepth;
        os << "\n";
        for (const UniformityResult::LaunchSite &site :
             ka.uniformity.launches) {
            os << "    launch pc " << site.pc << " -> "
               << (site.callee < kernels.size()
                       ? kernels[site.callee].name
                       : "?")
               << (site.aggregated ? " [agg]" : " [cdp]") << " numTbs="
               << laneShapeName(site.numTbs)
               << " paramAddr=" << laneShapeName(site.paramAddr)
               << (site.divergentFanOut() ? " fan-out x32" : "") << "\n";
        }
    }

    os << "  budget: worst-case agg launches "
       << graph.worstCaseAggLaunches << " vs AGT " << graph.aggTableCapacity
       << (graph.aggBudgetExceeded ? " EXCEEDED" : " ok")
       << ", cdp pending bytes " << graph.cdpPendingBytes << "\n";
    os << "  diagnostics: " << errorCount << " error(s), " << warningCount
       << " warning(s)\n";
    for (const Diagnostic &d : diagnostics)
        os << "    " << d.str() << "\n";
    return os.str();
}

std::string
ProgramAnalysis::jsonReport(const std::string &bench,
                            const std::string &mode, unsigned indent) const
{
    const std::string in0(indent, ' ');
    const std::string in1(indent + 2, ' ');
    const std::string in2(indent + 4, ' ');
    const std::string in3(indent + 6, ' ');
    std::ostringstream os;
    os << in0 << "{\n";
    os << in1 << "\"bench\": \"" << jsonEscape(bench) << "\",\n";
    os << in1 << "\"mode\": \"" << jsonEscape(mode) << "\",\n";

    os << in1 << "\"kernels\": [";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelAnalysis &ka = kernels[i];
        const KernelAccessSafety *ks =
            ka.id < safety.kernels.size() ? &safety.kernels[ka.id]
                                          : nullptr;
        os << (i ? "," : "") << "\n" << in2 << "{\n";
        os << in3 << "\"name\": \"" << jsonEscape(ka.name) << "\",\n";
        os << in3 << "\"id\": " << ka.id << ",\n";
        os << in3 << "\"insts\": " << ka.codeLen << ",\n";
        os << in3 << "\"blocks\": " << ka.numBlocks << ",\n";
        os << in3 << "\"paramSites\": " << ka.ranges.paramSites << ",\n";
        os << in3 << "\"paramProven\": " << ka.ranges.paramProven << ",\n";
        os << in3 << "\"paramProvenEnd\": " << ka.ranges.paramProvenEnd
           << ",\n";
        os << in3 << "\"sharedSites\": " << ka.ranges.sharedSites << ",\n";
        os << in3 << "\"sharedProven\": " << ka.ranges.sharedProven
           << ",\n";
        os << in3 << "\"globalSites\": " << ka.ranges.globalSites << ",\n";
        os << in3 << "\"uniformRegs\": " << ka.uniformity.uniformRegs
           << ",\n";
        os << in3 << "\"affineRegs\": " << ka.uniformity.affineRegs
           << ",\n";
        os << in3 << "\"divergentRegs\": " << ka.uniformity.divergentRegs
           << ",\n";
        os << in3 << "\"uninitAllSafe\": "
           << boolStr(ks && ks->uninitAllSafe) << ",\n";
        os << in3 << "\"raceFree\": "
           << boolStr(ka.races.provenRaceFree) << ",\n";
        os << in3 << "\"launchDepth\": " << ka.launchDepth << ",\n";
        os << in3 << "\"onCycle\": " << boolStr(ka.onLaunchCycle) << ",\n";
        os << in3 << "\"launches\": [";
        for (std::size_t l = 0; l < ka.uniformity.launches.size(); ++l) {
            const UniformityResult::LaunchSite &s =
                ka.uniformity.launches[l];
            os << (l ? ", " : "") << "{\"pc\": " << s.pc
               << ", \"callee\": \""
               << (s.callee < kernels.size()
                       ? jsonEscape(kernels[s.callee].name)
                       : "?")
               << "\", \"aggregated\": " << boolStr(s.aggregated)
               << ", \"numTbs\": \"" << laneShapeName(s.numTbs)
               << "\", \"paramAddr\": \"" << laneShapeName(s.paramAddr)
               << "\", \"divergentFanOut\": "
               << boolStr(s.divergentFanOut())
               << ", \"maxFanOutPerWarp\": " << warpSize << "}";
        }
        os << "],\n";
        os << in3 << "\"diagnostics\": [";
        bool first = true;
        for (const Diagnostic &d : diagnostics) {
            if (d.funcId != ka.id)
                continue;
            os << (first ? "" : ", ") << "{\"rule\": \""
               << ruleName(d.rule) << "\", \"severity\": \""
               << severityName(d.severity) << "\", \"pc\": " << d.pc
               << "}";
            first = false;
        }
        os << "]\n" << in2 << "}";
    }
    os << (kernels.empty() ? "" : "\n" + in1) << "],\n";

    os << in1 << "\"launchGraph\": {\n";
    os << in2 << "\"maxDepth\": " << graph.maxDepth << ",\n";
    os << in2 << "\"hasCycle\": " << boolStr(graph.hasCycle) << ",\n";
    os << in2 << "\"edges\": [";
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        const LaunchEdge &le = graph.edges[e];
        os << (e ? ", " : "") << "{\"caller\": \""
           << jsonEscape(graph.nodes[le.caller].name) << "\", \"callee\": \""
           << jsonEscape(graph.nodes[le.callee].name)
           << "\", \"pc\": " << le.pc
           << ", \"aggregated\": " << boolStr(le.aggregated)
           << ", \"divergentFanOut\": " << boolStr(le.divergentFanOut)
           << "}";
    }
    os << "],\n";
    os << in2 << "\"worstCaseAggLaunches\": " << graph.worstCaseAggLaunches
       << ",\n";
    os << in2 << "\"worstCaseCdpLaunches\": " << graph.worstCaseCdpLaunches
       << ",\n";
    os << in2 << "\"agtSize\": " << graph.aggTableCapacity << ",\n";
    os << in2 << "\"aggBudgetExceeded\": "
       << boolStr(graph.aggBudgetExceeded) << ",\n";
    os << in2 << "\"aggSpillBytes\": " << graph.aggSpillBytes << ",\n";
    os << in2 << "\"cdpPendingBytes\": " << graph.cdpPendingBytes << "\n";
    os << in1 << "},\n";
    os << in1 << "\"programDiagnostics\": [";
    bool firstProg = true;
    for (const Diagnostic &d : diagnostics) {
        if (d.funcId != invalidKernelFunc)
            continue;
        os << (firstProg ? "" : ", ") << "{\"rule\": \"" << ruleName(d.rule)
           << "\", \"severity\": \"" << severityName(d.severity) << "\"}";
        firstProg = false;
    }
    os << "],\n";
    os << in1 << "\"errors\": " << errorCount << ",\n";
    os << in1 << "\"warnings\": " << warningCount << "\n";
    os << in0 << "}";
    return os.str();
}

} // namespace dtbl
