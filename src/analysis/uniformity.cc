#include "analysis/uniformity.hh"

#include <sstream>

namespace dtbl {
namespace {

/** Lane mapping of the tid specials for this TB shape. */
LaneFact
sregFact(SReg s, const Dim3 &tb)
{
    const bool linearX = tb.y == 1 && tb.z == 1;
    switch (s) {
      case SReg::TidX:
        // With y == z == 1 the linear thread id is tid.x, so lanes are
        // tid.x-consecutive in every warp; the same holds when x is a
        // multiple of the warp size.
        if (linearX || tb.x % warpSize == 0)
            return LaneFact::affine(1);
        return LaneFact::divergent();
      case SReg::TidY:
        if (tb.y == 1)
            return LaneFact::uniform();
        return tb.x % warpSize == 0 ? LaneFact::uniform()
                                    : LaneFact::divergent();
      case SReg::TidZ:
        if (tb.z == 1)
            return LaneFact::uniform();
        return (tb.x * tb.y) % warpSize == 0 ? LaneFact::uniform()
                                             : LaneFact::divergent();
      case SReg::LaneId:
        return LaneFact::affine(1);
      case SReg::NTidX:
      case SReg::NTidY:
      case SReg::NTidZ:
      case SReg::CtaIdX:
      case SReg::CtaIdY:
      case SReg::CtaIdZ:
      case SReg::NCtaIdX:
      case SReg::NCtaIdY:
      case SReg::NCtaIdZ:
      case SReg::IsAggregated:
        return LaneFact::uniform();
    }
    return LaneFact::divergent();
}

class UniformityPass
{
  public:
    explicit UniformityPass(const KernelFunction &fn)
        : fn_(fn),
          regs_(fn.numRegs, LaneFact::unknown()),
          preds_(fn.numPreds, LaneFact::unknown())
    {
    }

    UniformityResult
    run()
    {
        // Each fact can only rise twice (Unknown -> Affine ->
        // Divergent), so the fixpoint is reached quickly.
        bool changed = true;
        while (changed) {
            changed = false;
            computeDivergentRegions();
            for (std::size_t pc = 0; pc < fn_.code.size(); ++pc)
                changed |= step(std::int32_t(pc), fn_.code[pc]);
        }
        return finish();
    }

  private:
    LaneFact
    operandFact(const Operand &op) const
    {
        switch (op.kind) {
          case Operand::Kind::Imm:
            return LaneFact::uniform();
          case Operand::Kind::Special:
            return sregFact(SReg(op.value), fn_.tbDim);
          case Operand::Kind::Reg:
            return op.value < regs_.size() ? regs_[op.value]
                                           : LaneFact::divergent();
          default:
            return LaneFact::uniform(); // absent operand: no influence
        }
    }

    /** Taint pcs inside (branch, reconv) of divergent-guard branches. */
    void
    computeDivergentRegions()
    {
        divergentAt_.assign(fn_.code.size(), false);
        for (std::size_t b = 0; b < fn_.code.size(); ++b) {
            const Instruction &br = fn_.code[b];
            if (br.op != Opcode::Bra || br.pred < 0 || br.reconv < 0)
                continue;
            const LaneFact guard = preds_[std::size_t(br.pred)];
            if (guard.isUniform() || guard.shape == LaneShape::Unknown)
                continue;
            const std::size_t end =
                std::min(fn_.code.size(), std::size_t(br.reconv));
            for (std::size_t pc = b + 1; pc < end; ++pc)
                divergentAt_[pc] = true;
        }
    }

    bool
    raise(std::vector<LaneFact> &facts, std::size_t idx, LaneFact f)
    {
        const LaneFact j = joinFacts(facts[idx], f);
        if (j == facts[idx])
            return false;
        facts[idx] = j;
        return true;
    }

    bool
    step(std::int32_t pc, const Instruction &inst)
    {
        LaneFact v = computed(inst);
        if (inst.pred >= 0 && !preds_[std::size_t(inst.pred)].isUniform())
            v = LaneFact::divergent(); // partial writes split the warp
        if (divergentAt_[std::size_t(pc)])
            v = LaneFact::divergent();

        bool changed = false;
        if (inst.op == Opcode::Setp) {
            if (inst.pdst >= 0)
                changed |= raise(preds_, std::size_t(inst.pdst), v);
            return changed;
        }
        const std::int16_t dst = regDest(inst);
        if (dst >= 0 && std::uint32_t(dst) < fn_.numRegs)
            changed |= raise(regs_, std::size_t(dst), v);
        return changed;
    }

    static std::int16_t
    regDest(const Instruction &inst)
    {
        switch (inst.op) {
          case Opcode::St:
          case Opcode::Bra:
          case Opcode::Bar:
          case Opcode::Exit:
          case Opcode::Nop:
          case Opcode::Setp:
          case Opcode::StreamCreate:
          case Opcode::LaunchDevice:
          case Opcode::LaunchAgg:
            return -1;
          default:
            return inst.dst;
        }
    }

    LaneFact
    computed(const Instruction &inst) const
    {
        const LaneFact a = operandFact(inst.src[0]);
        const LaneFact b = operandFact(inst.src[1]);

        switch (inst.op) {
          case Opcode::Mov:
            return a;
          case Opcode::Add:
          case Opcode::Sub: {
            if (a.isDivergent() || b.isDivergent())
                return LaneFact::divergent();
            if (a.shape == LaneShape::Unknown ||
                b.shape == LaneShape::Unknown)
                return LaneFact::unknown();
            const std::int64_t s = inst.op == Opcode::Add
                                       ? a.stride + b.stride
                                       : a.stride - b.stride;
            return LaneFact::affine(s);
          }
          case Opcode::Mul:
            return mulFact(a, b, inst.src[1], inst.src[0]);
          case Opcode::Mad: {
            const LaneFact p = mulFact(a, b, inst.src[1], inst.src[0]);
            const LaneFact c = operandFact(inst.src[2]);
            if (p.isDivergent() || c.isDivergent())
                return LaneFact::divergent();
            if (p.shape == LaneShape::Unknown ||
                c.shape == LaneShape::Unknown)
                return LaneFact::unknown();
            return LaneFact::affine(p.stride + c.stride);
          }
          case Opcode::Shl:
            if (a.isDivergent() || b.isDivergent())
                return LaneFact::divergent();
            if (a.shape == LaneShape::Unknown ||
                b.shape == LaneShape::Unknown)
                return LaneFact::unknown();
            if (inst.src[1].kind == Operand::Kind::Imm &&
                inst.src[1].value < 32)
                return LaneFact::affine(a.stride
                                        << std::int64_t(inst.src[1].value));
            return a.stride == 0 && b.stride == 0 ? LaneFact::uniform()
                                                  : LaneFact::divergent();
          case Opcode::Selp: {
            const LaneFact sel =
                inst.src[2].kind == Operand::Kind::Imm &&
                        inst.src[2].value < preds_.size()
                    ? preds_[inst.src[2].value]
                    : LaneFact::divergent();
            if (!sel.isUniform() && sel.shape != LaneShape::Unknown)
                return LaneFact::divergent();
            return joinFacts(a, b);
          }
          case Opcode::Ld:
            // A load from a warp-uniform address yields one value for
            // the whole warp (the usual divergence-analysis reading;
            // concurrent writers are the race checker's concern).
            return a.isUniform() ? LaneFact::uniform()
                                 : LaneFact::divergent();
          case Opcode::Atom:
          case Opcode::GetPBuf:
            // Atomics return per-lane old values; GetPBuf hands every
            // lane its own buffer.
            return LaneFact::divergent();
          case Opcode::Setp:
          default: {
            // Remaining ALU ops (and setp): uniform in, uniform out;
            // a non-zero-stride affine input makes the result lane-
            // dependent in a way these ops don't preserve linearly.
            bool anyUnknown = false, anyNonUniform = false;
            for (const Operand &src : inst.src) {
                if (src.isNone())
                    continue;
                const LaneFact f = operandFact(src);
                if (f.isDivergent())
                    return LaneFact::divergent();
                if (f.shape == LaneShape::Unknown)
                    anyUnknown = true;
                else if (!f.isUniform())
                    anyNonUniform = true;
            }
            if (anyNonUniform)
                return LaneFact::divergent();
            return anyUnknown ? LaneFact::unknown() : LaneFact::uniform();
          }
        }
    }

    /** src0 * src1 with stride scaling when one side is an immediate. */
    LaneFact
    mulFact(const LaneFact &a, const LaneFact &b, const Operand &bOp,
            const Operand &aOp) const
    {
        if (a.isDivergent() || b.isDivergent())
            return LaneFact::divergent();
        if (a.shape == LaneShape::Unknown || b.shape == LaneShape::Unknown)
            return LaneFact::unknown();
        if (a.stride == 0 && b.stride == 0)
            return LaneFact::uniform();
        if (b.stride == 0 && bOp.kind == Operand::Kind::Imm)
            return LaneFact::affine(a.stride *
                                    std::int64_t(std::int32_t(bOp.value)));
        if (a.stride == 0 && aOp.kind == Operand::Kind::Imm)
            return LaneFact::affine(b.stride *
                                    std::int64_t(std::int32_t(aOp.value)));
        // Affine times a non-constant uniform: stride unknown.
        return LaneFact::divergent();
    }

    UniformityResult
    finish()
    {
        UniformityResult res;
        res.regs = regs_;
        res.preds = preds_;
        for (const LaneFact &f : regs_) {
            if (f.isDivergent())
                ++res.divergentRegs;
            else if (f.isUniform() || f.shape == LaneShape::Unknown)
                ++res.uniformRegs; // never-defined regs count as uniform
            else
                ++res.affineRegs;
        }
        for (std::size_t pc = 0; pc < fn_.code.size(); ++pc) {
            const Instruction &inst = fn_.code[pc];
            if (!inst.isLaunch())
                continue;
            UniformityResult::LaunchSite site;
            site.pc = std::int32_t(pc);
            site.callee = inst.launch.func;
            site.aggregated = inst.op == Opcode::LaunchAgg;
            site.numTbs = norm(operandFact(inst.launch.numTbs));
            site.paramAddr = norm(operandFact(inst.launch.paramAddr));
            site.inDivergentRegion = divergentAt_[pc];
            site.divergentGuard =
                inst.pred >= 0 &&
                !preds_[std::size_t(inst.pred)].isUniform() &&
                preds_[std::size_t(inst.pred)].shape != LaneShape::Unknown;
            if (site.divergentFanOut()) {
                std::ostringstream os;
                os << fn_.name << ": "
                   << (site.aggregated ? "aggregated" : "device")
                   << " launch has divergent "
                   << (!site.numTbs.isUniform()       ? "TB count"
                       : !site.paramAddr.isUniform()  ? "parameter address"
                                                      : "guard/region")
                   << "; each active lane issues an independent launch "
                      "(fan-out up to "
                   << warpSize << " per warp)";
                Diagnostic d;
                d.funcId = fn_.id;
                d.pc = site.pc;
                d.severity = Severity::Warning;
                d.rule = CheckRule::DivergentLaunch;
                d.message = os.str();
                res.diags.push_back(std::move(d));
            }
            res.launches.push_back(site);
        }
        return res;
    }

    /** Collapse Unknown (never-defined) to uniform for reporting. */
    static LaneFact
    norm(LaneFact f)
    {
        return f.shape == LaneShape::Unknown ? LaneFact::uniform() : f;
    }

    const KernelFunction &fn_;
    std::vector<LaneFact> regs_;
    std::vector<LaneFact> preds_;
    std::vector<bool> divergentAt_;
};

} // namespace

LaneFact
joinFacts(const LaneFact &a, const LaneFact &b)
{
    if (a.shape == LaneShape::Unknown)
        return b;
    if (b.shape == LaneShape::Unknown)
        return a;
    if (a.isDivergent() || b.isDivergent())
        return LaneFact::divergent();
    return a.stride == b.stride ? a : LaneFact::divergent();
}

const char *
laneShapeName(const LaneFact &f)
{
    switch (f.shape) {
      case LaneShape::Unknown: return "uniform";
      case LaneShape::Affine: return f.stride == 0 ? "uniform" : "affine";
      case LaneShape::Divergent: return "divergent";
    }
    return "?";
}

UniformityResult
analyzeUniformity(const KernelFunction &fn)
{
    return UniformityPass(fn).run();
}

} // namespace dtbl
