/**
 * @file
 * Static shared-memory race check.
 *
 * The runtime race checker (sanitizer Full tier) reports same-byte
 * cross-warp shared accesses with no barrier in between. This pass
 * discharges that obligation at compile time where provable, using a
 * barrier-interval happens-before argument:
 *
 *  1. Trivial proofs (these alone feed the sanitizer's check-elision,
 *     because they are unconditionally sound):
 *       - the kernel performs no shared-memory writes, or
 *       - tbDim.count() <= warpSize, so a TB never has two warps and
 *         the dynamic checker's cross-warp predicate can never fire.
 *  2. Conflict-pair filtering: two shared sites (at least one write)
 *     can only race if one can reach the other along a CFG path that
 *     crosses no Bar (same-pc self-conflicts are always live: two
 *     warps execute the same site concurrently).
 *  3. Thread-affine disjointness: addresses decomposed as
 *     scale * linearTid + base. Two sites with the same scale s, the
 *     same symbolic base and |offsetDelta| <= |s| - width can never
 *     touch the same byte from different threads, so the remaining
 *     pairs are reported as StaticRace warnings only if this proof
 *     also fails.
 *
 * Affine proofs suppress warnings and improve the report but are NOT
 * used for elision — elision must keep runtime findings bit-identical,
 * so it only trusts tier-1 trivial facts.
 */

#ifndef DTBL_ANALYSIS_RACE_HH
#define DTBL_ANALYSIS_RACE_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"

namespace dtbl {

struct RaceResult
{
    bool usesShared = false;
    bool hasSharedWrites = false;
    bool singleWarp = false;

    /** Sound for sanitizer elision (trivial facts only). */
    bool trivialRaceFree = false;
    /** All conflict pairs discharged (trivial or affine-disjoint). */
    bool provenRaceFree = false;

    unsigned conflictPairs = 0;
    unsigned disjointPairs = 0;

    std::vector<Diagnostic> diags; //!< StaticRace warnings
};

RaceResult analyzeRaces(const Cfg &cfg);

} // namespace dtbl

#endif // DTBL_ANALYSIS_RACE_HH
