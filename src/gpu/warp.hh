/**
 * @file
 * Warp context: per-lane register/predicate state and the PDOM
 * reconvergence stack (Section 2.2) used to track control divergence.
 */

#ifndef DTBL_GPU_WARP_HH
#define DTBL_GPU_WARP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/kernel_function.hh"
#include "stats/pmu.hh"

namespace dtbl {

struct ThreadBlock;

/** One entry of the PDOM reconvergence stack. */
struct StackEntry
{
    std::int32_t pc = 0;
    /** Reconvergence PC; -1 for the bottom entry. */
    std::int32_t rpc = -1;
    ActiveMask mask = 0;
};

class Warp
{
  public:
    Warp(ThreadBlock *tb, const KernelFunction *fn, unsigned warp_in_tb,
         unsigned slot, std::uint64_t age_stamp);

    ThreadBlock *tb() const { return tb_; }
    const KernelFunction *fn() const { return fn_; }
    unsigned warpInTb() const { return warpInTb_; }
    unsigned slot() const { return slot_; }
    std::uint64_t ageStamp() const { return ageStamp_; }

    // --- register file --------------------------------------------------
    std::uint32_t
    readReg(unsigned reg, unsigned lane) const
    {
        return regs_[reg * warpSize + lane];
    }

    void
    writeReg(unsigned reg, unsigned lane, std::uint32_t v)
    {
        regs_[reg * warpSize + lane] = v;
    }

    bool
    readPred(unsigned p, unsigned lane) const
    {
        return preds_[p] & (1u << lane);
    }

    /** All-lane mask of predicate @p p. */
    ActiveMask predMask(unsigned p) const { return preds_[p]; }

    void
    writePred(unsigned p, unsigned lane, bool v)
    {
        if (v)
            preds_[p] |= 1u << lane;
        else
            preds_[p] &= ~(1u << lane);
    }

    /** Special-register value for a lane. */
    std::uint32_t sreg(SReg s, unsigned lane) const;

    // --- SIMT stack ----------------------------------------------------
    /** Lanes of the top entry that are still live (not exited). */
    ActiveMask activeMask() const;
    StackEntry &top() { return stack_.back(); }
    const StackEntry &top() const { return stack_.back(); }
    std::size_t stackDepth() const { return stack_.size(); }

    /** Lanes that ever existed in this warp (partial last warp of a TB). */
    ActiveMask validMask() const { return validMask_; }
    ActiveMask exitedMask() const { return exitedMask_; }

    /** Mark lanes exited. */
    void exitLanes(ActiveMask lanes);

    /** Record a divergent branch: parent waits at rpc, children pushed. */
    void diverge(std::int32_t reconv, ActiveMask taken_mask,
                 std::int32_t taken_pc, ActiveMask fall_mask,
                 std::int32_t fall_pc);

    /**
     * Pop entries whose pc reached their rpc or which have no live
     * lanes; marks the warp finished when nothing remains.
     */
    void cleanupStack();

    // --- scheduling state -------------------------------------------------
    Cycle readyCycle = 0;
    bool atBarrier = false;
    bool finished = false;
    /**
     * Why the warp is waiting whenever readyCycle > now: set by the SMX
     * at every readyCycle write, read by the PMU stall attribution.
     * Fresh warps default to NoInstruction (nothing fetched yet).
     */
    StallReason stallClass = StallReason::NoInstruction;

  private:
    ThreadBlock *tb_;
    const KernelFunction *fn_;
    unsigned warpInTb_;
    unsigned slot_;
    std::uint64_t ageStamp_;

    std::vector<std::uint32_t> regs_;
    std::vector<ActiveMask> preds_;
    ActiveMask validMask_ = 0;
    ActiveMask exitedMask_ = 0;
    std::vector<StackEntry> stack_;
};

} // namespace dtbl

#endif // DTBL_GPU_WARP_HH
