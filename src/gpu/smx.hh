/**
 * @file
 * Streaming Multiprocessor (SMX) model: resident thread blocks, warp
 * contexts, greedy-then-oldest warp schedulers, and the SIMT interpreter
 * that executes the kernel IR with PDOM-based divergence handling and a
 * coalescing memory path.
 */

#ifndef DTBL_GPU_SMX_HH
#define DTBL_GPU_SMX_HH

#include <array>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "gpu/thread_block.hh"
#include "gpu/warp.hh"
#include "mem/coalescer.hh"
#include "stats/pmu.hh"

namespace dtbl {

class Gpu;

class Smx
{
  public:
    Smx(unsigned id, Gpu &gpu);

    unsigned id() const { return id_; }

    /** Can a TB of this function + dynamic smem start here now? */
    bool canAccept(const KernelFunction &fn,
                   std::uint32_t dyn_smem_bytes) const;

    /** Begin executing a TB (allocates warps + resources). */
    void startTb(const TbAssignment &asg, Cycle now);

    /** Issue up to one instruction per warp scheduler; returns #issued. */
    unsigned tick(Cycle now);

    bool idle() const { return residentWarps_ == 0; }
    unsigned residentWarps() const { return residentWarps_; }

    /**
     * Earliest readyCycle among waiting (non-barrier) warps, or
     * max Cycle when none — used for idle fast-forwarding.
     */
    Cycle earliestReady() const;

    unsigned freeTbSlots() const { return freeTbSlots_; }
    unsigned freeThreads() const { return freeThreads_; }

    // --- PMU issue-stall attribution -----------------------------------
    /**
     * Attribute the skipped cycles of an idle fast-forward: the machine
     * state is frozen over the skip (no warp becomes ready inside it, or
     * the skip would have been shorter), so one classification at @p now
     * holds for all @p n cycles. Only called while pmu.collecting().
     */
    void accountSkippedCycles(Cycle now, std::uint64_t n);

    /**
     * Slot-cycles attributed to each StallReason. While profiling, the
     * entries sum to cycles-simulated * maxResidentWarpsPerSmx.
     */
    const std::array<std::uint64_t, kNumStallReasons> &
    stallSlotCycles() const
    {
        return stallSlotCycles_;
    }

    /**
     * Per-kernel split of stallSlotCycles(): row k covers slot-cycles
     * while kernel function k occupied (or, for Issued, had just
     * vacated) the slot; the last row is the idle bucket for slots no
     * kernel occupies. Rows sum reason-wise to stallSlotCycles().
     */
    const std::array<std::uint64_t, kNumStallReasons> &
    kernelStallSlotCycles(std::size_t k) const
    {
        return kernelStall_[k];
    }

  private:
    /**
     * Classify every warp slot for the cycle(s) at @p now. @p ticked is
     * true when called at the end of a real tick (issuedThisTick_ is
     * valid) and false from a fast-forward skip.
     */
    void accountStallSlots(Cycle now, std::uint64_t n, bool ticked);

    /** Pick a warp for scheduler @p sched (greedy-then-oldest). */
    Warp *pickWarp(unsigned sched, Cycle now);

    /** Execute one instruction for @p warp. */
    void issue(Warp &warp, Cycle now);

    // Opcode-family handlers (functional + timing).
    void execAlu(Warp &w, const Instruction &inst, ActiveMask exec,
                 Cycle now);
    void execMemory(Warp &w, const Instruction &inst, ActiveMask exec,
                    Cycle now);
    void execBranch(Warp &w, const Instruction &inst, ActiveMask exec,
                    ActiveMask active);
    void execBarrier(Warp &w, Cycle now);
    void execExit(Warp &w, ActiveMask exec);
    void execLaunch(Warp &w, const Instruction &inst, ActiveMask exec,
                    Cycle now);

    std::uint32_t readOperand(const Warp &w, const Operand &op,
                              unsigned lane) const;

    void finishWarp(Warp &w, Cycle now);
    void finishTb(ThreadBlock &tb, Cycle now);
    void releaseBarrier(ThreadBlock &tb, Cycle now);

    unsigned id_;
    Gpu &gpu_;
    const GpuConfig &cfg_;
    Coalescer coalescer_;

    std::vector<std::unique_ptr<ThreadBlock>> tbs_;
    /** Warp contexts by SMX warp slot; null when slot free. */
    std::vector<std::unique_ptr<Warp>> warps_;
    /** Last-issued slot per scheduler (greedy part of GTO). */
    std::vector<std::int32_t> lastIssued_;

    unsigned freeTbSlots_;
    unsigned freeThreads_;
    unsigned freeRegs_;
    std::uint32_t freeSmem_;
    unsigned residentWarps_ = 0;
    std::uint64_t nextAgeStamp_ = 0;

    /** Slots that issued in the current tick (survives warp teardown). */
    std::vector<std::uint8_t> issuedThisTick_;
    std::array<std::uint64_t, kNumStallReasons> stallSlotCycles_{};
    /** Per-kernel rows of stallSlotCycles_ (last row: idle bucket). */
    std::vector<std::array<std::uint64_t, kNumStallReasons>> kernelStall_;
};

} // namespace dtbl

#endif // DTBL_GPU_SMX_HH
