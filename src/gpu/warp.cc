#include "gpu/warp.hh"

#include "common/log.hh"
#include "gpu/thread_block.hh"

namespace dtbl {

Warp::Warp(ThreadBlock *tb, const KernelFunction *fn, unsigned warp_in_tb,
           unsigned slot, std::uint64_t age_stamp)
    : tb_(tb), fn_(fn), warpInTb_(warp_in_tb), slot_(slot),
      ageStamp_(age_stamp)
{
    regs_.assign(std::size_t(fn->numRegs) * warpSize, 0);
    preds_.assign(fn->numPreds, 0);

    const unsigned firstThread = warp_in_tb * warpSize;
    const unsigned tbThreads = tb->numThreads;
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (firstThread + lane < tbThreads)
            validMask_ |= 1u << lane;
    }
    DTBL_ASSERT(validMask_ != 0, "warp with no threads");
    stack_.push_back(StackEntry{0, -1, validMask_});
}

std::uint32_t
Warp::sreg(SReg s, unsigned lane) const
{
    const Dim3 &ntid = fn_->tbDim;
    const unsigned flatTid = warpInTb_ * warpSize + lane;
    const Dim3 tid = unflatten(flatTid, ntid);
    const TbAssignment &asg = tb_->asg;
    switch (s) {
      case SReg::TidX: return tid.x;
      case SReg::TidY: return tid.y;
      case SReg::TidZ: return tid.z;
      case SReg::NTidX: return ntid.x;
      case SReg::NTidY: return ntid.y;
      case SReg::NTidZ: return ntid.z;
      case SReg::CtaIdX: return tb_->ctaId.x;
      case SReg::CtaIdY: return tb_->ctaId.y;
      case SReg::CtaIdZ: return tb_->ctaId.z;
      case SReg::NCtaIdX: return asg.gridDim.x;
      case SReg::NCtaIdY: return asg.gridDim.y;
      case SReg::NCtaIdZ: return asg.gridDim.z;
      case SReg::LaneId: return lane;
      case SReg::IsAggregated: return asg.isAggregated ? 1 : 0;
    }
    DTBL_PANIC("bad special register");
}

ActiveMask
Warp::activeMask() const
{
    if (stack_.empty())
        return 0;
    return stack_.back().mask & ~exitedMask_;
}

void
Warp::exitLanes(ActiveMask lanes)
{
    exitedMask_ |= lanes;
}

void
Warp::diverge(std::int32_t reconv, ActiveMask taken_mask,
              std::int32_t taken_pc, ActiveMask fall_mask,
              std::int32_t fall_pc)
{
    DTBL_ASSERT(reconv >= 0, "divergent branch without reconvergence PC");
    DTBL_ASSERT(taken_mask && fall_mask, "diverge() on a uniform branch");
    // The current entry waits at the reconvergence point with the full
    // mask; the split paths execute from pushed child entries.
    stack_.back().pc = reconv;
    if (fall_pc != reconv)
        stack_.push_back(StackEntry{fall_pc, reconv, fall_mask});
    if (taken_pc != reconv)
        stack_.push_back(StackEntry{taken_pc, reconv, taken_mask});
}

void
Warp::cleanupStack()
{
    for (;;) {
        if (stack_.empty()) {
            finished = true;
            return;
        }
        StackEntry &t = stack_.back();
        const ActiveMask live = t.mask & ~exitedMask_;
        if (live == 0) {
            stack_.pop_back();
            continue;
        }
        if (stack_.size() > 1 && t.pc == t.rpc) {
            stack_.pop_back();
            continue;
        }
        if (t.pc >= std::int32_t(fn_->code.size())) {
            DTBL_PANIC("warp ran off the end of kernel ", fn_->name);
        }
        return;
    }
}

} // namespace dtbl
