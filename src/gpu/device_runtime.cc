#include "gpu/device_runtime.hh"

namespace dtbl {

DeviceRuntime::DeviceRuntime(const GpuConfig &cfg, GlobalMemory &mem,
                             SimStats &stats)
    : cfg_(cfg), mem_(mem), stats_(stats)
{
}

Addr
DeviceRuntime::getParameterBuffer(std::uint32_t bytes)
{
    const Addr a = mem_.allocate(bytes, 256);
    paramSizes_[a] = bytes;
    stats_.reserveLaunchBytes(bytes);
    return a;
}

std::uint32_t
DeviceRuntime::claimParamBytes(Addr addr)
{
    auto it = paramSizes_.find(addr);
    if (it == paramSizes_.end())
        return 0;
    const std::uint32_t bytes = it->second;
    paramSizes_.erase(it);
    return bytes;
}

Cycle
DeviceRuntime::latGetParameterBuffer(unsigned callers) const
{
    if (!cfg_.modelLaunchLatency)
        return 0;
    return cfg_.launch.getParameterBuffer.forCallers(callers);
}

Cycle
DeviceRuntime::latLaunchDevice(unsigned callers) const
{
    if (!cfg_.modelLaunchLatency)
        return 0;
    return cfg_.launch.launchDevice.forCallers(callers);
}

Cycle
DeviceRuntime::latStreamCreate() const
{
    if (!cfg_.modelLaunchLatency)
        return 0;
    return cfg_.launch.streamCreate;
}

} // namespace dtbl
