/**
 * @file
 * Per-SMX execution-resource ledger for the kernel-dispatch subsystem.
 *
 * The ledger mirrors the resource arithmetic of Smx::canAccept /
 * Smx::startTb / Smx::finishTb outside the SMXs so that dispatch
 * policies (gpu/dispatch/dispatch_policy.hh) can reason about free
 * capacity, per-KDE usage can be audited (conservation: everything
 * acquired is released by drain), and the warp-slot -> kernel binding
 * needed for per-kernel stall attribution is available at stall
 * classification time.
 *
 * TB-granular resources (TB slots, threads, registers, shared memory)
 * are acquired when a TB is dispatched and released when it completes.
 * Warp slots are bound per warp when the TB starts and unbound as each
 * warp retires — warps of one TB can free their slots at different
 * cycles, exactly as in the SMX. The last function bound to a slot is
 * retained after unbind ("sticky") so an issue that retired its warp
 * mid-tick is still attributed to the right kernel.
 *
 * The ledger is pure bookkeeping: it never changes simulated timing,
 * trace hashes or stats. Divergence from the SMX-internal counters is
 * a simulator bug (asserted at dispatch time).
 */

#ifndef DTBL_GPU_DISPATCH_RESOURCE_LEDGER_HH
#define DTBL_GPU_DISPATCH_RESOURCE_LEDGER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

class ResourceLedger
{
  public:
    ResourceLedger(const GpuConfig &cfg, std::size_t num_kdes);

    // --- dispatch-time accounting (SmxScheduler) -----------------------
    /** Mirror of Smx::canAccept for SMX @p smx. */
    bool canAccept(unsigned smx, const KernelFunction &fn,
                   std::uint32_t dyn_smem_bytes) const;

    /** A TB of @p kde was dispatched to @p smx. */
    void acquire(unsigned smx, std::int32_t kde, const KernelFunction &fn,
                 std::uint32_t dyn_smem_bytes);

    /** A TB of @p kde completed on @p smx. */
    void release(unsigned smx, std::int32_t kde, const KernelFunction &fn,
                 std::uint32_t dyn_smem_bytes);

    // --- warp-slot occupancy (Smx) -------------------------------------
    void bindWarpSlot(unsigned smx, unsigned slot, KernelFuncId func);
    void unbindWarpSlot(unsigned smx, unsigned slot);

    /** Kernel currently in the slot; invalidKernelFunc when free. */
    KernelFuncId slotFunc(unsigned smx, unsigned slot) const;
    /**
     * Kernel currently or most recently in the slot (sticky across
     * unbind); invalidKernelFunc when the slot was never bound.
     */
    KernelFuncId slotLastFunc(unsigned smx, unsigned slot) const;

    // --- introspection (policies, tests) --------------------------------
    unsigned numSmx() const { return unsigned(smx_.size()); }
    std::int64_t freeTbSlots(unsigned s) const { return smx_[s].tbSlots; }
    std::int64_t freeThreads(unsigned s) const { return smx_[s].threads; }
    std::int64_t freeRegs(unsigned s) const { return smx_[s].regs; }
    std::int64_t freeSmem(unsigned s) const { return smx_[s].smem; }
    std::int64_t freeWarpSlots(unsigned s) const
    {
        return smx_[s].warpSlots;
    }

    /** Low-water marks over the run (capacity minus peak usage). */
    std::int64_t minFreeTbSlots(unsigned s) const
    {
        return smx_[s].minTbSlots;
    }
    std::int64_t minFreeThreads(unsigned s) const
    {
        return smx_[s].minThreads;
    }
    std::int64_t minFreeRegs(unsigned s) const { return smx_[s].minRegs; }
    std::int64_t minFreeSmem(unsigned s) const { return smx_[s].minSmem; }
    std::int64_t minFreeWarpSlots(unsigned s) const
    {
        return smx_[s].minWarpSlots;
    }

    // --- per-KDE conservation -------------------------------------------
    std::uint64_t acquiredTbs(std::int32_t kde) const
    {
        return kdes_[std::size_t(kde)].acquired;
    }
    std::uint64_t releasedTbs(std::int32_t kde) const
    {
        return kdes_[std::size_t(kde)].released;
    }
    std::uint64_t acquiredTbsTotal() const { return acquiredTotal_; }
    std::uint64_t releasedTbsTotal() const { return releasedTotal_; }
    std::size_t numKdes() const { return kdes_.size(); }

    /**
     * True when every acquired resource has been returned: all KDE
     * usage balanced, all free counters back at capacity, no warp slot
     * bound. Holds after Gpu::synchronize() drains the machine.
     */
    bool drained() const;

  private:
    struct SmxLedger
    {
        std::int64_t tbSlots = 0, threads = 0, regs = 0, smem = 0;
        std::int64_t warpSlots = 0;
        std::int64_t minTbSlots = 0, minThreads = 0, minRegs = 0,
                     minSmem = 0, minWarpSlots = 0;
        /** Current kernel per warp slot; invalidKernelFunc when free. */
        std::vector<KernelFuncId> slotFunc;
        /** Sticky: last kernel ever bound to the slot. */
        std::vector<KernelFuncId> slotLastFunc;
    };

    struct KdeUsage
    {
        std::uint64_t acquired = 0;
        std::uint64_t released = 0;
    };

    const GpuConfig &cfg_;
    std::vector<SmxLedger> smx_;
    std::vector<KdeUsage> kdes_;
    std::uint64_t acquiredTotal_ = 0;
    std::uint64_t releasedTotal_ = 0;
};

} // namespace dtbl

#endif // DTBL_GPU_DISPATCH_RESOURCE_LEDGER_HH
