#include "gpu/dispatch/resource_ledger.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtbl {
namespace {

/** TB resource footprint, identical to the Smx::canAccept arithmetic. */
struct Footprint
{
    unsigned numWarps;
    unsigned hwThreads;
    unsigned regs;
    std::uint32_t smem;
};

Footprint
footprintOf(const KernelFunction &fn, std::uint32_t dyn_smem_bytes)
{
    Footprint f{};
    const unsigned threads = unsigned(fn.tbDim.count());
    f.numWarps = (threads + warpSize - 1) / warpSize;
    f.hwThreads = f.numWarps * warpSize;
    f.regs = f.hwThreads * fn.numRegs;
    f.smem = fn.sharedMemBytes + dyn_smem_bytes;
    return f;
}

} // namespace

ResourceLedger::ResourceLedger(const GpuConfig &cfg, std::size_t num_kdes)
    : cfg_(cfg), smx_(cfg.numSmx), kdes_(num_kdes)
{
    for (SmxLedger &s : smx_) {
        s.tbSlots = cfg.maxResidentTbPerSmx;
        s.threads = cfg.maxResidentThreadsPerSmx;
        s.regs = cfg.regsPerSmx;
        s.smem = cfg.sharedMemPerSmx;
        s.warpSlots = cfg.maxResidentWarpsPerSmx;
        s.minTbSlots = s.tbSlots;
        s.minThreads = s.threads;
        s.minRegs = s.regs;
        s.minSmem = s.smem;
        s.minWarpSlots = s.warpSlots;
        s.slotFunc.assign(cfg.maxResidentWarpsPerSmx, invalidKernelFunc);
        s.slotLastFunc.assign(cfg.maxResidentWarpsPerSmx,
                              invalidKernelFunc);
    }
}

bool
ResourceLedger::canAccept(unsigned smx, const KernelFunction &fn,
                          std::uint32_t dyn_smem_bytes) const
{
    const SmxLedger &s = smx_[smx];
    const Footprint f = footprintOf(fn, dyn_smem_bytes);
    return s.tbSlots > 0 && s.threads >= std::int64_t(f.hwThreads) &&
           s.regs >= std::int64_t(f.regs) &&
           s.smem >= std::int64_t(f.smem) &&
           s.warpSlots >= std::int64_t(f.numWarps);
}

void
ResourceLedger::acquire(unsigned smx, std::int32_t kde,
                        const KernelFunction &fn,
                        std::uint32_t dyn_smem_bytes)
{
    SmxLedger &s = smx_[smx];
    const Footprint f = footprintOf(fn, dyn_smem_bytes);
    s.tbSlots -= 1;
    s.threads -= f.hwThreads;
    s.regs -= f.regs;
    s.smem -= f.smem;
    s.minTbSlots = std::min(s.minTbSlots, s.tbSlots);
    s.minThreads = std::min(s.minThreads, s.threads);
    s.minRegs = std::min(s.minRegs, s.regs);
    s.minSmem = std::min(s.minSmem, s.smem);
    DTBL_ASSERT(s.tbSlots >= 0 && s.threads >= 0 && s.regs >= 0 &&
                    s.smem >= 0,
                "resource ledger over-subscribed on SMX ", smx);
    DTBL_ASSERT(kde >= 0 && std::size_t(kde) < kdes_.size(),
                "ledger acquire for invalid KDE ", kde);
    ++kdes_[std::size_t(kde)].acquired;
    ++acquiredTotal_;
}

void
ResourceLedger::release(unsigned smx, std::int32_t kde,
                        const KernelFunction &fn,
                        std::uint32_t dyn_smem_bytes)
{
    SmxLedger &s = smx_[smx];
    const Footprint f = footprintOf(fn, dyn_smem_bytes);
    s.tbSlots += 1;
    s.threads += f.hwThreads;
    s.regs += f.regs;
    s.smem += f.smem;
    DTBL_ASSERT(s.tbSlots <= std::int64_t(cfg_.maxResidentTbPerSmx),
                "resource ledger double release on SMX ", smx);
    DTBL_ASSERT(kde >= 0 && std::size_t(kde) < kdes_.size() &&
                    kdes_[std::size_t(kde)].released <
                        kdes_[std::size_t(kde)].acquired,
                "ledger release without acquire for KDE ", kde);
    ++kdes_[std::size_t(kde)].released;
    ++releasedTotal_;
}

void
ResourceLedger::bindWarpSlot(unsigned smx, unsigned slot, KernelFuncId func)
{
    SmxLedger &s = smx_[smx];
    DTBL_ASSERT(s.slotFunc[slot] == invalidKernelFunc,
                "warp slot ", slot, " double-bound on SMX ", smx);
    s.slotFunc[slot] = func;
    s.slotLastFunc[slot] = func;
    --s.warpSlots;
    s.minWarpSlots = std::min(s.minWarpSlots, s.warpSlots);
    DTBL_ASSERT(s.warpSlots >= 0, "warp slots over-subscribed on SMX ",
                smx);
}

void
ResourceLedger::unbindWarpSlot(unsigned smx, unsigned slot)
{
    SmxLedger &s = smx_[smx];
    DTBL_ASSERT(s.slotFunc[slot] != invalidKernelFunc,
                "unbinding free warp slot ", slot, " on SMX ", smx);
    s.slotFunc[slot] = invalidKernelFunc;
    ++s.warpSlots;
}

KernelFuncId
ResourceLedger::slotFunc(unsigned smx, unsigned slot) const
{
    return smx_[smx].slotFunc[slot];
}

KernelFuncId
ResourceLedger::slotLastFunc(unsigned smx, unsigned slot) const
{
    return smx_[smx].slotLastFunc[slot];
}

bool
ResourceLedger::drained() const
{
    if (acquiredTotal_ != releasedTotal_)
        return false;
    for (const KdeUsage &k : kdes_) {
        if (k.acquired != k.released)
            return false;
    }
    for (const SmxLedger &s : smx_) {
        if (s.tbSlots != std::int64_t(cfg_.maxResidentTbPerSmx) ||
            s.threads != std::int64_t(cfg_.maxResidentThreadsPerSmx) ||
            s.regs != std::int64_t(cfg_.regsPerSmx) ||
            s.smem != std::int64_t(cfg_.sharedMemPerSmx) ||
            s.warpSlots != std::int64_t(cfg_.maxResidentWarpsPerSmx)) {
            return false;
        }
        for (KernelFuncId f : s.slotFunc) {
            if (f != invalidKernelFunc)
                return false;
        }
    }
    return true;
}

} // namespace dtbl
