/**
 * @file
 * Pluggable TB dispatch policies for the SMX scheduler.
 *
 * Each cycle the scheduler hands the policy a DispatchEngine — the
 * narrow slice of scheduler state a policy may use: the FCFS order of
 * marked kernels, the round-robin cursor, the resource ledger, and a
 * tryDispatch() primitive that performs one peek -> canAccept ->
 * commit -> startTb dispatch. Policies decide *which* kernel's TB
 * goes to *which* SMX and how many per cycle; all bookkeeping
 * (NAGEI/LAGEI group ordering, KD entry state, wait statistics,
 * tracing) stays in the scheduler, so every policy honours the
 * aggregated-group ordering and KD entry limits by construction.
 */

#ifndef DTBL_GPU_DISPATCH_DISPATCH_POLICY_HH
#define DTBL_GPU_DISPATCH_DISPATCH_POLICY_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "common/config.hh"
#include "common/types.hh"

namespace dtbl {

class ResourceLedger;

/** Scheduler state a dispatch policy is allowed to drive. */
class DispatchEngine
{
  public:
    virtual ~DispatchEngine() = default;

    virtual unsigned numSmx() const = 0;
    /** Round-robin start SMX for this cycle's distribution pass. */
    virtual unsigned rrStart() const = 0;
    /** Rotate the round-robin cursor (once per distribution pass). */
    virtual void advanceRr() = 0;
    /** Marked kernels in FCFS order (KDE indices). */
    virtual const std::deque<std::int32_t> &schedulable() const = 0;
    /**
     * Dispatch the next TB of kernel @p kde_idx to SMX @p smx: peek
     * the assignment (native grid first, then the NAGEI chain),
     * check SMX resources, commit cursors and start the TB. Returns
     * false when the kernel has no TB available right now or the TB
     * does not fit. On success the FCFS queue may have mutated
     * (exhausted kernels are unmarked) — restart iteration.
     */
    virtual bool tryDispatch(std::int32_t kde_idx, unsigned smx,
                             Cycle now) = 0;
    virtual const ResourceLedger &ledger() const = 0;
};

class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    virtual DispatchPolicyKind kind() const = 0;
    const char *name() const { return dispatchPolicyName(kind()); }

    /**
     * One distribution pass over all SMXs at cycle @p now. Called only
     * when at least one kernel is marked schedulable.
     * @return true when any TB was dispatched.
     */
    virtual bool distribute(DispatchEngine &eng, Cycle now) = 0;
};

std::unique_ptr<DispatchPolicy> makeDispatchPolicy(DispatchPolicyKind k);

} // namespace dtbl

#endif // DTBL_GPU_DISPATCH_DISPATCH_POLICY_HH
