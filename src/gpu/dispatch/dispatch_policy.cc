#include "gpu/dispatch/dispatch_policy.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

/**
 * The seed distribution loop: round-robin over SMXs, at most one TB
 * per SMX per cycle, FCFS over marked kernels. A later kernel may
 * fill SMXs the head kernel cannot use (concurrent kernel execution,
 * Section 2.3), but each SMX takes a single TB and then waits a
 * cycle, so grids trickle in at numSmx TBs per cycle fleet-wide.
 */
class FcfsHeadPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind kind() const override
    {
        return DispatchPolicyKind::FcfsHead;
    }

    bool
    distribute(DispatchEngine &eng, Cycle now) override
    {
        bool progress = false;
        const unsigned n = eng.numSmx();
        for (unsigned i = 0; i < n; ++i) {
            const unsigned s = (eng.rrStart() + i) % n;
            for (std::int32_t kdeIdx : eng.schedulable()) {
                if (eng.tryDispatch(kdeIdx, s, now)) {
                    progress = true;
                    break; // one TB per SMX per cycle
                }
            }
        }
        eng.advanceRr();
        return progress;
    }
};

/**
 * Greedy concurrent-kernel dispatch (Section 4.3): repeat the
 * one-TB-per-SMX round-robin sweep — still FCFS-ordered across marked
 * kernels — until a whole round places nothing, i.e. no marked kernel
 * has a TB that fits in any SMX's leftover resources. Each round
 * spreads TBs across all SMXs exactly like the seed pass, so the load
 * balance is preserved; the extra rounds fill ramp-up and completion
 * tails in one cycle instead of numSmx TBs per cycle, which is what
 * shrinks idle_no_warp and launch_pending. Bounded by the per-SMX
 * TB-slot count, so the loop terminates.
 */
class ConcurrentPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind kind() const override
    {
        return DispatchPolicyKind::Concurrent;
    }

    bool
    distribute(DispatchEngine &eng, Cycle now) override
    {
        bool progress = false;
        const unsigned n = eng.numSmx();
        bool placed = true;
        while (placed) {
            placed = false;
            for (unsigned i = 0; i < n; ++i) {
                const unsigned s = (eng.rrStart() + i) % n;
                // tryDispatch may unmark an exhausted kernel, which
                // mutates the queue: the range-for is re-entered fresh
                // for every (round, SMX) pair.
                for (std::int32_t kdeIdx : eng.schedulable()) {
                    if (eng.tryDispatch(kdeIdx, s, now)) {
                        progress = placed = true;
                        break; // one TB per SMX per round
                    }
                }
            }
        }
        eng.advanceRr();
        return progress;
    }
};

} // namespace

std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(DispatchPolicyKind k)
{
    switch (k) {
      case DispatchPolicyKind::FcfsHead:
        return std::make_unique<FcfsHeadPolicy>();
      case DispatchPolicyKind::Concurrent:
        return std::make_unique<ConcurrentPolicy>();
    }
    DTBL_PANIC("unknown dispatch policy kind");
}

} // namespace dtbl
