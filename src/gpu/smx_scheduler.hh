/**
 * @file
 * SMX scheduler: FCFS controller, TB distribution to SMXs (including the
 * DTBL scheduling pools of aggregated TBs), kernel dispatch from the KMU
 * into the Kernel Distributor, and completion bookkeeping.
 */

#ifndef DTBL_GPU_SMX_SCHEDULER_HH
#define DTBL_GPU_SMX_SCHEDULER_HH

#include <deque>
#include <unordered_map>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "core/agt.hh"
#include "core/dtbl_scheduler.hh"
#include "gpu/dispatch/dispatch_policy.hh"
#include "gpu/dispatch/resource_ledger.hh"
#include "gpu/kernel_distributor.hh"
#include "gpu/kmu.hh"
#include "gpu/smx.hh"
#include "gpu/stream.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

constexpr Cycle infiniteCycle = ~Cycle(0);

class SmxScheduler : public DispatchEngine
{
  public:
    SmxScheduler(const GpuConfig &cfg, const Program &prog,
                 KernelDistributor &kd, Kmu &kmu, Agt &agt,
                 DtblScheduler &dtbl, StreamTable &streams, SimStats &stats,
                 std::vector<std::unique_ptr<Smx>> &smxs,
                 ResourceLedger &ledger, TraceSink *trace = nullptr,
                 Pmu *pmu = nullptr);

    /**
     * One scheduler cycle: dispatch kernels KMU->KD, process arrived
     * aggregation commands, distribute TBs to SMXs.
     * @return true when any forward progress was made.
     */
    bool tick(Cycle now);

    /** Aggregation operation command from an SMX (arrives at @p when). */
    void enqueueAggRequests(std::vector<AggLaunchRequest> reqs, Cycle when);

    /** An SMX finished a TB. */
    void notifyTbComplete(const TbAssignment &asg, Cycle now);

    /** Earliest future cycle at which this unit has work (fast-forward). */
    Cycle nextEventCycle(Cycle now) const;

    bool idle() const;

    /** FCFS queue length (tests). */
    std::size_t fcfsDepth() const { return fcfs_.size(); }

    /** Kernels currently marked schedulable (the FCFS queue length). */
    std::size_t schedulableCount() const { return fcfs_.size(); }
    /** Valid Kernel Distributor entries (resident kernels). */
    std::size_t residentKernelCount() const;

    /** The active dispatch policy. */
    DispatchPolicyKind policyKind() const { return policy_->kind(); }

    // --- DispatchEngine (driven by the dispatch policy) ----------------
    unsigned numSmx() const override
    {
        return unsigned(smxs_.size());
    }
    unsigned rrStart() const override { return rrSmx_; }
    void
    advanceRr() override
    {
        rrSmx_ = (rrSmx_ + 1) % smxs_.size();
    }
    const std::deque<std::int32_t> &schedulable() const override
    {
        return fcfs_;
    }
    bool tryDispatch(std::int32_t kde_idx, unsigned smx,
                     Cycle now) override;
    const ResourceLedger &ledger() const override { return ledger_; }

  private:
    bool dispatchFromKmu(Cycle now);
    void markSchedulableKernels(Cycle now);
    bool processAggArrivals(Cycle now);
    void handleAggRequest(const AggLaunchRequest &req, Cycle now);
    bool distribute(Cycle now);

    /**
     * Compute the next TB of kernel @p kde_idx; returns false when none
     * is currently available (exhausted / overflow fetch pending /
     * dispatch latency not elapsed).
     */
    bool peekAssignment(std::int32_t kde_idx, Cycle now, TbAssignment &out);

    /** Commit the previously peeked assignment (advance cursors). */
    void commitAssignment(std::int32_t kde_idx, const TbAssignment &asg,
                          Cycle now);

    void markKernel(std::int32_t kde_idx);
    void unmarkIfExhausted(std::int32_t kde_idx);
    void maybeCompleteKernel(std::int32_t kde_idx, Cycle now);

    struct PendingAgg
    {
        Cycle when;
        AggLaunchRequest req;
    };

    const GpuConfig &cfg_;
    const Program &prog_;
    KernelDistributor &kd_;
    Kmu &kmu_;
    Agt &agt_;
    DtblScheduler &dtbl_;
    StreamTable &streams_;
    SimStats &stats_;
    std::vector<std::unique_ptr<Smx>> &smxs_;
    ResourceLedger &ledger_;
    std::unique_ptr<DispatchPolicy> policy_;
    TraceSink *trace_ = nullptr;
    /** TB waiting time (launch command -> first TB dispatch), Figure 9. */
    PmuHistogram *tbWaitHist_ = nullptr;

    std::deque<std::int32_t> fcfs_;
    std::deque<PendingAgg> aggQueue_;
    /**
     * Requests waiting for an in-flight fallback kernel of the same
     * function to land in the Kernel Distributor so they can coalesce
     * with it instead of spawning further device kernels.
     */
    std::deque<PendingAgg> retryQueue_;
    /** (func, smem) -> end of the window during which requests wait. */
    std::unordered_map<std::uint64_t, Cycle> fallbackWindowUntil_;
    unsigned rrSmx_ = 0;
};

} // namespace dtbl

#endif // DTBL_GPU_SMX_SCHEDULER_HH
