/**
 * @file
 * Kernel Management Unit (Section 2.2).
 *
 * Manages the hardware work queues fed by host streams and the pending
 * queue of device-launched kernels (CDP launches and DTBL fallbacks).
 * A HWQ stops being inspected once its head kernel is dispatched, until
 * that kernel completes. Dispatch to the Kernel Distributor costs the
 * measured kernel-dispatch latency (Table 3).
 */

#ifndef DTBL_GPU_KMU_HH
#define DTBL_GPU_KMU_HH

#include <deque>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "gpu/launch.hh"
#include "stats/trace.hh"

namespace dtbl {

class Kmu
{
  public:
    explicit Kmu(const GpuConfig &cfg, TraceSink *trace = nullptr);

    /** Enqueue a host-launched kernel on its HWQ. */
    void enqueueHost(const KernelLaunch &launch, unsigned hwq);

    /** Enqueue a device-launched kernel arriving at @p arrival. */
    void enqueueDevice(const KernelLaunch &launch, Cycle arrival);

    /**
     * Pick the next kernel ready to dispatch at @p now, if any.
     * Device-launched kernels and unblocked HWQ heads are considered
     * FCFS by arrival. The chosen kernel is removed; the caller must
     * mark the owning HWQ blocked-until-complete via the return value.
     */
    struct Dispatched
    {
        KernelLaunch launch;
        /** HWQ to unblock on completion; -1 for device-launched. */
        std::int32_t hwq = -1;
    };
    std::optional<Dispatched> nextDispatch(Cycle now);

    /** The kernel dispatched from @p hwq completed; resume inspection. */
    void hwqKernelCompleted(unsigned hwq);

    bool idle() const;

    std::size_t pendingDeviceKernels() const { return device_.size(); }

    /** Arrival cycle of the earliest pending device kernel (or ~0). */
    Cycle nextDeviceArrival() const;

  private:
    struct Hwq
    {
        std::deque<KernelLaunch> queue;
        bool blocked = false;
    };

    struct PendingDevice
    {
        KernelLaunch launch;
        Cycle arrival;
    };

    const GpuConfig &cfg_;
    TraceSink *trace_;
    std::vector<Hwq> hwqs_;
    std::deque<PendingDevice> device_;
    unsigned rrNext_ = 0; //!< round-robin fairness over HWQs
};

} // namespace dtbl

#endif // DTBL_GPU_KMU_HH
