#include "gpu/kmu.hh"

#include "common/log.hh"

namespace dtbl {

Kmu::Kmu(const GpuConfig &cfg, TraceSink *trace)
    : cfg_(cfg), trace_(trace), hwqs_(cfg.numHwqs)
{
}

void
Kmu::enqueueHost(const KernelLaunch &launch, unsigned hwq)
{
    DTBL_ASSERT(hwq < hwqs_.size(), "bad HWQ ", hwq);
    TraceSink::emit(trace_, launch.launchCycle, TraceEvent::KmuPushHost,
                    traceLaneKmu, launch.func, hwq);
    hwqs_[hwq].queue.push_back(launch);
}

void
Kmu::enqueueDevice(const KernelLaunch &launch, Cycle arrival)
{
    TraceSink::emit(trace_, arrival, TraceEvent::KmuPushDevice,
                    traceLaneKmu, launch.func, launch.grid.count());
    // Keep the pending queue sorted by arrival so a long-latency launch
    // issued earlier does not head-of-line block a short one.
    auto it = device_.end();
    while (it != device_.begin() && std::prev(it)->arrival > arrival)
        --it;
    device_.insert(it, {launch, arrival});
}

Cycle
Kmu::nextDeviceArrival() const
{
    return device_.empty() ? ~Cycle(0) : device_.front().arrival;
}

std::optional<Kmu::Dispatched>
Kmu::nextDispatch(Cycle now)
{
    // Device-launched / suspended kernels are dispatched "in the same
    // manner" as host kernels; serve the earliest-arrived device kernel
    // first, then round-robin over unblocked HWQ heads.
    if (!device_.empty() && device_.front().arrival <= now) {
        Dispatched d{device_.front().launch, -1};
        device_.pop_front();
        TraceSink::emit(trace_, now, TraceEvent::KmuPop, traceLaneKmu,
                        d.launch.func, ~std::uint64_t(0));
        return d;
    }
    for (unsigned i = 0; i < hwqs_.size(); ++i) {
        const unsigned q = (rrNext_ + i) % hwqs_.size();
        Hwq &hwq = hwqs_[q];
        if (hwq.blocked || hwq.queue.empty())
            continue;
        Dispatched d{hwq.queue.front(), std::int32_t(q)};
        hwq.queue.pop_front();
        hwq.blocked = true;
        rrNext_ = (q + 1) % hwqs_.size();
        TraceSink::emit(trace_, now, TraceEvent::KmuPop, traceLaneKmu,
                        d.launch.func, q);
        return d;
    }
    return std::nullopt;
}

void
Kmu::hwqKernelCompleted(unsigned hwq)
{
    DTBL_ASSERT(hwq < hwqs_.size() && hwqs_[hwq].blocked,
                "HWQ completion without a dispatched kernel");
    hwqs_[hwq].blocked = false;
}

bool
Kmu::idle() const
{
    if (!device_.empty())
        return false;
    for (const auto &q : hwqs_) {
        if (!q.queue.empty() || q.blocked)
            return false;
    }
    return true;
}

} // namespace dtbl
