/**
 * @file
 * Kernel launch descriptors shared by the host API, KMU and Kernel
 * Distributor.
 */

#ifndef DTBL_GPU_LAUNCH_HH
#define DTBL_GPU_LAUNCH_HH

#include <cstdint>

#include "common/types.hh"

namespace dtbl {

/** A kernel launch command (host-side or device-side). */
struct KernelLaunch
{
    KernelFuncId func = invalidKernelFunc;
    Dim3 grid{1, 1, 1};
    Addr paramAddr = 0;
    std::uint32_t sharedMemBytes = 0;

    /** Host stream id; -1 for device-side launches. */
    std::int32_t stream = -1;
    bool deviceLaunched = false;
    /** Cycle the launch command was issued (waiting-time metric). */
    Cycle launchCycle = 0;
    /** Reserved metadata+parameter bytes, released when scheduled. */
    std::uint64_t footprintBytes = 0;
    /** Count this launch in the dynamic-launch waiting-time stats. */
    bool trackWaitingTime = false;
};

} // namespace dtbl

#endif // DTBL_GPU_LAUNCH_HH
