/**
 * @file
 * Kernel Distributor (Section 2.2) with the DTBL extensions (Section 4.2):
 * each entry gains the NAGEI/LAGEI registers that head/tail the linked
 * list of aggregated groups coalesced to the kernel, and the FCFS
 * controller state gains the marked / first-time-marked bits.
 */

#ifndef DTBL_GPU_KERNEL_DISTRIBUTOR_HH
#define DTBL_GPU_KERNEL_DISTRIBUTOR_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "core/dtbl_scheduler.hh"
#include "gpu/launch.hh"
#include "stats/trace.hh"

namespace dtbl {

class Agt;

/** One Kernel Distributor Entry (PC, Dim, Param, ExeBL + extensions). */
struct Kde
{
    bool valid = false;

    // --- baseline fields ------------------------------------------------
    KernelFuncId func = invalidKernelFunc;
    Dim3 grid{1, 1, 1};
    Addr paramAddr = 0;
    std::uint32_t sharedMemBytes = 0;
    /** Next native TB (flat index) to distribute. */
    std::uint64_t nextNativeTb = 0;
    std::uint64_t totalNativeTbs = 0;
    /** TBs (native + aggregated) currently executing on SMXs. */
    std::uint32_t exeBl = 0;

    // --- DTBL extension ---------------------------------------------------
    /** Next aggregated group to schedule (AGEI); -1 = none pending. */
    std::int32_t nagei = -1;
    /** Last aggregated group coalesced to this kernel; -1 = none. */
    std::int32_t lagei = -1;
    /** Aggregated groups linked but not yet fully distributed. */
    std::uint32_t pendingAggGroups = 0;
    /** Groups coalesced whose TBs still execute (for release timing). */
    std::uint32_t liveAggGroups = 0;

    // --- FCFS controller state ---------------------------------------------
    bool fcfsMarked = false;
    /** Extra bit: has this kernel ever been marked before? (4.2) */
    bool everMarked = false;

    // --- provenance / bookkeeping -----------------------------------------
    std::int32_t hwq = -1;
    std::int32_t stream = -1;
    bool deviceLaunched = false;
    Cycle launchCycle = 0;
    /** Kernel may be scheduled only after the KMU dispatch latency. */
    Cycle schedulableAt = 0;
    bool firstDispatchDone = false;
    bool trackWaitingTime = false;
    std::uint64_t footprintBytes = 0;

    bool
    nativeFullyDistributed() const
    {
        return nextNativeTb >= totalNativeTbs;
    }

    /**
     * All work known so far is distributed and executed. New aggregated
     * groups may still arrive while exeBl > 0.
     */
    bool
    complete() const
    {
        return valid && !fcfsMarked && nativeFullyDistributed() &&
               nagei < 0 && pendingAggGroups == 0 && exeBl == 0 &&
               liveAggGroups == 0;
    }
};

class KernelDistributor
{
  public:
    explicit KernelDistributor(const GpuConfig &cfg,
                               TraceSink *trace = nullptr);

    /** Allocate a free entry; returns its index or -1 when full. */
    std::int32_t allocate(const KernelLaunch &launch, std::int32_t hwq,
                          Cycle now, Cycle dispatch_latency);

    /** Release a completed entry. */
    void release(std::int32_t idx);

    Kde &entry(std::int32_t idx);
    const Kde &entry(std::int32_t idx) const;
    std::size_t size() const { return entries_.size(); }

    bool hasFreeEntry() const;
    bool empty() const;

    /** Snapshot for the DTBL eligibility search (Figure 5). */
    std::vector<CoalesceTarget> coalesceTargets() const;

    /**
     * Link a freshly allocated AGE into @p kde's scheduling pool,
     * updating NAGEI/LAGEI (the two update scenarios of Section 4.2).
     * @return true when the kernel must be (re)marked by the FCFS.
     */
    bool linkAggGroup(std::int32_t kde_idx, std::int32_t agei, Agt &agt);

  private:
    std::vector<Kde> entries_;
    TraceSink *trace_;
};

} // namespace dtbl

#endif // DTBL_GPU_KERNEL_DISTRIBUTOR_HH
