/**
 * @file
 * Top-level GPU device model: owns all subsystems and exposes the host
 * API (memory management, kernel launch, synchronize) plus the
 * device-side hooks the SMXs call for dynamic parallelism.
 */

#ifndef DTBL_GPU_GPU_HH
#define DTBL_GPU_GPU_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/sanitizer.hh"
#include "common/config.hh"
#include "core/agt.hh"
#include "core/dtbl_scheduler.hh"
#include "gpu/device_runtime.hh"
#include "gpu/dispatch/resource_ledger.hh"
#include "gpu/kernel_distributor.hh"
#include "gpu/kmu.hh"
#include "gpu/launch.hh"
#include "gpu/smx.hh"
#include "gpu/smx_scheduler.hh"
#include "gpu/stream.hh"
#include "isa/kernel_function.hh"
#include "mem/global_memory.hh"
#include "mem/memory_system.hh"
#include "stats/metrics.hh"
#include "stats/pmu.hh"
#include "stats/profiler.hh"
#include "stats/trace.hh"

namespace dtbl {

class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, const Program &prog);

    // --- host API ---------------------------------------------------
    GlobalMemory &mem() { return mem_; }
    std::int32_t createStream() { return streams_.create(); }

    /**
     * Launch a kernel from the host: parameters are written to a
     * device-side buffer; the launch command is queued on @p stream.
     */
    void launch(KernelFuncId func, Dim3 grid,
                const std::vector<std::uint32_t> &params,
                std::int32_t stream = 0, std::uint32_t dyn_smem = 0);

    /** Run the device until all queued work completes. */
    void synchronize();

    Cycle now() const { return now_; }
    SimStats &stats() { return stats_; }
    /** The run's event-trace sink (stats/trace.hh). */
    TraceSink &trace() { return trace_; }
    const TraceSink &trace() const { return trace_; }
    const GpuConfig &config() const { return cfg_; }
    const Program &program() const { return prog_; }

    const KernelFunction &
    function(KernelFuncId id) const
    {
        return prog_.function(id);
    }

    /** Finalize counters and build the derived metrics report. */
    MetricsReport report(const std::string &bench, const std::string &mode);

    /**
     * Enable the runtime sanitizer at @p level (analysis/sanitizer.hh).
     * Warns and stays off when the hooks are compiled out
     * (-DDTBL_ENABLE_CHECK=OFF). With @p elide (the default) the static
     * analyzer runs over the program first and checks it proved
     * redundant are skipped at runtime — findings are unchanged, only
     * wall-clock improves. Pass false for the pristine check-everything
     * path (A/B identity testing, analyzer-distrust debugging).
     */
    void enableChecks(CheckLevel level, bool elide = true);
    /** The sanitizer, or nullptr when checks are off. */
    Sanitizer *sanitizer() { return san_.get(); }
    const Sanitizer *sanitizer() const { return san_.get(); }

    /** The PMU counter registry (stats/pmu.hh). */
    Pmu &pmu() { return pmu_; }
    const Pmu &pmu() const { return pmu_; }

    /**
     * Turn on interval profiling: enables the hot-path stall
     * attribution and samples every PMU counter each @p window cycles.
     * Warns and stays off when the PMU is compiled out
     * (-DDTBL_ENABLE_PMU=OFF). Must be called before work is launched
     * for the stall taxonomy to cover the whole run.
     */
    void enableProfiling(Cycle window = kDefaultProfileWindow);
    /** The interval profiler, or nullptr when profiling is off. */
    const IntervalProfiler *profiler() const { return profiler_.get(); }

    /** Per-kernel hot-path counters; call only while pmu().collecting(). */
    void
    pmuNoteTbStart(KernelFuncId func)
    {
        if (func < kernelTbs_.size())
            kernelTbs_[func].add();
    }
    void
    pmuNoteIssue(KernelFuncId func)
    {
        if (func < kernelInstrs_.size())
            kernelInstrs_[func].add();
    }

    // --- device-side hooks (called by the SMXs) ------------------------
    MemorySystem &memSys() { return memSys_; }
    DeviceRuntime &runtime() { return runtime_; }
    DtblScheduler &dtblScheduler() { return dtblSched_; }
    Agt &agt() { return agt_; }

    /** CDP cudaLaunchDevice: command reaches the KMU at @p arrival. */
    void deviceLaunchKernel(KernelFuncId func, std::uint32_t num_tbs,
                            Addr param, std::uint32_t smem, Cycle arrival,
                            Cycle launch_cycle,
                            std::uint64_t footprint_bytes);

    /** DTBL aggregation command: processed by the SMX scheduler. */
    void submitAggLaunches(std::vector<AggLaunchRequest> reqs, Cycle when);

    /** An SMX finished a TB. */
    void notifyTbComplete(const TbAssignment &asg, Cycle now);

    /** Per-SMX execution-resource ledger (gpu/dispatch). */
    ResourceLedger &ledger() { return ledger_; }
    const ResourceLedger &ledger() const { return ledger_; }

    // --- introspection (tests) ------------------------------------------
    const KernelDistributor &kernelDistributor() const { return kd_; }
    const Kmu &kmu() const { return kmu_; }
    SmxScheduler &scheduler() { return *sched_; }
    const Smx &smx(unsigned i) const { return *smxs_[i]; }

  private:
    bool idle() const;
    /** Drain-time invariant checks (sanitizer tier 1). */
    void checkDrainInvariants();
    /** Register the Gpu-level PMU probes (SimStats, KMU, KD, kernels). */
    void registerPmuProbes();

    GpuConfig cfg_;
    const Program &prog_;
    SimStats stats_;
    /** Declared before every traced unit so references outlive them. */
    TraceSink trace_;
    /** Declared before every unit that registers counters or probes. */
    Pmu pmu_;
    GlobalMemory mem_;
    MemorySystem memSys_;
    DeviceRuntime runtime_;
    StreamTable streams_;
    Kmu kmu_;
    KernelDistributor kd_;
    Agt agt_;
    DtblScheduler dtblSched_;
    /** Declared before smxs_/sched_, which hold references into it. */
    ResourceLedger ledger_;
    std::vector<std::unique_ptr<Smx>> smxs_;
    std::unique_ptr<SmxScheduler> sched_;
    /** Static proofs backing check-elision; owned so san_ may point in. */
    std::unique_ptr<AccessSafety> safety_;
    std::unique_ptr<Sanitizer> san_;
    std::unique_ptr<IntervalProfiler> profiler_;
    /** Per-kernel counters indexed by KernelFuncId. */
    std::vector<PmuCounter> kernelTbs_;
    std::vector<PmuCounter> kernelInstrs_;

    Cycle now_ = 0;
    Cycle maxCycles_ = 2'000'000'000ull;
};

} // namespace dtbl

#endif // DTBL_GPU_GPU_HH
