#include "gpu/stream.hh"

#include "common/log.hh"

namespace dtbl {

StreamTable::StreamTable(unsigned num_hwqs)
    : numHwqs_(num_hwqs)
{
    DTBL_ASSERT(num_hwqs > 0);
    outstanding_.push_back(0); // stream 0 (the default stream)
}

std::int32_t
StreamTable::create()
{
    outstanding_.push_back(0);
    return std::int32_t(outstanding_.size() - 1);
}

unsigned
StreamTable::hwqFor(std::int32_t stream) const
{
    DTBL_ASSERT(stream >= 0 && std::size_t(stream) < outstanding_.size(),
                "bad stream id ", stream);
    return unsigned(stream) % numHwqs_;
}

void
StreamTable::kernelLaunched(std::int32_t stream)
{
    ++outstanding_.at(stream);
}

void
StreamTable::kernelCompleted(std::int32_t stream)
{
    DTBL_ASSERT(outstanding_.at(stream) > 0, "stream underflow");
    --outstanding_[stream];
}

std::uint32_t
StreamTable::outstanding(std::int32_t stream) const
{
    return outstanding_.at(stream);
}

} // namespace dtbl
