#include "gpu/gpu.hh"

#include <algorithm>
#include <sstream>

#include "analysis/analyzer.hh"
#include "common/log.hh"
#include "stats/host_prof.hh"

namespace dtbl {

Gpu::Gpu(const GpuConfig &cfg, const Program &prog)
    : cfg_(cfg), prog_(prog), mem_(cfg.globalMemBytes),
      memSys_(cfg_, stats_, &trace_, &pmu_), runtime_(cfg_, mem_, stats_),
      streams_(cfg.numHwqs), kmu_(cfg_, &trace_), kd_(cfg_, &trace_),
      agt_(cfg.agtSize, &trace_, &pmu_),
      dtblSched_(agt_, cfg_, stats_, &trace_), ledger_(cfg_, kd_.size())
{
    cfg_.validate();
    trace_.nameLane(traceLaneKmu, "KMU");
    trace_.nameLane(traceLaneKd, "KernelDistributor");
    trace_.nameLane(traceLaneAgt, "AGT/DTBL");
    trace_.nameLane(traceLaneMem, "Memory");
    registerPmuProbes();
    for (unsigned i = 0; i < cfg_.numSmx; ++i) {
        trace_.nameLane(traceLaneSmxBase + i, "SMX " + std::to_string(i));
        smxs_.push_back(std::make_unique<Smx>(i, *this));
    }
    sched_ = std::make_unique<SmxScheduler>(cfg_, prog_, kd_, kmu_, agt_,
                                            dtblSched_, streams_, stats_,
                                            smxs_, ledger_, &trace_,
                                            &pmu_);
}

void
Gpu::registerPmuProbes()
{
    if (!Pmu::compiledIn)
        return;
    pmu_.probe("gpu.resident_warps", PmuUnit::Gpu, [this] {
        std::uint64_t r = 0;
        for (const auto &s : smxs_)
            r += s->residentWarps();
        return r;
    });
    pmu_.probe("gpu.warp_instrs", PmuUnit::Gpu,
               [this] { return stats_.warpInstrsIssued; });
    pmu_.probe("gpu.active_lanes", PmuUnit::Gpu,
               [this] { return stats_.activeLaneSum; });
    pmu_.probe("gpu.tbs_completed", PmuUnit::Gpu,
               [this] { return stats_.tbsCompleted; });
    pmu_.probe("gpu.kernels_completed", PmuUnit::Gpu,
               [this] { return stats_.kernelsCompleted; });
    pmu_.probe("kmu.pending_device", PmuUnit::Kmu, [this] {
        return std::uint64_t(kmu_.pendingDeviceKernels());
    });
    pmu_.probe("cdp.device_launches", PmuUnit::Kmu,
               [this] { return stats_.deviceKernelLaunches; });
    pmu_.probe("kd.valid_entries", PmuUnit::Kd, [this] {
        std::uint64_t n = 0;
        for (std::size_t i = 0; i < kd_.size(); ++i)
            n += kd_.entry(std::int32_t(i)).valid ? 1 : 0;
        return n;
    });
    pmu_.probe("dtbl.agg_launches", PmuUnit::Sched,
               [this] { return stats_.aggGroupLaunches; });
    pmu_.probe("dtbl.agg_coalesced", PmuUnit::Sched,
               [this] { return stats_.aggGroupsCoalesced; });
    pmu_.probe("dtbl.agg_fallback", PmuUnit::Sched,
               [this] { return stats_.aggGroupsFallback; });
    pmu_.probe("dtbl.agt_overflows", PmuUnit::Sched,
               [this] { return stats_.agtOverflows; });
    pmu_.probe("dtbl.pending_launch_bytes", PmuUnit::Gpu,
               [this] { return stats_.pendingLaunchBytes; });
    pmu_.probe("dtbl.peak_pending_launch_bytes", PmuUnit::Gpu,
               [this] { return stats_.peakPendingLaunchBytes; });
    pmu_.probe("mem.l1_hits", PmuUnit::Mem,
               [this] { return stats_.l1Hits; });
    pmu_.probe("mem.l1_misses", PmuUnit::Mem,
               [this] { return stats_.l1Misses; });
    pmu_.probe("mem.l2_hits", PmuUnit::Mem,
               [this] { return stats_.l2Hits; });
    pmu_.probe("mem.l2_misses", PmuUnit::Mem,
               [this] { return stats_.l2Misses; });
    for (std::size_t i = 0; i < prog_.size(); ++i) {
        std::string base =
            "kernel." + prog_.function(KernelFuncId(i)).name;
        if (pmu_.indexOf(base + ".tbs") >= 0)
            base += "@" + std::to_string(i); // disambiguate name clashes
        kernelTbs_.push_back(pmu_.counter(base + ".tbs", PmuUnit::Kernel,
                                          std::int32_t(i)));
        kernelInstrs_.push_back(
            pmu_.counter(base + ".instrs", PmuUnit::Kernel,
                         std::int32_t(i)));
        for (std::size_t r = 0; r < kNumStallReasons; ++r) {
            pmu_.probe(base + ".slot." + stallReasonName(StallReason(r)),
                       PmuUnit::Kernel,
                       [this, i, r] {
                           std::uint64_t v = 0;
                           for (const auto &s : smxs_)
                               v += s->kernelStallSlotCycles(i)[r];
                           return v;
                       },
                       std::int32_t(i));
        }
    }
    // The idle bucket: slot-cycles no kernel occupies (row prog.size()).
    const std::size_t idleRow = prog_.size();
    for (std::size_t r = 0; r < kNumStallReasons; ++r) {
        pmu_.probe("kernel.(idle).slot." +
                       std::string(stallReasonName(StallReason(r))),
                   PmuUnit::Kernel,
                   [this, idleRow, r] {
                       std::uint64_t v = 0;
                       for (const auto &s : smxs_)
                           v += s->kernelStallSlotCycles(idleRow)[r];
                       return v;
                   },
                   std::int32_t(idleRow));
    }
}

void
Gpu::enableProfiling(Cycle window)
{
    if (!Pmu::compiledIn) {
        DTBL_WARN("profiling requested but the PMU is compiled out; "
                  "rebuild with -DDTBL_ENABLE_PMU=ON");
        return;
    }
    if (window == 0)
        window = kDefaultProfileWindow;
    pmu_.setCollecting(true);
    profiler_ = std::make_unique<IntervalProfiler>(pmu_, window);
}

void
Gpu::launch(KernelFuncId func, Dim3 grid,
            const std::vector<std::uint32_t> &params, std::int32_t stream,
            std::uint32_t dyn_smem)
{
    const KernelFunction &fn = prog_.function(func);
    const std::uint32_t paramBytes =
        std::max<std::uint32_t>(fn.paramBytes,
                                std::uint32_t(params.size()) * 4);
    const Addr paramAddr = mem_.allocate(std::max(paramBytes, 4u), 256);
    for (std::size_t i = 0; i < params.size(); ++i)
        mem_.write32(paramAddr + i * 4, params[i]);

    KernelLaunch l;
    l.func = func;
    l.grid = grid;
    l.paramAddr = paramAddr;
    l.sharedMemBytes = dyn_smem;
    l.stream = stream;
    l.launchCycle = now_;
    kmu_.enqueueHost(l, streams_.hwqFor(stream));
    streams_.kernelLaunched(stream);
}

void
Gpu::deviceLaunchKernel(KernelFuncId func, std::uint32_t num_tbs,
                        Addr param, std::uint32_t smem, Cycle arrival,
                        Cycle launch_cycle, std::uint64_t footprint_bytes)
{
    const KernelFunction &fn = prog_.function(func);
    ++stats_.deviceKernelLaunches;
    stats_.dynamicLaunchThreadSum +=
        std::uint64_t(num_tbs) * fn.tbDim.count();

    KernelLaunch l;
    l.func = func;
    l.grid = Dim3{num_tbs, 1, 1};
    l.paramAddr = param;
    l.sharedMemBytes = smem;
    l.deviceLaunched = true;
    l.launchCycle = launch_cycle;
    l.footprintBytes = footprint_bytes;
    l.trackWaitingTime = true;
    kmu_.enqueueDevice(l, arrival);
}

void
Gpu::enableChecks(CheckLevel level, bool elide)
{
    if (level == CheckLevel::Off) {
        san_.reset();
        safety_.reset();
        return;
    }
    if (!Sanitizer::compiledIn) {
        DTBL_WARN("runtime checks requested but compiled out; rebuild "
                  "with -DDTBL_ENABLE_CHECK=ON");
        return;
    }
    if (elide && level >= CheckLevel::Memory) {
        DTBL_HPROF_SCOPE("analysis");
        safety_ = std::make_unique<AccessSafety>(computeAccessSafety(prog_));
    } else {
        safety_.reset();
    }
    san_ = std::make_unique<Sanitizer>(level, mem_, safety_.get());
}

void
Gpu::checkDrainInvariants()
{
    // After synchronize() the machine drained: every Kernel Distributor
    // entry must be released, every AGT record freed, the launch-path
    // counters consistent and all reserved launch-metadata bytes
    // returned. Violations are simulator bugs, not app bugs.
    for (std::size_t i = 0; i < kd_.size(); ++i) {
        const Kde &e = kd_.entry(std::int32_t(i));
        if (e.valid) {
            std::ostringstream os;
            os << "KDE " << i << " (func " << e.func
               << ") still valid after drain";
            san_->report(CheckRule::LeakKde, Severity::Error, os.str());
            continue;
        }
        // Released entries must have a clean scheduling state; LAGEI is
        // provenance only and may keep its last value.
        if (e.nagei >= 0 || e.pendingAggGroups != 0 ||
            e.liveAggGroups != 0 || e.exeBl != 0) {
            std::ostringstream os;
            os << "released KDE " << i << " has dangling linkage (nagei="
               << e.nagei << " pending=" << e.pendingAggGroups
               << " live=" << e.liveAggGroups << " exeBl=" << e.exeBl
               << ")";
            san_->report(CheckRule::KdeLinkage, Severity::Error, os.str());
        }
    }
    if (agt_.liveCount() != 0 || agt_.onChipCount() != 0) {
        std::ostringstream os;
        os << agt_.liveCount() << " AGT group record(s) and "
           << agt_.onChipCount() << " on-chip slot(s) live after drain";
        san_->report(CheckRule::LeakAgt, Severity::Error, os.str());
    }
    if (stats_.aggGroupsCoalesced + stats_.aggGroupsFallback !=
        stats_.aggGroupLaunches) {
        std::ostringstream os;
        os << "coalesced (" << stats_.aggGroupsCoalesced
           << ") + fallback (" << stats_.aggGroupsFallback
           << ") != aggregated launches (" << stats_.aggGroupLaunches
           << ")";
        san_->report(CheckRule::AggCount, Severity::Error, os.str());
    }
    if (stats_.pendingLaunchBytes != 0) {
        std::ostringstream os;
        os << stats_.pendingLaunchBytes
           << " launch-metadata byte(s) still reserved after drain";
        san_->report(CheckRule::LeakLaunchBytes, Severity::Error,
                     os.str());
    }
}

void
Gpu::submitAggLaunches(std::vector<AggLaunchRequest> reqs, Cycle when)
{
    sched_->enqueueAggRequests(std::move(reqs), when);
}

void
Gpu::notifyTbComplete(const TbAssignment &asg, Cycle now)
{
    sched_->notifyTbComplete(asg, now);
}

bool
Gpu::idle() const
{
    if (!kmu_.idle() || !kd_.empty() || !sched_->idle())
        return false;
    for (const auto &s : smxs_) {
        if (!s->idle())
            return false;
    }
    return true;
}

void
Gpu::synchronize()
{
    while (!idle()) {
        bool progress = false;
        {
            DTBL_HPROF_SCOPE("sched");
            progress = sched_->tick(now_);
        }

        unsigned issued = 0;
        unsigned resident = 0;
        {
            DTBL_HPROF_SCOPE("smx");
            for (auto &s : smxs_) {
                issued += s->tick(now_);
                resident += s->residentWarps();
            }
        }
        if (resident > 0) {
            ++stats_.busyCycles;
            stats_.residentWarpCycleSum += resident;
        }

        if (!progress && issued == 0) {
            // Nothing happened this cycle: fast-forward to the next
            // event (warp wakeup, KMU arrival, dispatch-latency expiry).
            Cycle next = sched_->nextEventCycle(now_);
            for (const auto &s : smxs_)
                next = std::min(next, s->earliestReady());
            if (next == infiniteCycle) {
                if (idle())
                    break;
                DTBL_PANIC("simulation deadlock at cycle ", now_);
            }
            if (next > now_ + 1) {
                const Cycle skip = next - now_ - 1;
                if (resident > 0) {
                    stats_.busyCycles += skip;
                    stats_.residentWarpCycleSum +=
                        std::uint64_t(resident) * skip;
                }
#if DTBL_PMU_ENABLED
                // The machine is frozen across the skip (no warp wakes
                // inside it), so one classification covers all cycles.
                if (pmu_.collecting()) {
                    for (auto &s : smxs_)
                        s->accountSkippedCycles(now_, skip);
                }
#endif
                now_ += skip;
            }
        }
        ++now_;
#if DTBL_PMU_ENABLED
        if (profiler_) {
            DTBL_HPROF_SCOPE("pmu");
            profiler_->sampleUpTo(now_);
        }
#endif
        if (now_ > maxCycles_)
            DTBL_FATAL("simulation exceeded ", maxCycles_, " cycles");
    }
    stats_.totalCycles = now_;
#if DTBL_CHECK_ENABLED
    if (san_ && san_->level() >= CheckLevel::Invariants)
        checkDrainInvariants();
#endif
}

MetricsReport
Gpu::report(const std::string &bench, const std::string &mode)
{
    memSys_.finalizeInto(stats_);
    stats_.totalCycles = now_;
    stats_.stallSlotCycles.fill(0); // recompute: report() may be re-run
    for (const auto &s : smxs_) {
        const auto &sc = s->stallSlotCycles();
        for (std::size_t i = 0; i < kNumStallReasons; ++i)
            stats_.stallSlotCycles[i] += sc[i];
    }
    MetricsReport r = MetricsReport::from(stats_, bench, mode, cfg_.numSmx,
                                          cfg_.maxResidentWarpsPerSmx);
    r.traceHash = trace_.hash();
    r.traceEvents = trace_.total();
    r.dispatchPolicy = dispatchPolicyName(cfg_.dispatchPolicy);
    if (r.stallSlotCyclesTotal > 0) {
        for (std::size_t k = 0; k <= prog_.size(); ++k) {
            std::array<std::uint64_t, kNumStallReasons> row{};
            std::uint64_t sum = 0;
            for (const auto &s : smxs_) {
                const auto &sc = s->kernelStallSlotCycles(k);
                for (std::size_t i = 0; i < kNumStallReasons; ++i) {
                    row[i] += sc[i];
                    sum += sc[i];
                }
            }
            if (sum == 0)
                continue;
            const std::string name =
                k < prog_.size()
                    ? prog_.function(KernelFuncId(k)).name
                    : std::string("(idle)");
            r.kernelStallSlotCycles.emplace_back(name, row);
        }
    }
    if (profiler_) {
        profiler_->finalize(now_);
        r.profileSamples = profiler_->numSamples();
        r.sampledPeakResidentWarps =
            profiler_->sampledPeakByName("gpu.resident_warps");
        r.sampledPeakAgtLive = profiler_->sampledPeakByName("agt.live");
        r.sampledPeakPendingLaunchBytes =
            profiler_->sampledPeakByName("dtbl.pending_launch_bytes");
    }
    return r;
}

} // namespace dtbl
