#include "gpu/smx_scheduler.hh"

#include <algorithm>

#include "common/log.hh"
#include "stats/host_prof.hh"

namespace dtbl {

SmxScheduler::SmxScheduler(const GpuConfig &cfg, const Program &prog,
                           KernelDistributor &kd, Kmu &kmu, Agt &agt,
                           DtblScheduler &dtbl, StreamTable &streams,
                           SimStats &stats,
                           std::vector<std::unique_ptr<Smx>> &smxs,
                           ResourceLedger &ledger, TraceSink *trace,
                           Pmu *pmu)
    : cfg_(cfg), prog_(prog), kd_(kd), kmu_(kmu), agt_(agt), dtbl_(dtbl),
      streams_(streams), stats_(stats), smxs_(smxs), ledger_(ledger),
      policy_(makeDispatchPolicy(cfg.dispatchPolicy)), trace_(trace)
{
    if (pmu) {
        pmu->probe("sched.fcfs_depth", PmuUnit::Sched,
                   [this] { return std::uint64_t(fcfs_.size()); });
        tbWaitHist_ = pmu->histogram("sched.tb_wait", PmuUnit::Sched);
    }
}

bool
SmxScheduler::tick(Cycle now)
{
    bool progress = false;
    {
        DTBL_HPROF_SCOPE("kmu");
        progress |= dispatchFromKmu(now);
        markSchedulableKernels(now);
    }
    {
        DTBL_HPROF_SCOPE("agt");
        progress |= processAggArrivals(now);
    }
    {
        DTBL_HPROF_SCOPE("dispatch");
        progress |= distribute(now);
    }
    return progress;
}

bool
SmxScheduler::dispatchFromKmu(Cycle now)
{
    bool progress = false;
    while (kd_.hasFreeEntry()) {
        auto d = kmu_.nextDispatch(now);
        if (!d)
            break;
        const std::int32_t idx =
            kd_.allocate(d->launch, d->hwq, now,
                         cfg_.modelLaunchLatency
                             ? cfg_.launch.kernelDispatch
                             : 0);
        DTBL_ASSERT(idx >= 0, "KDE allocation failed with a free entry");
        progress = true;
    }
    return progress;
}

void
SmxScheduler::markSchedulableKernels(Cycle now)
{
    for (std::size_t i = 0; i < kd_.size(); ++i) {
        Kde &e = kd_.entry(std::int32_t(i));
        if (e.valid && !e.fcfsMarked && !e.everMarked &&
            e.schedulableAt <= now) {
            markKernel(std::int32_t(i));
        }
    }
}

bool
SmxScheduler::processAggArrivals(Cycle now)
{
    bool progress = false;
    // Retried requests first (they arrived earlier than anything new).
    const std::size_t retries = retryQueue_.size();
    for (std::size_t i = 0; i < retries; ++i) {
        if (retryQueue_.front().when > now)
            break;
        const AggLaunchRequest req = retryQueue_.front().req;
        retryQueue_.pop_front();
        handleAggRequest(req, now);
        progress = true;
    }
    while (!aggQueue_.empty() && aggQueue_.front().when <= now) {
        const AggLaunchRequest req = aggQueue_.front().req;
        aggQueue_.pop_front();
        handleAggRequest(req, now);
        progress = true;
    }
    return progress;
}

void
SmxScheduler::handleAggRequest(const AggLaunchRequest &req, Cycle now)
{
    CoalesceResult res = dtbl_.process(req, kd_.coalesceTargets(), now);
    if (res.coalesced) {
        AggGroup &g = agt_.group(res.agei);
        g.footprintBytes = req.footprintBytes;
        if (kd_.linkAggGroup(res.kdeIdx, res.agei, agt_))
            markKernel(res.kdeIdx);
        return;
    }

    // No eligible kernel in the KDE. If a fallback kernel for the same
    // function is already on its way to the Kernel Distributor, wait for
    // it rather than spawning another device kernel.
    const std::uint64_t key =
        (std::uint64_t(req.func) << 32) | req.sharedMemBytes;
    auto it = fallbackWindowUntil_.find(key);
    if (cfg_.fallbackRetryWindow && it != fallbackWindowUntil_.end() &&
        now < it->second) {
        retryQueue_.push_back({now + 1, req});
        return;
    }
    fallbackWindowUntil_[key] =
        now + (cfg_.modelLaunchLatency ? cfg_.launch.kernelDispatch : 0) +
        32;

    // Launch as a regular device kernel (Figure 5, left branch). The
    // pending-launch record grows from an AGE record to a kernel record.
    ++stats_.aggGroupsFallback;
    TraceSink::emit(trace_, now, TraceEvent::AggFallback, traceLaneAgt,
                    req.func, req.numTbs);
    const std::uint64_t extra =
        cfg_.cdpKernelRecordBytes - cfg_.aggGroupRecordBytes;
    stats_.reserveLaunchBytes(extra);
    KernelLaunch l;
    l.func = req.func;
    l.grid = Dim3{req.numTbs, 1, 1};
    l.paramAddr = req.paramAddr;
    l.sharedMemBytes = req.sharedMemBytes;
    l.deviceLaunched = true;
    l.launchCycle = req.launchCycle;
    l.footprintBytes = req.footprintBytes + extra;
    l.trackWaitingTime = true;
    kmu_.enqueueDevice(l, now);
}

bool
SmxScheduler::peekAssignment(std::int32_t kde_idx, Cycle now,
                             TbAssignment &out)
{
    Kde &e = kd_.entry(kde_idx);
    if (!e.valid || now < e.schedulableAt)
        return false;

    if (!e.nativeFullyDistributed()) {
        out = TbAssignment{};
        out.kdeIdx = kde_idx;
        out.agei = -1;
        out.blkFlat = e.nextNativeTb;
        out.func = e.func;
        out.gridDim = e.grid;
        out.paramAddr = e.paramAddr;
        out.sharedMemBytes = e.sharedMemBytes;
        out.isAggregated = false;
        return true;
    }

    if (e.nagei >= 0) {
        // Spilled AGEs must be fetched from global memory before they
        // can be scheduled (Section 4.3). The chain is known ahead of
        // time, so fetches are pipelined up to agtPrefetchDepth deep.
        if (cfg_.modelLaunchLatency) {
            std::int32_t cur = e.nagei;
            for (unsigned d = 0;
                 d < cfg_.agtPrefetchDepth && cur >= 0;
                 ++d) {
                AggGroup &p = agt_.group(cur);
                if (!p.onChip && !p.fetchIssued) {
                    p.fetchIssued = true;
                    p.fetchReadyAt = now + cfg_.agtOverflowFetchCycles;
                }
                cur = p.next;
            }
        }
        AggGroup &g = agt_.group(e.nagei);
        if (!g.onChip && cfg_.modelLaunchLatency) {
            if (!g.fetchIssued || now < g.fetchReadyAt)
                return false;
        }
        out = TbAssignment{};
        out.kdeIdx = kde_idx;
        out.agei = e.nagei;
        out.blkFlat = g.nextTb;
        out.func = e.func;
        out.gridDim = Dim3{g.numTbs, 1, 1};
        out.paramAddr = g.paramAddr;
        out.sharedMemBytes = e.sharedMemBytes;
        out.isAggregated = true;
        return true;
    }
    return false;
}

void
SmxScheduler::commitAssignment(std::int32_t kde_idx, const TbAssignment &asg,
                               Cycle now)
{
    Kde &e = kd_.entry(kde_idx);
    ++e.exeBl;

    if (!e.firstDispatchDone) {
        e.firstDispatchDone = true;
        if (e.trackWaitingTime) {
            stats_.launchWaitCycleSum += now - e.launchCycle;
            ++stats_.launchWaitSamples;
            PmuHistogram::note(tbWaitHist_, now - e.launchCycle);
        }
    }

    if (asg.agei < 0) {
        ++e.nextNativeTb;
        if (e.nativeFullyDistributed() && e.footprintBytes > 0) {
            stats_.releaseLaunchBytes(e.footprintBytes);
            e.footprintBytes = 0;
        }
    } else {
        AggGroup &g = agt_.group(asg.agei);
        ++g.exeBl;
        if (!g.firstDispatchDone) {
            g.firstDispatchDone = true;
            stats_.launchWaitCycleSum += now - g.launchCycle;
            ++stats_.launchWaitSamples;
            PmuHistogram::note(tbWaitHist_, now - g.launchCycle);
        }
        ++g.nextTb;
        if (g.fullyDistributed()) {
            // Advance NAGEI to the next group in the scheduling pool.
            e.nagei = g.next;
            DTBL_ASSERT(e.pendingAggGroups > 0);
            --e.pendingAggGroups;
            if (e.nagei < 0)
                DTBL_ASSERT(e.pendingAggGroups == 0,
                            "NAGEI chain lost pending groups");
            if (g.footprintBytes > 0) {
                stats_.releaseLaunchBytes(g.footprintBytes);
                g.footprintBytes = 0;
            }
        }
    }
    unmarkIfExhausted(kde_idx);
}

bool
SmxScheduler::distribute(Cycle now)
{
    // No marked kernel: nothing to distribute and — load-bearing for
    // bit-identity with the seed — the round-robin cursor must NOT
    // advance. The policy advances it exactly once per real pass.
    if (fcfs_.empty())
        return false;
    return policy_->distribute(*this, now);
}

bool
SmxScheduler::tryDispatch(std::int32_t kde_idx, unsigned smx, Cycle now)
{
    Smx &target = *smxs_[smx];
    TbAssignment asg;
    if (!peekAssignment(kde_idx, now, asg))
        return false;
    const auto &fn = prog_.function(asg.func);
    const bool fits = target.canAccept(fn, asg.sharedMemBytes);
    DTBL_ASSERT(fits == ledger_.canAccept(smx, fn, asg.sharedMemBytes),
                "resource ledger diverged from SMX ", smx);
    if (!fits)
        return false;
    asg.smx = std::int32_t(smx);
    ledger_.acquire(smx, kde_idx, fn, asg.sharedMemBytes);
    commitAssignment(kde_idx, asg, now);
    TraceSink::emit(trace_, now, TraceEvent::TbDispatch,
                    traceLaneSmxBase + smx,
                    std::uint64_t(std::int64_t(asg.agei)), asg.blkFlat);
    target.startTb(asg, now);
    return true;
}

std::size_t
SmxScheduler::residentKernelCount() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < kd_.size(); ++i)
        n += kd_.entry(std::int32_t(i)).valid ? 1 : 0;
    return n;
}

void
SmxScheduler::markKernel(std::int32_t kde_idx)
{
    Kde &e = kd_.entry(kde_idx);
    if (e.fcfsMarked)
        return;
    e.fcfsMarked = true;
    e.everMarked = true;
    fcfs_.push_back(kde_idx);
}

void
SmxScheduler::unmarkIfExhausted(std::int32_t kde_idx)
{
    Kde &e = kd_.entry(kde_idx);
    if (!e.fcfsMarked)
        return;
    if (e.nativeFullyDistributed() && e.nagei < 0) {
        e.fcfsMarked = false;
        fcfs_.erase(std::find(fcfs_.begin(), fcfs_.end(), kde_idx));
    }
}

void
SmxScheduler::notifyTbComplete(const TbAssignment &asg, Cycle now)
{
    Kde &e = kd_.entry(asg.kdeIdx);
    DTBL_ASSERT(e.valid && e.exeBl > 0, "TB completion for idle KDE");
    --e.exeBl;
    ++stats_.tbsCompleted;
    DTBL_ASSERT(asg.smx >= 0, "TB completion without a dispatch SMX");
    ledger_.release(unsigned(asg.smx), asg.kdeIdx,
                    prog_.function(asg.func), asg.sharedMemBytes);

    if (asg.agei >= 0) {
        AggGroup &g = agt_.group(asg.agei);
        DTBL_ASSERT(g.exeBl > 0);
        --g.exeBl;
        if (g.fullyDistributed() && g.exeBl == 0) {
            DTBL_ASSERT(e.liveAggGroups > 0);
            --e.liveAggGroups;
            // The tail register must not dangle into the released pool:
            // if the last coalesced group dies, the chain is empty
            // (everything before it was already fully distributed).
            if (e.lagei == asg.agei)
                e.lagei = -1;
            DTBL_ASSERT(e.nagei != asg.agei,
                        "releasing the group NAGEI points at");
            agt_.release(asg.agei, now);
        }
    }
    maybeCompleteKernel(asg.kdeIdx, now);
}

void
SmxScheduler::maybeCompleteKernel(std::int32_t kde_idx, Cycle now)
{
    Kde &e = kd_.entry(kde_idx);
    if (!e.complete())
        return;
    ++stats_.kernelsCompleted;
    TraceSink::emit(trace_, now, TraceEvent::KdeRelease, traceLaneKd,
                    std::uint64_t(kde_idx), e.func);
    if (e.footprintBytes > 0) {
        stats_.releaseLaunchBytes(e.footprintBytes);
        e.footprintBytes = 0;
    }
    if (e.hwq >= 0)
        kmu_.hwqKernelCompleted(unsigned(e.hwq));
    if (e.stream >= 0)
        streams_.kernelCompleted(e.stream);
    kd_.release(kde_idx);
    (void)now;
}

void
SmxScheduler::enqueueAggRequests(std::vector<AggLaunchRequest> reqs,
                                 Cycle when)
{
    for (auto &r : reqs) {
        ++stats_.aggGroupLaunches;
        stats_.dynamicLaunchThreadSum +=
            std::uint64_t(r.numTbs) *
            prog_.function(r.func).tbDim.count();
        TraceSink::emit(trace_, when, TraceEvent::AggLaunch, traceLaneAgt,
                        r.func, r.numTbs);
        aggQueue_.push_back({when, r});
    }
}

Cycle
SmxScheduler::nextEventCycle(Cycle now) const
{
    Cycle next = infiniteCycle;
    if (!aggQueue_.empty())
        next = std::min(next, aggQueue_.front().when);
    if (!retryQueue_.empty())
        next = std::min(next, retryQueue_.front().when);
    next = std::min(next, kmu_.nextDeviceArrival());
    for (std::size_t i = 0; i < kd_.size(); ++i) {
        const Kde &e = kd_.entry(std::int32_t(i));
        if (!e.valid)
            continue;
        if (e.schedulableAt > now)
            next = std::min(next, e.schedulableAt);
        if (e.nagei >= 0) {
            const AggGroup &g = agt_.group(e.nagei);
            if (g.fetchIssued && g.fetchReadyAt > now)
                next = std::min(next, g.fetchReadyAt);
        }
    }
    return next;
}

bool
SmxScheduler::idle() const
{
    return fcfs_.empty() && aggQueue_.empty() && retryQueue_.empty();
}

} // namespace dtbl
