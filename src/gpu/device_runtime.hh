/**
 * @file
 * Device runtime services: parameter-buffer allocation and the Table 3
 * latency model for the CDP / DTBL device API calls.
 */

#ifndef DTBL_GPU_DEVICE_RUNTIME_HH
#define DTBL_GPU_DEVICE_RUNTIME_HH

#include <unordered_map>

#include "common/config.hh"
#include "mem/global_memory.hh"
#include "stats/metrics.hh"

namespace dtbl {

class DeviceRuntime
{
  public:
    DeviceRuntime(const GpuConfig &cfg, GlobalMemory &mem, SimStats &stats);

    /**
     * cudaGetParameterBuffer: allocate a parameter buffer in global
     * memory and reserve its bytes in the pending-launch footprint.
     */
    Addr getParameterBuffer(std::uint32_t bytes);

    /**
     * Transfer ownership of a parameter buffer to a launch; returns its
     * size so the launch can release it once scheduled (0 if the address
     * is not a tracked parameter buffer).
     */
    std::uint32_t claimParamBytes(Addr addr);

    // --- Table 3 latency model (zero when modelLaunchLatency is off) --
    Cycle latGetParameterBuffer(unsigned callers) const;
    Cycle latLaunchDevice(unsigned callers) const;
    Cycle latStreamCreate() const;

  private:
    const GpuConfig &cfg_;
    GlobalMemory &mem_;
    SimStats &stats_;
    std::unordered_map<Addr, std::uint32_t> paramSizes_;
};

} // namespace dtbl

#endif // DTBL_GPU_DEVICE_RUNTIME_HH
