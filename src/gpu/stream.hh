/**
 * @file
 * Host-side software streams and their mapping onto hardware work queues.
 *
 * Kernels in one stream execute in launch order; kernels in different
 * streams may run concurrently. Streams map onto the fixed set of HWQs
 * (Hyper-Q); when more streams than HWQs exist they share queues and
 * serialize, as on real hardware (Section 2.2).
 */

#ifndef DTBL_GPU_STREAM_HH
#define DTBL_GPU_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dtbl {

class StreamTable
{
  public:
    explicit StreamTable(unsigned num_hwqs);

    /** Create a stream; returns its id. Stream 0 always exists. */
    std::int32_t create();

    /** HWQ a stream maps to (round-robin over HWQs). */
    unsigned hwqFor(std::int32_t stream) const;

    /** Outstanding-kernel bookkeeping (for per-stream sync). */
    void kernelLaunched(std::int32_t stream);
    void kernelCompleted(std::int32_t stream);
    std::uint32_t outstanding(std::int32_t stream) const;

    std::size_t numStreams() const { return outstanding_.size(); }

  private:
    unsigned numHwqs_;
    std::vector<std::uint32_t> outstanding_;
};

} // namespace dtbl

#endif // DTBL_GPU_STREAM_HH
