#include "gpu/smx.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/log.hh"
#include "gpu/gpu.hh"

namespace dtbl {
namespace {

std::uint32_t
aluCompute(const Instruction &inst, std::uint32_t a, std::uint32_t b,
           std::uint32_t c)
{
    const auto s = [](std::uint32_t v) { return std::int32_t(v); };
    const auto f = [](std::uint32_t v) { return std::bit_cast<float>(v); };
    const auto fu = [](float v) { return std::bit_cast<std::uint32_t>(v); };

    switch (inst.op) {
      case Opcode::Mov:
        return a;
      case Opcode::Add:
        return inst.type == DataType::F32 ? fu(f(a) + f(b)) : a + b;
      case Opcode::Sub:
        return inst.type == DataType::F32 ? fu(f(a) - f(b)) : a - b;
      case Opcode::Mul:
        return inst.type == DataType::F32 ? fu(f(a) * f(b)) : a * b;
      case Opcode::Mad:
        return inst.type == DataType::F32 ? fu(f(a) * f(b) + f(c))
                                          : a * b + c;
      case Opcode::Div:
        if (inst.type == DataType::F32)
            return fu(f(a) / f(b));
        if (b == 0)
            return 0xffffffffu; // PTX-like: integer div by zero saturates
        return inst.type == DataType::S32
                   ? std::uint32_t(s(a) / s(b))
                   : a / b;
      case Opcode::Rem:
        if (b == 0)
            return a;
        return inst.type == DataType::S32
                   ? std::uint32_t(s(a) % s(b))
                   : a % b;
      case Opcode::Min:
        switch (inst.type) {
          case DataType::F32: return fu(std::min(f(a), f(b)));
          case DataType::S32: return std::uint32_t(std::min(s(a), s(b)));
          case DataType::U32: return std::min(a, b);
        }
        break;
      case Opcode::Max:
        switch (inst.type) {
          case DataType::F32: return fu(std::max(f(a), f(b)));
          case DataType::S32: return std::uint32_t(std::max(s(a), s(b)));
          case DataType::U32: return std::max(a, b);
        }
        break;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Not: return ~a;
      case Opcode::Shl: return b >= 32 ? 0 : a << b;
      case Opcode::Shr:
        if (inst.type == DataType::S32)
            return b >= 32 ? std::uint32_t(s(a) >> 31)
                           : std::uint32_t(s(a) >> b);
        return b >= 32 ? 0 : a >> b;
      case Opcode::CvtF2I:
        return std::uint32_t(std::int32_t(f(a)));
      case Opcode::CvtI2F:
        return fu(float(s(a)));
      default:
        break;
    }
    DTBL_PANIC("aluCompute on non-ALU opcode");
}

bool
compare(CmpOp cmp, DataType t, std::uint32_t a, std::uint32_t b)
{
    const auto docmp = [&](auto x, auto y) {
        switch (cmp) {
          case CmpOp::Eq: return x == y;
          case CmpOp::Ne: return x != y;
          case CmpOp::Lt: return x < y;
          case CmpOp::Le: return x <= y;
          case CmpOp::Gt: return x > y;
          case CmpOp::Ge: return x >= y;
        }
        return false;
    };
    switch (t) {
      case DataType::U32: return docmp(a, b);
      case DataType::S32: return docmp(std::int32_t(a), std::int32_t(b));
      case DataType::F32:
        return docmp(std::bit_cast<float>(a), std::bit_cast<float>(b));
    }
    return false;
}

} // namespace

Smx::Smx(unsigned id, Gpu &gpu)
    : id_(id), gpu_(gpu), cfg_(gpu.config()),
      coalescer_(gpu.config().l1.lineBytes),
      warps_(gpu.config().maxResidentWarpsPerSmx),
      lastIssued_(gpu.config().warpSchedulersPerSmx, -1),
      freeTbSlots_(gpu.config().maxResidentTbPerSmx),
      freeThreads_(gpu.config().maxResidentThreadsPerSmx),
      freeRegs_(gpu.config().regsPerSmx),
      freeSmem_(gpu.config().sharedMemPerSmx),
      issuedThisTick_(warps_.size(), 0),
      kernelStall_(gpu.program().size() + 1)
{
    Pmu &pmu = gpu.pmu();
    const std::string prefix = "smx" + std::to_string(id);
    pmu.probe(prefix + ".resident_warps", PmuUnit::Smx,
              [this] { return std::uint64_t(residentWarps_); },
              std::int32_t(id));
    for (std::size_t r = 0; r < kNumStallReasons; ++r) {
        pmu.probe(prefix + ".slot." + stallReasonName(StallReason(r)),
                  PmuUnit::Smx, [this, r] { return stallSlotCycles_[r]; },
                  std::int32_t(id));
    }
}

bool
Smx::canAccept(const KernelFunction &fn, std::uint32_t dyn_smem_bytes) const
{
    const unsigned threads = unsigned(fn.tbDim.count());
    const unsigned numWarps = (threads + warpSize - 1) / warpSize;
    const unsigned hwThreads = numWarps * warpSize;
    const unsigned regs = hwThreads * fn.numRegs;
    const std::uint32_t smem = fn.sharedMemBytes + dyn_smem_bytes;
    if (freeTbSlots_ == 0 || freeThreads_ < hwThreads || freeRegs_ < regs ||
        freeSmem_ < smem) {
        return false;
    }
    // Need numWarps contiguous-free warp slots (any slots suffice).
    unsigned freeSlots = 0;
    for (const auto &w : warps_) {
        if (!w)
            ++freeSlots;
    }
    return freeSlots >= numWarps;
}

void
Smx::startTb(const TbAssignment &asg, Cycle now)
{
#if DTBL_PMU_ENABLED
    if (gpu_.pmu().collecting())
        gpu_.pmuNoteTbStart(asg.func);
#endif
    const KernelFunction &fn = gpu_.function(asg.func);
    auto tb = std::make_unique<ThreadBlock>();
    tb->asg = asg;
    tb->ctaId = unflatten(asg.blkFlat, asg.gridDim);
    tb->numThreads = unsigned(fn.tbDim.count());
    tb->numWarps = (tb->numThreads + warpSize - 1) / warpSize;
    tb->sharedMem.assign(fn.sharedMemBytes + asg.sharedMemBytes, 0);

    const unsigned hwThreads = tb->numWarps * warpSize;
    tb->threadsUsed = hwThreads;
    tb->regsUsed = hwThreads * fn.numRegs;
    tb->smemUsed = fn.sharedMemBytes + asg.sharedMemBytes;

    DTBL_ASSERT(freeTbSlots_ > 0 && freeThreads_ >= hwThreads &&
                    freeRegs_ >= tb->regsUsed && freeSmem_ >= tb->smemUsed,
                "startTb without resources on SMX ", id_);
    --freeTbSlots_;
    freeThreads_ -= hwThreads;
    freeRegs_ -= tb->regsUsed;
    freeSmem_ -= tb->smemUsed;

    ThreadBlock *tbp = tb.get();
    for (unsigned w = 0; w < tb->numWarps; ++w) {
        // Find a free warp slot.
        unsigned slot = 0;
        while (slot < warps_.size() && warps_[slot])
            ++slot;
        DTBL_ASSERT(slot < warps_.size(), "no free warp slot");
        warps_[slot] = std::make_unique<Warp>(tbp, &fn, w, slot,
                                              nextAgeStamp_++);
        warps_[slot]->readyCycle = now + 1;
        gpu_.ledger().bindWarpSlot(id_, slot, asg.func);
        tbp->warpSlots.push_back(slot);
        ++residentWarps_;
    }
    tbs_.push_back(std::move(tb));
}

Warp *
Smx::pickWarp(unsigned sched, Cycle now)
{
    const unsigned nsched = cfg_.warpSchedulersPerSmx;
    const auto ready = [&](const std::unique_ptr<Warp> &w) {
        return w && !w->finished && !w->atBarrier && w->readyCycle <= now;
    };

    // Greedy: stick with the last-issued warp while it remains ready.
    const std::int32_t last = lastIssued_[sched];
    if (last >= 0 && ready(warps_[last]))
        return warps_[last].get();

    // Then oldest: smallest age stamp among this scheduler's warps.
    Warp *best = nullptr;
    for (unsigned slot = sched; slot < warps_.size(); slot += nsched) {
        if (!ready(warps_[slot]))
            continue;
        if (!best || warps_[slot]->ageStamp() < best->ageStamp())
            best = warps_[slot].get();
    }
    if (best)
        lastIssued_[sched] = std::int32_t(best->slot());
    return best;
}

unsigned
Smx::tick(Cycle now)
{
#if DTBL_PMU_ENABLED
    const bool prof = gpu_.pmu().collecting();
    if (prof && residentWarps_ == 0) {
        stallSlotCycles_[std::size_t(StallReason::IdleNoWarp)] +=
            warps_.size();
        kernelStall_.back()[std::size_t(StallReason::IdleNoWarp)] +=
            warps_.size();
        return 0;
    }
    if (prof) {
        std::fill(issuedThisTick_.begin(), issuedThisTick_.end(),
                  std::uint8_t(0));
    }
#endif
    if (residentWarps_ == 0)
        return 0;
    unsigned issued = 0;
    for (unsigned sched = 0; sched < cfg_.warpSchedulersPerSmx; ++sched) {
        if (Warp *w = pickWarp(sched, now)) {
#if DTBL_PMU_ENABLED
            // Record by slot, not pointer: issue() may retire the warp.
            if (prof)
                issuedThisTick_[w->slot()] = 1;
#endif
            issue(*w, now);
            ++issued;
        }
    }
#if DTBL_PMU_ENABLED
    if (prof)
        accountStallSlots(now, 1, true);
#endif
    return issued;
}

void
Smx::accountStallSlots(Cycle now, std::uint64_t n, bool ticked)
{
    for (std::size_t slot = 0; slot < warps_.size(); ++slot) {
        const Warp *w = warps_[slot].get();
        StallReason r;
        if (ticked && issuedThisTick_[slot])
            r = StallReason::Issued; // counts warps that retired mid-tick
        else if (!w)
            r = StallReason::IdleNoWarp;
        else if (w->atBarrier)
            r = StallReason::Barrier;
        else if (w->readyCycle > now)
            r = w->stallClass;
        else
            r = StallReason::NoInstruction; // ready but not selected
        stallSlotCycles_[std::size_t(r)] += n;

        // Attribute the slot-cycles to the kernel holding the slot. An
        // Issued slot whose warp retired mid-tick is charged to the
        // kernel that last held it (sticky ledger binding); slots no
        // kernel occupies land in the idle bucket (last row).
        std::size_t k = kernelStall_.size() - 1;
        if (r != StallReason::IdleNoWarp) {
            const KernelFuncId f =
                w ? w->tb()->asg.func
                  : gpu_.ledger().slotLastFunc(id_, unsigned(slot));
            if (f != invalidKernelFunc)
                k = f;
        }
        kernelStall_[k][std::size_t(r)] += n;
    }
}

void
Smx::accountSkippedCycles(Cycle now, std::uint64_t n)
{
    accountStallSlots(now, n, false);
}

Cycle
Smx::earliestReady() const
{
    Cycle next = infiniteCycle;
    for (const auto &w : warps_) {
        if (w && !w->finished && !w->atBarrier)
            next = std::min(next, w->readyCycle);
    }
    return next;
}

std::uint32_t
Smx::readOperand(const Warp &w, const Operand &op, unsigned lane) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return w.readReg(op.value, lane);
      case Operand::Kind::Imm:
        return op.value;
      case Operand::Kind::Special:
        return w.sreg(SReg(op.value), lane);
      case Operand::Kind::None:
        return 0;
    }
    return 0;
}

void
Smx::issue(Warp &w, Cycle now)
{
    StackEntry &t = w.top();
    const Instruction &inst = w.fn()->code[t.pc];
    const ActiveMask active = t.mask & ~w.exitedMask();
    DTBL_ASSERT(active != 0, "issuing a warp with no live lanes");

    ActiveMask exec = active;
    if (inst.pred >= 0) {
        const ActiveMask pm = w.predMask(unsigned(inst.pred));
        exec &= inst.predSense ? pm : ~pm;
    }

    SimStats &stats = gpu_.stats();
    ++stats.warpInstrsIssued;
    stats.activeLaneSum += std::popcount(exec);

#if DTBL_PMU_ENABLED
    if (gpu_.pmu().collecting())
        gpu_.pmuNoteIssue(w.tb()->asg.func);
#endif

#if DTBL_CHECK_ENABLED
    if (Sanitizer *san = gpu_.sanitizer())
        san->onIssue(w, inst, t.pc, exec, active);
#endif

    switch (inst.op) {
      case Opcode::Bra:
        execBranch(w, inst, exec, active);
        w.readyCycle = now + cfg_.aluLatency;
        w.stallClass = StallReason::Reconvergence;
        break;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Atom:
        execMemory(w, inst, exec, now);
        t.pc += 1;
        break;
      case Opcode::Bar:
        t.pc += 1;
        execBarrier(w, now);
        break;
      case Opcode::Exit:
        execExit(w, exec);
        t.pc += 1;
        w.readyCycle = now + 1;
        w.stallClass = StallReason::PipelineBusy;
        break;
      case Opcode::GetPBuf:
      case Opcode::StreamCreate:
      case Opcode::LaunchDevice:
      case Opcode::LaunchAgg:
        execLaunch(w, inst, exec, now);
        t.pc += 1;
        break;
      case Opcode::Nop:
        t.pc += 1;
        w.readyCycle = now + cfg_.aluLatency;
        w.stallClass = StallReason::PipelineBusy;
        break;
      default:
        execAlu(w, inst, exec, now);
        t.pc += 1;
        break;
    }

    w.cleanupStack();
    if (w.finished)
        finishWarp(w, now);
}

void
Smx::execAlu(Warp &w, const Instruction &inst, ActiveMask exec, Cycle now)
{
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(exec & (1u << lane)))
            continue;
        const std::uint32_t a = readOperand(w, inst.src[0], lane);
        const std::uint32_t b = readOperand(w, inst.src[1], lane);
        switch (inst.op) {
          case Opcode::Setp:
            w.writePred(unsigned(inst.pdst), lane,
                        compare(inst.cmp, inst.type, a, b));
            break;
          case Opcode::Selp: {
            const bool p = w.readPred(inst.src[2].value, lane);
            w.writeReg(unsigned(inst.dst), lane, p ? a : b);
            break;
          }
          default: {
            const std::uint32_t c = readOperand(w, inst.src[2], lane);
            w.writeReg(unsigned(inst.dst), lane,
                       aluCompute(inst, a, b, c));
            break;
          }
        }
    }
    const bool heavy = inst.op == Opcode::Div || inst.op == Opcode::Rem;
    w.readyCycle = now + (heavy ? cfg_.sfuLatency : cfg_.aluLatency);
    w.stallClass = StallReason::PipelineBusy;
}

void
Smx::execMemory(Warp &w, const Instruction &inst, ActiveMask exec,
                Cycle now)
{
    GlobalMemory &mem = gpu_.mem();
    ThreadBlock &tb = *w.tb();

    std::array<Addr, warpSize> addrs{};
    for (unsigned lane = 0; lane < warpSize; ++lane) {
        if (!(exec & (1u << lane)))
            continue;
        addrs[lane] = Addr(readOperand(w, inst.src[0], lane)) +
                      Addr(std::int64_t(inst.memOffset));
    }

    if (exec == 0) {
        w.readyCycle = now + cfg_.aluLatency;
        w.stallClass = StallReason::PipelineBusy;
        return;
    }

#if DTBL_CHECK_ENABLED
    if (Sanitizer *san = gpu_.sanitizer())
        san->onMemory(w, inst, w.top().pc, addrs, exec);
#endif

    switch (inst.space) {
      case MemSpace::Param: {
        // Parameter buffers live in global memory but are served by a
        // constant-cache-like path with L1-hit latency.
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const Addr a = tb.asg.paramAddr + addrs[lane];
            if (inst.op == Opcode::Ld) {
                w.writeReg(unsigned(inst.dst), lane,
                           mem.read(a, inst.width));
            } else {
                DTBL_PANIC("stores to parameter space are not allowed");
            }
        }
        w.readyCycle = now + cfg_.l1.hitLatency;
        w.stallClass = StallReason::DataHazard;
        return;
      }
      case MemSpace::Shared: {
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const Addr a = addrs[lane];
            DTBL_ASSERT(a + inst.width <= tb.sharedMem.size(),
                        "shared-memory access out of bounds in ",
                        w.fn()->name, " addr=", a, " size=",
                        tb.sharedMem.size());
            if (inst.op == Opcode::Ld) {
                std::uint32_t v = 0;
                std::memcpy(&v, &tb.sharedMem[a], inst.width);
                w.writeReg(unsigned(inst.dst), lane, v);
            } else if (inst.op == Opcode::St) {
                const std::uint32_t v = readOperand(w, inst.src[1], lane);
                std::memcpy(&tb.sharedMem[a], &v, inst.width);
            } else {
                DTBL_PANIC("shared-memory atomics not modelled");
            }
        }
        w.readyCycle = now + cfg_.sharedMemLatency;
        w.stallClass = StallReason::DataHazard;
        return;
      }
      case MemSpace::Global:
        break;
    }

    // Global memory: functional at issue + coalesced timing.
    if (inst.op == Opcode::Ld) {
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (exec & (1u << lane)) {
                w.writeReg(unsigned(inst.dst), lane,
                           mem.read(addrs[lane], inst.width));
            }
        }
        Cycle done = now;
        for (Addr seg : coalescer_.coalesce(addrs, exec, inst.width))
            done = std::max(done, gpu_.memSys().load(id_, seg, now));
        w.readyCycle = done;
        w.stallClass = StallReason::MemoryPending;
    } else if (inst.op == Opcode::St) {
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (exec & (1u << lane)) {
                mem.write(addrs[lane],
                          readOperand(w, inst.src[1], lane), inst.width);
            }
        }
        Cycle accept = now;
        for (Addr seg : coalescer_.coalesce(addrs, exec, inst.width))
            accept = std::max(accept, gpu_.memSys().store(id_, seg, now));
        // Stores retire through the write queue without stalling —
        // unless the contention model delays write-buffer acceptance
        // (L2 bank-port queuing), which back-pressures the warp.
        if (cfg_.modelMemContention && accept > now + cfg_.aluLatency) {
            w.readyCycle = accept;
            w.stallClass = StallReason::MemoryPending;
        } else {
            w.readyCycle = now + cfg_.aluLatency;
            w.stallClass = StallReason::PipelineBusy;
        }
    } else { // Atom
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const Addr a = addrs[lane];
            const std::uint32_t v = readOperand(w, inst.src[1], lane);
            const std::uint32_t old = mem.read32(a);
            std::uint32_t next = old;
            switch (inst.atom) {
              case AtomOp::Add:
                next = inst.type == DataType::F32
                           ? std::bit_cast<std::uint32_t>(
                                 std::bit_cast<float>(old) +
                                 std::bit_cast<float>(v))
                           : old + v;
                break;
              case AtomOp::Min:
                next = inst.type == DataType::S32
                           ? std::uint32_t(std::min(std::int32_t(old),
                                                    std::int32_t(v)))
                           : std::min(old, v);
                break;
              case AtomOp::Max:
                next = inst.type == DataType::S32
                           ? std::uint32_t(std::max(std::int32_t(old),
                                                    std::int32_t(v)))
                           : std::max(old, v);
                break;
              case AtomOp::Cas: {
                const std::uint32_t cmp =
                    readOperand(w, inst.src[2], lane);
                next = old == cmp ? v : old;
                break;
              }
              case AtomOp::Exch:
                next = v;
                break;
              case AtomOp::Or:
                next = old | v;
                break;
              case AtomOp::And:
                next = old & v;
                break;
            }
            mem.write32(a, next);
            if (inst.dst >= 0)
                w.writeReg(unsigned(inst.dst), lane, old);
        }
        Cycle done = now + cfg_.atomicLatency;
        for (Addr seg : coalescer_.coalesce(addrs, exec, inst.width))
            done = std::max(done, gpu_.memSys().atomic(id_, seg, now));
        w.readyCycle = done;
        w.stallClass = StallReason::MemoryPending;
    }
}

void
Smx::execBranch(Warp &w, const Instruction &inst, ActiveMask exec,
                ActiveMask active)
{
    StackEntry &t = w.top();
    const ActiveMask taken = exec;
    const ActiveMask fall = active & ~exec;
    if (taken == 0) {
        t.pc += 1;
    } else if (fall == 0) {
        t.pc = inst.target;
    } else {
        w.diverge(inst.reconv, taken, inst.target, fall, t.pc + 1);
    }
}

void
Smx::execBarrier(Warp &w, Cycle now)
{
    ThreadBlock &tb = *w.tb();
    w.atBarrier = true;
    ++tb.warpsAtBarrier;
    if (tb.warpsAtBarrier == tb.numWarps - tb.warpsFinished)
        releaseBarrier(tb, now);
}

void
Smx::releaseBarrier(ThreadBlock &tb, Cycle now)
{
#if DTBL_CHECK_ENABLED
    if (Sanitizer *san = gpu_.sanitizer())
        san->onBarrierRelease(tb);
#endif
    tb.warpsAtBarrier = 0;
    for (unsigned slot : tb.warpSlots) {
        Warp *w = warps_[slot].get();
        if (w && w->atBarrier) {
            w->atBarrier = false;
            w->readyCycle = now + 1;
            w->stallClass = StallReason::Barrier;
        }
    }
}

void
Smx::execExit(Warp &w, ActiveMask exec)
{
    w.exitLanes(exec);
}

void
Smx::execLaunch(Warp &w, const Instruction &inst, ActiveMask exec,
                Cycle now)
{
    DeviceRuntime &rt = gpu_.runtime();
    const unsigned callers = std::popcount(exec);
    const GpuConfig &cfg = cfg_;

    switch (inst.op) {
      case Opcode::GetPBuf: {
        const std::uint32_t bytes = inst.src[0].value;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (exec & (1u << lane)) {
                w.writeReg(unsigned(inst.dst), lane,
                           std::uint32_t(rt.getParameterBuffer(bytes)));
            }
        }
        w.readyCycle =
            now + std::max<Cycle>(1, rt.latGetParameterBuffer(callers));
        w.stallClass = StallReason::LaunchPending;
        return;
      }
      case Opcode::StreamCreate:
        w.readyCycle =
            now + std::max<Cycle>(1, callers ? rt.latStreamCreate() : 1);
        w.stallClass = StallReason::LaunchPending;
        return;
      case Opcode::LaunchDevice: {
        const Cycle lat = rt.latLaunchDevice(callers);
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const std::uint32_t numTbs =
                readOperand(w, inst.launch.numTbs, lane);
            if (numTbs == 0)
                continue;
            const Addr param = readOperand(w, inst.launch.paramAddr, lane);
            const std::uint32_t paramBytes = rt.claimParamBytes(param);
            gpu_.stats().reserveLaunchBytes(cfg.cdpKernelRecordBytes);
            gpu_.deviceLaunchKernel(
                inst.launch.func, numTbs, param,
                inst.launch.sharedMemBytes, now + std::max<Cycle>(1, lat),
                now, paramBytes + cfg.cdpKernelRecordBytes);
        }
        w.readyCycle = now + std::max<Cycle>(1, lat);
        w.stallClass = StallReason::LaunchPending;
        return;
      }
      case Opcode::LaunchAgg: {
        std::vector<AggLaunchRequest> reqs;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            if (!(exec & (1u << lane)))
                continue;
            const std::uint32_t numTbs =
                readOperand(w, inst.launch.numTbs, lane);
            if (numTbs == 0)
                continue;
            const Addr param = readOperand(w, inst.launch.paramAddr, lane);
            const std::uint32_t paramBytes = rt.claimParamBytes(param);
            gpu_.stats().reserveLaunchBytes(cfg.aggGroupRecordBytes);
            AggLaunchRequest r;
            r.func = inst.launch.func;
            r.numTbs = numTbs;
            r.paramAddr = param;
            r.sharedMemBytes = inst.launch.sharedMemBytes;
            // Device-wide hardware thread index: distinct SMXs must map
            // to distinct AGT slots or the spill rate saturates at the
            // cross-SMX collision rate independent of the table size.
            r.hwTid = id_ * cfg.maxResidentThreadsPerSmx +
                      w.slot() * warpSize + lane;
            r.launchCycle = now;
            r.footprintBytes = paramBytes + cfg.aggGroupRecordBytes;
            reqs.push_back(r);
        }
        const Cycle lat =
            reqs.empty() ? 1
                         : gpu_.dtblScheduler().launchLatency(
                               unsigned(reqs.size()));
        if (!reqs.empty()) {
            gpu_.submitAggLaunches(std::move(reqs),
                                   now + std::max<Cycle>(1, lat));
        }
        w.readyCycle = now + std::max<Cycle>(1, lat);
        w.stallClass = StallReason::LaunchPending;
        return;
      }
      default:
        DTBL_PANIC("execLaunch on non-launch opcode");
    }
}

void
Smx::finishWarp(Warp &w, Cycle now)
{
    ThreadBlock &tb = *w.tb();
    const unsigned slot = w.slot();
#if DTBL_CHECK_ENABLED
    // Shadow state is keyed by address; drop it before the slot can be
    // reused by a new warp at the same address.
    if (Sanitizer *san = gpu_.sanitizer())
        san->onWarpFinish(w);
#endif
    for (auto &li : lastIssued_) {
        if (li == std::int32_t(slot))
            li = -1;
    }
    ++tb.warpsFinished;
    --residentWarps_;
    warps_[slot].reset(); // destroys w; do not touch it afterwards
    gpu_.ledger().unbindWarpSlot(id_, slot);

    if (tb.finished()) {
        finishTb(tb, now);
    } else if (tb.warpsAtBarrier > 0 &&
               tb.warpsAtBarrier == tb.numWarps - tb.warpsFinished) {
        releaseBarrier(tb, now);
    }
}

void
Smx::finishTb(ThreadBlock &tb, Cycle now)
{
#if DTBL_CHECK_ENABLED
    if (Sanitizer *san = gpu_.sanitizer())
        san->onTbFinish(tb);
#endif
    ++freeTbSlots_;
    freeThreads_ += tb.threadsUsed;
    freeRegs_ += tb.regsUsed;
    freeSmem_ += tb.smemUsed;
    const TbAssignment asg = tb.asg;
    auto it = std::find_if(tbs_.begin(), tbs_.end(),
                           [&](const auto &p) { return p.get() == &tb; });
    DTBL_ASSERT(it != tbs_.end(), "finishing unknown TB");
    tbs_.erase(it);
    gpu_.trace().record(now, TraceEvent::TbRetire, traceLaneSmxBase + id_,
                        std::uint64_t(std::int64_t(asg.agei)), asg.blkFlat);
    gpu_.notifyTbComplete(asg, now);
}

} // namespace dtbl
