/**
 * @file
 * Resident thread-block state on an SMX, including the Thread Block
 * Control Register (TBCR) contents of the DTBL extension: KDEI, AGEI and
 * BLKID identify where the TB came from (native kernel or aggregated
 * group) so the SMX can locate its function entry and parameters.
 */

#ifndef DTBL_GPU_THREAD_BLOCK_HH
#define DTBL_GPU_THREAD_BLOCK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dtbl {

/** TB dispatch record: the TBCR values plus cached launch context. */
struct TbAssignment
{
    /** Kernel Distributor entry index (KDEI). */
    std::int32_t kdeIdx = -1;
    /** Aggregated group id (AGEI); -1 for a native TB. */
    std::int32_t agei = -1;
    /** Flat TB index within the kernel grid or aggregated group (BLKID). */
    std::uint64_t blkFlat = 0;

    KernelFuncId func = invalidKernelFunc;
    /** Grid extent the TB indexes into (kernel grid or group AggDim). */
    Dim3 gridDim{1, 1, 1};
    Addr paramAddr = 0;
    std::uint32_t sharedMemBytes = 0;
    bool isAggregated = false;
    /** SMX the TB was dispatched to; -1 before dispatch. */
    std::int32_t smx = -1;
};

/** A thread block resident on an SMX. */
struct ThreadBlock
{
    TbAssignment asg;
    Dim3 ctaId{0, 0, 0};

    unsigned numThreads = 0;
    unsigned numWarps = 0;
    unsigned warpsFinished = 0;
    /** Warps currently blocked at a barrier. */
    unsigned warpsAtBarrier = 0;
    /** SMX warp-slot indices owned by this TB. */
    std::vector<unsigned> warpSlots;

    /** Functional backing for the TB's shared-memory segment. */
    std::vector<std::uint8_t> sharedMem;

    // Resources to return on completion.
    unsigned regsUsed = 0;
    unsigned threadsUsed = 0;
    std::uint32_t smemUsed = 0;

    bool
    finished() const
    {
        return warpsFinished == numWarps;
    }
};

} // namespace dtbl

#endif // DTBL_GPU_THREAD_BLOCK_HH
