#include "gpu/kernel_distributor.hh"

#include "common/log.hh"
#include "core/agt.hh"

namespace dtbl {

KernelDistributor::KernelDistributor(const GpuConfig &cfg, TraceSink *trace)
    : entries_(cfg.maxConcurrentKernels), trace_(trace)
{
}

std::int32_t
KernelDistributor::allocate(const KernelLaunch &launch, std::int32_t hwq,
                            Cycle now, Cycle dispatch_latency)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Kde &e = entries_[i];
        if (e.valid)
            continue;
        e = Kde{};
        e.valid = true;
        e.func = launch.func;
        e.grid = launch.grid;
        e.paramAddr = launch.paramAddr;
        e.sharedMemBytes = launch.sharedMemBytes;
        e.totalNativeTbs = launch.grid.count();
        e.hwq = hwq;
        e.stream = launch.stream;
        e.deviceLaunched = launch.deviceLaunched;
        e.launchCycle = launch.launchCycle;
        e.schedulableAt = now + dispatch_latency;
        e.trackWaitingTime = launch.trackWaitingTime;
        e.footprintBytes = launch.footprintBytes;
        TraceSink::emit(trace_, now, TraceEvent::KdeAlloc, traceLaneKd, i,
                        launch.func);
        return std::int32_t(i);
    }
    return -1;
}

void
KernelDistributor::release(std::int32_t idx)
{
    Kde &e = entry(idx);
    DTBL_ASSERT(e.complete(), "releasing incomplete KDE ", idx);
    e.valid = false;
}

Kde &
KernelDistributor::entry(std::int32_t idx)
{
    DTBL_ASSERT(idx >= 0 && std::size_t(idx) < entries_.size(),
                "bad KDE index ", idx);
    return entries_[idx];
}

const Kde &
KernelDistributor::entry(std::int32_t idx) const
{
    DTBL_ASSERT(idx >= 0 && std::size_t(idx) < entries_.size(),
                "bad KDE index ", idx);
    return entries_[idx];
}

bool
KernelDistributor::hasFreeEntry() const
{
    for (const auto &e : entries_) {
        if (!e.valid)
            return true;
    }
    return false;
}

bool
KernelDistributor::empty() const
{
    for (const auto &e : entries_) {
        if (e.valid)
            return false;
    }
    return true;
}

std::vector<CoalesceTarget>
KernelDistributor::coalesceTargets() const
{
    std::vector<CoalesceTarget> t(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        t[i].valid = entries_[i].valid;
        t[i].accepting = entries_[i].valid;
        t[i].func = entries_[i].func;
        t[i].sharedMemBytes = entries_[i].sharedMemBytes;
    }
    return t;
}

bool
KernelDistributor::linkAggGroup(std::int32_t kde_idx, std::int32_t agei,
                                Agt &agt)
{
    Kde &e = entry(kde_idx);
    DTBL_ASSERT(e.valid, "coalescing to an invalid KDE");

    // Chain behind the current tail (Next field of the AGE).
    if (e.lagei >= 0)
        agt.group(e.lagei).next = agei;
    e.lagei = agei;
    ++e.pendingAggGroups;
    ++e.liveAggGroups;

    bool needMark = false;
    if (!e.fcfsMarked) {
        // Scenario 1: the kernel had all TBs scheduled and was unmarked
        // (or is brand-new); point NAGEI at the new group and re-mark.
        if (e.nagei < 0)
            e.nagei = agei;
        needMark = true;
    } else {
        // Scenario 2: still marked; NAGEI is updated only when this is
        // the first pending aggregated group for the kernel.
        if (e.nagei < 0)
            e.nagei = agei;
    }
    return needMark;
}

} // namespace dtbl
