#include "isa/kernel_builder.hh"

#include <algorithm>

namespace dtbl {

KernelBuilder::KernelBuilder(std::string name, Dim3 tb_dim,
                             std::uint32_t shared_mem_bytes,
                             std::uint32_t param_bytes)
{
    fn_.name = std::move(name);
    fn_.tbDim = tb_dim;
    fn_.sharedMemBytes = shared_mem_bytes;
    fn_.paramBytes = param_bytes;
}

Reg
KernelBuilder::reg()
{
    DTBL_ASSERT(nextReg_ < 256, "register budget exceeded in ", fn_.name);
    return Reg{nextReg_++};
}

Pred
KernelBuilder::pred()
{
    DTBL_ASSERT(nextPred_ < 64, "predicate budget exceeded in ", fn_.name);
    return Pred{nextPred_++};
}

Instruction
KernelBuilder::makeGuarded(Instruction inst)
{
    if (guardPred_ >= 0 && inst.pred < 0) {
        inst.pred = guardPred_;
        inst.predSense = guardSense_;
        guardPred_ = -1;
    }
    return inst;
}

std::size_t
KernelBuilder::emit(Instruction inst)
{
    DTBL_ASSERT(!built_, "builder reused after build(): ", fn_.name);
    fn_.code.push_back(makeGuarded(inst));
    return fn_.code.size() - 1;
}

void
KernelBuilder::setGuard(Pred p, bool sense)
{
    guardPred_ = std::int16_t(p.idx);
    guardSense_ = sense;
}

Reg
KernelBuilder::mov(Val v)
{
    Reg d = reg();
    movTo(d, v);
    return d;
}

void
KernelBuilder::movTo(Reg d, Val v)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = std::int16_t(d.idx);
    i.src[0] = v.op;
    emit(i);
}

Reg
KernelBuilder::binary(Opcode op, DataType t, Val a, Val b)
{
    Reg d = reg();
    binaryTo(d, op, t, a, b);
    return d;
}

void
KernelBuilder::binaryTo(Reg d, Opcode op, DataType t, Val a, Val b)
{
    Instruction i;
    i.op = op;
    i.type = t;
    i.dst = std::int16_t(d.idx);
    i.src[0] = a.op;
    i.src[1] = b.op;
    emit(i);
}

Reg KernelBuilder::add(Val a, Val b, DataType t)
{ return binary(Opcode::Add, t, a, b); }
Reg KernelBuilder::sub(Val a, Val b, DataType t)
{ return binary(Opcode::Sub, t, a, b); }
Reg KernelBuilder::mul(Val a, Val b, DataType t)
{ return binary(Opcode::Mul, t, a, b); }
Reg KernelBuilder::div(Val a, Val b, DataType t)
{ return binary(Opcode::Div, t, a, b); }
Reg KernelBuilder::rem(Val a, Val b, DataType t)
{ return binary(Opcode::Rem, t, a, b); }
Reg KernelBuilder::min(Val a, Val b, DataType t)
{ return binary(Opcode::Min, t, a, b); }
Reg KernelBuilder::max(Val a, Val b, DataType t)
{ return binary(Opcode::Max, t, a, b); }
Reg KernelBuilder::and_(Val a, Val b)
{ return binary(Opcode::And, DataType::U32, a, b); }
Reg KernelBuilder::or_(Val a, Val b)
{ return binary(Opcode::Or, DataType::U32, a, b); }
Reg KernelBuilder::xor_(Val a, Val b)
{ return binary(Opcode::Xor, DataType::U32, a, b); }
Reg KernelBuilder::shl(Val a, Val b)
{ return binary(Opcode::Shl, DataType::U32, a, b); }
Reg KernelBuilder::shr(Val a, Val b, DataType t)
{ return binary(Opcode::Shr, t, a, b); }

Reg
KernelBuilder::mad(Val a, Val b, Val c, DataType t)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::Mad;
    i.type = t;
    i.dst = std::int16_t(d.idx);
    i.src[0] = a.op;
    i.src[1] = b.op;
    i.src[2] = c.op;
    emit(i);
    return d;
}

Reg
KernelBuilder::cvtF2I(Val a)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::CvtF2I;
    i.dst = std::int16_t(d.idx);
    i.src[0] = a.op;
    emit(i);
    return d;
}

Reg
KernelBuilder::cvtI2F(Val a)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::CvtI2F;
    i.dst = std::int16_t(d.idx);
    i.src[0] = a.op;
    emit(i);
    return d;
}

Pred
KernelBuilder::setp(CmpOp cmp, DataType t, Val a, Val b)
{
    Pred p = pred();
    Instruction i;
    i.op = Opcode::Setp;
    i.cmp = cmp;
    i.type = t;
    i.pdst = std::int16_t(p.idx);
    i.src[0] = a.op;
    i.src[1] = b.op;
    emit(i);
    return p;
}

Reg
KernelBuilder::selp(Pred p, Val a, Val b)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::Selp;
    i.dst = std::int16_t(d.idx);
    i.src[0] = a.op;
    i.src[1] = b.op;
    i.src[2] = Operand::imm(p.idx);
    emit(i);
    return d;
}

Reg
KernelBuilder::ld(MemSpace space, Val addr, std::int32_t offset,
                  std::uint8_t width)
{
    Reg d = reg();
    ldTo(d, space, addr, offset, width);
    return d;
}

void
KernelBuilder::ldTo(Reg d, MemSpace space, Val addr, std::int32_t offset,
                    std::uint8_t width)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.space = space;
    i.width = width;
    i.dst = std::int16_t(d.idx);
    i.src[0] = addr.op;
    i.memOffset = offset;
    emit(i);
}

void
KernelBuilder::st(MemSpace space, Val addr, Val value, std::int32_t offset,
                  std::uint8_t width)
{
    Instruction i;
    i.op = Opcode::St;
    i.space = space;
    i.width = width;
    i.src[0] = addr.op;
    i.src[1] = value.op;
    i.memOffset = offset;
    emit(i);
}

Reg
KernelBuilder::ldParam(std::uint32_t byte_offset)
{
    fn_.paramBytes = std::max(fn_.paramBytes, byte_offset + 4);
    return ld(MemSpace::Param, Val(0u), std::int32_t(byte_offset));
}

Reg
KernelBuilder::atom(AtomOp op, DataType t, Val addr, Val value, Val compare)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::Atom;
    i.atom = op;
    i.type = t;
    i.space = MemSpace::Global;
    i.dst = std::int16_t(d.idx);
    i.src[0] = addr.op;
    i.src[1] = value.op;
    i.src[2] = compare.op;
    emit(i);
    return d;
}

void
KernelBuilder::bar()
{
    Instruction i;
    i.op = Opcode::Bar;
    emit(i);
}

void
KernelBuilder::exit()
{
    Instruction i;
    i.op = Opcode::Exit;
    emit(i);
}

void
KernelBuilder::exitIf(Pred p, bool sense)
{
    Instruction i;
    i.op = Opcode::Exit;
    i.pred = std::int16_t(p.idx);
    i.predSense = sense;
    emit(i);
}

void
KernelBuilder::if_(Pred p, const BodyFn &then_body, bool sense)
{
    Instruction br;
    br.op = Opcode::Bra;
    br.pred = std::int16_t(p.idx);
    br.predSense = !sense; // jump over the body when the condition fails
    const std::size_t bra = emit(br);
    then_body();
    const std::int32_t end = std::int32_t(pc());
    fn_.code[bra].target = end;
    fn_.code[bra].reconv = end;
}

void
KernelBuilder::ifElse(Pred p, const BodyFn &then_body,
                      const BodyFn &else_body, bool sense)
{
    Instruction br;
    br.op = Opcode::Bra;
    br.pred = std::int16_t(p.idx);
    br.predSense = !sense;
    const std::size_t bra = emit(br);
    then_body();
    Instruction jmp;
    jmp.op = Opcode::Bra;
    const std::size_t skipElse = emit(jmp);
    const std::int32_t elsePc = std::int32_t(pc());
    else_body();
    const std::int32_t end = std::int32_t(pc());
    fn_.code[bra].target = elsePc;
    fn_.code[bra].reconv = end;
    fn_.code[skipElse].target = end;
    fn_.code[skipElse].reconv = end;
}

void
KernelBuilder::whileLoop(const std::function<Pred()> &cond,
                         const BodyFn &body)
{
    loops_.push_back({});
    const std::int32_t head = std::int32_t(pc());
    Pred p = cond();
    Instruction br;
    br.op = Opcode::Bra;
    br.pred = std::int16_t(p.idx);
    br.predSense = false; // exit the loop when the condition fails
    const std::size_t exitBra = emit(br);
    body();
    Instruction back;
    back.op = Opcode::Bra;
    back.target = head;
    emit(back);
    const std::int32_t exitPc = std::int32_t(pc());
    fn_.code[exitBra].target = exitPc;
    fn_.code[exitBra].reconv = exitPc;
    for (std::size_t b : loops_.back().breakBranches) {
        fn_.code[b].target = exitPc;
        fn_.code[b].reconv = exitPc;
    }
    loops_.pop_back();
}

void
KernelBuilder::forRange(Val begin, Val end,
                        const std::function<void(Reg)> &body,
                        std::uint32_t step)
{
    Reg idx = mov(begin);
    Reg endR = mov(end);
    whileLoop(
        [&] { return setp(CmpOp::Lt, DataType::U32, idx, endR); },
        [&] {
            body(idx);
            binaryTo(idx, Opcode::Add, DataType::U32, idx, Val(step));
        });
}

void
KernelBuilder::breakIf(Pred p, bool sense)
{
    DTBL_ASSERT(!loops_.empty(), "breakIf outside of a loop in ", fn_.name);
    Instruction br;
    br.op = Opcode::Bra;
    br.pred = std::int16_t(p.idx);
    br.predSense = sense;
    loops_.back().breakBranches.push_back(emit(br));
}

Reg
KernelBuilder::getParameterBuffer(std::uint32_t bytes)
{
    Reg d = reg();
    Instruction i;
    i.op = Opcode::GetPBuf;
    i.dst = std::int16_t(d.idx);
    i.src[0] = Operand::imm(bytes);
    emit(i);
    return d;
}

void
KernelBuilder::streamCreate()
{
    Instruction i;
    i.op = Opcode::StreamCreate;
    emit(i);
}

void
KernelBuilder::launchDevice(KernelFuncId func, Val num_tbs, Reg param_addr,
                            std::uint32_t shared_mem)
{
    Instruction i;
    i.op = Opcode::LaunchDevice;
    i.launch.func = func;
    i.launch.numTbs = num_tbs.op;
    i.launch.paramAddr = Operand::reg(param_addr.idx);
    i.launch.sharedMemBytes = shared_mem;
    emit(i);
}

void
KernelBuilder::launchAggGroup(KernelFuncId func, Val num_tbs, Reg param_addr,
                              std::uint32_t shared_mem)
{
    Instruction i;
    i.op = Opcode::LaunchAgg;
    i.launch.func = func;
    i.launch.numTbs = num_tbs.op;
    i.launch.paramAddr = Operand::reg(param_addr.idx);
    i.launch.sharedMemBytes = shared_mem;
    emit(i);
}

Reg
KernelBuilder::globalThreadIdX()
{
    return mad(Val(SReg::CtaIdX), Val(SReg::NTidX), Val(SReg::TidX));
}

KernelFuncId
KernelBuilder::build(Program &program)
{
    DTBL_ASSERT(!built_, "double build of ", fn_.name);
    DTBL_ASSERT(loops_.empty(), "unclosed loop in ", fn_.name);
    // Guarantee termination for every lane.
    if (fn_.code.empty() || fn_.code.back().op != Opcode::Exit ||
        fn_.code.back().pred >= 0) {
        exit();
    }
    fn_.numRegs = nextReg_;
    fn_.numPreds = nextPred_;
    built_ = true;
    return program.add(std::move(fn_));
}

} // namespace dtbl
