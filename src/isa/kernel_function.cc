#include "isa/kernel_function.hh"

#include <sstream>

#include "analysis/verifier.hh"
#include "common/log.hh"

namespace dtbl {

std::string
KernelFunction::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name << " tb=" << tbDim.str()
       << " regs=" << numRegs << " preds=" << numPreds
       << " smem=" << sharedMemBytes << " params=" << paramBytes << "\n";
    for (std::size_t pc = 0; pc < code.size(); ++pc)
        os << "  " << pc << ": " << disasm(code[pc]) << "\n";
    return os.str();
}

KernelFuncId
Program::add(KernelFunction fn)
{
    fn.id = KernelFuncId(funcs_.size());
    // Verify before registering. The known-function space includes the
    // id being assigned so a kernel may launch itself (AMR-style
    // recursive refinement).
    const auto diags = verifyKernel(fn, funcs_.size() + 1);
    bool fatal = false;
    for (const Diagnostic &d : diags) {
        DTBL_WARN(fn.name, ": ", d.str());
        fatal = fatal || d.severity == Severity::Error;
    }
    if (fatal) {
        DTBL_FATAL("kernel '", fn.name, "' failed IR verification (",
                   diags.size(), " diagnostic(s); first: ",
                   diags.front().str(), ")");
    }
    funcs_.push_back(std::move(fn));
    return funcs_.back().id;
}

const KernelFunction &
Program::function(KernelFuncId id) const
{
    DTBL_ASSERT(id < funcs_.size(), "bad kernel function id ", id);
    return funcs_[id];
}

} // namespace dtbl
