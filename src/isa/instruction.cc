#include "isa/instruction.hh"

#include <bit>

namespace dtbl {

Operand
Operand::immF(float f)
{
    return {Kind::Imm, std::bit_cast<std::uint32_t>(f)};
}

} // namespace dtbl
