/**
 * @file
 * Compact SIMT instruction set executed by the simulated GPU.
 *
 * Applications are expressed in this IR (built with KernelBuilder); the
 * SMX model interprets it per-warp in lock step, which reproduces the
 * control-flow divergence, memory-coalescing and dynamic-launch behaviour
 * the paper measures. Register values are 32 bits; device addresses are
 * 32-bit (the simulated global memory is < 4GB).
 */

#ifndef DTBL_ISA_INSTRUCTION_HH
#define DTBL_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dtbl {

enum class Opcode : std::uint8_t
{
    Nop,
    Mov,       //!< dst = src0
    Add, Sub, Mul, Mad, Div, Rem, Min, Max,
    And, Or, Xor, Not, Shl, Shr,
    Setp,      //!< pdst = cmp(src0, src1)
    Selp,      //!< dst = pred ? src0 : src1
    CvtF2I, CvtI2F,
    Ld,        //!< dst = mem[src0 + imm offset]
    St,        //!< mem[src0 + imm offset] = src1
    Atom,      //!< dst = atomic(op, mem[src0], src1[, src2])
    Bra,       //!< (predicated) branch to target, reconverge at reconv
    Bar,       //!< thread-block barrier
    Exit,      //!< (predicated) thread exit
    // Device runtime (Section 2.4 / Section 4.1)
    GetPBuf,      //!< dst = cudaGetParameterBuffer(src0 = bytes)
    StreamCreate, //!< cudaStreamCreateWithFlags (CDP timing only)
    LaunchDevice, //!< CDP: launch device kernel
    LaunchAgg,    //!< DTBL: launch aggregated group
};

enum class DataType : std::uint8_t { U32, S32, F32 };

enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

enum class MemSpace : std::uint8_t
{
    Global,  //!< device global memory (32-bit byte address)
    Shared,  //!< per-thread-block scratch (byte offset within segment)
    Param,   //!< kernel/aggregated-group parameter buffer (byte offset)
};

enum class AtomOp : std::uint8_t { Add, Min, Max, Cas, Exch, Or, And };

/** Special (read-only) per-thread registers. */
enum class SReg : std::uint8_t
{
    TidX, TidY, TidZ,
    NTidX, NTidY, NTidZ,
    CtaIdX, CtaIdY, CtaIdZ,
    NCtaIdX, NCtaIdY, NCtaIdZ,
    LaneId,
    /** 1 when running inside an aggregated TB, else 0. */
    IsAggregated,
};

/** Instruction operand: register, immediate, or special register. */
struct Operand
{
    enum class Kind : std::uint8_t { None, Reg, Imm, Special };

    Kind kind = Kind::None;
    std::uint32_t value = 0; //!< reg index / raw imm bits / SReg value

    static Operand none() { return {}; }

    static Operand
    reg(std::uint16_t r)
    {
        return {Kind::Reg, r};
    }

    static Operand
    imm(std::uint32_t bits)
    {
        return {Kind::Imm, bits};
    }

    static Operand
    immF(float f);

    static Operand
    special(SReg s)
    {
        return {Kind::Special, std::uint32_t(s)};
    }

    bool isNone() const { return kind == Kind::None; }
};

/** Operands specific to the dynamic-launch opcodes. */
struct LaunchOperands
{
    /** Function to execute (and to coalesce with, for DTBL). */
    KernelFuncId func = invalidKernelFunc;
    /** Number of TBs in x (y = z = 1 for dynamic launches). */
    Operand numTbs;
    /** Register holding the parameter-buffer device address. */
    Operand paramAddr;
    /** Dynamic shared memory bytes. */
    std::uint32_t sharedMemBytes = 0;
};

/**
 * A single decoded instruction. All semantic fields are packed into one
 * POD so the interpreter needs no decode step.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    DataType type = DataType::U32;
    CmpOp cmp = CmpOp::Eq;
    MemSpace space = MemSpace::Global;
    AtomOp atom = AtomOp::Add;
    /** Memory access width in bytes (1, 2 or 4). */
    std::uint8_t width = 4;

    std::int16_t dst = -1;   //!< destination register (-1 = none)
    std::int16_t pdst = -1;  //!< destination predicate (Setp)
    Operand src[3];

    /** Guard predicate: execute lane iff pred(reg) == predSense. */
    std::int16_t pred = -1;
    bool predSense = true;

    std::int32_t target = -1; //!< branch target PC
    std::int32_t reconv = -1; //!< reconvergence PC for divergent branches
    /** Byte offset added to the address operand of Ld/St. */
    std::int32_t memOffset = 0;

    LaunchOperands launch;

    bool
    isLaunch() const
    {
        return op == Opcode::LaunchDevice || op == Opcode::LaunchAgg;
    }

    bool
    isMemory() const
    {
        return op == Opcode::Ld || op == Opcode::St || op == Opcode::Atom;
    }
};

/** Disassemble one instruction (debugging / tests). */
std::string disasm(const Instruction &inst);

} // namespace dtbl

#endif // DTBL_ISA_INSTRUCTION_HH
