#include <sstream>

#include "isa/instruction.hh"

namespace dtbl {
namespace {

const char *
opName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Mad: return "mad";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Setp: return "setp";
      case Opcode::Selp: return "selp";
      case Opcode::CvtF2I: return "cvt.f2i";
      case Opcode::CvtI2F: return "cvt.i2f";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Atom: return "atom";
      case Opcode::Bra: return "bra";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Exit: return "exit";
      case Opcode::GetPBuf: return "getpbuf";
      case Opcode::StreamCreate: return "stream.create";
      case Opcode::LaunchDevice: return "launch.device";
      case Opcode::LaunchAgg: return "launch.agg";
    }
    return "???";
}

const char *
typeName(DataType t)
{
    switch (t) {
      case DataType::U32: return "u32";
      case DataType::S32: return "s32";
      case DataType::F32: return "f32";
    }
    return "?";
}

const char *
cmpName(CmpOp c)
{
    switch (c) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    return "?";
}

const char *
spaceName(MemSpace s)
{
    switch (s) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Param: return "param";
    }
    return "?";
}

const char *
sregName(SReg s)
{
    switch (s) {
      case SReg::TidX: return "%tid.x";
      case SReg::TidY: return "%tid.y";
      case SReg::TidZ: return "%tid.z";
      case SReg::NTidX: return "%ntid.x";
      case SReg::NTidY: return "%ntid.y";
      case SReg::NTidZ: return "%ntid.z";
      case SReg::CtaIdX: return "%ctaid.x";
      case SReg::CtaIdY: return "%ctaid.y";
      case SReg::CtaIdZ: return "%ctaid.z";
      case SReg::NCtaIdX: return "%nctaid.x";
      case SReg::NCtaIdY: return "%nctaid.y";
      case SReg::NCtaIdZ: return "%nctaid.z";
      case SReg::LaneId: return "%laneid";
      case SReg::IsAggregated: return "%isagg";
    }
    return "%?";
}

void
printOperand(std::ostringstream &os, const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::None:
        os << "_";
        break;
      case Operand::Kind::Reg:
        os << "r" << o.value;
        break;
      case Operand::Kind::Imm:
        os << "#" << o.value;
        break;
      case Operand::Kind::Special:
        os << sregName(SReg(o.value));
        break;
    }
}

} // namespace

std::string
disasm(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.pred >= 0)
        os << "@" << (inst.predSense ? "" : "!") << "p" << inst.pred << " ";
    os << opName(inst.op);
    switch (inst.op) {
      case Opcode::Setp:
        os << "." << cmpName(inst.cmp) << "." << typeName(inst.type)
           << " p" << inst.pdst;
        break;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Atom:
        os << "." << spaceName(inst.space) << ".b" << int(inst.width) * 8;
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Mad: case Opcode::Div: case Opcode::Rem:
      case Opcode::Min: case Opcode::Max: case Opcode::Shr:
        os << "." << typeName(inst.type);
        break;
      default:
        break;
    }
    if (inst.dst >= 0)
        os << " r" << inst.dst;
    for (const auto &s : inst.src) {
        if (s.isNone())
            continue;
        os << " ";
        printOperand(os, s);
    }
    if (inst.op == Opcode::Bra) {
        os << " ->" << inst.target;
        if (inst.reconv >= 0)
            os << " (reconv " << inst.reconv << ")";
    }
    if (inst.isMemory() && inst.memOffset != 0)
        os << " +" << inst.memOffset;
    if (inst.isLaunch()) {
        os << " func=" << inst.launch.func << " ntbs=";
        printOperand(os, inst.launch.numTbs);
        os << " param=";
        printOperand(os, inst.launch.paramAddr);
    }
    return os.str();
}

} // namespace dtbl
