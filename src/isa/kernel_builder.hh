/**
 * @file
 * Structured builder for kernel IR.
 *
 * The builder only emits structured control flow (if / if-else / while /
 * for / break), annotating every potentially divergent branch with its
 * reconvergence PC. This makes the annotation equivalent to the immediate
 * post-dominator that a compiler (or GPGPU-Sim's PDOM analysis) would
 * compute, without needing a CFG analysis pass.
 */

#ifndef DTBL_ISA_KERNEL_BUILDER_HH
#define DTBL_ISA_KERNEL_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "isa/kernel_function.hh"

namespace dtbl {

/** Typed handle for a virtual register. */
struct Reg
{
    std::uint16_t idx = 0xffff;
    bool valid() const { return idx != 0xffff; }
};

/** Typed handle for a predicate register. */
struct Pred
{
    std::uint16_t idx = 0xffff;
};

/** Operand wrapper accepting Reg / immediate / special registers. */
struct Val
{
    Operand op;

    Val(Reg r) : op(Operand::reg(r.idx)) {}
    Val(SReg s) : op(Operand::special(s)) {}
    Val(std::uint32_t i) : op(Operand::imm(i)) {}
    Val(int i) : op(Operand::imm(std::uint32_t(i))) {}
    Val(float f) : op(Operand::immF(f)) {}
};

/**
 * Builds one KernelFunction. Typical use:
 *
 * @code
 *   KernelBuilder b("expand", Dim3{64});
 *   Reg tid = b.globalThreadIdX();
 *   Reg n = b.ldParam(0);
 *   Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, n);
 *   b.exitIf(oob);
 *   ...
 *   KernelFuncId id = b.build(program);
 * @endcode
 */
class KernelBuilder
{
  public:
    KernelBuilder(std::string name, Dim3 tb_dim,
                  std::uint32_t shared_mem_bytes = 0,
                  std::uint32_t param_bytes = 64);

    // --- resources ----------------------------------------------------
    Reg reg();
    Pred pred();

    // --- generic emit ---------------------------------------------------
    /** Emit a raw instruction; returns its PC. */
    std::size_t emit(Instruction inst);

    // --- moves & arithmetic --------------------------------------------
    Reg mov(Val v);
    void movTo(Reg d, Val v);
    Reg binary(Opcode op, DataType t, Val a, Val b);
    void binaryTo(Reg d, Opcode op, DataType t, Val a, Val b);
    Reg add(Val a, Val b, DataType t = DataType::U32);
    Reg sub(Val a, Val b, DataType t = DataType::U32);
    Reg mul(Val a, Val b, DataType t = DataType::U32);
    /** d = a * b + c. */
    Reg mad(Val a, Val b, Val c, DataType t = DataType::U32);
    Reg div(Val a, Val b, DataType t = DataType::U32);
    Reg rem(Val a, Val b, DataType t = DataType::U32);
    Reg min(Val a, Val b, DataType t = DataType::U32);
    Reg max(Val a, Val b, DataType t = DataType::U32);
    Reg and_(Val a, Val b);
    Reg or_(Val a, Val b);
    Reg xor_(Val a, Val b);
    Reg shl(Val a, Val b);
    Reg shr(Val a, Val b, DataType t = DataType::U32);
    Reg cvtF2I(Val a);
    Reg cvtI2F(Val a);

    // --- predicates -----------------------------------------------------
    Pred setp(CmpOp cmp, DataType t, Val a, Val b);
    Reg selp(Pred p, Val a, Val b);

    // --- memory -----------------------------------------------------------
    /** dst = space[addr + offset]; width in {1, 2, 4}. */
    Reg ld(MemSpace space, Val addr, std::int32_t offset = 0,
           std::uint8_t width = 4);
    void ldTo(Reg d, MemSpace space, Val addr, std::int32_t offset = 0,
              std::uint8_t width = 4);
    void st(MemSpace space, Val addr, Val value, std::int32_t offset = 0,
            std::uint8_t width = 4);
    /** Parameter-buffer load at a constant byte offset. */
    Reg ldParam(std::uint32_t byte_offset);
    /** dst = atomic op on global memory; returns the old value. */
    Reg atom(AtomOp op, DataType t, Val addr, Val value,
             Val compare = Val(0u));

    // --- synchronization ---------------------------------------------------
    void bar();

    // --- control flow --------------------------------------------------
    void exit();
    void exitIf(Pred p, bool sense = true);

    using BodyFn = std::function<void()>;

    /** if (p == sense) { then_body(); } */
    void if_(Pred p, const BodyFn &then_body, bool sense = true);
    /** if (p == sense) { then_body(); } else { else_body(); } */
    void ifElse(Pred p, const BodyFn &then_body, const BodyFn &else_body,
                bool sense = true);
    /**
     * while (cond() == true) { body(); }
     * cond must evaluate and return a predicate each iteration.
     */
    void whileLoop(const std::function<Pred()> &cond, const BodyFn &body);
    /**
     * for (idx = begin; idx < end; idx += step) { body(idx); }
     * idx is a fresh register; end/step evaluated before the loop.
     */
    void forRange(Val begin, Val end,
                  const std::function<void(Reg)> &body,
                  std::uint32_t step = 1);
    /** break out of the innermost whileLoop/forRange when p == sense. */
    void breakIf(Pred p, bool sense = true);

    // --- dynamic parallelism ---------------------------------------------
    /** dst = cudaGetParameterBuffer(bytes). */
    Reg getParameterBuffer(std::uint32_t bytes);
    /** CDP-only stream creation (timing effect only). */
    void streamCreate();
    /** CDP: cudaLaunchDevice(func, paramAddr, numTbs). */
    void launchDevice(KernelFuncId func, Val num_tbs, Reg param_addr,
                      std::uint32_t shared_mem = 0);
    /** DTBL: cudaLaunchAggGroup(func, paramAddr, numTbs). */
    void launchAggGroup(KernelFuncId func, Val num_tbs, Reg param_addr,
                        std::uint32_t shared_mem = 0);

    // --- convenience -------------------------------------------------------
    /** blockIdx.x * blockDim.x + threadIdx.x. */
    Reg globalThreadIdX();
    /** Guard predicate on the current instruction only. */
    void setGuard(Pred p, bool sense = true);

    /** Finalize and register the function; the builder must not be reused. */
    KernelFuncId build(Program &program);

    /** Number of instructions emitted so far (next PC). */
    std::size_t pc() const { return fn_.code.size(); }

  private:
    struct LoopCtx
    {
        std::vector<std::size_t> breakBranches; //!< to patch to exit PC
    };

    Instruction makeGuarded(Instruction inst);

    KernelFunction fn_;
    std::uint16_t nextReg_ = 0;
    std::uint16_t nextPred_ = 0;
    std::vector<LoopCtx> loops_;
    std::int16_t guardPred_ = -1;
    bool guardSense_ = true;
    bool built_ = false;
};

} // namespace dtbl

#endif // DTBL_ISA_KERNEL_BUILDER_HH
