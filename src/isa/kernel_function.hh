/**
 * @file
 * Kernel functions and the program registry.
 */

#ifndef DTBL_ISA_KERNEL_FUNCTION_HH
#define DTBL_ISA_KERNEL_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace dtbl {

/**
 * A compiled kernel function. The function id doubles as the "entry PC"
 * used for KDE eligibility matching (Section 4.2): two launches are
 * eligible for coalescing when they share the function id, TB shape and
 * shared-memory size.
 */
struct KernelFunction
{
    KernelFuncId id = invalidKernelFunc;
    std::string name;
    std::vector<Instruction> code;

    /** Static thread-block shape for this function. */
    Dim3 tbDim{32, 1, 1};
    /** Virtual 32-bit registers per thread. */
    std::uint32_t numRegs = 0;
    /** Predicate registers per thread. */
    std::uint32_t numPreds = 0;
    /** Static shared memory per TB. */
    std::uint32_t sharedMemBytes = 0;
    /** Parameter-buffer size (bytes). */
    std::uint32_t paramBytes = 0;

    /** Full disassembly (debugging / tests). */
    std::string disassemble() const;
};

/**
 * Registry of all kernel functions of one simulated application.
 * Owned by the host program; the GPU holds a const reference.
 */
class Program
{
  public:
    /** Register a function; assigns and returns its id. */
    KernelFuncId add(KernelFunction fn);

    const KernelFunction &function(KernelFuncId id) const;

    std::size_t size() const { return funcs_.size(); }

  private:
    std::vector<KernelFunction> funcs_;
};

} // namespace dtbl

#endif // DTBL_ISA_KERNEL_FUNCTION_HH
