/**
 * @file
 * Application framework for the benchmark suite of Table 4.
 *
 * Every application is implemented in three variants sharing data
 * structures and algorithms (Section 5.1):
 *  - Flat: nested parallelism serialized inside each thread,
 *  - CDP:  a device kernel launched for each sufficiently parallel DFP,
 *  - DTBL: an aggregated group launched instead of each device kernel.
 * CdpIdeal / DtblIdeal run the same binaries with zeroed launch
 * latencies (the paper's CDPI / DTBLI).
 */

#ifndef DTBL_APPS_APP_HH
#define DTBL_APPS_APP_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"

namespace dtbl {

enum class Mode
{
    Flat,
    Cdp,
    CdpIdeal,
    Dtbl,
    DtblIdeal,
};

/** Short display name ("Flat", "CDP", "CDPI", "DTBL", "DTBLI"). */
const char *modeName(Mode m);

/** True for CDP/CDPI/DTBL/DTBLI: the app spawns dynamic work. */
bool usesDynamicParallelism(Mode m);

/** True for DTBL/DTBLI. */
bool usesDtbl(Mode m);

/** True for CdpIdeal/DtblIdeal. */
bool isIdealMode(Mode m);

/** Apply the mode to a base config (zero launch latency for ideals). */
GpuConfig configForMode(Mode m, GpuConfig base);

/**
 * One benchmark instance (application + input data set).
 * Lifecycle: build(prog, mode) -> construct Gpu -> setup(gpu) ->
 * execute(gpu, mode) -> verify(gpu). A fresh instance per run.
 */
class App
{
  public:
    virtual ~App() = default;

    /** Benchmark id, e.g. "bfs_citation". */
    virtual std::string name() const = 0;

    /** Register the kernels this mode needs. */
    virtual void build(Program &prog, Mode mode) = 0;

    /** Generate inputs and upload device data. */
    virtual void setup(Gpu &gpu) = 0;

    /** Host driver: launch kernels and synchronize to completion. */
    virtual void execute(Gpu &gpu, Mode mode) = 0;

    /** Check device results against the CPU reference implementation. */
    virtual bool verify(Gpu &gpu) = 0;
};

/**
 * Helper shared by the nested applications: emit either a CDP device
 * kernel launch or a DTBL aggregated-group launch, preceded by the
 * parameter-buffer setup, mirroring Figure 3.
 *
 * @param fill writes the parameter words; receives the buffer register.
 */
void emitDynamicLaunch(KernelBuilder &b, Mode mode, KernelFuncId child,
                       Val num_tbs, std::uint32_t param_bytes,
                       const std::function<void(Reg)> &fill);

} // namespace dtbl

#endif // DTBL_APPS_APP_HH
