#include "apps/registry.hh"

#include "apps/amr.hh"
#include "apps/bfs.hh"
#include "apps/bht.hh"
#include "apps/clr.hh"
#include "apps/join.hh"
#include "apps/pre.hh"
#include "apps/regx.hh"
#include "apps/sssp.hh"
#include "common/log.hh"

namespace dtbl {
namespace {

template <typename T, typename... Args>
BenchmarkSpec
spec(std::string id, Args... args)
{
    return {std::move(id), [args...] { return std::make_unique<T>(args...); }};
}

} // namespace

const std::vector<BenchmarkSpec> &
allBenchmarks()
{
    static const std::vector<BenchmarkSpec> specs = {
        spec<AmrApp>("amr_combustion"),
        spec<BhtApp>("bht"),
        spec<BfsApp>("bfs_citation", BfsApp::Dataset::Citation),
        spec<BfsApp>("bfs_usa_road", BfsApp::Dataset::UsaRoad),
        spec<BfsApp>("bfs_cage15", BfsApp::Dataset::Cage15),
        spec<ClrApp>("clr_citation", ClrApp::Dataset::Citation),
        spec<ClrApp>("clr_graph500", ClrApp::Dataset::Graph500),
        spec<ClrApp>("clr_cage15", ClrApp::Dataset::Cage15),
        spec<RegxApp>("regx_darpa", RegxApp::Dataset::Darpa),
        spec<RegxApp>("regx_string", RegxApp::Dataset::RandomStrings),
        spec<PreApp>("pre_movielens"),
        spec<JoinApp>("join_uniform", JoinApp::Dataset::Uniform),
        spec<JoinApp>("join_gaussian", JoinApp::Dataset::Gaussian),
        spec<SsspApp>("sssp_citation", SsspApp::Dataset::Citation),
        spec<SsspApp>("sssp_flight", SsspApp::Dataset::Flight),
        spec<SsspApp>("sssp_cage15", SsspApp::Dataset::Cage15),
    };
    return specs;
}

const std::vector<std::string> &
familyRepresentatives()
{
    static const std::vector<std::string> reps = {
        "amr_combustion", "bht",           "bfs_citation", "clr_citation",
        "regx_darpa",     "pre_movielens", "join_uniform", "sssp_citation",
    };
    return reps;
}

std::unique_ptr<App>
makeBenchmark(const std::string &id)
{
    for (const auto &s : allBenchmarks()) {
        if (s.id == id)
            return s.make();
    }
    DTBL_FATAL("unknown benchmark id: ", id);
}

} // namespace dtbl
