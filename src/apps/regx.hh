/**
 * @file
 * Regular Expression / multi-pattern Match (Table 4: DARPA network
 * packets, random string collection).
 *
 * Filter + verify engine: one thread per packet scans for candidate
 * positions whose first byte can start a pattern; candidates are then
 * fully verified. Verification is the DFP — the random-string data set
 * has a tiny alphabet, hence an extremely high candidate density and the
 * highest dynamic-launch rate in the suite (Section 5.2).
 */

#ifndef DTBL_APPS_REGX_HH
#define DTBL_APPS_REGX_HH

#include "apps/app.hh"
#include "apps/datasets/generators.hh"

namespace dtbl {

class RegxApp : public App
{
  public:
    enum class Dataset { Darpa, RandomStrings };

    explicit RegxApp(Dataset d);

    std::string name() const override;
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t expandThreshold = 16;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 32;
    static constexpr std::uint32_t maxCandidates = 192;

  private:
    Dataset dataset_;
    PatternSet patterns_;
    PacketSet packets_;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr textAddr_ = 0;
    Addr offsetsAddr_ = 0;
    Addr lengthsAddr_ = 0;
    Addr patBytesAddr_ = 0;
    Addr patLenAddr_ = 0;
    Addr fbmAddr_ = 0;
    Addr candAddr_ = 0;
    Addr outAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_REGX_HH
