#include "apps/sssp.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

constexpr std::uint32_t inf = 0xffffffffu;

/**
 * Relax edge (v -> u, w): dist[u] = min(dist[u], dv + w); on improvement
 * enqueue u once (inNext flag).
 */
void
emitRelax(KernelBuilder &b, Reg u, Reg nd, Reg dist_base, Reg in_next_base,
          Reg next_front_base, Reg next_size_addr)
{
    Reg dAddr = b.add(dist_base, b.shl(u, 2));
    Reg old = b.atom(AtomOp::Min, DataType::U32, dAddr, nd);
    Pred improved = b.setp(CmpOp::Lt, DataType::U32, nd, old);
    b.if_(improved, [&] {
        Reg flagAddr = b.add(in_next_base, b.shl(u, 2));
        Reg was = b.atom(AtomOp::Exch, DataType::U32, flagAddr, Val(1u));
        Pred fresh = b.setp(CmpOp::Eq, DataType::U32, was, Val(0u));
        b.if_(fresh, [&] {
            Reg idx = b.atom(AtomOp::Add, DataType::U32, next_size_addr,
                             Val(1u));
            b.st(MemSpace::Global, b.add(next_front_base, b.shl(idx, 2)),
                 u);
        });
    });
}

/**
 * Child kernel params:
 * [0]=colIdx [4]=weights [8]=dist [12]=inNext [16]=nextFront
 * [20]=nextSize [24]=edgeStart [28]=count [32]=dv
 */
KernelFuncId
buildRelaxKernel(Program &prog)
{
    KernelBuilder b("sssp_relax", Dim3{SsspApp::childTbSize}, 0, 36);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(28);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg colIdx = b.ldParam(0);
    Reg weights = b.ldParam(4);
    Reg dist = b.ldParam(8);
    Reg inNext = b.ldParam(12);
    Reg nextFront = b.ldParam(16);
    Reg nextSize = b.ldParam(20);
    Reg edgeStart = b.ldParam(24);
    Reg dv = b.ldParam(32);
    Reg e = b.add(edgeStart, gid);
    Reg e4 = b.shl(e, 2);
    Reg u = b.ld(MemSpace::Global, b.add(colIdx, e4));
    Reg w = b.ld(MemSpace::Global, b.add(weights, e4));
    Reg nd = b.add(dv, w);
    emitRelax(b, u, nd, dist, inNext, nextFront, nextSize);
    return b.build(prog);
}

/**
 * Parent kernel params:
 * [0]=frontSize [4]=front [8]=rowPtr [12]=colIdx [16]=weights [20]=dist
 * [24]=inNext [28]=nextFront [32]=nextSize
 */
KernelFuncId
buildParentKernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("sssp_parent_") + modeName(mode),
                    Dim3{SsspApp::parentTbSize}, 0, 36);
    Reg tid = b.globalThreadIdX();
    Reg frontSize = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, frontSize);
    b.exitIf(oob);
    Reg front = b.ldParam(4);
    Reg rowPtr = b.ldParam(8);
    Reg colIdx = b.ldParam(12);
    Reg weights = b.ldParam(16);
    Reg dist = b.ldParam(20);
    Reg inNext = b.ldParam(24);
    Reg nextFront = b.ldParam(28);
    Reg nextSize = b.ldParam(32);

    Reg v = b.ld(MemSpace::Global, b.add(front, b.shl(tid, 2)));
    // Leaving the frontier: clear the dedup flag, then read dist[v].
    b.st(MemSpace::Global, b.add(inNext, b.shl(v, 2)), Val(0u));
    Reg dv = b.ld(MemSpace::Global, b.add(dist, b.shl(v, 2)));
    Reg rpAddr = b.add(rowPtr, b.shl(v, 2));
    Reg start = b.ld(MemSpace::Global, rpAddr);
    Reg end = b.ld(MemSpace::Global, rpAddr, 4);
    Reg deg = b.sub(end, start);

    auto inlineRelax = [&] {
        b.forRange(start, end, [&](Reg e) {
            Reg e4 = b.shl(e, 2);
            Reg u = b.ld(MemSpace::Global, b.add(colIdx, e4));
            Reg w = b.ld(MemSpace::Global, b.add(weights, e4));
            Reg nd = b.add(dv, w);
            emitRelax(b, u, nd, dist, inNext, nextFront, nextSize);
        });
    };

    if (mode == Mode::Flat) {
        inlineRelax();
    } else {
        Pred big = b.setp(CmpOp::Gt, DataType::U32, deg,
                          Val(SsspApp::expandThreshold));
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(deg, SsspApp::childTbSize - 1),
                                 Val(SsspApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 36, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, colIdx, 0);
                    b.st(MemSpace::Global, buf, weights, 4);
                    b.st(MemSpace::Global, buf, dist, 8);
                    b.st(MemSpace::Global, buf, inNext, 12);
                    b.st(MemSpace::Global, buf, nextFront, 16);
                    b.st(MemSpace::Global, buf, nextSize, 20);
                    b.st(MemSpace::Global, buf, start, 24);
                    b.st(MemSpace::Global, buf, deg, 28);
                    b.st(MemSpace::Global, buf, dv, 32);
                });
            },
            inlineRelax);
    }
    return b.build(prog);
}

} // namespace

SsspApp::SsspApp(Dataset d) : dataset_(d)
{
}

std::string
SsspApp::name() const
{
    switch (dataset_) {
      case Dataset::Citation: return "sssp_citation";
      case Dataset::Flight: return "sssp_flight";
      case Dataset::Cage15: return "sssp_cage15";
    }
    return "sssp";
}

void
SsspApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildRelaxKernel(prog);
    parentKernel_ = buildParentKernel(prog, mode, childKernel_);
}

void
SsspApp::setup(Gpu &gpu)
{
    switch (dataset_) {
      case Dataset::Citation:
        graph_ = makeCitationGraph(8000, 14, 0x55517a);
        break;
      case Dataset::Flight:
        graph_ = makeFlightGraph(6000, 800, 0xf1194);
        break;
      case Dataset::Cage15:
        graph_ = makeCageGraph(3000, 48, 0x55ca9e);
        break;
    }
    addWeights(graph_, 0x3e19 + std::uint64_t(dataset_));
    src_ = graph_.maxDegreeVertex();

    GlobalMemory &mem = gpu.mem();
    rowPtrAddr_ = mem.upload(graph_.rowPtr);
    colIdxAddr_ = mem.upload(graph_.colIdx);
    weightAddr_ = mem.upload(graph_.weights);

    std::vector<std::uint32_t> dist(graph_.n, inf);
    dist[src_] = 0;
    distAddr_ = mem.upload(dist);

    std::vector<std::uint32_t> zeros(graph_.n, 0);
    inNextAddr_ = mem.upload(zeros);

    std::vector<std::uint32_t> front(graph_.n, 0);
    front[0] = src_;
    frontAddr_[0] = mem.upload(front);
    frontAddr_[1] = mem.allocate(std::uint64_t(graph_.n) * 4);
    nextSizeAddr_ = mem.allocate(4);
}

void
SsspApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    std::uint32_t frontSize = 1;
    unsigned cur = 0;
    std::uint32_t iterations = 0;
    while (frontSize > 0) {
        gpu.mem().write32(nextSizeAddr_, 0);
        const Dim3 grid{(frontSize + parentTbSize - 1) / parentTbSize};
        gpu.launch(parentKernel_, grid,
                   {frontSize, std::uint32_t(frontAddr_[cur]),
                    std::uint32_t(rowPtrAddr_),
                    std::uint32_t(colIdxAddr_),
                    std::uint32_t(weightAddr_), std::uint32_t(distAddr_),
                    std::uint32_t(inNextAddr_),
                    std::uint32_t(frontAddr_[1 - cur]),
                    std::uint32_t(nextSizeAddr_)});
        gpu.synchronize();
        frontSize = gpu.mem().read32(nextSizeAddr_);
        cur = 1 - cur;
        DTBL_ASSERT(++iterations <= 12 * (graph_.n + 1),
                    "SSSP failed to converge");
    }
}

bool
SsspApp::verify(Gpu &gpu)
{
    const auto got =
        gpu.mem().download<std::uint32_t>(distAddr_, graph_.n);
    const auto want = cpuSssp(graph_, src_);
    return got == want;
}

} // namespace dtbl
