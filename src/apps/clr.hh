/**
 * @file
 * Graph Coloring (Table 4: citation network, graph500, cage15).
 *
 * Jones-Plassmann style greedy coloring: per round, every uncolored
 * vertex whose random priority is a local maximum among its uncolored
 * neighbors takes the smallest color not used by its colored neighbors.
 * Phase 1 (neighbor inspection) carries the DFP: nested variants launch
 * a child per high-degree vertex that marks blocked/forbidden state
 * with atomics.
 */

#ifndef DTBL_APPS_CLR_HH
#define DTBL_APPS_CLR_HH

#include "apps/app.hh"
#include "apps/datasets/graph.hh"

namespace dtbl {

class ClrApp : public App
{
  public:
    enum class Dataset { Citation, Graph500, Cage15 };

    explicit ClrApp(Dataset d);

    std::string name() const override;
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t expandThreshold = 32;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 64;

  private:
    Dataset dataset_;
    CsrGraph graph_;
    std::vector<std::uint32_t> prio_;

    KernelFuncId phase1Kernel_ = invalidKernelFunc;
    KernelFuncId phase2Kernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr rowPtrAddr_ = 0;
    Addr colIdxAddr_ = 0;
    Addr colorAddr_ = 0;
    Addr prioAddr_ = 0;
    Addr blockedAddr_ = 0;
    Addr forbidAddr_ = 0;
    Addr listAddr_[2] = {0, 0};
    Addr nextSizeAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_CLR_HH
