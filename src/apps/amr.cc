#include "apps/amr.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

constexpr float hotX[4] = {0.28f, 0.71f, 0.52f, 0.15f};
constexpr float hotY[4] = {0.31f, 0.64f, 0.18f, 0.83f};
constexpr float hotS[4] = {250.0f, 400.0f, 600.0f, 900.0f};
constexpr float tau = 0.55f;
constexpr float tauSlope = 0.3f;

/** CPU field function; the device kernel emits the same op order. */
float
cpuField(float x, float y)
{
    float f = 0.0f;
    for (int k = 0; k < 4; ++k) {
        const float dx = x - hotX[k];
        const float dy = y - hotY[k];
        f = f + 1.0f / (1.0f + hotS[k] * (dx * dx + dy * dy));
    }
    return f;
}

bool
cpuRefinePredicate(float f, std::uint32_t depth)
{
    const float thresh =
        tau * (1.0f + tauSlope * float(std::int32_t(depth)));
    return f > thresh && depth < AmrApp::maxDepth;
}

/** Emit field(x, y) with CPU-identical op order. */
Reg
emitField(KernelBuilder &b, Reg x, Reg y)
{
    Reg f = b.mov(0.0f);
    for (int k = 0; k < 4; ++k) {
        Reg dx = b.sub(x, Val(hotX[k]), DataType::F32);
        Reg dy = b.sub(y, Val(hotY[k]), DataType::F32);
        Reg d2 = b.add(b.mul(dx, dx, DataType::F32),
                       b.mul(dy, dy, DataType::F32), DataType::F32);
        Reg den = b.add(Val(1.0f), b.mul(Val(hotS[k]), d2, DataType::F32),
                        DataType::F32);
        Reg term = b.div(Val(1.0f), den, DataType::F32);
        b.binaryTo(f, Opcode::Add, DataType::F32, f, term);
    }
    return f;
}

/** Emit the depth-scaled refine predicate (f > tau*(1+slope*depth)). */
Pred
emitRefinePredicate(KernelBuilder &b, Reg f, Reg depth)
{
    Reg df = b.cvtI2F(depth);
    Reg thresh = b.mul(Val(tau),
                       b.add(Val(1.0f), b.mul(Val(tauSlope), df,
                                              DataType::F32),
                             DataType::F32),
                       DataType::F32);
    Pred refine = b.setp(CmpOp::Gt, DataType::F32, f, thresh);
    Pred shallow =
        b.setp(CmpOp::Lt, DataType::U32, depth, Val(AmrApp::maxDepth));
    Reg both = b.and_(b.selp(refine, 1u, 0u), b.selp(shallow, 1u, 0u));
    return b.setp(CmpOp::Eq, DataType::U32, both, Val(1u));
}

/**
 * Nested-mode refinement kernel; groups launched by refined cells
 * coalesce back to this same kernel (Figure 2(a)).
 * Params: [0]=baseX [4]=baseY [8]=cellSize [12]=depth [16]=gridW
 *         [20]=count [24]=cellCount addr [28]=depthSum addr
 */
KernelFuncId
buildRefineKernel(Program &prog, Mode mode)
{
    KernelBuilder b(std::string("amr_refine_") + modeName(mode),
                    Dim3{AmrApp::childTbSize}, 0, 32);
    const KernelFuncId self = KernelFuncId(prog.size()); // own id
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(20);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg baseX = b.ldParam(0);
    Reg baseY = b.ldParam(4);
    Reg cellSize = b.ldParam(8);
    Reg depth = b.ldParam(12);
    Reg gridW = b.ldParam(16);
    Reg cellCount = b.ldParam(24);
    Reg depthSum = b.ldParam(28);

    Reg gx = b.rem(gid, gridW);
    Reg gy = b.div(gid, gridW);
    Reg ox = b.add(baseX, b.mul(b.cvtI2F(gx), cellSize, DataType::F32),
                   DataType::F32);
    Reg oy = b.add(baseY, b.mul(b.cvtI2F(gy), cellSize, DataType::F32),
                   DataType::F32);
    Reg half = b.mul(Val(0.5f), cellSize, DataType::F32);
    Reg x = b.add(ox, half, DataType::F32);
    Reg y = b.add(oy, half, DataType::F32);
    Reg f = emitField(b, x, y);

    b.atom(AtomOp::Add, DataType::U32, cellCount, Val(1u));
    b.atom(AtomOp::Add, DataType::U32, depthSum, depth);

    Pred refine = emitRefinePredicate(b, f, depth);
    b.if_(refine, [&] {
        emitDynamicLaunch(b, mode, self, Val(1u), 32, [&](Reg buf) {
            b.st(MemSpace::Global, buf, ox, 0);
            b.st(MemSpace::Global, buf, oy, 4);
            b.st(MemSpace::Global, buf, half, 8);
            b.st(MemSpace::Global, buf, b.add(depth, 1u), 12);
            b.st(MemSpace::Global, buf, Val(2u), 16);
            b.st(MemSpace::Global, buf, Val(4u), 20);
            b.st(MemSpace::Global, buf, cellCount, 24);
            b.st(MemSpace::Global, buf, depthSum, 28);
        });
    });
    const KernelFuncId id = b.build(prog);
    DTBL_ASSERT(id == self, "self-launch id mismatch");
    return id;
}

/**
 * Flat kernel: one thread per root cell, explicit DFS stack in global
 * scratch. Entry layout: 4 words (ox, oy, size, depth).
 * Params: [0]=count [4]=gridW [8]=cellSize [12]=cellCount [16]=depthSum
 *         [20]=stackBase [24]=stackStride
 */
KernelFuncId
buildFlatKernel(Program &prog)
{
    KernelBuilder b("amr_flat", Dim3{AmrApp::childTbSize}, 0, 28);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg gridW = b.ldParam(4);
    Reg cellSize = b.ldParam(8);
    Reg cellCount = b.ldParam(12);
    Reg depthSum = b.ldParam(16);
    Reg stackBase = b.ldParam(20);
    Reg stackStride = b.ldParam(24);

    Reg myStack = b.add(stackBase, b.mul(gid, stackStride));
    Reg gx = b.rem(gid, gridW);
    Reg gy = b.div(gid, gridW);
    Reg rootOx = b.mul(b.cvtI2F(gx), cellSize, DataType::F32);
    Reg rootOy = b.mul(b.cvtI2F(gy), cellSize, DataType::F32);

    // push root
    b.st(MemSpace::Global, myStack, rootOx, 0);
    b.st(MemSpace::Global, myStack, rootOy, 4);
    b.st(MemSpace::Global, myStack, cellSize, 8);
    b.st(MemSpace::Global, myStack, Val(0u), 12);
    Reg sp = b.mov(1u);

    b.whileLoop(
        [&] { return b.setp(CmpOp::Gt, DataType::U32, sp, Val(0u)); },
        [&] {
            b.binaryTo(sp, Opcode::Sub, DataType::U32, sp, Val(1u));
            Reg rec = b.add(myStack, b.shl(sp, 4));
            Reg ox = b.ld(MemSpace::Global, rec, 0);
            Reg oy = b.ld(MemSpace::Global, rec, 4);
            Reg size = b.ld(MemSpace::Global, rec, 8);
            Reg depth = b.ld(MemSpace::Global, rec, 12);

            Reg half = b.mul(Val(0.5f), size, DataType::F32);
            Reg x = b.add(ox, half, DataType::F32);
            Reg y = b.add(oy, half, DataType::F32);
            Reg f = emitField(b, x, y);
            b.atom(AtomOp::Add, DataType::U32, cellCount, Val(1u));
            b.atom(AtomOp::Add, DataType::U32, depthSum, depth);

            Pred refine = emitRefinePredicate(b, f, depth);
            b.if_(refine, [&] {
                Reg nd = b.add(depth, 1u);
                for (std::uint32_t q = 0; q < 4; ++q) {
                    // Push subcell q (origin matching the nested
                    // kernel's gx/gy arithmetic bit-for-bit).
                    Reg sox = b.add(
                        ox,
                        b.mul(b.cvtI2F(Val(q % 2)), half, DataType::F32),
                        DataType::F32);
                    Reg soy = b.add(
                        oy,
                        b.mul(b.cvtI2F(Val(q / 2)), half, DataType::F32),
                        DataType::F32);
                    Reg slot = b.add(myStack, b.shl(sp, 4));
                    b.st(MemSpace::Global, slot, sox, 0);
                    b.st(MemSpace::Global, slot, soy, 4);
                    b.st(MemSpace::Global, slot, half, 8);
                    b.st(MemSpace::Global, slot, nd, 12);
                    b.binaryTo(sp, Opcode::Add, DataType::U32, sp,
                               Val(1u));
                }
            });
        });
    return b.build(prog);
}

} // namespace

std::pair<std::uint64_t, std::uint64_t>
AmrApp::cpuRefine()
{
    std::uint64_t cells = 0, depthSum = 0;
    const float rootSize = 1.0f / float(std::int32_t(rootGrid));

    // Iterative mirror of the device recursion.
    struct Rec
    {
        float ox, oy, size;
        std::uint32_t depth;
    };
    std::vector<Rec> stack;
    for (std::uint32_t gid = 0; gid < rootGrid * rootGrid; ++gid) {
        const float ox =
            float(std::int32_t(gid % rootGrid)) * rootSize;
        const float oy =
            float(std::int32_t(gid / rootGrid)) * rootSize;
        stack.push_back({ox, oy, rootSize, 0});
    }
    while (!stack.empty()) {
        const Rec r = stack.back();
        stack.pop_back();
        const float half = 0.5f * r.size;
        const float x = r.ox + half;
        const float y = r.oy + half;
        const float f = cpuField(x, y);
        ++cells;
        depthSum += r.depth;
        if (cpuRefinePredicate(f, r.depth)) {
            for (std::uint32_t q = 0; q < 4; ++q) {
                const float sox =
                    r.ox + float(std::int32_t(q % 2)) * half;
                const float soy =
                    r.oy + float(std::int32_t(q / 2)) * half;
                stack.push_back({sox, soy, half, r.depth + 1});
            }
        }
    }
    return {cells, depthSum};
}

void
AmrApp::build(Program &prog, Mode mode)
{
    if (mode == Mode::Flat)
        flatKernel_ = buildFlatKernel(prog);
    else
        refineKernel_ = buildRefineKernel(prog, mode);
}

void
AmrApp::setup(Gpu &gpu)
{
    GlobalMemory &mem = gpu.mem();
    cellCountAddr_ = mem.allocate(4);
    depthSumAddr_ = mem.allocate(4);
    mem.write32(cellCountAddr_, 0);
    mem.write32(depthSumAddr_, 0);
    stackAddr_ = mem.allocate(std::uint64_t(rootGrid) * rootGrid *
                              stackEntries * 16);
}

void
AmrApp::execute(Gpu &gpu, Mode mode)
{
    const std::uint32_t rootCells = rootGrid * rootGrid;
    const float rootSize = 1.0f / float(std::int32_t(rootGrid));
    const std::uint32_t sizeBits = std::bit_cast<std::uint32_t>(rootSize);
    if (mode == Mode::Flat) {
        gpu.launch(flatKernel_,
                   Dim3{(rootCells + childTbSize - 1) / childTbSize},
                   {rootCells, rootGrid, sizeBits,
                    std::uint32_t(cellCountAddr_),
                    std::uint32_t(depthSumAddr_),
                    std::uint32_t(stackAddr_), stackEntries * 16});
    } else {
        gpu.launch(refineKernel_,
                   Dim3{(rootCells + childTbSize - 1) / childTbSize},
                   {std::bit_cast<std::uint32_t>(0.0f),
                    std::bit_cast<std::uint32_t>(0.0f), sizeBits, 0u,
                    rootGrid, rootCells, std::uint32_t(cellCountAddr_),
                    std::uint32_t(depthSumAddr_)});
    }
    gpu.synchronize();
}

bool
AmrApp::verify(Gpu &gpu)
{
    const auto [cells, depthSum] = cpuRefine();
    return gpu.mem().read32(cellCountAddr_) == cells &&
           gpu.mem().read32(depthSumAddr_) == depthSum;
}

} // namespace dtbl
