#include "apps/bfs.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

constexpr std::uint32_t inf = 0xffffffffu;

/**
 * Emit the visit sequence for neighbor @p u: claim it with a CAS on
 * dist[] and append newly discovered vertices to the next frontier.
 */
void
emitVisit(KernelBuilder &b, Reg u, Val new_dist, Reg dist_base,
          Reg next_front_base, Reg next_size_addr)
{
    Reg dAddr = b.add(dist_base, b.shl(u, 2));
    Reg old = b.atom(AtomOp::Cas, DataType::U32, dAddr, new_dist,
                     Val(inf));
    Pred fresh = b.setp(CmpOp::Eq, DataType::U32, old, Val(inf));
    b.if_(fresh, [&] {
        Reg idx = b.atom(AtomOp::Add, DataType::U32, next_size_addr,
                         Val(1u));
        b.st(MemSpace::Global, b.add(next_front_base, b.shl(idx, 2)), u);
    });
}

/**
 * Child kernel: expand `count` neighbors starting at edge `edgeStart`.
 * Params: [0]=colIdx [4]=dist [8]=nextFront [12]=nextSize
 *         [16]=edgeStart [20]=count [24]=newDist
 */
KernelFuncId
buildExpandKernel(Program &prog)
{
    KernelBuilder b("bfs_expand", Dim3{BfsApp::childTbSize}, 0, 28);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(20);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg colIdx = b.ldParam(0);
    Reg dist = b.ldParam(4);
    Reg nextFront = b.ldParam(8);
    Reg nextSize = b.ldParam(12);
    Reg edgeStart = b.ldParam(16);
    Reg newDist = b.ldParam(24);
    Reg e = b.add(edgeStart, gid);
    Reg u = b.ld(MemSpace::Global, b.add(colIdx, b.shl(e, 2)));
    emitVisit(b, u, newDist, dist, nextFront, nextSize);
    return b.build(prog);
}

/**
 * Flat-mode TB-level expansion: thread block b sweeps the edge range of
 * deferred big vertex b with lane-strided accesses (Merrill-style).
 * Params: [0]=bigList [4]=colIdx [8]=dist [12]=nextFront [16]=nextSize
 *         [20]=newDist
 */
KernelFuncId
buildBigExpandKernel(Program &prog)
{
    KernelBuilder b("bfs_big_expand", Dim3{BfsApp::childTbSize}, 0, 24);
    Reg bigList = b.ldParam(0);
    Reg colIdx = b.ldParam(4);
    Reg dist = b.ldParam(8);
    Reg nextFront = b.ldParam(12);
    Reg nextSize = b.ldParam(16);
    Reg newDist = b.ldParam(20);

    Reg entry = b.add(bigList, b.shl(Val(SReg::CtaIdX), 3)); // 8B records
    Reg start = b.ld(MemSpace::Global, entry, 0);
    Reg deg = b.ld(MemSpace::Global, entry, 4);
    Reg i = b.mov(SReg::TidX);
    b.whileLoop(
        [&] { return b.setp(CmpOp::Lt, DataType::U32, i, deg); },
        [&] {
            Reg e = b.add(start, i);
            Reg u = b.ld(MemSpace::Global, b.add(colIdx, b.shl(e, 2)));
            emitVisit(b, u, newDist, dist, nextFront, nextSize);
            b.binaryTo(i, Opcode::Add, DataType::U32, i,
                       Val(BfsApp::childTbSize));
        });
    return b.build(prog);
}

/**
 * Parent kernel: one thread per frontier vertex.
 * Params: [0]=frontSize [4]=front [8]=rowPtr [12]=colIdx [16]=dist
 *         [20]=nextFront [24]=nextSize [28]=newDist
 *         Flat only: [32]=bigList [36]=bigCount
 */
KernelFuncId
buildParentKernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("bfs_parent_") + modeName(mode),
                    Dim3{BfsApp::parentTbSize}, 0, 32);
    Reg tid = b.globalThreadIdX();
    Reg frontSize = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, frontSize);
    b.exitIf(oob);
    Reg front = b.ldParam(4);
    Reg rowPtr = b.ldParam(8);
    Reg colIdx = b.ldParam(12);
    Reg dist = b.ldParam(16);
    Reg nextFront = b.ldParam(20);
    Reg nextSize = b.ldParam(24);
    Reg newDist = b.ldParam(28);

    Reg v = b.ld(MemSpace::Global, b.add(front, b.shl(tid, 2)));
    Reg rpAddr = b.add(rowPtr, b.shl(v, 2));
    Reg start = b.ld(MemSpace::Global, rpAddr);
    Reg end = b.ld(MemSpace::Global, rpAddr, 4);
    Reg deg = b.sub(end, start);

    auto inlineExpand = [&] {
        b.forRange(start, end, [&](Reg e) {
            Reg u = b.ld(MemSpace::Global, b.add(colIdx, b.shl(e, 2)));
            emitVisit(b, u, newDist, dist, nextFront, nextSize);
        });
    };

    Pred big = b.setp(CmpOp::Gt, DataType::U32, deg,
                      Val(mode == Mode::Flat ? BfsApp::flatExpandThreshold
                                             : BfsApp::expandThreshold));
    if (mode == Mode::Flat) {
        // Defer big vertices to the TB-level expansion pass.
        Reg bigList = b.ldParam(32);
        Reg bigCount = b.ldParam(36);
        b.ifElse(
            big,
            [&] {
                Reg idx =
                    b.atom(AtomOp::Add, DataType::U32, bigCount, Val(1u));
                Reg rec = b.add(bigList, b.shl(idx, 3));
                b.st(MemSpace::Global, rec, start, 0);
                b.st(MemSpace::Global, rec, deg, 4);
            },
            inlineExpand);
    } else {
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(deg, BfsApp::childTbSize - 1),
                                 Val(BfsApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 28, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, colIdx, 0);
                    b.st(MemSpace::Global, buf, dist, 4);
                    b.st(MemSpace::Global, buf, nextFront, 8);
                    b.st(MemSpace::Global, buf, nextSize, 12);
                    b.st(MemSpace::Global, buf, start, 16);
                    b.st(MemSpace::Global, buf, deg, 20);
                    b.st(MemSpace::Global, buf, newDist, 24);
                });
            },
            inlineExpand);
    }
    return b.build(prog);
}

} // namespace

BfsApp::BfsApp(Dataset d) : dataset_(d)
{
}

std::string
BfsApp::name() const
{
    switch (dataset_) {
      case Dataset::Citation: return "bfs_citation";
      case Dataset::UsaRoad: return "bfs_usa_road";
      case Dataset::Cage15: return "bfs_cage15";
    }
    return "bfs";
}

void
BfsApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildExpandKernel(prog);
    parentKernel_ = buildParentKernel(prog, mode, childKernel_);
    if (mode == Mode::Flat)
        bigExpandKernel_ = buildBigExpandKernel(prog);
}

void
BfsApp::setup(Gpu &gpu)
{
    switch (dataset_) {
      case Dataset::Citation:
        graph_ = makeCitationGraph(10000, 14, 0xc17a710);
        break;
      case Dataset::UsaRoad:
        graph_ = makeRoadGraph(72, 72, 0x20ad);
        break;
      case Dataset::Cage15:
        graph_ = makeCageGraph(4000, 48, 0xca9e15);
        break;
    }
    src_ = graph_.maxDegreeVertex();

    GlobalMemory &mem = gpu.mem();
    rowPtrAddr_ = mem.upload(graph_.rowPtr);
    colIdxAddr_ = mem.upload(graph_.colIdx);

    std::vector<std::uint32_t> dist(graph_.n, inf);
    dist[src_] = 0;
    distAddr_ = mem.upload(dist);

    std::vector<std::uint32_t> front(graph_.n, 0);
    front[0] = src_;
    frontAddr_[0] = mem.upload(front);
    frontAddr_[1] = mem.allocate(std::uint64_t(graph_.n) * 4);
    nextSizeAddr_ = mem.allocate(4);
    bigListAddr_ = mem.allocate(std::uint64_t(graph_.n) * 8);
    bigCountAddr_ = mem.allocate(4);
}

void
BfsApp::execute(Gpu &gpu, Mode mode)
{
    std::uint32_t frontSize = 1;
    std::uint32_t level = 0;
    unsigned cur = 0;
    while (frontSize > 0) {
        gpu.mem().write32(nextSizeAddr_, 0);
        if (mode == Mode::Flat)
            gpu.mem().write32(bigCountAddr_, 0);
        const Dim3 grid{(frontSize + parentTbSize - 1) / parentTbSize};
        std::vector<std::uint32_t> params{
            frontSize, std::uint32_t(frontAddr_[cur]),
            std::uint32_t(rowPtrAddr_), std::uint32_t(colIdxAddr_),
            std::uint32_t(distAddr_), std::uint32_t(frontAddr_[1 - cur]),
            std::uint32_t(nextSizeAddr_), level + 1};
        if (mode == Mode::Flat) {
            params.push_back(std::uint32_t(bigListAddr_));
            params.push_back(std::uint32_t(bigCountAddr_));
        }
        gpu.launch(parentKernel_, grid, params);
        gpu.synchronize();
        if (mode == Mode::Flat) {
            const std::uint32_t numBig = gpu.mem().read32(bigCountAddr_);
            if (numBig > 0) {
                gpu.launch(bigExpandKernel_, Dim3{numBig},
                           {std::uint32_t(bigListAddr_),
                            std::uint32_t(colIdxAddr_),
                            std::uint32_t(distAddr_),
                            std::uint32_t(frontAddr_[1 - cur]),
                            std::uint32_t(nextSizeAddr_), level + 1});
                gpu.synchronize();
            }
        }
        frontSize = gpu.mem().read32(nextSizeAddr_);
        cur = 1 - cur;
        ++level;
        DTBL_ASSERT(level <= graph_.n, "BFS failed to converge");
    }
}

bool
BfsApp::verify(Gpu &gpu)
{
    const auto got =
        gpu.mem().download<std::uint32_t>(distAddr_, graph_.n);
    const auto want = cpuBfs(graph_, src_);
    return got == want;
}

} // namespace dtbl
