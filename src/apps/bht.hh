/**
 * @file
 * Barnes-Hut Tree (Table 4: random data points).
 *
 * Each body traverses a quadtree accumulating a BH-style potential:
 * far-away nodes contribute through their center of mass; small nearby
 * subtrees are evaluated leaf-by-leaf. The leaf-by-leaf evaluation of a
 * subtree (stored contiguously in DFS order) is the DFP — warp-sized,
 * matching the paper's observation that bht's dynamic workloads average
 * ~33 threads. Accumulation is in fixed-point so results are identical
 * across summation orders.
 */

#ifndef DTBL_APPS_BHT_HH
#define DTBL_APPS_BHT_HH

#include "apps/app.hh"
#include "apps/datasets/generators.hh"

namespace dtbl {

class BhtApp : public App
{
  public:
    BhtApp() = default;

    std::string name() const override { return "bht"; }
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr float theta = 0.5f;
    static constexpr std::uint32_t expandLimit = 64; //!< subtree nodes
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 64;
    static constexpr std::uint32_t stackEntries = 128;

  private:
    Bodies bodies_;
    QuadTree tree_;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr bxAddr_ = 0, byAddr_ = 0;
    Addr cxAddr_ = 0, cyAddr_ = 0, halfAddr_ = 0, massAddr_ = 0;
    Addr childAddr_ = 0, subSizeAddr_ = 0, isLeafAddr_ = 0;
    Addr potAddr_ = 0;
    Addr stackAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_BHT_HH
