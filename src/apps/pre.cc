#include "apps/pre.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

/** score contribution of rating entry e: rating[e] * weight[user[e]]. */
Reg
emitContribution(KernelBuilder &b, Reg e, Reg user_idx, Reg rating,
                 Reg user_weight)
{
    Reg e4 = b.shl(e, 2);
    Reg u = b.ld(MemSpace::Global, b.add(user_idx, e4));
    Reg r = b.ld(MemSpace::Global, b.add(rating, e4));
    Reg w = b.ld(MemSpace::Global, b.add(user_weight, b.shl(u, 2)));
    return b.mul(r, w);
}

/**
 * Child params: [0]=userIdx [4]=rating [8]=userWeight [12]=entryStart
 *               [16]=count [20]=score address (for this item)
 */
KernelFuncId
buildScoreKernel(Program &prog)
{
    KernelBuilder b("pre_score", Dim3{PreApp::childTbSize}, 0, 24);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(16);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg userIdx = b.ldParam(0);
    Reg rating = b.ldParam(4);
    Reg userWeight = b.ldParam(8);
    Reg entryStart = b.ldParam(12);
    Reg scoreAddr = b.ldParam(20);
    Reg e = b.add(entryStart, gid);
    Reg c = emitContribution(b, e, userIdx, rating, userWeight);
    b.atom(AtomOp::Add, DataType::U32, scoreAddr, c);
    return b.build(prog);
}

/**
 * Parent params: [0]=numItems [4]=itemPtr [8]=userIdx [12]=rating
 *                [16]=userWeight [20]=score
 */
KernelFuncId
buildParentKernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("pre_parent_") + modeName(mode),
                    Dim3{PreApp::parentTbSize}, 0, 24);
    Reg tid = b.globalThreadIdX();
    Reg numItems = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, numItems);
    b.exitIf(oob);
    Reg itemPtr = b.ldParam(4);
    Reg userIdx = b.ldParam(8);
    Reg rating = b.ldParam(12);
    Reg userWeight = b.ldParam(16);
    Reg score = b.ldParam(20);

    Reg ipAddr = b.add(itemPtr, b.shl(tid, 2));
    Reg start = b.ld(MemSpace::Global, ipAddr);
    Reg end = b.ld(MemSpace::Global, ipAddr, 4);
    Reg count = b.sub(end, start);
    Reg scoreAddr = b.add(score, b.shl(tid, 2));

    auto inlineScore = [&] {
        Reg acc = b.mov(0u);
        b.forRange(start, end, [&](Reg e) {
            Reg c = emitContribution(b, e, userIdx, rating, userWeight);
            b.binaryTo(acc, Opcode::Add, DataType::U32, acc, c);
        });
        b.st(MemSpace::Global, scoreAddr, acc);
    };

    if (mode == Mode::Flat) {
        inlineScore();
    } else {
        Pred big = b.setp(CmpOp::Gt, DataType::U32, count,
                          Val(PreApp::expandThreshold));
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(count, PreApp::childTbSize - 1),
                                 Val(PreApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 24, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, userIdx, 0);
                    b.st(MemSpace::Global, buf, rating, 4);
                    b.st(MemSpace::Global, buf, userWeight, 8);
                    b.st(MemSpace::Global, buf, start, 12);
                    b.st(MemSpace::Global, buf, count, 16);
                    b.st(MemSpace::Global, buf, scoreAddr, 20);
                });
            },
            inlineScore);
    }
    return b.build(prog);
}

} // namespace

void
PreApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildScoreKernel(prog);
    parentKernel_ = buildParentKernel(prog, mode, childKernel_);
}

void
PreApp::setup(Gpu &gpu)
{
    ratings_ = makeMovieLensRatings(4096, 8000, 300, 0x301e1e45);

    GlobalMemory &mem = gpu.mem();
    itemPtrAddr_ = mem.upload(ratings_.itemPtr);
    userIdxAddr_ = mem.upload(ratings_.userIdx);
    ratingAddr_ = mem.upload(ratings_.rating);
    userWeightAddr_ = mem.upload(ratings_.userWeight);
    std::vector<std::uint32_t> zeros(ratings_.numItems, 0);
    scoreAddr_ = mem.upload(zeros);
}

void
PreApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    const std::uint32_t n = ratings_.numItems;
    gpu.launch(parentKernel_, Dim3{(n + parentTbSize - 1) / parentTbSize},
               {n, std::uint32_t(itemPtrAddr_), std::uint32_t(userIdxAddr_),
                std::uint32_t(ratingAddr_), std::uint32_t(userWeightAddr_),
                std::uint32_t(scoreAddr_)});
    gpu.synchronize();
}

bool
PreApp::verify(Gpu &gpu)
{
    const auto got = gpu.mem().download<std::uint32_t>(scoreAddr_,
                                                       ratings_.numItems);
    return got == cpuItemScores(ratings_);
}

} // namespace dtbl
