/**
 * @file
 * Benchmark registry: the 16 application x data-set combinations of the
 * paper's evaluation (Table 4), addressable by id.
 */

#ifndef DTBL_APPS_REGISTRY_HH
#define DTBL_APPS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"

namespace dtbl {

struct BenchmarkSpec
{
    std::string id;
    std::function<std::unique_ptr<App>()> make;
};

/** All benchmarks in the paper's figure order. */
const std::vector<BenchmarkSpec> &allBenchmarks();

/** One representative per application family (paper Table 4 order) —
 *  the 8-point grid dtbl-analyze and dtbl-bench default to. */
const std::vector<std::string> &familyRepresentatives();

/** Instantiate a benchmark by id; fatal on unknown ids. */
std::unique_ptr<App> makeBenchmark(const std::string &id);

} // namespace dtbl

#endif // DTBL_APPS_REGISTRY_HH
