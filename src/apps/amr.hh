/**
 * @file
 * Adaptive Mesh Refinement (Table 4: combustion simulation stand-in).
 *
 * Cells of a 2D grid are recursively refined wherever an analytic
 * "energy" field (a sum of rational hotspot bumps standing in for the
 * combustion data) exceeds a depth-scaled threshold. The nested variants
 * launch an aggregated group / device kernel of 4 subcells per refined
 * cell, which coalesce back onto the same refinement kernel — the
 * paper's Figure 2(a) scenario. The flat variant walks each root cell's
 * subtree with an explicit stack.
 */

#ifndef DTBL_APPS_AMR_HH
#define DTBL_APPS_AMR_HH

#include "apps/app.hh"

namespace dtbl {

class AmrApp : public App
{
  public:
    AmrApp() = default;

    std::string name() const override { return "amr_combustion"; }
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t rootGrid = 64;  //!< 64x64 root cells
    static constexpr std::uint32_t maxDepth = 5;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t stackEntries = 4 * maxDepth + 8;

    /** CPU mirror of the refinement recursion; returns {cells, depthSum}. */
    static std::pair<std::uint64_t, std::uint64_t> cpuRefine();

  private:
    KernelFuncId refineKernel_ = invalidKernelFunc; //!< nested modes
    KernelFuncId flatKernel_ = invalidKernelFunc;   //!< flat mode

    Addr cellCountAddr_ = 0;
    Addr depthSumAddr_ = 0;
    Addr stackAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_AMR_HH
