#include "apps/clr.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace dtbl {
namespace {

constexpr std::uint32_t inf = 0xffffffffu;

/**
 * Emit the per-neighbor inspection used by both the inline loop and the
 * child kernel. Writes blocked/forbid state for vertex @p v.
 * @param atomic use atomics (child threads of the same vertex race).
 */
void
emitInspect(KernelBuilder &b, Reg v, Reg u, Reg color_base, Reg prio_base,
            Reg blocked_addr, Reg forbid_addr, Reg prio_v)
{
    Reg u4 = b.shl(u, 2);
    Reg cu = b.ld(MemSpace::Global, b.add(color_base, u4));
    Pred uncolored = b.setp(CmpOp::Eq, DataType::U32, cu, Val(inf));
    b.ifElse(
        uncolored,
        [&] {
            // Priority comparison with id tie-break; self-edges ignored.
            Reg pu = b.ld(MemSpace::Global, b.add(prio_base, u4));
            Pred hi = b.setp(CmpOp::Gt, DataType::U32, pu, prio_v);
            b.if_(hi, [&] {
                b.atom(AtomOp::Or, DataType::U32, blocked_addr, Val(1u));
            });
            Pred tie = b.setp(CmpOp::Eq, DataType::U32, pu, prio_v);
            b.if_(tie, [&] {
                Pred idHi = b.setp(CmpOp::Gt, DataType::U32, u, v);
                b.if_(idHi, [&] {
                    b.atom(AtomOp::Or, DataType::U32, blocked_addr,
                           Val(1u));
                });
            });
        },
        [&] {
            Pred small = b.setp(CmpOp::Lt, DataType::U32, cu, Val(32u));
            b.if_(small, [&] {
                Reg bit = b.shl(1u, cu);
                b.atom(AtomOp::Or, DataType::U32, forbid_addr, bit);
            });
        });
}

/**
 * Child params: [0]=colIdx [4]=color [8]=prio [12]=edgeStart [16]=count
 *               [20]=v [24]=blocked base [28]=forbid base
 */
KernelFuncId
buildInspectKernel(Program &prog)
{
    KernelBuilder b("clr_inspect", Dim3{ClrApp::childTbSize}, 0, 32);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(16);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg colIdx = b.ldParam(0);
    Reg color = b.ldParam(4);
    Reg prio = b.ldParam(8);
    Reg edgeStart = b.ldParam(12);
    Reg v = b.ldParam(20);
    Reg blockedBase = b.ldParam(24);
    Reg forbidBase = b.ldParam(28);
    Reg v4 = b.shl(v, 2);
    Reg blockedAddr = b.add(blockedBase, v4);
    Reg forbidAddr = b.add(forbidBase, v4);
    Reg prioV = b.ld(MemSpace::Global, b.add(prio, v4));
    Reg e = b.add(edgeStart, gid);
    Reg u = b.ld(MemSpace::Global, b.add(colIdx, b.shl(e, 2)));
    Pred self = b.setp(CmpOp::Eq, DataType::U32, u, v);
    b.exitIf(self);
    emitInspect(b, v, u, color, prio, blockedAddr, forbidAddr, prioV);
    return b.build(prog);
}

/**
 * Phase 1 params: [0]=listSize [4]=list [8]=rowPtr [12]=colIdx
 *                 [16]=color [20]=prio [24]=blocked [28]=forbid
 */
KernelFuncId
buildPhase1Kernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("clr_phase1_") + modeName(mode),
                    Dim3{ClrApp::parentTbSize}, 0, 32);
    Reg tid = b.globalThreadIdX();
    Reg listSize = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, listSize);
    b.exitIf(oob);
    Reg list = b.ldParam(4);
    Reg rowPtr = b.ldParam(8);
    Reg colIdx = b.ldParam(12);
    Reg color = b.ldParam(16);
    Reg prio = b.ldParam(20);
    Reg blockedBase = b.ldParam(24);
    Reg forbidBase = b.ldParam(28);

    Reg v = b.ld(MemSpace::Global, b.add(list, b.shl(tid, 2)));
    Reg v4 = b.shl(v, 2);
    Reg blockedAddr = b.add(blockedBase, v4);
    Reg forbidAddr = b.add(forbidBase, v4);
    Reg prioV = b.ld(MemSpace::Global, b.add(prio, v4));
    Reg rpAddr = b.add(rowPtr, v4);
    Reg start = b.ld(MemSpace::Global, rpAddr);
    Reg end = b.ld(MemSpace::Global, rpAddr, 4);
    Reg deg = b.sub(end, start);

    auto inlineInspect = [&] {
        b.forRange(start, end, [&](Reg e) {
            Reg u = b.ld(MemSpace::Global, b.add(colIdx, b.shl(e, 2)));
            Pred notSelf = b.setp(CmpOp::Ne, DataType::U32, u, v);
            b.if_(notSelf, [&] {
                emitInspect(b, v, u, color, prio, blockedAddr, forbidAddr,
                            prioV);
            });
        });
    };

    if (mode == Mode::Flat) {
        inlineInspect();
    } else {
        Pred big = b.setp(CmpOp::Gt, DataType::U32, deg,
                          Val(ClrApp::expandThreshold));
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(deg, ClrApp::childTbSize - 1),
                                 Val(ClrApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 32, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, colIdx, 0);
                    b.st(MemSpace::Global, buf, color, 4);
                    b.st(MemSpace::Global, buf, prio, 8);
                    b.st(MemSpace::Global, buf, start, 12);
                    b.st(MemSpace::Global, buf, deg, 16);
                    b.st(MemSpace::Global, buf, v, 20);
                    b.st(MemSpace::Global, buf, blockedBase, 24);
                    b.st(MemSpace::Global, buf, forbidBase, 28);
                });
            },
            inlineInspect);
    }
    return b.build(prog);
}

/**
 * Phase 2 params: [0]=listSize [4]=list [8]=color [12]=blocked
 *                 [16]=forbid [20]=nextList [24]=nextSize
 */
KernelFuncId
buildPhase2Kernel(Program &prog)
{
    KernelBuilder b("clr_phase2", Dim3{ClrApp::parentTbSize}, 0, 28);
    Reg tid = b.globalThreadIdX();
    Reg listSize = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, listSize);
    b.exitIf(oob);
    Reg list = b.ldParam(4);
    Reg color = b.ldParam(8);
    Reg blockedBase = b.ldParam(12);
    Reg forbidBase = b.ldParam(16);
    Reg nextList = b.ldParam(20);
    Reg nextSize = b.ldParam(24);

    Reg v = b.ld(MemSpace::Global, b.add(list, b.shl(tid, 2)));
    Reg v4 = b.shl(v, 2);
    Reg blocked = b.ld(MemSpace::Global, b.add(blockedBase, v4));
    Reg forbid = b.ld(MemSpace::Global, b.add(forbidBase, v4));
    // Reset scratch for the next round.
    b.st(MemSpace::Global, b.add(blockedBase, v4), Val(0u));
    b.st(MemSpace::Global, b.add(forbidBase, v4), Val(0u));

    Pred free = b.setp(CmpOp::Eq, DataType::U32, blocked, Val(0u));
    b.ifElse(
        free,
        [&] {
            // Smallest color not in the forbidden mask.
            Reg c = b.mov(0u);
            b.whileLoop(
                [&] {
                    Reg bit = b.and_(b.shr(forbid, c), Val(1u));
                    Pred used =
                        b.setp(CmpOp::Eq, DataType::U32, bit, Val(1u));
                    Pred inRange =
                        b.setp(CmpOp::Lt, DataType::U32, c, Val(32u));
                    // continue while used && inRange
                    Reg contRaw = b.selp(used, 1u, 0u);
                    Reg inR = b.selp(inRange, 1u, 0u);
                    Reg both = b.and_(contRaw, inR);
                    return b.setp(CmpOp::Eq, DataType::U32, both,
                                  Val(1u));
                },
                [&] {
                    b.binaryTo(c, Opcode::Add, DataType::U32, c, Val(1u));
                });
            b.st(MemSpace::Global, b.add(color, v4), c);
        },
        [&] {
            Reg idx =
                b.atom(AtomOp::Add, DataType::U32, nextSize, Val(1u));
            b.st(MemSpace::Global, b.add(nextList, b.shl(idx, 2)), v);
        });
    return b.build(prog);
}

} // namespace

ClrApp::ClrApp(Dataset d) : dataset_(d)
{
}

std::string
ClrApp::name() const
{
    switch (dataset_) {
      case Dataset::Citation: return "clr_citation";
      case Dataset::Graph500: return "clr_graph500";
      case Dataset::Cage15: return "clr_cage15";
    }
    return "clr";
}

void
ClrApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildInspectKernel(prog);
    phase1Kernel_ = buildPhase1Kernel(prog, mode, childKernel_);
    phase2Kernel_ = buildPhase2Kernel(prog);
}

void
ClrApp::setup(Gpu &gpu)
{
    // Coloring requires symmetric adjacency (generator degrees roughly
    // double when mirrored edges are added).
    switch (dataset_) {
      case Dataset::Citation:
        graph_ = symmetrize(makeCitationGraph(6000, 8, 0xc01017a));
        break;
      case Dataset::Graph500:
        // Balanced degrees just above the expansion threshold: launches
        // occur uniformly but bring no imbalance benefit (5.2C).
        graph_ = symmetrize(makeGraph500Graph(2600, 17, 0x500500));
        break;
      case Dataset::Cage15:
        graph_ = symmetrize(makeCageGraph(2500, 24, 0xc0ca9e));
        break;
    }
    Rng rng(0x9910 + std::uint64_t(dataset_));
    prio_.resize(graph_.n);
    for (auto &p : prio_)
        p = std::uint32_t(rng.next() >> 32);

    GlobalMemory &mem = gpu.mem();
    rowPtrAddr_ = mem.upload(graph_.rowPtr);
    colIdxAddr_ = mem.upload(graph_.colIdx);
    prioAddr_ = mem.upload(prio_);

    std::vector<std::uint32_t> colors(graph_.n, inf);
    colorAddr_ = mem.upload(colors);
    std::vector<std::uint32_t> zeros(graph_.n, 0);
    blockedAddr_ = mem.upload(zeros);
    forbidAddr_ = mem.upload(zeros);

    std::vector<std::uint32_t> list(graph_.n);
    for (std::uint32_t v = 0; v < graph_.n; ++v)
        list[v] = v;
    listAddr_[0] = mem.upload(list);
    listAddr_[1] = mem.allocate(std::uint64_t(graph_.n) * 4);
    nextSizeAddr_ = mem.allocate(4);
}

void
ClrApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    std::uint32_t listSize = graph_.n;
    unsigned cur = 0;
    std::uint32_t rounds = 0;
    while (listSize > 0) {
        const Dim3 grid{(listSize + parentTbSize - 1) / parentTbSize};
        const auto common = std::uint32_t(listAddr_[cur]);
        gpu.launch(phase1Kernel_, grid,
                   {listSize, common, std::uint32_t(rowPtrAddr_),
                    std::uint32_t(colIdxAddr_), std::uint32_t(colorAddr_),
                    std::uint32_t(prioAddr_), std::uint32_t(blockedAddr_),
                    std::uint32_t(forbidAddr_)});
        gpu.synchronize();

        gpu.mem().write32(nextSizeAddr_, 0);
        gpu.launch(phase2Kernel_, grid,
                   {listSize, common, std::uint32_t(colorAddr_),
                    std::uint32_t(blockedAddr_),
                    std::uint32_t(forbidAddr_),
                    std::uint32_t(listAddr_[1 - cur]),
                    std::uint32_t(nextSizeAddr_)});
        gpu.synchronize();

        const std::uint32_t next = gpu.mem().read32(nextSizeAddr_);
        DTBL_ASSERT(next < listSize, "coloring made no progress");
        listSize = next;
        cur = 1 - cur;
        DTBL_ASSERT(++rounds <= graph_.n, "coloring failed to converge");
    }
}

bool
ClrApp::verify(Gpu &gpu)
{
    const auto got =
        gpu.mem().download<std::uint32_t>(colorAddr_, graph_.n);
    const auto want = cpuJpColoring(graph_, prio_);
    if (got != want)
        return false;
    // Independent validity check (colors < 32 must differ on edges).
    for (std::uint32_t v = 0; v < graph_.n; ++v) {
        for (std::uint32_t e = graph_.rowPtr[v]; e < graph_.rowPtr[v + 1];
             ++e) {
            const std::uint32_t u = graph_.colIdx[e];
            if (u != v && got[v] < 32 && got[v] == got[u])
                return false;
        }
    }
    return true;
}

} // namespace dtbl
