#include "apps/bht.hh"

#include <bit>

#include "common/log.hh"

namespace dtbl {
namespace {

constexpr float eps = 1e-4f;

/**
 * Emit d2 = (bx-cx[n])^2 + (by-cy[n])^2 + eps with the oracle's op
 * order, then the fixed-point contribution trunc(mass[n]/d2 * 1024).
 */
struct NodeGeom
{
    Reg d2;
};

NodeGeom
emitDist2(KernelBuilder &b, Reg bx, Reg by, Reg cx_base, Reg cy_base,
          Reg n4)
{
    Reg cx = b.ld(MemSpace::Global, b.add(cx_base, n4));
    Reg cy = b.ld(MemSpace::Global, b.add(cy_base, n4));
    Reg dx = b.sub(bx, cx, DataType::F32);
    Reg dy = b.sub(by, cy, DataType::F32);
    Reg d2 = b.add(b.add(b.mul(dx, dx, DataType::F32),
                         b.mul(dy, dy, DataType::F32), DataType::F32),
                   Val(eps), DataType::F32);
    return {d2};
}

Reg
emitContribution(KernelBuilder &b, Reg mass_base, Reg n4, Reg d2)
{
    Reg mass = b.ld(MemSpace::Global, b.add(mass_base, n4));
    Reg q = b.div(mass, d2, DataType::F32);
    return b.cvtF2I(b.mul(q, Val(1024.0f), DataType::F32));
}

/**
 * Child kernel: evaluate leaves of the contiguous node range.
 * Params: [0]=cx [4]=cy [8]=mass [12]=isLeaf [16]=nodeStart [20]=count
 *         [24]=bx bits [28]=by bits [32]=out addr
 */
KernelFuncId
buildLeafKernel(Program &prog)
{
    KernelBuilder b("bht_leaves", Dim3{BhtApp::childTbSize}, 0, 36);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(20);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg cx = b.ldParam(0);
    Reg cy = b.ldParam(4);
    Reg mass = b.ldParam(8);
    Reg isLeaf = b.ldParam(12);
    Reg nodeStart = b.ldParam(16);
    Reg bx = b.ldParam(24);
    Reg by = b.ldParam(28);
    Reg outAddr = b.ldParam(32);

    Reg n = b.add(nodeStart, gid);
    Reg n4 = b.shl(n, 2);
    Reg leaf = b.ld(MemSpace::Global, b.add(isLeaf, n4));
    Pred isL = b.setp(CmpOp::Ne, DataType::U32, leaf, Val(0u));
    b.if_(isL, [&] {
        NodeGeom g = emitDist2(b, bx, by, cx, cy, n4);
        Reg c = emitContribution(b, mass, n4, g.d2);
        b.atom(AtomOp::Add, DataType::U32, outAddr, c);
    });
    return b.build(prog);
}

/**
 * Parent kernel: per-body stack traversal.
 * Params: [0]=n [4]=bx [8]=by [12]=cx [16]=cy [20]=half [24]=mass
 *         [28]=child [32]=subSize [36]=isLeaf [40]=pot [44]=stackBase
 *         [48]=stackStride
 */
KernelFuncId
buildTraverseKernel(Program &prog, Mode mode, KernelFuncId child_kernel)
{
    KernelBuilder b(std::string("bht_traverse_") + modeName(mode),
                    Dim3{BhtApp::parentTbSize}, 0, 52);
    Reg tid = b.globalThreadIdX();
    Reg n = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, n);
    b.exitIf(oob);
    Reg bxB = b.ldParam(4);
    Reg byB = b.ldParam(8);
    Reg cx = b.ldParam(12);
    Reg cy = b.ldParam(16);
    Reg half = b.ldParam(20);
    Reg mass = b.ldParam(24);
    Reg childArr = b.ldParam(28);
    Reg subSize = b.ldParam(32);
    Reg isLeaf = b.ldParam(36);
    Reg pot = b.ldParam(40);
    Reg stackBase = b.ldParam(44);
    Reg stackStride = b.ldParam(48);

    Reg t4 = b.shl(tid, 2);
    Reg bx = b.ld(MemSpace::Global, b.add(bxB, t4));
    Reg by = b.ld(MemSpace::Global, b.add(byB, t4));
    Reg outAddr = b.add(pot, t4);
    Reg myStack = b.add(stackBase, b.mul(tid, stackStride));

    // In nested modes the child groups atomically add into pot[tid], so
    // the local accumulator is merged with an atomic at the end.
    Reg acc = b.mov(0u);
    b.st(MemSpace::Global, myStack, Val(0u)); // push root
    Reg sp = b.mov(1u);

    b.whileLoop(
        [&] { return b.setp(CmpOp::Gt, DataType::U32, sp, Val(0u)); },
        [&] {
            b.binaryTo(sp, Opcode::Sub, DataType::U32, sp, Val(1u));
            Reg node =
                b.ld(MemSpace::Global, b.add(myStack, b.shl(sp, 2)));
            Reg n4 = b.shl(node, 2);
            NodeGeom g = emitDist2(b, bx, by, cx, cy, n4);
            Reg leaf = b.ld(MemSpace::Global, b.add(isLeaf, n4));
            Reg h = b.ld(MemSpace::Global, b.add(half, n4));
            Reg size2 = b.mul(b.mul(Val(4.0f), h, DataType::F32), h,
                              DataType::F32);
            Reg thetaD2 =
                b.mul(Val(BhtApp::theta * BhtApp::theta), g.d2,
                      DataType::F32);

            Pred isL = b.setp(CmpOp::Ne, DataType::U32, leaf, Val(0u));
            Pred far = b.setp(CmpOp::Lt, DataType::F32, size2, thetaD2);
            Reg useCom =
                b.or_(b.selp(isL, 1u, 0u), b.selp(far, 1u, 0u));
            Pred direct =
                b.setp(CmpOp::Eq, DataType::U32, useCom, Val(1u));
            b.ifElse(
                direct,
                [&] {
                    Reg c = emitContribution(b, mass, n4, g.d2);
                    b.binaryTo(acc, Opcode::Add, DataType::U32, acc, c);
                },
                [&] {
                    Reg sub =
                        b.ld(MemSpace::Global, b.add(subSize, n4));
                    Pred small = b.setp(CmpOp::Le, DataType::U32, sub,
                                        Val(BhtApp::expandLimit));
                    b.ifElse(
                        small,
                        [&] {
                            if (mode == Mode::Flat) {
                                // Serial leaf sweep over the subtree.
                                Reg endN = b.add(node, sub);
                                b.forRange(node, endN, [&](Reg k) {
                                    Reg k4 = b.shl(k, 2);
                                    Reg kl = b.ld(MemSpace::Global,
                                                  b.add(isLeaf, k4));
                                    Pred kIsL =
                                        b.setp(CmpOp::Ne, DataType::U32,
                                               kl, Val(0u));
                                    b.if_(kIsL, [&] {
                                        NodeGeom kg = emitDist2(
                                            b, bx, by, cx, cy, k4);
                                        Reg c = emitContribution(
                                            b, mass, k4, kg.d2);
                                        b.binaryTo(acc, Opcode::Add,
                                                   DataType::U32, acc,
                                                   c);
                                    });
                                });
                            } else {
                                Reg ntbs = b.div(
                                    b.add(sub, BhtApp::childTbSize - 1),
                                    Val(BhtApp::childTbSize));
                                emitDynamicLaunch(
                                    b, mode, child_kernel, ntbs, 36,
                                    [&](Reg buf) {
                                        b.st(MemSpace::Global, buf, cx,
                                             0);
                                        b.st(MemSpace::Global, buf, cy,
                                             4);
                                        b.st(MemSpace::Global, buf,
                                             mass, 8);
                                        b.st(MemSpace::Global, buf,
                                             isLeaf, 12);
                                        b.st(MemSpace::Global, buf,
                                             node, 16);
                                        b.st(MemSpace::Global, buf, sub,
                                             20);
                                        b.st(MemSpace::Global, buf, bx,
                                             24);
                                        b.st(MemSpace::Global, buf, by,
                                             28);
                                        b.st(MemSpace::Global, buf,
                                             outAddr, 32);
                                    });
                            }
                        },
                        [&] {
                            // Push existing children.
                            Reg c16 = b.shl(node, 4);
                            for (std::uint32_t q = 0; q < 4; ++q) {
                                Reg cAddr = b.add(childArr,
                                                  b.add(c16, 4 * q));
                                Reg c = b.ld(MemSpace::Global, cAddr);
                                Pred valid =
                                    b.setp(CmpOp::Ne, DataType::S32, c,
                                           Val(0xffffffffu));
                                b.if_(valid, [&] {
                                    b.st(MemSpace::Global,
                                         b.add(myStack, b.shl(sp, 2)),
                                         c);
                                    b.binaryTo(sp, Opcode::Add,
                                               DataType::U32, sp,
                                               Val(1u));
                                });
                            }
                        });
                });
        });
    // Merge the serial accumulator (atomic: child groups share pot[]).
    b.atom(AtomOp::Add, DataType::U32, outAddr, acc);
    return b.build(prog);
}

} // namespace

void
BhtApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildLeafKernel(prog);
    parentKernel_ = buildTraverseKernel(prog, mode, childKernel_);
}

void
BhtApp::setup(Gpu &gpu)
{
    bodies_ = makeClusteredBodies(4000, 3, 0xb0d1e5);
    tree_ = buildQuadTree(bodies_);

    GlobalMemory &mem = gpu.mem();
    auto uploadF = [&](const std::vector<float> &v) {
        std::vector<std::uint32_t> bits(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            bits[i] = std::bit_cast<std::uint32_t>(v[i]);
        return mem.upload(bits);
    };
    bxAddr_ = uploadF(bodies_.x);
    byAddr_ = uploadF(bodies_.y);
    cxAddr_ = uploadF(tree_.cx);
    cyAddr_ = uploadF(tree_.cy);
    halfAddr_ = uploadF(tree_.half);
    massAddr_ = uploadF(tree_.mass);
    std::vector<std::uint32_t> childBits(tree_.child.size());
    for (std::size_t i = 0; i < tree_.child.size(); ++i)
        childBits[i] = std::uint32_t(tree_.child[i]);
    childAddr_ = mem.upload(childBits);
    subSizeAddr_ = mem.upload(tree_.subtreeSize);
    std::vector<std::uint32_t> leaf32(tree_.isLeaf.begin(),
                                      tree_.isLeaf.end());
    isLeafAddr_ = mem.upload(leaf32);

    std::vector<std::uint32_t> zeros(bodies_.count(), 0);
    potAddr_ = mem.upload(zeros);
    stackAddr_ = mem.allocate(std::uint64_t(bodies_.count()) *
                              stackEntries * 4);
}

void
BhtApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    const std::uint32_t n = bodies_.count();
    gpu.launch(parentKernel_, Dim3{(n + parentTbSize - 1) / parentTbSize},
               {n, std::uint32_t(bxAddr_), std::uint32_t(byAddr_),
                std::uint32_t(cxAddr_), std::uint32_t(cyAddr_),
                std::uint32_t(halfAddr_), std::uint32_t(massAddr_),
                std::uint32_t(childAddr_), std::uint32_t(subSizeAddr_),
                std::uint32_t(isLeafAddr_), std::uint32_t(potAddr_),
                std::uint32_t(stackAddr_), stackEntries * 4});
    gpu.synchronize();
}

bool
BhtApp::verify(Gpu &gpu)
{
    const auto got =
        gpu.mem().download<std::uint32_t>(potAddr_, bodies_.count());
    return got ==
           cpuBhPotential(bodies_, tree_, theta, expandLimit);
}

} // namespace dtbl
