#include "apps/app.hh"

#include "common/log.hh"

namespace dtbl {

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Flat: return "Flat";
      case Mode::Cdp: return "CDP";
      case Mode::CdpIdeal: return "CDPI";
      case Mode::Dtbl: return "DTBL";
      case Mode::DtblIdeal: return "DTBLI";
    }
    return "?";
}

bool
usesDynamicParallelism(Mode m)
{
    return m != Mode::Flat;
}

bool
usesDtbl(Mode m)
{
    return m == Mode::Dtbl || m == Mode::DtblIdeal;
}

bool
isIdealMode(Mode m)
{
    return m == Mode::CdpIdeal || m == Mode::DtblIdeal;
}

GpuConfig
configForMode(Mode m, GpuConfig base)
{
    base.modelLaunchLatency = !isIdealMode(m);
    return base;
}

void
emitDynamicLaunch(KernelBuilder &b, Mode mode, KernelFuncId child,
                  Val num_tbs, std::uint32_t param_bytes,
                  const std::function<void(Reg)> &fill)
{
    DTBL_ASSERT(usesDynamicParallelism(mode),
                "emitDynamicLaunch in flat mode");
    if (!usesDtbl(mode)) {
        // CDP launches go through a per-launch software stream to enable
        // kernel concurrency, as in Figure 3(a).
        b.streamCreate();
    }
    Reg buf = b.getParameterBuffer(param_bytes);
    fill(buf);
    if (usesDtbl(mode))
        b.launchAggGroup(child, num_tbs, buf);
    else
        b.launchDevice(child, num_tbs, buf);
}

} // namespace dtbl
