/**
 * @file
 * Single-Source Shortest Path (Table 4: citation network, flight
 * network, cage15).
 *
 * Frontier-based Bellman-Ford: each iteration relaxes the out-edges of
 * the current frontier; vertices whose distance improved join the next
 * frontier (deduplicated with an in-frontier flag). Nested variants
 * launch a child per high-degree vertex, as in BFS.
 */

#ifndef DTBL_APPS_SSSP_HH
#define DTBL_APPS_SSSP_HH

#include "apps/app.hh"
#include "apps/datasets/graph.hh"

namespace dtbl {

class SsspApp : public App
{
  public:
    enum class Dataset { Citation, Flight, Cage15 };

    explicit SsspApp(Dataset d);

    std::string name() const override;
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t expandThreshold = 32;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 64;

  private:
    Dataset dataset_;
    CsrGraph graph_;
    std::uint32_t src_ = 0;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr rowPtrAddr_ = 0;
    Addr colIdxAddr_ = 0;
    Addr weightAddr_ = 0;
    Addr distAddr_ = 0;
    Addr inNextAddr_ = 0;
    Addr frontAddr_[2] = {0, 0};
    Addr nextSizeAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_SSSP_HH
