/**
 * @file
 * Synthetic input generators for the non-graph benchmarks (Table 4):
 * REGX packets/patterns, PRE ratings, JOIN tables, BHT bodies + quadtree.
 */

#ifndef DTBL_APPS_DATASETS_GENERATORS_HH
#define DTBL_APPS_DATASETS_GENERATORS_HH

#include <cstdint>
#include <vector>

namespace dtbl {

// --- REGX ------------------------------------------------------------

/** Concatenated packet payloads with per-packet offsets. */
struct PacketSet
{
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint32_t> offsets; //!< per packet
    std::vector<std::uint32_t> lengths; //!< per packet
    std::uint32_t count() const { return std::uint32_t(offsets.size()); }
};

/** Fixed-width pattern table (each pattern padded to 16 bytes). */
struct PatternSet
{
    static constexpr std::uint32_t slotBytes = 16;
    std::vector<std::uint8_t> bytes;    //!< count * slotBytes
    std::vector<std::uint32_t> lengths; //!< per pattern
    std::uint32_t count = 0;
    /** 256-entry table: bit p set when pattern p starts with the byte. */
    std::vector<std::uint32_t> firstByteMask;
};

/**
 * DARPA-like traffic: wide byte distribution (binary + ASCII mix),
 * some planted pattern occurrences; moderate candidate density.
 */
PacketSet makeDarpaPackets(std::uint32_t num_packets,
                           std::uint32_t avg_len, const PatternSet &pats,
                           std::uint64_t seed);

/**
 * Random string collection over a small alphabet: very high first-byte
 * candidate density -> the highest DFP occurrence in the suite.
 */
PacketSet makeRandomStrings(std::uint32_t num_packets,
                            std::uint32_t avg_len, unsigned alphabet,
                            std::uint64_t seed);

/** Patterns over the given alphabet size (0 = full byte range). */
PatternSet makePatterns(std::uint32_t count, std::uint32_t min_len,
                        std::uint32_t max_len, unsigned alphabet,
                        std::uint64_t seed);

/**
 * CPU oracle: total number of (position, pattern) matches per packet.
 * @param max_candidates mirror of the device-side bounded candidate
 * buffer: positions past the cap are not verified (0 = unbounded).
 */
std::vector<std::uint32_t> cpuMatchCounts(const PacketSet &packets,
                                          const PatternSet &pats,
                                          std::uint32_t max_candidates = 0);

// --- PRE (item-based collaborative filtering) ------------------------

/** Item -> rating list in CSR form (MovieLens-like popularity skew). */
struct Ratings
{
    std::uint32_t numItems = 0;
    std::uint32_t numUsers = 0;
    std::vector<std::uint32_t> itemPtr; //!< numItems + 1
    std::vector<std::uint32_t> userIdx;
    std::vector<std::uint32_t> rating;  //!< 1..5
    /** Per-user weight (scaled inverse activity), fixed-point Q16. */
    std::vector<std::uint32_t> userWeight;
};

Ratings makeMovieLensRatings(std::uint32_t items, std::uint32_t users,
                             std::uint32_t avg_ratings_per_item,
                             std::uint64_t seed);

/**
 * CPU oracle: per-item weighted score, computed with the same wrapping
 * 32-bit arithmetic as the device kernels.
 */
std::vector<std::uint32_t> cpuItemScores(const Ratings &r);

// --- JOIN -------------------------------------------------------------

/** Relational join inputs: R tuples probe hash buckets of S. */
struct JoinData
{
    std::uint32_t numBuckets = 0;
    std::vector<std::uint32_t> rKeys;
    /** S keys grouped by hash bucket. */
    std::vector<std::uint32_t> sKeys;
    std::vector<std::uint32_t> bucketStart; //!< numBuckets
    std::vector<std::uint32_t> bucketCount; //!< numBuckets
};

/** Key hash shared by generator, device kernels and oracle. */
constexpr std::uint32_t
joinHash(std::uint32_t key, std::uint32_t buckets)
{
    return (key * 2654435761u) % buckets;
}

JoinData makeJoinData(std::uint32_t n_r, std::uint32_t n_s,
                      std::uint32_t buckets, bool gaussian,
                      std::uint64_t seed);

/** CPU oracle: per-R-tuple match count. */
std::vector<std::uint32_t> cpuJoinCounts(const JoinData &j);

// --- BHT ---------------------------------------------------------------

struct Bodies
{
    std::vector<float> x, y;
    std::uint32_t count() const { return std::uint32_t(x.size()); }
};

/** Gaussian-mixture clustered points in [0, 1)^2. */
Bodies makeClusteredBodies(std::uint32_t n, unsigned clusters,
                           std::uint64_t seed);

/**
 * Quadtree over the bodies, nodes in DFS order (subtrees contiguous).
 * Leaves hold exactly one body.
 */
struct QuadTree
{
    std::vector<float> cx, cy;     //!< center of mass
    std::vector<float> half;       //!< half edge length of the cell
    std::vector<float> mass;       //!< bodies in subtree
    std::vector<std::int32_t> child; //!< 4 per node, -1 = absent
    std::vector<std::uint32_t> subtreeSize; //!< nodes incl. self
    std::vector<std::uint8_t> isLeaf;

    std::uint32_t count() const { return std::uint32_t(cx.size()); }
};

QuadTree buildQuadTree(const Bodies &b);

/**
 * CPU oracle for the BH-style potential used by the benchmark, in the
 * same fixed-point arithmetic as the device kernels (order-independent).
 */
std::vector<std::uint32_t> cpuBhPotential(const Bodies &b,
                                          const QuadTree &t, float theta,
                                          std::uint32_t expand_limit);

} // namespace dtbl

#endif // DTBL_APPS_DATASETS_GENERATORS_HH
