/**
 * @file
 * CSR graphs and the synthetic generators standing in for the paper's
 * input data sets (Table 4). Each generator reproduces the structural
 * property that drives the corresponding benchmark's behaviour; see
 * DESIGN.md for the substitution rationale.
 */

#ifndef DTBL_APPS_DATASETS_GRAPH_HH
#define DTBL_APPS_DATASETS_GRAPH_HH

#include <cstdint>
#include <vector>

namespace dtbl {

/** Directed graph in Compressed Sparse Row form. */
struct CsrGraph
{
    std::uint32_t n = 0; //!< vertices
    std::uint32_t m = 0; //!< edges
    std::vector<std::uint32_t> rowPtr;  //!< size n+1
    std::vector<std::uint32_t> colIdx;  //!< size m
    std::vector<std::uint32_t> weights; //!< size m (1..10), optional

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return rowPtr[v + 1] - rowPtr[v];
    }

    /** Highest-degree vertex (used as BFS/SSSP source). */
    std::uint32_t maxDegreeVertex() const;

    /** Degree variance / mean (workload-imbalance indicator, tests). */
    double degreeCv() const;
};

/**
 * Citation-network stand-in: heavy-tailed (Zipf-like) out-degrees with
 * uniformly random targets. High degree variance -> strong DFP skew.
 */
CsrGraph makeCitationGraph(std::uint32_t n, std::uint32_t avg_degree,
                           std::uint64_t seed);

/**
 * USA-road stand-in: 2D lattice, degree <= 4. Almost no vertex exceeds
 * the nested-launch threshold, so DFP rarely occurs (Section 5.2C).
 */
CsrGraph makeRoadGraph(std::uint32_t width, std::uint32_t height,
                       std::uint64_t seed);

/**
 * cage15 stand-in: near-uniform degree, but neighbor ids scattered
 * uniformly over the id space -> the flat implementation's accesses are
 * widely distributed in memory (poor locality, Section 5.2A).
 */
CsrGraph makeCageGraph(std::uint32_t n, std::uint32_t avg_degree,
                       std::uint64_t seed);

/**
 * graph500 logn20 stand-in: balanced degrees (small variance around the
 * mean), so flat implementations are already well balanced.
 */
CsrGraph makeGraph500Graph(std::uint32_t n, std::uint32_t degree,
                           std::uint64_t seed);

/**
 * Flight-network stand-in: a few high-degree hubs, everything else
 * degree 1-3 -> DFP almost never triggers.
 */
CsrGraph makeFlightGraph(std::uint32_t n, std::uint32_t hubs,
                         std::uint64_t seed);

/** Attach uniform random weights in [1, 10] (for SSSP). */
void addWeights(CsrGraph &g, std::uint64_t seed);

/**
 * Make the adjacency symmetric (u in adj(v) <=> v in adj(u)), removing
 * duplicates. Required by algorithms like Jones-Plassmann coloring.
 */
CsrGraph symmetrize(const CsrGraph &g);

// --- CPU reference algorithms (verification oracles) ------------------

/** BFS levels from @p src; unreachable = 0xffffffff. */
std::vector<std::uint32_t> cpuBfs(const CsrGraph &g, std::uint32_t src);

/** Single-source shortest paths (weights required). */
std::vector<std::uint32_t> cpuSssp(const CsrGraph &g, std::uint32_t src);

/**
 * Jones-Plassmann greedy coloring with the given vertex priorities;
 * deterministic, matches the GPU algorithm exactly.
 */
std::vector<std::uint32_t>
cpuJpColoring(const CsrGraph &g, const std::vector<std::uint32_t> &prio);

} // namespace dtbl

#endif // DTBL_APPS_DATASETS_GRAPH_HH
