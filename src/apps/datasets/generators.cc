#include "apps/datasets/generators.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <utility>

#include "common/log.hh"
#include "common/rng.hh"

namespace dtbl {

// --- REGX -------------------------------------------------------------

PatternSet
makePatterns(std::uint32_t count, std::uint32_t min_len,
             std::uint32_t max_len, unsigned alphabet, std::uint64_t seed)
{
    DTBL_ASSERT(count <= 32, "pattern set limited to 32 (bitmask)");
    DTBL_ASSERT(min_len >= 2 && max_len <= PatternSet::slotBytes);
    Rng rng(seed);
    PatternSet p;
    p.count = count;
    p.bytes.assign(count * PatternSet::slotBytes, 0);
    p.lengths.resize(count);
    p.firstByteMask.assign(256, 0);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len =
            min_len + std::uint32_t(rng.nextBounded(max_len - min_len + 1));
        p.lengths[i] = len;
        for (std::uint32_t b = 0; b < len; ++b) {
            const std::uint8_t c =
                alphabet ? std::uint8_t('a' + rng.nextBounded(alphabet))
                         : std::uint8_t(rng.nextBounded(256));
            p.bytes[i * PatternSet::slotBytes + b] = c;
        }
        p.firstByteMask[p.bytes[i * PatternSet::slotBytes]] |= 1u << i;
    }
    return p;
}

namespace {

PacketSet
makePackets(std::uint32_t num_packets, std::uint32_t avg_len, Rng &rng,
            const std::function<std::uint8_t(Rng &)> &gen_byte,
            const PatternSet *plant)
{
    PacketSet ps;
    ps.offsets.reserve(num_packets);
    ps.lengths.reserve(num_packets);
    for (std::uint32_t i = 0; i < num_packets; ++i) {
        const std::uint32_t len =
            std::max<std::uint32_t>(16, avg_len / 2 +
                std::uint32_t(rng.nextBounded(avg_len)));
        ps.offsets.push_back(std::uint32_t(ps.bytes.size()));
        ps.lengths.push_back(len);
        for (std::uint32_t b = 0; b < len; ++b)
            ps.bytes.push_back(gen_byte(rng));
        if (plant && plant->count > 0 && rng.nextBool(0.5)) {
            const std::uint32_t pi =
                std::uint32_t(rng.nextBounded(plant->count));
            const std::uint32_t plen = plant->lengths[pi];
            if (plen < len) {
                const std::uint32_t pos =
                    std::uint32_t(rng.nextBounded(len - plen));
                std::copy_n(&plant->bytes[pi * PatternSet::slotBytes],
                            plen,
                            ps.bytes.begin() + ps.offsets.back() + pos);
            }
        }
    }
    return ps;
}

} // namespace

PacketSet
makeDarpaPackets(std::uint32_t num_packets, std::uint32_t avg_len,
                 const PatternSet &pats, std::uint64_t seed)
{
    Rng rng(seed);
    // Mixed binary/ASCII traffic: wide byte distribution keeps the
    // first-byte candidate density moderate.
    auto genByte = [](Rng &r) {
        if (r.nextBool(0.7))
            return std::uint8_t(' ' + r.nextBounded(95)); // printable
        return std::uint8_t(r.nextBounded(256));
    };
    return makePackets(num_packets, avg_len, rng, genByte, &pats);
}

PacketSet
makeRandomStrings(std::uint32_t num_packets, std::uint32_t avg_len,
                  unsigned alphabet, std::uint64_t seed)
{
    Rng rng(seed);
    auto genByte = [alphabet](Rng &r) {
        return std::uint8_t('a' + r.nextBounded(alphabet));
    };
    return makePackets(num_packets, avg_len, rng, genByte, nullptr);
}

std::vector<std::uint32_t>
cpuMatchCounts(const PacketSet &packets, const PatternSet &pats,
               std::uint32_t max_candidates)
{
    std::vector<std::uint32_t> counts(packets.count(), 0);
    for (std::uint32_t p = 0; p < packets.count(); ++p) {
        const std::uint8_t *text = &packets.bytes[packets.offsets[p]];
        const std::uint32_t len = packets.lengths[p];
        std::uint32_t taken = 0;
        for (std::uint32_t pos = 0; pos < len; ++pos) {
            std::uint32_t cand = pats.firstByteMask[text[pos]];
            if (cand && max_candidates) {
                if (taken >= max_candidates)
                    continue;
                ++taken;
            }
            while (cand) {
                const unsigned pi = unsigned(std::countr_zero(cand));
                cand &= cand - 1;
                const std::uint32_t plen = pats.lengths[pi];
                if (pos + plen > len)
                    continue;
                bool match = true;
                for (std::uint32_t b = 0; b < plen; ++b) {
                    if (text[pos + b] !=
                        pats.bytes[pi * PatternSet::slotBytes + b]) {
                        match = false;
                        break;
                    }
                }
                if (match)
                    ++counts[p];
            }
        }
    }
    return counts;
}

// --- PRE ---------------------------------------------------------------

Ratings
makeMovieLensRatings(std::uint32_t items, std::uint32_t users,
                     std::uint32_t avg_ratings_per_item,
                     std::uint64_t seed)
{
    Rng rng(seed);
    Ratings r;
    r.numItems = items;
    r.numUsers = users;
    r.itemPtr.resize(items + 1, 0);

    // Zipf-like item popularity.
    std::vector<double> pop(items);
    double totalPop = 0;
    for (std::uint32_t i = 0; i < items; ++i) {
        pop[i] = std::pow(double(i + 1), -0.8);
        totalPop += pop[i];
    }
    const double scale =
        double(avg_ratings_per_item) * items / totalPop;
    std::vector<std::uint32_t> userCount(users, 0);
    for (std::uint32_t i = 0; i < items; ++i) {
        std::uint32_t cnt = std::max<std::uint32_t>(
            4, std::uint32_t(pop[i] * scale));
        cnt = std::min(cnt, 3 * avg_ratings_per_item);
        r.itemPtr[i + 1] = r.itemPtr[i] + cnt;
        for (std::uint32_t k = 0; k < cnt; ++k) {
            const std::uint32_t u = std::uint32_t(rng.nextBounded(users));
            r.userIdx.push_back(u);
            r.rating.push_back(1 + std::uint32_t(rng.nextBounded(5)));
            ++userCount[u];
        }
    }
    r.userWeight.resize(users);
    for (std::uint32_t u = 0; u < users; ++u)
        r.userWeight[u] = 65536u / (1u + userCount[u]);
    return r;
}

std::vector<std::uint32_t>
cpuItemScores(const Ratings &r)
{
    std::vector<std::uint32_t> score(r.numItems, 0);
    for (std::uint32_t i = 0; i < r.numItems; ++i) {
        for (std::uint32_t e = r.itemPtr[i]; e < r.itemPtr[i + 1]; ++e)
            score[i] += r.rating[e] * r.userWeight[r.userIdx[e]];
    }
    return score;
}

// --- JOIN -------------------------------------------------------------

JoinData
makeJoinData(std::uint32_t n_r, std::uint32_t n_s, std::uint32_t buckets,
             bool gaussian, std::uint64_t seed)
{
    Rng rng(seed);
    JoinData j;
    j.numBuckets = buckets;

    const std::uint32_t keySpace = gaussian ? 4096 : n_s * 4;
    auto drawKey = [&]() -> std::uint32_t {
        if (!gaussian)
            return std::uint32_t(rng.nextBounded(keySpace));
        const double g = rng.nextGaussian() * (keySpace / 256.0) +
                         keySpace / 2.0;
        const double c = std::clamp(g, 0.0, double(keySpace - 1));
        return std::uint32_t(c);
    };

    std::vector<std::uint32_t> sRaw(n_s);
    for (auto &k : sRaw)
        k = drawKey();
    // R keys probe uniformly: under the Gaussian S distribution a few
    // probes hit huge hot buckets while most hit small ones -- the
    // per-warp imbalance the paper's join_gaussian exhibits.
    j.rKeys.resize(n_r);
    for (auto &k : j.rKeys)
        k = std::uint32_t(rng.nextBounded(keySpace));

    // Group S by hash bucket.
    j.bucketCount.assign(buckets, 0);
    for (auto k : sRaw)
        ++j.bucketCount[joinHash(k, buckets)];
    j.bucketStart.resize(buckets);
    std::uint32_t acc = 0;
    for (std::uint32_t b = 0; b < buckets; ++b) {
        j.bucketStart[b] = acc;
        acc += j.bucketCount[b];
    }
    j.sKeys.resize(n_s);
    std::vector<std::uint32_t> fill = j.bucketStart;
    for (auto k : sRaw)
        j.sKeys[fill[joinHash(k, buckets)]++] = k;
    return j;
}

std::vector<std::uint32_t>
cpuJoinCounts(const JoinData &j)
{
    std::vector<std::uint32_t> counts(j.rKeys.size(), 0);
    for (std::size_t i = 0; i < j.rKeys.size(); ++i) {
        const std::uint32_t k = j.rKeys[i];
        const std::uint32_t b = joinHash(k, j.numBuckets);
        for (std::uint32_t e = 0; e < j.bucketCount[b]; ++e) {
            if (j.sKeys[j.bucketStart[b] + e] == k)
                ++counts[i];
        }
    }
    return counts;
}

// --- BHT ---------------------------------------------------------------

Bodies
makeClusteredBodies(std::uint32_t n, unsigned clusters, std::uint64_t seed)
{
    Rng rng(seed);
    Bodies b;
    b.x.reserve(n);
    b.y.reserve(n);
    std::vector<std::pair<double, double>> centers(clusters);
    for (auto &c : centers)
        c = {0.15 + 0.7 * rng.nextDouble(), 0.15 + 0.7 * rng.nextDouble()};
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto &c = centers[rng.nextBounded(clusters)];
        const double px =
            std::clamp(c.first + rng.nextGaussian() * 0.06, 0.0, 0.999);
        const double py =
            std::clamp(c.second + rng.nextGaussian() * 0.06, 0.0, 0.999);
        b.x.push_back(float(px));
        b.y.push_back(float(py));
    }
    return b;
}

namespace {

struct TreeBuilder
{
    const Bodies &bodies;
    QuadTree tree;
    static constexpr unsigned maxDepth = 24;

    /** Returns the node index; appends the subtree in DFS order. */
    std::uint32_t
    build(std::vector<std::uint32_t> idx, float cx, float cy, float half,
          unsigned depth)
    {
        const std::uint32_t node = tree.count();
        tree.cx.push_back(0);
        tree.cy.push_back(0);
        tree.half.push_back(half);
        tree.mass.push_back(float(idx.size()));
        for (int k = 0; k < 4; ++k)
            tree.child.push_back(-1);
        tree.subtreeSize.push_back(1);
        tree.isLeaf.push_back(idx.size() <= 1 || depth >= maxDepth);

        // Center of mass of the contained bodies.
        double sx = 0, sy = 0;
        for (auto i : idx) {
            sx += bodies.x[i];
            sy += bodies.y[i];
        }
        tree.cx[node] = idx.empty() ? cx : float(sx / double(idx.size()));
        tree.cy[node] = idx.empty() ? cy : float(sy / double(idx.size()));

        if (!tree.isLeaf[node]) {
            std::vector<std::uint32_t> quad[4];
            for (auto i : idx) {
                const int q = (bodies.x[i] >= cx ? 1 : 0) |
                              (bodies.y[i] >= cy ? 2 : 0);
                quad[q].push_back(i);
            }
            const float h2 = half / 2;
            const float ox[4] = {-h2, h2, -h2, h2};
            const float oy[4] = {-h2, -h2, h2, h2};
            for (int q = 0; q < 4; ++q) {
                if (quad[q].empty())
                    continue;
                const std::uint32_t c = build(std::move(quad[q]),
                                              cx + ox[q], cy + oy[q], h2,
                                              depth + 1);
                tree.child[node * 4 + q] = std::int32_t(c);
                tree.subtreeSize[node] += tree.subtreeSize[c];
            }
        }
        return node;
    }
};

} // namespace

QuadTree
buildQuadTree(const Bodies &b)
{
    TreeBuilder tb{b, {}};
    std::vector<std::uint32_t> all(b.count());
    for (std::uint32_t i = 0; i < b.count(); ++i)
        all[i] = i;
    tb.build(std::move(all), 0.5f, 0.5f, 0.5f, 0);
    return tb.tree;
}

std::vector<std::uint32_t>
cpuBhPotential(const Bodies &b, const QuadTree &t, float theta,
               std::uint32_t expand_limit)
{
    std::vector<std::uint32_t> pot(b.count(), 0);
    constexpr float eps = 1e-4f;
    const float theta2 = theta * theta;

    auto contrib = [&](std::uint32_t body, std::uint32_t node)
        -> std::uint32_t {
        const float dx = b.x[body] - t.cx[node];
        const float dy = b.y[body] - t.cy[node];
        const float d2 = dx * dx + dy * dy + eps;
        const float q = t.mass[node] / d2;
        return std::uint32_t(std::int32_t(q * 1024.0f));
    };

    for (std::uint32_t body = 0; body < b.count(); ++body) {
        std::vector<std::uint32_t> stack{0};
        std::uint32_t acc = 0;
        while (!stack.empty()) {
            const std::uint32_t node = stack.back();
            stack.pop_back();
            const float dx = b.x[body] - t.cx[node];
            const float dy = b.y[body] - t.cy[node];
            const float d2 = dx * dx + dy * dy + eps;
            const float size2 = 4.0f * t.half[node] * t.half[node];
            if (t.isLeaf[node]) {
                acc += contrib(body, node);
            } else if (size2 < theta2 * d2) {
                acc += contrib(body, node);
            } else if (t.subtreeSize[node] <= expand_limit) {
                // Direct evaluation of all leaves in the subtree — the
                // piece the nested variants offload to a child launch.
                for (std::uint32_t k = node;
                     k < node + t.subtreeSize[node]; ++k) {
                    if (t.isLeaf[k])
                        acc += contrib(body, k);
                }
            } else {
                for (int q = 0; q < 4; ++q) {
                    const std::int32_t c = t.child[node * 4 + q];
                    if (c >= 0)
                        stack.push_back(std::uint32_t(c));
                }
            }
        }
        pot[body] = acc;
    }
    return pot;
}

} // namespace dtbl
