#include "apps/datasets/graph.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "common/log.hh"
#include "common/rng.hh"

namespace dtbl {
namespace {

constexpr std::uint32_t inf = 0xffffffffu;

CsrGraph
fromDegrees(const std::vector<std::uint32_t> &degrees, Rng &rng)
{
    CsrGraph g;
    g.n = std::uint32_t(degrees.size());
    g.rowPtr.resize(g.n + 1, 0);
    for (std::uint32_t v = 0; v < g.n; ++v)
        g.rowPtr[v + 1] = g.rowPtr[v] + degrees[v];
    g.m = g.rowPtr[g.n];
    g.colIdx.resize(g.m);
    for (std::uint32_t v = 0; v < g.n; ++v) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            std::uint32_t u;
            do {
                u = std::uint32_t(rng.nextBounded(g.n));
            } while (u == v);
            g.colIdx[e] = u;
        }
    }
    return g;
}

} // namespace

std::uint32_t
CsrGraph::maxDegreeVertex() const
{
    std::uint32_t best = 0;
    for (std::uint32_t v = 1; v < n; ++v) {
        if (degree(v) > degree(best))
            best = v;
    }
    return best;
}

double
CsrGraph::degreeCv() const
{
    if (n == 0)
        return 0.0;
    double mean = double(m) / n;
    double var = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
        const double d = double(degree(v)) - mean;
        var += d * d;
    }
    var /= n;
    return mean > 0 ? std::sqrt(var) / mean : 0.0;
}

CsrGraph
makeCitationGraph(std::uint32_t n, std::uint32_t avg_degree,
                  std::uint64_t seed)
{
    Rng rng(seed);
    // Zipf-ish degrees: d = min(maxDeg, avg/2 + pareto tail).
    std::vector<std::uint32_t> degrees(n);
    const std::uint32_t maxDeg = std::min<std::uint32_t>(128, n / 4);
    std::uint64_t total = 0;
    for (auto &d : degrees) {
        const double u = rng.nextDouble();
        const double tail = std::pow(1.0 - u, -0.7) - 1.0; // heavy tail
        d = std::uint32_t(
            std::min<double>(maxDeg, 1.0 + avg_degree * 0.4 * tail));
        total += d;
    }
    // Rescale roughly to the requested average.
    const double scale = double(avg_degree) * n / double(total);
    for (auto &d : degrees) {
        d = std::uint32_t(std::max(1.0, d * scale));
        d = std::min(d, maxDeg);
    }
    return fromDegrees(degrees, rng);
}

CsrGraph
makeRoadGraph(std::uint32_t width, std::uint32_t height, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint32_t n = width * height;
    CsrGraph g;
    g.n = n;
    g.rowPtr.resize(n + 1, 0);
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            const std::uint32_t v = y * width + x;
            // 4-neighborhood, with a few random road closures.
            if (x + 1 < width && !rng.nextBool(0.05)) {
                adj[v].push_back(v + 1);
                adj[v + 1].push_back(v);
            }
            if (y + 1 < height && !rng.nextBool(0.05)) {
                adj[v].push_back(v + width);
                adj[v + width].push_back(v);
            }
        }
    }
    for (std::uint32_t v = 0; v < n; ++v)
        g.rowPtr[v + 1] = g.rowPtr[v] + std::uint32_t(adj[v].size());
    g.m = g.rowPtr[n];
    g.colIdx.resize(g.m);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::copy(adj[v].begin(), adj[v].end(),
                  g.colIdx.begin() + g.rowPtr[v]);
    }
    return g;
}

CsrGraph
makeCageGraph(std::uint32_t n, std::uint32_t avg_degree, std::uint64_t seed)
{
    Rng rng(seed);
    // Near-uniform degrees (avg +- 25%), scattered targets.
    std::vector<std::uint32_t> degrees(n);
    const std::uint32_t lo = std::max<std::uint32_t>(1, avg_degree * 3 / 4);
    const std::uint32_t hi = avg_degree * 5 / 4;
    for (auto &d : degrees)
        d = lo + std::uint32_t(rng.nextBounded(hi - lo + 1));
    return fromDegrees(degrees, rng);
}

CsrGraph
makeGraph500Graph(std::uint32_t n, std::uint32_t degree, std::uint64_t seed)
{
    Rng rng(seed);
    // Balanced: every vertex has exactly `degree` +- 1 edges.
    std::vector<std::uint32_t> degrees(n);
    for (auto &d : degrees)
        d = degree - 1 + std::uint32_t(rng.nextBounded(3));
    return fromDegrees(degrees, rng);
}

CsrGraph
makeFlightGraph(std::uint32_t n, std::uint32_t hubs, std::uint64_t seed)
{
    Rng rng(seed);
    DTBL_ASSERT(hubs > 0 && hubs < n);
    std::vector<std::vector<std::uint32_t>> adj(n);
    // Every non-hub airport connects to 1-3 hubs; hubs interconnect.
    for (std::uint32_t v = hubs; v < n; ++v) {
        const unsigned k = 1 + unsigned(rng.nextBounded(3));
        for (unsigned i = 0; i < k; ++i) {
            const std::uint32_t h = std::uint32_t(rng.nextBounded(hubs));
            adj[v].push_back(h);
            adj[h].push_back(v);
        }
    }
    // Hubs interconnect sparsely (a clique would blow up hub degrees).
    for (std::uint32_t a = 0; a < hubs; ++a) {
        for (unsigned i = 0; i < 4; ++i) {
            std::uint32_t b;
            do {
                b = std::uint32_t(rng.nextBounded(hubs));
            } while (b == a);
            adj[a].push_back(b);
            adj[b].push_back(a);
        }
    }
    CsrGraph g;
    g.n = n;
    g.rowPtr.resize(n + 1, 0);
    for (std::uint32_t v = 0; v < n; ++v)
        g.rowPtr[v + 1] = g.rowPtr[v] + std::uint32_t(adj[v].size());
    g.m = g.rowPtr[n];
    g.colIdx.resize(g.m);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::copy(adj[v].begin(), adj[v].end(),
                  g.colIdx.begin() + g.rowPtr[v]);
    }
    return g;
}

CsrGraph
symmetrize(const CsrGraph &g)
{
    std::vector<std::vector<std::uint32_t>> adj(g.n);
    for (std::uint32_t v = 0; v < g.n; ++v) {
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            if (u == v)
                continue;
            adj[v].push_back(u);
            adj[u].push_back(v);
        }
    }
    CsrGraph s;
    s.n = g.n;
    s.rowPtr.resize(g.n + 1, 0);
    for (std::uint32_t v = 0; v < g.n; ++v) {
        std::sort(adj[v].begin(), adj[v].end());
        adj[v].erase(std::unique(adj[v].begin(), adj[v].end()),
                     adj[v].end());
        s.rowPtr[v + 1] = s.rowPtr[v] + std::uint32_t(adj[v].size());
    }
    s.m = s.rowPtr[g.n];
    s.colIdx.resize(s.m);
    for (std::uint32_t v = 0; v < g.n; ++v) {
        std::copy(adj[v].begin(), adj[v].end(),
                  s.colIdx.begin() + s.rowPtr[v]);
    }
    return s;
}

void
addWeights(CsrGraph &g, std::uint64_t seed)
{
    Rng rng(seed);
    g.weights.resize(g.m);
    for (auto &w : g.weights)
        w = 1 + std::uint32_t(rng.nextBounded(10));
}

std::vector<std::uint32_t>
cpuBfs(const CsrGraph &g, std::uint32_t src)
{
    std::vector<std::uint32_t> dist(g.n, inf);
    dist[src] = 0;
    std::deque<std::uint32_t> q{src};
    while (!q.empty()) {
        const std::uint32_t v = q.front();
        q.pop_front();
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            if (dist[u] == inf) {
                dist[u] = dist[v] + 1;
                q.push_back(u);
            }
        }
    }
    return dist;
}

std::vector<std::uint32_t>
cpuSssp(const CsrGraph &g, std::uint32_t src)
{
    DTBL_ASSERT(!g.weights.empty(), "cpuSssp needs weights");
    std::vector<std::uint32_t> dist(g.n, inf);
    dist[src] = 0;
    using Item = std::pair<std::uint32_t, std::uint32_t>; // (dist, v)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, src});
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
            const std::uint32_t u = g.colIdx[e];
            const std::uint32_t nd = d + g.weights[e];
            if (nd < dist[u]) {
                dist[u] = nd;
                pq.push({nd, u});
            }
        }
    }
    return dist;
}

std::vector<std::uint32_t>
cpuJpColoring(const CsrGraph &g, const std::vector<std::uint32_t> &prio)
{
    std::vector<std::uint32_t> color(g.n, inf);
    std::uint32_t remaining = g.n;
    while (remaining > 0) {
        // Parallel-round semantics: all decisions in a round are based
        // on the colors at the start of the round.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> choose;
        for (std::uint32_t v = 0; v < g.n; ++v) {
            if (color[v] != inf)
                continue;
            bool isMax = true;
            std::uint32_t forbid = 0;
            for (std::uint32_t e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e) {
                const std::uint32_t u = g.colIdx[e];
                if (u == v)
                    continue;
                if (color[u] == inf) {
                    // Priority ties broken by vertex id.
                    if (prio[u] > prio[v] ||
                        (prio[u] == prio[v] && u > v)) {
                        isMax = false;
                    }
                } else if (color[u] < 32) {
                    forbid |= 1u << color[u];
                }
            }
            if (isMax) {
                std::uint32_t c = 0;
                while (c < 32 && (forbid & (1u << c)))
                    ++c;
                choose.emplace_back(v, c);
            }
        }
        DTBL_ASSERT(!choose.empty(), "JP coloring made no progress");
        for (auto [v, c] : choose)
            color[v] = c;
        remaining -= std::uint32_t(choose.size());
    }
    return color;
}

} // namespace dtbl
