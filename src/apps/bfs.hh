/**
 * @file
 * Breadth-First Search (Table 4: citation network, USA road network,
 * cage15 sparse matrix).
 *
 * Level-synchronous frontier BFS. Following the paper's baseline [23]
 * (Merrill et al.), the flat variant is itself load-balanced: small
 * vertices expand inline, while high-degree vertices are deferred to a
 * TB-level expansion pass (one thread block sweeps each big vertex's
 * edge list). The nested variants replace that TB-level expansion with
 * a device kernel / aggregated group per big vertex — the
 * vertex-expansion DFP of the paper's Figure 2(b).
 */

#ifndef DTBL_APPS_BFS_HH
#define DTBL_APPS_BFS_HH

#include "apps/app.hh"
#include "apps/datasets/graph.hh"

namespace dtbl {

class BfsApp : public App
{
  public:
    enum class Dataset { Citation, UsaRoad, Cage15 };

    explicit BfsApp(Dataset d);

    std::string name() const override;
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    /** Degree above which nested variants launch a child. */
    static constexpr std::uint32_t expandThreshold = 32;
    /**
     * Degree above which the flat baseline defers to its TB-level
     * expansion pass (Merrill-style: only monster vertices).
     */
    static constexpr std::uint32_t flatExpandThreshold = 256;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 64;

  private:
    Dataset dataset_;
    CsrGraph graph_;
    std::uint32_t src_ = 0;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;
    /** Flat-mode TB-level expansion pass over deferred big vertices. */
    KernelFuncId bigExpandKernel_ = invalidKernelFunc;

    Addr rowPtrAddr_ = 0;
    Addr colIdxAddr_ = 0;
    Addr distAddr_ = 0;
    Addr frontAddr_[2] = {0, 0};
    Addr nextSizeAddr_ = 0;
    Addr bigListAddr_ = 0;
    Addr bigCountAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_BFS_HH
