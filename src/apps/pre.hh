/**
 * @file
 * Product Recommendation (Table 4: MovieLens) — item-based collaborative
 * filtering. Each item accumulates a user-weighted rating score over its
 * rating list; the per-item list traversal is the DFP. Item popularity
 * is Zipf-distributed, so list lengths span orders of magnitude, and the
 * dynamic workloads are coarse-grained (paper: ~1.5k threads per child).
 */

#ifndef DTBL_APPS_PRE_HH
#define DTBL_APPS_PRE_HH

#include "apps/app.hh"
#include "apps/datasets/generators.hh"

namespace dtbl {

class PreApp : public App
{
  public:
    PreApp() = default;

    std::string name() const override { return "pre_movielens"; }
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t expandThreshold = 64;
    static constexpr std::uint32_t childTbSize = 128;
    static constexpr std::uint32_t parentTbSize = 64;

  private:
    Ratings ratings_;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr itemPtrAddr_ = 0;
    Addr userIdxAddr_ = 0;
    Addr ratingAddr_ = 0;
    Addr userWeightAddr_ = 0;
    Addr scoreAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_PRE_HH
