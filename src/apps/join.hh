/**
 * @file
 * Relational hash join (Table 4: uniform / Gaussian key distributions).
 *
 * S is pre-partitioned into hash buckets; one thread per R tuple probes
 * its bucket. The probe loop over the bucket is the DFP: with Gaussian
 * keys a few buckets are huge, causing severe imbalance in the flat
 * version — nested variants launch a child per large bucket probe.
 */

#ifndef DTBL_APPS_JOIN_HH
#define DTBL_APPS_JOIN_HH

#include "apps/app.hh"
#include "apps/datasets/generators.hh"

namespace dtbl {

class JoinApp : public App
{
  public:
    enum class Dataset { Uniform, Gaussian };

    explicit JoinApp(Dataset d);

    std::string name() const override;
    void build(Program &prog, Mode mode) override;
    void setup(Gpu &gpu) override;
    void execute(Gpu &gpu, Mode mode) override;
    bool verify(Gpu &gpu) override;

    static constexpr std::uint32_t expandThreshold = 32;
    static constexpr std::uint32_t childTbSize = 32;
    static constexpr std::uint32_t parentTbSize = 64;

  private:
    Dataset dataset_;
    JoinData data_;

    KernelFuncId parentKernel_ = invalidKernelFunc;
    KernelFuncId childKernel_ = invalidKernelFunc;

    Addr rKeysAddr_ = 0;
    Addr sKeysAddr_ = 0;
    Addr bucketStartAddr_ = 0;
    Addr bucketCountAddr_ = 0;
    Addr outCountAddr_ = 0;
};

} // namespace dtbl

#endif // DTBL_APPS_JOIN_HH
