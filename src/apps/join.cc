#include "apps/join.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

/** hash = (key * 2654435761) % buckets, same as joinHash(). */
Reg
emitHash(KernelBuilder &b, Reg key, Val buckets)
{
    Reg h = b.mul(key, 2654435761u);
    return b.rem(h, buckets);
}

/**
 * Child params: [0]=sKeys [4]=probe key [8]=bucket start [12]=count
 *               [16]=out address (per-R counter)
 */
KernelFuncId
buildProbeKernel(Program &prog)
{
    KernelBuilder b("join_probe", Dim3{JoinApp::childTbSize}, 0, 20);
    Reg gid = b.globalThreadIdX();
    Reg count = b.ldParam(12);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, count);
    b.exitIf(oob);
    Reg sKeys = b.ldParam(0);
    Reg key = b.ldParam(4);
    Reg start = b.ldParam(8);
    Reg outAddr = b.ldParam(16);
    Reg e = b.add(start, gid);
    Reg s = b.ld(MemSpace::Global, b.add(sKeys, b.shl(e, 2)));
    Pred match = b.setp(CmpOp::Eq, DataType::U32, s, key);
    b.if_(match, [&] {
        b.atom(AtomOp::Add, DataType::U32, outAddr, Val(1u));
    });
    return b.build(prog);
}

/**
 * Parent params: [0]=nR [4]=rKeys [8]=sKeys [12]=bucketStart
 *                [16]=bucketCount [20]=outCount [24]=numBuckets
 */
KernelFuncId
buildParentKernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("join_parent_") + modeName(mode),
                    Dim3{JoinApp::parentTbSize}, 0, 28);
    Reg tid = b.globalThreadIdX();
    Reg nR = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nR);
    b.exitIf(oob);
    Reg rKeys = b.ldParam(4);
    Reg sKeys = b.ldParam(8);
    Reg bucketStart = b.ldParam(12);
    Reg bucketCount = b.ldParam(16);
    Reg outCount = b.ldParam(20);
    Reg numBuckets = b.ldParam(24);

    Reg key = b.ld(MemSpace::Global, b.add(rKeys, b.shl(tid, 2)));
    Reg h = emitHash(b, key, numBuckets);
    Reg h4 = b.shl(h, 2);
    Reg start = b.ld(MemSpace::Global, b.add(bucketStart, h4));
    Reg count = b.ld(MemSpace::Global, b.add(bucketCount, h4));
    Reg outAddr = b.add(outCount, b.shl(tid, 2));

    auto inlineProbe = [&] {
        Reg acc = b.mov(0u);
        Reg end = b.add(start, count);
        b.forRange(start, end, [&](Reg e) {
            Reg s = b.ld(MemSpace::Global, b.add(sKeys, b.shl(e, 2)));
            Pred match = b.setp(CmpOp::Eq, DataType::U32, s, key);
            Reg one = b.selp(match, 1u, 0u);
            b.binaryTo(acc, Opcode::Add, DataType::U32, acc, one);
        });
        b.st(MemSpace::Global, outAddr, acc);
    };

    if (mode == Mode::Flat) {
        inlineProbe();
    } else {
        Pred big = b.setp(CmpOp::Gt, DataType::U32, count,
                          Val(JoinApp::expandThreshold));
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(count, JoinApp::childTbSize - 1),
                                 Val(JoinApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 20, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, sKeys, 0);
                    b.st(MemSpace::Global, buf, key, 4);
                    b.st(MemSpace::Global, buf, start, 8);
                    b.st(MemSpace::Global, buf, count, 12);
                    b.st(MemSpace::Global, buf, outAddr, 16);
                });
            },
            inlineProbe);
    }
    return b.build(prog);
}

} // namespace

JoinApp::JoinApp(Dataset d) : dataset_(d)
{
}

std::string
JoinApp::name() const
{
    return dataset_ == Dataset::Uniform ? "join_uniform" : "join_gaussian";
}

void
JoinApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildProbeKernel(prog);
    parentKernel_ = buildParentKernel(prog, mode, childKernel_);
}

void
JoinApp::setup(Gpu &gpu)
{
    const bool gaussian = dataset_ == Dataset::Gaussian;
    data_ = makeJoinData(8000, 24000, 2048, gaussian, 0x10b1 + gaussian);

    GlobalMemory &mem = gpu.mem();
    rKeysAddr_ = mem.upload(data_.rKeys);
    sKeysAddr_ = mem.upload(data_.sKeys);
    bucketStartAddr_ = mem.upload(data_.bucketStart);
    bucketCountAddr_ = mem.upload(data_.bucketCount);
    std::vector<std::uint32_t> zeros(data_.rKeys.size(), 0);
    outCountAddr_ = mem.upload(zeros);
}

void
JoinApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    const auto nR = std::uint32_t(data_.rKeys.size());
    gpu.launch(parentKernel_, Dim3{(nR + parentTbSize - 1) / parentTbSize},
               {nR, std::uint32_t(rKeysAddr_), std::uint32_t(sKeysAddr_),
                std::uint32_t(bucketStartAddr_),
                std::uint32_t(bucketCountAddr_),
                std::uint32_t(outCountAddr_), data_.numBuckets});
    gpu.synchronize();
}

bool
JoinApp::verify(Gpu &gpu)
{
    const auto got = gpu.mem().download<std::uint32_t>(
        outCountAddr_, data_.rKeys.size());
    return got == cpuJoinCounts(data_);
}

} // namespace dtbl
