#include "apps/regx.hh"

#include "common/log.hh"

namespace dtbl {
namespace {

/**
 * Emit full verification of one candidate position: re-derive the
 * candidate mask from the first byte, then compare every masked pattern.
 * Adds the number of matches to @p acc (register accumulate) or directly
 * to @p atomic_out when valid (exactly one of the two is used).
 */
void
emitVerify(KernelBuilder &b, Reg text_base, Reg len, Reg pos, Reg pats,
           Reg pat_len, Reg fbm, Reg pat_count, Reg acc, Reg atomic_out)
{
    Reg byte = b.ld(MemSpace::Global, b.add(text_base, pos), 0, 1);
    Reg mask = b.ld(MemSpace::Global, b.add(fbm, b.shl(byte, 2)));
    b.forRange(Val(0u), pat_count, [&](Reg pi) {
        Reg bit = b.and_(b.shr(mask, pi), Val(1u));
        Pred cand = b.setp(CmpOp::Eq, DataType::U32, bit, Val(1u));
        b.if_(cand, [&] {
            Reg plen = b.ld(MemSpace::Global, b.add(pat_len, b.shl(pi, 2)));
            Reg endPos = b.add(pos, plen);
            Pred fits = b.setp(CmpOp::Le, DataType::U32, endPos, len);
            b.if_(fits, [&] {
                Reg ok = b.mov(1u);
                Reg patBase = b.add(pats, b.shl(pi, 4)); // 16B slots
                b.forRange(Val(0u), plen, [&](Reg k) {
                    Reg t = b.ld(MemSpace::Global,
                                 b.add(text_base, b.add(pos, k)), 0, 1);
                    Reg p = b.ld(MemSpace::Global, b.add(patBase, k), 0,
                                 1);
                    Pred ne = b.setp(CmpOp::Ne, DataType::U32, t, p);
                    b.if_(ne, [&] { b.movTo(ok, Val(0u)); });
                });
                Pred hit = b.setp(CmpOp::Eq, DataType::U32, ok, Val(1u));
                b.if_(hit, [&] {
                    if (acc.valid()) {
                        b.binaryTo(acc, Opcode::Add, DataType::U32, acc,
                                   Val(1u));
                    } else {
                        b.atom(AtomOp::Add, DataType::U32, atomic_out,
                               Val(1u));
                    }
                });
            });
        });
    });
}

/**
 * Child params: [0]=textBase [4]=len [8]=candBase [12]=candCount
 *               [16]=pats [20]=patLen [24]=fbm [28]=out addr
 *               [32]=patCount
 */
KernelFuncId
buildVerifyKernel(Program &prog)
{
    KernelBuilder b("regx_verify", Dim3{RegxApp::childTbSize}, 0, 36);
    Reg gid = b.globalThreadIdX();
    Reg candCount = b.ldParam(12);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, gid, candCount);
    b.exitIf(oob);
    Reg textBase = b.ldParam(0);
    Reg len = b.ldParam(4);
    Reg candBase = b.ldParam(8);
    Reg pats = b.ldParam(16);
    Reg patLen = b.ldParam(20);
    Reg fbm = b.ldParam(24);
    Reg outAddr = b.ldParam(28);
    Reg patCount = b.ldParam(32);
    Reg pos = b.ld(MemSpace::Global, b.add(candBase, b.shl(gid, 2)));
    emitVerify(b, textBase, len, pos, pats, patLen, fbm, patCount, Reg{},
               outAddr);
    return b.build(prog);
}

/**
 * Parent params: [0]=numPackets [4]=text [8]=offsets [12]=lengths
 *                [16]=pats [20]=patLen [24]=fbm [28]=candScratch
 *                [32]=out [36]=patCount
 */
KernelFuncId
buildParentKernel(Program &prog, Mode mode, KernelFuncId child)
{
    KernelBuilder b(std::string("regx_parent_") + modeName(mode),
                    Dim3{RegxApp::parentTbSize}, 0, 40);
    Reg tid = b.globalThreadIdX();
    Reg numPackets = b.ldParam(0);
    Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, numPackets);
    b.exitIf(oob);
    Reg text = b.ldParam(4);
    Reg offsets = b.ldParam(8);
    Reg lengths = b.ldParam(12);
    Reg pats = b.ldParam(16);
    Reg patLen = b.ldParam(20);
    Reg fbm = b.ldParam(24);
    Reg candScratch = b.ldParam(28);
    Reg out = b.ldParam(32);
    Reg patCount = b.ldParam(36);

    Reg t4 = b.shl(tid, 2);
    Reg off = b.ld(MemSpace::Global, b.add(offsets, t4));
    Reg len = b.ld(MemSpace::Global, b.add(lengths, t4));
    Reg textBase = b.add(text, off);
    Reg candBase =
        b.add(candScratch, b.mul(tid, RegxApp::maxCandidates * 4));
    Reg outAddr = b.add(out, t4);

    // Filter stage: collect candidate positions (bounded).
    Reg cnt = b.mov(0u);
    b.forRange(Val(0u), len, [&](Reg pos) {
        Reg byte = b.ld(MemSpace::Global, b.add(textBase, pos), 0, 1);
        Reg mask = b.ld(MemSpace::Global, b.add(fbm, b.shl(byte, 2)));
        Pred hasCand = b.setp(CmpOp::Ne, DataType::U32, mask, Val(0u));
        b.if_(hasCand, [&] {
            Pred room = b.setp(CmpOp::Lt, DataType::U32, cnt,
                               Val(RegxApp::maxCandidates));
            b.if_(room, [&] {
                b.st(MemSpace::Global, b.add(candBase, b.shl(cnt, 2)),
                     pos);
                b.binaryTo(cnt, Opcode::Add, DataType::U32, cnt, Val(1u));
            });
        });
    });

    auto inlineVerify = [&] {
        Reg acc = b.mov(0u);
        b.forRange(Val(0u), cnt, [&](Reg ci) {
            Reg pos =
                b.ld(MemSpace::Global, b.add(candBase, b.shl(ci, 2)));
            emitVerify(b, textBase, len, pos, pats, patLen, fbm, patCount,
                       acc, Reg{});
        });
        b.st(MemSpace::Global, outAddr, acc);
    };

    if (mode == Mode::Flat) {
        inlineVerify();
    } else {
        Pred big = b.setp(CmpOp::Gt, DataType::U32, cnt,
                          Val(RegxApp::expandThreshold));
        b.ifElse(
            big,
            [&] {
                Reg ntbs = b.div(b.add(cnt, RegxApp::childTbSize - 1),
                                 Val(RegxApp::childTbSize));
                emitDynamicLaunch(b, mode, child, ntbs, 36, [&](Reg buf) {
                    b.st(MemSpace::Global, buf, textBase, 0);
                    b.st(MemSpace::Global, buf, len, 4);
                    b.st(MemSpace::Global, buf, candBase, 8);
                    b.st(MemSpace::Global, buf, cnt, 12);
                    b.st(MemSpace::Global, buf, pats, 16);
                    b.st(MemSpace::Global, buf, patLen, 20);
                    b.st(MemSpace::Global, buf, fbm, 24);
                    b.st(MemSpace::Global, buf, outAddr, 28);
                    b.st(MemSpace::Global, buf, patCount, 32);
                });
            },
            inlineVerify);
    }
    return b.build(prog);
}

} // namespace

RegxApp::RegxApp(Dataset d) : dataset_(d)
{
}

std::string
RegxApp::name() const
{
    return dataset_ == Dataset::Darpa ? "regx_darpa" : "regx_string";
}

void
RegxApp::build(Program &prog, Mode mode)
{
    childKernel_ = buildVerifyKernel(prog);
    parentKernel_ = buildParentKernel(prog, mode, childKernel_);
}

void
RegxApp::setup(Gpu &gpu)
{
    if (dataset_ == Dataset::Darpa) {
        patterns_ = makePatterns(24, 3, 10, 0, 0xda27a);
        packets_ = makeDarpaPackets(700, 220, patterns_, 0xda27a9);
    } else {
        patterns_ = makePatterns(16, 3, 8, 4, 0x57219);
        packets_ = makeRandomStrings(500, 180, 4, 0x572199);
    }

    GlobalMemory &mem = gpu.mem();
    textAddr_ = mem.upload(packets_.bytes);
    offsetsAddr_ = mem.upload(packets_.offsets);
    lengthsAddr_ = mem.upload(packets_.lengths);
    patBytesAddr_ = mem.upload(patterns_.bytes);
    patLenAddr_ = mem.upload(patterns_.lengths);
    fbmAddr_ = mem.upload(patterns_.firstByteMask);
    candAddr_ = mem.allocate(std::uint64_t(packets_.count()) *
                             maxCandidates * 4);
    std::vector<std::uint32_t> zeros(packets_.count(), 0);
    outAddr_ = mem.upload(zeros);
}

void
RegxApp::execute(Gpu &gpu, Mode mode)
{
    (void)mode;
    const std::uint32_t n = packets_.count();
    gpu.launch(parentKernel_, Dim3{(n + parentTbSize - 1) / parentTbSize},
               {n, std::uint32_t(textAddr_), std::uint32_t(offsetsAddr_),
                std::uint32_t(lengthsAddr_), std::uint32_t(patBytesAddr_),
                std::uint32_t(patLenAddr_), std::uint32_t(fbmAddr_),
                std::uint32_t(candAddr_), std::uint32_t(outAddr_),
                patterns_.count});
    gpu.synchronize();
}

bool
RegxApp::verify(Gpu &gpu)
{
    const auto got =
        gpu.mem().download<std::uint32_t>(outAddr_, packets_.count());
    return got == cpuMatchCounts(packets_, patterns_, maxCandidates);
}

} // namespace dtbl
