#include "core/agt.hh"

#include "common/log.hh"

namespace dtbl {

Agt::Agt(unsigned num_slots, TraceSink *trace, Pmu *pmu)
    : numSlots_(num_slots), trace_(trace), slots_(num_slots, -1)
{
    DTBL_ASSERT(num_slots > 0 && (num_slots & (num_slots - 1)) == 0,
                "AGT size must be a power of two: ", num_slots);
    if (pmu) {
        inserts_ = pmu->counter("agt.inserts", PmuUnit::Agt);
        spills_ = pmu->counter("agt.spills", PmuUnit::Agt);
        releases_ = pmu->counter("agt.releases", PmuUnit::Agt);
        pmu->probe("agt.live", PmuUnit::Agt,
                   [this] { return std::uint64_t(liveCount_); });
        pmu->probe("agt.on_chip", PmuUnit::Agt,
                   [this] { return std::uint64_t(onChipCount_); });
        residencyHist_ = pmu->histogram("agt.residency", PmuUnit::Agt);
    }
}

std::int32_t
Agt::allocate(const AggGroup &proto, unsigned hw_tid, Cycle now)
{
    std::int32_t id;
    if (!freeIds_.empty()) {
        id = freeIds_.back();
        freeIds_.pop_back();
        pool_[id] = proto;
        live_[id] = true;
    } else {
        id = std::int32_t(pool_.size());
        pool_.push_back(proto);
        live_.push_back(true);
    }
    ++liveCount_;

    AggGroup &g = pool_[id];
    g.allocCycle = now;
    // Paper hash: ind = hw_tid & (AGT_size - 1). With our scaled-down
    // benchmarks the same physical thread slots launch again while
    // their previous groups are still pending, so a pure hw_tid hash
    // saturates at the slot-reuse collision rate independent of the
    // table size. Mixing in an allocation sequence keeps the collision
    // probability proportional to table occupancy, which is the
    // behaviour Figure 12 measures.
    const unsigned slot = (hw_tid + allocSeq_++) & (numSlots_ - 1);
    if (slots_[slot] < 0) {
        slots_[slot] = id;
        g.onChip = true;
        g.agtSlot = std::int32_t(slot);
        ++onChipCount_;
        inserts_.add();
        TraceSink::emit(trace_, now, TraceEvent::AgtInsert, traceLaneAgt,
                        std::uint64_t(id), slot);
    } else {
        g.onChip = false;
        g.agtSlot = -1;
        spills_.add();
        TraceSink::emit(trace_, now, TraceEvent::AgtSpill, traceLaneAgt,
                        std::uint64_t(id), hw_tid);
    }
    return id;
}

void
Agt::release(std::int32_t id, Cycle now)
{
    AggGroup &g = group(id);
    releases_.add();
    PmuHistogram::note(residencyHist_, now - g.allocCycle);
    TraceSink::emit(trace_, now, TraceEvent::AgtRelease, traceLaneAgt,
                    std::uint64_t(id), g.onChip);
    if (g.onChip) {
        DTBL_ASSERT(g.agtSlot >= 0 && slots_[g.agtSlot] == id,
                    "AGT slot bookkeeping corrupt");
        slots_[g.agtSlot] = -1;
        --onChipCount_;
    }
    live_[id] = false;
    --liveCount_;
    freeIds_.push_back(id);
}

AggGroup &
Agt::group(std::int32_t id)
{
    DTBL_ASSERT(id >= 0 && std::size_t(id) < pool_.size() && live_[id],
                "bad AGEI ", id);
    return pool_[id];
}

const AggGroup &
Agt::group(std::int32_t id) const
{
    DTBL_ASSERT(id >= 0 && std::size_t(id) < pool_.size() && live_[id],
                "bad AGEI ", id);
    return pool_[id];
}

} // namespace dtbl
