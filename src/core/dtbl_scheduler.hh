/**
 * @file
 * The DTBL coalescing decision procedure (Figure 5 of the paper).
 *
 * Given an aggregated-group launch request and the current Kernel
 * Distributor contents, decide whether the group coalesces with an
 * eligible kernel (same entry PC / function, TB shape and shared-memory
 * size) and allocate its AGE, or whether it must fall back to a regular
 * device-kernel launch. Linking the new AGE into the eligible kernel's
 * NAGEI/LAGEI scheduling pool is done by the Kernel Distributor, which
 * owns those registers.
 */

#ifndef DTBL_CORE_DTBL_SCHEDULER_HH
#define DTBL_CORE_DTBL_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "core/agt.hh"
#include "stats/metrics.hh"
#include "stats/trace.hh"

namespace dtbl {

/** Minimal view of a Kernel Distributor entry for eligibility checks. */
struct CoalesceTarget
{
    bool valid = false;
    /** The entry can no longer accept new groups (being torn down). */
    bool accepting = false;
    KernelFuncId func = invalidKernelFunc;
    std::uint32_t sharedMemBytes = 0;
};

/** One aggregated-group launch produced by a GPU thread. */
struct AggLaunchRequest
{
    KernelFuncId func = invalidKernelFunc;
    std::uint32_t numTbs = 0;
    Addr paramAddr = 0;
    std::uint32_t sharedMemBytes = 0;
    /** Per-SMX hardware thread index of the launching thread (hash key). */
    unsigned hwTid = 0;
    Cycle launchCycle = 0;
    std::uint64_t footprintBytes = 0;
};

struct CoalesceResult
{
    bool coalesced = false;
    /** Eligible KDE index when coalesced. */
    std::int32_t kdeIdx = -1;
    /** Allocated AGE id when coalesced. */
    std::int32_t agei = -1;
    /** Whether the AGE got an on-chip AGT slot. */
    bool onChip = false;
};

class DtblScheduler
{
  public:
    DtblScheduler(Agt &agt, const GpuConfig &cfg, SimStats &stats,
                  TraceSink *trace = nullptr);

    /**
     * Run the Figure-5 procedure for one request.
     * On success the AGE is allocated (not yet linked); on failure the
     * caller must launch the group as a device kernel.
     */
    CoalesceResult process(const AggLaunchRequest &req,
                           const std::vector<CoalesceTarget> &kdes,
                           Cycle now);

    /**
     * Per-request launch-side latency (KDE search pipelined across the
     * warp + AGT probe); zero in the ideal configuration.
     */
    Cycle launchLatency(unsigned groups_in_warp) const;

  private:
    Agt &agt_;
    const GpuConfig &cfg_;
    SimStats &stats_;
    TraceSink *trace_;
};

} // namespace dtbl

#endif // DTBL_CORE_DTBL_SCHEDULER_HH
