/**
 * @file
 * Aggregated Group Table (AGT) — the main microarchitecture extension of
 * the DTBL paper (Section 4.2, Figure 4).
 *
 * Each Aggregated Group Entry (AGE) tracks one dynamically launched
 * aggregated group: its TB count, parameter address, the Next link that
 * chains groups coalesced to the same kernel, and the ExeBL count of its
 * TBs still executing. The table is a fixed-size on-chip SRAM indexed by
 * a hash of the launching hardware thread id; when the hashed slot is
 * occupied, the group's metadata stays in global memory and the SMX
 * scheduler pays a fetch penalty when it schedules the group.
 *
 * The implementation separates the *logical* group record (which must
 * exist for correctness even when the AGT overflows — the hardware keeps
 * it in global memory) from the *on-chip slot* occupancy that the AGT
 * size limits. Group records live in a pooled free list so AGEI values
 * are stable until release.
 */

#ifndef DTBL_CORE_AGT_HH
#define DTBL_CORE_AGT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/pmu.hh"
#include "stats/trace.hh"

namespace dtbl {

/** Logical Aggregated Group Entry (AGE) contents plus tracking state. */
struct AggGroup
{
    /** TBs in the aggregated group (AggDim; x-dimension only). */
    std::uint32_t numTbs = 0;
    /** Next TB (within the group) to distribute to an SMX. */
    std::uint32_t nextTb = 0;
    /** Parameter-buffer device address (Param field of the AGE). */
    Addr paramAddr = 0;
    /** Next AGE in the per-kernel scheduling list; -1 terminates. */
    std::int32_t next = -1;
    /** TBs of this group currently executing on SMXs (ExeBL). */
    std::uint32_t exeBl = 0;

    /** Kernel Distributor entry this group coalesced to (KDEI). */
    std::uint32_t kdeIdx = 0;
    /** True when the group metadata resides in an on-chip AGT slot. */
    bool onChip = false;
    /** Occupied AGT slot when onChip (for release). */
    std::int32_t agtSlot = -1;

    /** Launch command time (waiting-time metric, Figure 9). */
    Cycle launchCycle = 0;
    /** Allocation time (AGT residency histogram; set by allocate()). */
    Cycle allocCycle = 0;
    /** Set when the first TB of the group is dispatched. */
    bool firstDispatchDone = false;
    /**
     * For spilled groups: the scheduler must fetch the metadata from
     * global memory before distributing; this is the ready cycle.
     */
    Cycle fetchReadyAt = 0;
    bool fetchIssued = false;

    /** Reserved launch-metadata bytes to release when fully scheduled. */
    std::uint64_t footprintBytes = 0;

    bool
    fullyDistributed() const
    {
        return nextTb >= numTbs;
    }
};

/**
 * The AGT: a pool of AggGroup records plus the on-chip slot table.
 */
class Agt
{
  public:
    /**
     * @param num_slots on-chip entries; must be a power of two.
     * @param trace optional event sink (AgtInsert/AgtSpill/AgtRelease).
     * @param pmu optional counter registry (agt.* counters + probes).
     */
    explicit Agt(unsigned num_slots, TraceSink *trace = nullptr,
                 Pmu *pmu = nullptr);

    /**
     * Allocate a group record; attempts to claim the on-chip slot
     * selected by the paper's hash (hw_tid & (AGT_size - 1)).
     * @return the stable group id (AGEI).
     */
    std::int32_t allocate(const AggGroup &proto, unsigned hw_tid,
                          Cycle now = 0);

    /** Release a completed group (frees its AGT slot if on-chip). */
    void release(std::int32_t id, Cycle now = 0);

    AggGroup &group(std::int32_t id);
    const AggGroup &group(std::int32_t id) const;

    unsigned numSlots() const { return numSlots_; }
    /** Groups currently holding an on-chip slot. */
    unsigned onChipCount() const { return onChipCount_; }
    /** Live group records (on-chip + spilled). */
    unsigned liveCount() const { return liveCount_; }

  private:
    unsigned numSlots_;
    TraceSink *trace_;
    PmuCounter inserts_;
    PmuCounter spills_;
    PmuCounter releases_;
    PmuHistogram *residencyHist_ = nullptr;
    std::vector<std::int32_t> slots_; //!< slot -> group id (-1 free)
    std::vector<AggGroup> pool_;
    std::vector<std::int32_t> freeIds_;
    std::vector<bool> live_;
    unsigned onChipCount_ = 0;
    unsigned liveCount_ = 0;
    unsigned allocSeq_ = 0;
};

} // namespace dtbl

#endif // DTBL_CORE_AGT_HH
