#include "core/dtbl_scheduler.hh"

#include "common/log.hh"

namespace dtbl {

DtblScheduler::DtblScheduler(Agt &agt, const GpuConfig &cfg, SimStats &stats,
                             TraceSink *trace)
    : agt_(agt), cfg_(cfg), stats_(stats), trace_(trace)
{
}

CoalesceResult
DtblScheduler::process(const AggLaunchRequest &req,
                       const std::vector<CoalesceTarget> &kdes, Cycle now)
{
    CoalesceResult res;

    // Search the KDE for an eligible kernel: same entry PC (function id)
    // and TB configuration. In this ISA the TB shape is a static property
    // of the function, so matching the function id matches the shape;
    // shared-memory size is checked explicitly.
    std::int32_t eligible = -1;
    for (std::size_t i = 0; i < kdes.size(); ++i) {
        const CoalesceTarget &t = kdes[i];
        if (t.valid && t.accepting && t.func == req.func &&
            t.sharedMemBytes == req.sharedMemBytes) {
            eligible = std::int32_t(i);
            break;
        }
    }
    if (eligible < 0)
        return res;

    AggGroup proto;
    proto.numTbs = req.numTbs;
    proto.paramAddr = req.paramAddr;
    proto.kdeIdx = std::uint32_t(eligible);
    proto.launchCycle = req.launchCycle;
    proto.footprintBytes = req.footprintBytes;
    const std::int32_t agei = agt_.allocate(proto, req.hwTid, now);
    AggGroup &g = agt_.group(agei);
    if (!g.onChip) {
        ++stats_.agtOverflows;
        // Metadata stays in global memory; the SMX scheduler will pay
        // the fetch penalty when it reaches this group (4.3).
        g.fetchReadyAt = 0;
        g.fetchIssued = false;
    }

    ++stats_.aggGroupsCoalesced;
    TraceSink::emit(trace_, now, TraceEvent::AggCoalesce, traceLaneAgt,
                    std::uint64_t(agei), std::uint64_t(eligible));
    res.coalesced = true;
    res.kdeIdx = eligible;
    res.agei = agei;
    res.onChip = g.onChip;
    return res;
}

Cycle
DtblScheduler::launchLatency(unsigned groups_in_warp) const
{
    if (!cfg_.modelLaunchLatency)
        return 0;
    // KDE search is pipelined across the warp's simultaneous launches
    // (max 32 cycles, 1 per entry); each group adds one AGT probe cycle.
    return cfg_.kdeSearchCycles + cfg_.agtProbeCycles * groups_in_warp;
}

} // namespace dtbl
