#include "stats/busy_tracker.hh"

#include "common/log.hh"

namespace dtbl {

void
BusyTracker::record(Cycle start, Cycle end)
{
    if (end <= start)
        return;
    const Cycle effStart = start > coveredUntil_ ? start : coveredUntil_;
    if (end > effStart)
        busy_ += end - effStart;
    if (end > coveredUntil_)
        coveredUntil_ = end;
}

void
BusyTracker::reset()
{
    busy_ = 0;
    coveredUntil_ = 0;
}

} // namespace dtbl
