#include "stats/trace.hh"

#include <algorithm>

#include "common/log.hh"
#include "stats/host_prof.hh"

namespace dtbl {

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::KmuPushHost: return "KmuPushHost";
      case TraceEvent::KmuPushDevice: return "KmuPushDevice";
      case TraceEvent::KmuPop: return "KmuPop";
      case TraceEvent::KdeAlloc: return "KdeAlloc";
      case TraceEvent::KdeRelease: return "KdeRelease";
      case TraceEvent::AggLaunch: return "AggLaunch";
      case TraceEvent::AggCoalesce: return "AggCoalesce";
      case TraceEvent::AggFallback: return "AggFallback";
      case TraceEvent::AgtInsert: return "AgtInsert";
      case TraceEvent::AgtSpill: return "AgtSpill";
      case TraceEvent::AgtRelease: return "AgtRelease";
      case TraceEvent::TbDispatch: return "TbDispatch";
      case TraceEvent::TbRetire: return "TbRetire";
      case TraceEvent::L1Miss: return "L1Miss";
      case TraceEvent::L2Miss: return "L2Miss";
      case TraceEvent::DramRead: return "DramRead";
      case TraceEvent::DramWrite: return "DramWrite";
      case TraceEvent::MshrMerge: return "MshrMerge";
      case TraceEvent::L2BankConflict: return "L2BankConflict";
    }
    return "?";
}

const char *
traceEventCategory(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::KmuPushHost:
      case TraceEvent::KmuPushDevice:
      case TraceEvent::KmuPop:
        return "kmu";
      case TraceEvent::KdeAlloc:
      case TraceEvent::KdeRelease:
        return "kde";
      case TraceEvent::AggLaunch:
      case TraceEvent::AggCoalesce:
      case TraceEvent::AggFallback:
        return "agg";
      case TraceEvent::AgtInsert:
      case TraceEvent::AgtSpill:
      case TraceEvent::AgtRelease:
        return "agt";
      case TraceEvent::TbDispatch:
      case TraceEvent::TbRetire:
        return "smx";
      case TraceEvent::L1Miss:
      case TraceEvent::L2Miss:
      case TraceEvent::DramRead:
      case TraceEvent::DramWrite:
      case TraceEvent::MshrMerge:
      case TraceEvent::L2BankConflict:
        return "mem";
    }
    return "?";
}

namespace {

constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

/** FNV-1a over the 8 little-endian bytes of @p v. */
inline std::uint64_t
fnvFold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= fnvPrime;
    }
    return h;
}

} // namespace

TraceSink::~TraceSink()
{
    closeJson();
}

void
TraceSink::recordImpl(Cycle cycle, TraceEvent ev, std::uint32_t unit,
                      std::uint64_t arg0, std::uint64_t arg1)
{
    std::uint64_t h = hash_;
    h = fnvFold(h, cycle);
    h = fnvFold(h, static_cast<std::uint64_t>(ev));
    h = fnvFold(h, unit);
    h = fnvFold(h, arg0);
    h = fnvFold(h, arg1);
    hash_ = h;
    ++total_;
    ++counts_[static_cast<std::size_t>(ev)];

    if (ringCap_ == 0 && !json_)
        return;

    const TraceRecord r{cycle, ev, unit, arg0, arg1};
    if (ringCap_ > 0) {
        if (ring_.size() < ringCap_) {
            ring_.push_back(r);
        } else {
            ring_[ringNext_] = r;
            ringWrapped_ = true;
        }
        ringNext_ = (ringNext_ + 1) % ringCap_;
    }
    if (json_) {
        DTBL_HPROF_SCOPE("trace-json");
        writeJson(r);
    }
}

TraceSummary
TraceSink::summary() const
{
    TraceSummary s;
    s.hash = hash_;
    s.total = total_;
    s.counts = counts_;
    return s;
}

void
TraceSink::setCapture(std::size_t capacity)
{
    ringCap_ = capacity;
    ring_.clear();
    ring_.reserve(std::min<std::size_t>(capacity, 1 << 20));
    ringNext_ = 0;
    ringWrapped_ = false;
}

std::vector<TraceRecord>
TraceSink::captured() const
{
    if (!ringWrapped_)
        return ring_;
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(ringNext_ + i) % ring_.size()]);
    return out;
}

void
TraceSink::nameLane(std::uint32_t tid, std::string name)
{
    laneNames_.emplace_back(tid, std::move(name));
}

bool
TraceSink::openJson(const std::string &path)
{
    closeJson();
    json_ = std::fopen(path.c_str(), "w");
    if (!json_) {
        DTBL_WARN("trace: cannot open ", path, " for writing");
        return false;
    }
    jsonFirst_ = true;
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", json_);
    // Metadata: lane (thread) names registered by the Gpu.
    for (const auto &[tid, name] : laneNames_) {
        std::fprintf(json_,
                     "%s\n{\"name\":\"thread_name\",\"ph\":\"M\","
                     "\"pid\":0,\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                     jsonFirst_ ? "" : ",", tid, name.c_str());
        jsonFirst_ = false;
    }
    return true;
}

void
TraceSink::writeJson(const TraceRecord &r)
{
    // One instant event per record; ts is the simulated cycle.
    std::fprintf(
        json_,
        "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":0,\"tid\":%u,"
        "\"args\":{\"a0\":%llu,\"a1\":%llu}}",
        jsonFirst_ ? "" : ",", traceEventName(r.event),
        traceEventCategory(r.event),
        static_cast<unsigned long long>(r.cycle), r.unit,
        static_cast<unsigned long long>(r.arg0),
        static_cast<unsigned long long>(r.arg1));
    jsonFirst_ = false;
}

void
TraceSink::closeJson()
{
    if (!json_)
        return;
    std::fputs("\n]}\n", json_);
    std::fclose(json_);
    json_ = nullptr;
}

} // namespace dtbl
