/**
 * @file
 * Run-level statistics collected by the simulator and the derived metrics
 * reported in the paper's evaluation (Figures 6-12).
 */

#ifndef DTBL_STATS_METRICS_HH
#define DTBL_STATS_METRICS_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "stats/pmu.hh"

namespace dtbl {

/**
 * Raw counters accumulated while the simulation runs. One instance lives
 * in the Gpu and is shared (by reference) with every subsystem.
 */
struct SimStats
{
    // --- control flow (Figure 6) -------------------------------------
    /** Warp instructions issued. */
    std::uint64_t warpInstrsIssued = 0;
    /** Sum of popcount(active mask) over issued warp instructions. */
    std::uint64_t activeLaneSum = 0;

    // --- DRAM (Figure 7) ----------------------------------------------
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    /**
     * DRAM writes issued fire-and-forget past the L2 bank port: L2
     * writebacks go straight to DRAM without re-arbitrating for a bank,
     * so they never appear in l2BankConflicts (see DESIGN.md).
     */
    std::uint64_t dramWriteBypass = 0;
    /** Union of cycles with a pending DRAM request (all partitions). */
    std::uint64_t dramActivityCycles = 0;

    // --- occupancy (Figure 8) ------------------------------------------
    /** Sum over sampled busy cycles of warps resident on all SMXs. */
    std::uint64_t residentWarpCycleSum = 0;
    /** Number of cycles in which any SMX had resident warps. */
    std::uint64_t busyCycles = 0;

    // --- dynamic launches (Figures 9, 10) -------------------------------
    std::uint64_t deviceKernelLaunches = 0;
    std::uint64_t aggGroupLaunches = 0;
    /** Aggregated groups that found an eligible kernel in the KDE. */
    std::uint64_t aggGroupsCoalesced = 0;
    /** Aggregated groups that fell back to a device-kernel launch. */
    std::uint64_t aggGroupsFallback = 0;
    /** Aggregated groups whose metadata spilled to global memory. */
    std::uint64_t agtOverflows = 0;
    /** Sum of launch->first-TB-dispatch latency over dynamic launches. */
    std::uint64_t launchWaitCycleSum = 0;
    std::uint64_t launchWaitSamples = 0;
    /** Threads in dynamically launched work (for granularity stats). */
    std::uint64_t dynamicLaunchThreadSum = 0;

    /** Currently reserved bytes for pending dynamic launches. */
    std::uint64_t pendingLaunchBytes = 0;
    /** Peak of pendingLaunchBytes (Figure 10). */
    std::uint64_t peakPendingLaunchBytes = 0;

    // --- caches ----------------------------------------------------------
    std::uint64_t l1Hits = 0, l1Misses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0;

    // --- memory contention (zero with modelMemContention=false) ----------
    /** Requests merged onto an in-flight L1 fill. */
    std::uint64_t l1MshrMerges = 0;
    /** Requests merged onto an in-flight L2 fill. */
    std::uint64_t l2MshrMerges = 0;
    /** Cycles requests waited on full MSHR files / exhausted widths. */
    std::uint64_t mshrStallCycles = 0;
    /** L2 transactions delayed by a busy bank port. */
    std::uint64_t l2BankConflicts = 0;

    // --- issue-stall attribution (PMU) -----------------------------------
    /**
     * Warp-slot-cycles by StallReason, summed over all SMXs. Populated by
     * Gpu::report() from the per-SMX counters; all-zero unless profiling
     * was enabled (Gpu::enableProfiling). While profiling, the entries
     * sum to totalCycles * numSmx * maxResidentWarpsPerSmx.
     */
    std::array<std::uint64_t, kNumStallReasons> stallSlotCycles{};

    // --- totals ----------------------------------------------------------
    /** Cycle at which the last tracked work completed. */
    Cycle totalCycles = 0;
    /** Thread blocks that completed execution. */
    std::uint64_t tbsCompleted = 0;
    /** Kernels (native) that completed. */
    std::uint64_t kernelsCompleted = 0;

    /** Account launch-metadata reservation / release (Figure 10). */
    void reserveLaunchBytes(std::uint64_t bytes);
    void releaseLaunchBytes(std::uint64_t bytes);
};

/**
 * Derived metrics matching the paper's evaluation axes.
 */
struct MetricsReport
{
    /**
     * Version of the report's serialized layouts (json()/csvHeader()).
     * v3 added the stall-attribution and profiler fields; v4 the MSHR /
     * L2-bank contention fields; v5 the dispatch policy and the
     * per-kernel stall split; v6 the host wall-clock fields; readers
     * should reject versions they do not know.
     */
    static constexpr int schemaVersion = 6;

    std::string benchmark;
    std::string mode;

    Cycle cycles = 0;
    /** Figure 6: average % of active threads per issued warp instr. */
    double warpActivityPct = 0.0;
    /** Figure 7: (n_rd + n_write) / n_activity. */
    double dramEfficiency = 0.0;
    /** Figure 8: average resident warps / max resident warps, in %. */
    double smxOccupancyPct = 0.0;
    /** Figure 9: average launch->dispatch wait (cycles). */
    double avgWaitingCycles = 0.0;
    /** Figure 10: peak bytes reserved for pending dynamic launches. */
    std::uint64_t peakFootprintBytes = 0;

    double avgThreadsPerDynamicLaunch = 0.0;
    std::uint64_t dynamicLaunches = 0;
    double aggCoalesceRate = 0.0;
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;

    /** FNV-1a fingerprint of the run's event trace (stats/trace.hh). */
    std::uint64_t traceHash = 0;
    /** Number of trace events folded into the hash. */
    std::uint64_t traceEvents = 0;

    // --- issue-stall attribution (all-zero unless profiling) -------------
    /** Total warp-slot-cycles accounted by the stall taxonomy. */
    std::uint64_t stallSlotCyclesTotal = 0;
    /** % of all warp-slot-cycles that issued an instruction. */
    double issueSlotUtilPct = 0.0;
    /**
     * Per-reason % of *non-issued* slot-cycles (the Issued entry stays
     * 0); the non-issued entries sum to 100 when any slot stalled.
     */
    std::array<double, kNumStallReasons> stallPct{};

    // --- interval profiler (zero unless --profile) -----------------------
    std::uint64_t profileSamples = 0;
    std::uint64_t sampledPeakResidentWarps = 0;
    std::uint64_t sampledPeakAgtLive = 0;
    std::uint64_t sampledPeakPendingLaunchBytes = 0;

    // --- memory contention, v4 (zero with modelMemContention=false) ------
    std::uint64_t l1MshrMerges = 0;
    std::uint64_t l2MshrMerges = 0;
    std::uint64_t mshrStallCycles = 0;
    std::uint64_t l2BankConflicts = 0;

    // --- dispatch subsystem, v5 ------------------------------------------
    /** Active TB dispatch policy (GpuConfig::dispatchPolicy). */
    std::string dispatchPolicy = "fcfs-head";
    /**
     * Per-kernel split of the warp-slot stall taxonomy: (kernel name,
     * slot-cycles by StallReason). All-zero rows are omitted; the
     * "(idle)" row covers slots no kernel occupies. Empty unless
     * profiling; when present the rows sum reason-wise to
     * SimStats::stallSlotCycles.
     */
    std::vector<std::pair<std::string,
                          std::array<std::uint64_t, kNumStallReasons>>>
        kernelStallSlotCycles;

    // --- host wall-clock, v6 (zero unless RunOptions::measureWallClock) --
    /**
     * Host seconds spent inside App::execute, filled in by the runner —
     * never by the simulation, so these fields cannot feed back into
     * cycles/traceHash. Printed by str() only when nonzero, after the
     * purity prefix like the other gated fields.
     */
    double simWallClockSec = 0.0;
    /** cycles / simWallClockSec: simulator throughput. */
    double simCyclesPerSec = 0.0;

    /** Build the derived report from raw counters. */
    static MetricsReport from(const SimStats &s, const std::string &bench,
                              const std::string &mode, unsigned numSmx,
                              unsigned maxWarpsPerSmx);

    /**
     * One-line human-readable summary. The prefix up to (and including)
     * the trace fields is byte-identical whether or not the PMU is
     * compiled in; stall/profile fields are appended only when present.
     */
    std::string str() const;

    /** JSON object with a stable, schema-versioned key order. */
    std::string json() const;

    /** CSV row (writeMetricsCsv in bench/eval_common.hh). */
    static std::string csvHeader();
    std::string csvRow() const;
};

} // namespace dtbl

#endif // DTBL_STATS_METRICS_HH
