/**
 * @file
 * Interval-union accumulator used to compute DRAM activity cycles.
 *
 * The paper defines DRAM efficiency as (n_rd + n_write) / n_activity where
 * n_activity counts "the active cycles when there is a pending memory
 * request". With the analytic queueing model, requests carry an
 * [enqueue, complete) interval; n_activity is the measure of the union of
 * those intervals. Requests are recorded in non-decreasing order of
 * enqueue time per controller, which lets us fold the union online with a
 * single coverage watermark.
 */

#ifndef DTBL_STATS_BUSY_TRACKER_HH
#define DTBL_STATS_BUSY_TRACKER_HH

#include "common/types.hh"

namespace dtbl {

/** Online union-of-intervals accumulator. */
class BusyTracker
{
  public:
    /**
     * Record that some unit was busy over [start, end).
     * @pre start values are non-decreasing across calls.
     */
    void record(Cycle start, Cycle end);

    /** Total cycles covered by at least one recorded interval. */
    Cycle busyCycles() const { return busy_; }

    /** End of the last covered region (0 if nothing recorded). */
    Cycle coveredUntil() const { return coveredUntil_; }

    void reset();

  private:
    Cycle busy_ = 0;
    Cycle coveredUntil_ = 0;
};

} // namespace dtbl

#endif // DTBL_STATS_BUSY_TRACKER_HH
