#include "stats/profiler.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace dtbl {

IntervalProfiler::IntervalProfiler(const Pmu &pmu, Cycle window)
    : pmu_(pmu), window_(window), next_(window),
      series_(pmu.numCounters())
{
    DTBL_ASSERT(window > 0, "profiler window must be positive");
}

void
IntervalProfiler::takeSample(Cycle at)
{
    cycles_.push_back(at);
    for (std::size_t c = 0; c < series_.size(); ++c)
        series_[c].push_back(pmu_.value(c));
}

void
IntervalProfiler::sampleUpTo(Cycle now)
{
    // Idle fast-forwards can jump many windows at once; emitting every
    // boundary keeps the timeline equidistant (flat, not gapped).
    while (next_ <= now) {
        takeSample(next_);
        next_ += window_;
    }
}

void
IntervalProfiler::finalize(Cycle end)
{
    sampleUpTo(end);
    if (cycles_.empty() || cycles_.back() < end)
        takeSample(end);
}

std::uint64_t
IntervalProfiler::sampledPeak(std::size_t c) const
{
    const auto &s = series_[c];
    return s.empty() ? 0 : *std::max_element(s.begin(), s.end());
}

std::uint64_t
IntervalProfiler::sampledPeakByName(const std::string &name) const
{
    const std::int64_t i = pmu_.indexOf(name);
    return i < 0 ? 0 : sampledPeak(std::size_t(i));
}

bool
IntervalProfiler::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fputs("cycle", f);
    for (std::size_t c = 0; c < series_.size(); ++c)
        std::fprintf(f, ",%s", pmu_.desc(c).name.c_str());
    std::fputc('\n', f);
    for (std::size_t i = 0; i < cycles_.size(); ++i) {
        std::fprintf(f, "%" PRIu64, cycles_[i]);
        for (std::size_t c = 0; c < series_.size(); ++c)
            std::fprintf(f, ",%" PRIu64, series_[c][i]);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

bool
IntervalProfiler::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\"schemaVersion\": %d, \"window\": %" PRIu64
                    ", \"cycles\": [", kTimelineSchemaVersion, window_);
    for (std::size_t i = 0; i < cycles_.size(); ++i)
        std::fprintf(f, "%s%" PRIu64, i ? ", " : "", cycles_[i]);
    std::fputs("], \"series\": [", f);
    for (std::size_t c = 0; c < series_.size(); ++c) {
        const PmuCounterDesc &d = pmu_.desc(c);
        std::fprintf(f, "%s\n  {\"name\": \"%s\", \"unit\": \"%s\", "
                        "\"values\": [",
                     c ? "," : "", d.name.c_str(), pmuUnitName(d.unit));
        for (std::size_t i = 0; i < series_[c].size(); ++i)
            std::fprintf(f, "%s%" PRIu64, i ? ", " : "", series_[c][i]);
        std::fputs("]}", f);
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
    return true;
}

std::string
IntervalProfiler::textReport(const std::string &bench,
                             const std::string &mode) const
{
    std::ostringstream os;
    const Cycle end = cycles_.empty() ? 0 : cycles_.back();
    os << "==== dtbl profile: " << bench << " [" << mode << "] ====\n"
       << "window " << window_ << " cycles, " << cycles_.size()
       << " samples, " << end << " cycles covered\n\n";

    // --- per-SMX issue-stall breakdown --------------------------------
    std::int32_t numSmx = 0;
    for (std::size_t c = 0; c < pmu_.numCounters(); ++c) {
        const PmuCounterDesc &d = pmu_.desc(c);
        if (d.unit == PmuUnit::Smx)
            numSmx = std::max(numSmx, d.instance + 1);
    }
    if (numSmx > 0) {
        os << "issue-slot utilisation per SMX (issued% of all "
              "slot-cycles;\nstall columns % of non-issued slot-cycles)\n";
        os << " smx   issued%";
        for (std::size_t r = 1; r < kNumStallReasons; ++r) {
            char buf[20];
            std::snprintf(buf, sizeof buf, " %14s",
                          stallReasonName(StallReason(r)));
            os << buf;
        }
        os << '\n';
        std::array<std::uint64_t, kNumStallReasons> total{};
        for (std::int32_t s = 0; s <= numSmx; ++s) {
            std::array<std::uint64_t, kNumStallReasons> v{};
            if (s < numSmx) {
                for (std::size_t r = 0; r < kNumStallReasons; ++r) {
                    const std::string name =
                        "smx" + std::to_string(s) + ".slot." +
                        stallReasonName(StallReason(r));
                    v[r] = pmu_.valueByName(name);
                    total[r] += v[r];
                }
            } else {
                v = total; // footer row: all SMXs combined
            }
            std::uint64_t all = 0;
            for (std::uint64_t x : v)
                all += x;
            const std::uint64_t nonIssued =
                all - v[std::size_t(StallReason::Issued)];
            char row[40];
            const double issuedPct =
                all ? 100.0 * double(v[0]) / double(all) : 0.0;
            if (s < numSmx)
                std::snprintf(row, sizeof row, "%4d %9.2f", s, issuedPct);
            else
                std::snprintf(row, sizeof row, " all %9.2f", issuedPct);
            os << row;
            for (std::size_t r = 1; r < kNumStallReasons; ++r) {
                char buf[20];
                std::snprintf(buf, sizeof buf, " %14.2f",
                              nonIssued ? 100.0 * double(v[r]) /
                                              double(nonIssued)
                                        : 0.0);
                os << buf;
            }
            os << '\n';
        }
        os << '\n';
    }

    // --- histograms ------------------------------------------------------
    if (pmu_.numHistograms() > 0) {
        os << "latency histograms (cycles)\n";
        for (std::size_t h = 0; h < pmu_.numHistograms(); ++h) {
            const PmuHistogram &hist = pmu_.histogramAt(h);
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "  %-18s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                          " p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64
                          " max=%" PRIu64 "\n",
                          pmu_.histogramDesc(h).name.c_str(), hist.count(),
                          hist.mean(), hist.min(), hist.percentile(50),
                          hist.percentile(90), hist.percentile(99),
                          hist.max());
            os << buf;
        }
        os << '\n';
    }

    // --- per-kernel counters --------------------------------------------
    // The ".slot." stall probes get their own table below.
    bool anyKernel = false;
    for (std::size_t c = 0; c < pmu_.numCounters(); ++c) {
        if (pmu_.desc(c).unit != PmuUnit::Kernel ||
            pmu_.desc(c).name.find(".slot.") != std::string::npos) {
            continue;
        }
        if (!anyKernel) {
            os << "per-kernel counters\n";
            anyKernel = true;
        }
        char buf[128];
        std::snprintf(buf, sizeof buf, "  %-32s %12" PRIu64 "\n",
                      pmu_.desc(c).name.c_str(), pmu_.value(c));
        os << buf;
    }
    if (anyKernel)
        os << '\n';

    // --- per-kernel stall attribution -----------------------------------
    // kernel.<name>.slot.<reason> probes (idle bucket included); rows sum
    // reason-wise to the per-SMX taxonomy above.
    bool anyKernelStall = false;
    for (std::size_t c = 0; c < pmu_.numCounters(); ++c) {
        const PmuCounterDesc &d = pmu_.desc(c);
        const std::string suffix = ".slot.issued";
        if (d.unit != PmuUnit::Kernel || d.name.size() <= suffix.size() ||
            d.name.compare(d.name.size() - suffix.size(), suffix.size(),
                           suffix) != 0) {
            continue;
        }
        const std::string base =
            d.name.substr(0, d.name.size() - std::string("issued").size());
        if (!anyKernelStall) {
            os << "per-kernel issue-slot attribution (slot-cycles)\n";
            os << "  kernel    ";
            for (std::size_t r = 0; r < kNumStallReasons; ++r) {
                char buf[20];
                std::snprintf(buf, sizeof buf, " %14s",
                              stallReasonName(StallReason(r)));
                os << buf;
            }
            os << '\n';
            anyKernelStall = true;
        }
        // base = "kernel.<name>.slot."; print the kernel name.
        const std::string kname =
            base.substr(std::string("kernel.").size(),
                        base.size() - std::string("kernel.").size() -
                            std::string(".slot.").size());
        char head[64];
        std::snprintf(head, sizeof head, "  %-10s", kname.c_str());
        os << head;
        for (std::size_t r = 0; r < kNumStallReasons; ++r) {
            char buf[24];
            std::snprintf(buf, sizeof buf, " %14" PRIu64,
                          pmu_.valueByName(
                              base + stallReasonName(StallReason(r))));
            os << buf;
        }
        os << '\n';
    }
    if (anyKernelStall)
        os << '\n';

    // --- windowed DRAM busy% (Figure 7 over time) -----------------------
    // dram.p<i>.busy probes report cumulative covered-until-now cycles;
    // the delta between consecutive samples over the window length is
    // the utilisation of that window.
    std::vector<std::size_t> parts;
    for (std::int64_t i = 0;; ++i) {
        const std::int64_t c =
            pmu_.indexOf("dram.p" + std::to_string(i) + ".busy");
        if (c < 0)
            break;
        parts.push_back(std::size_t(c));
    }
    // Windowed efficiency = delta(reads+writes) / delta(sum busy): the
    // Figure 7 metric per window instead of end-of-run only.
    const std::int64_t dramReadsIdx = pmu_.indexOf("dram.reads");
    const std::int64_t dramWritesIdx = pmu_.indexOf("dram.writes");
    const bool haveEff = dramReadsIdx >= 0 && dramWritesIdx >= 0;
    if (!parts.empty() && cycles_.size() >= 2) {
        os << "windowed DRAM busy% (delta of consecutive busy samples)\n"
           << "  window (cycles)           all";
        for (std::size_t p = 0; p < parts.size(); ++p) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "     p%zu", p);
            os << buf;
        }
        if (haveEff)
            os << "    eff";
        os << '\n';
        // Coarsen long timelines so the report stays bounded.
        const std::size_t intervals = cycles_.size() - 1;
        constexpr std::size_t kMaxRows = 24;
        const std::size_t step = (intervals + kMaxRows - 1) / kMaxRows;
        for (std::size_t j = 0; j < intervals; j += step) {
            const std::size_t k = std::min(j + step, intervals);
            const Cycle span = cycles_[k] - cycles_[j];
            if (span == 0)
                continue;
            char head[48];
            std::snprintf(head, sizeof head,
                          "  [%10" PRIu64 ", %10" PRIu64 ")", cycles_[j],
                          cycles_[k]);
            os << head;
            std::uint64_t sum = 0;
            std::string cols;
            for (std::size_t c : parts) {
                const std::uint64_t d = series_[c][k] - series_[c][j];
                sum += d;
                char buf[16];
                std::snprintf(buf, sizeof buf, " %6.1f",
                              100.0 * double(d) / double(span));
                cols += buf;
            }
            char buf[16];
            std::snprintf(buf, sizeof buf, " %6.1f",
                          100.0 * double(sum) /
                              double(span * parts.size()));
            os << buf << cols;
            if (haveEff) {
                const std::uint64_t dAccesses =
                    (series_[std::size_t(dramReadsIdx)][k] -
                     series_[std::size_t(dramReadsIdx)][j]) +
                    (series_[std::size_t(dramWritesIdx)][k] -
                     series_[std::size_t(dramWritesIdx)][j]);
                if (sum > 0) {
                    std::snprintf(buf, sizeof buf, " %6.2f",
                                  double(dAccesses) / double(sum));
                    os << buf;
                } else {
                    os << "      -";
                }
            }
            os << '\n';
        }
        os << '\n';
    }

    // --- sampled peaks --------------------------------------------------
    os << "sampled peaks (max over " << cycles_.size() << " samples)\n";
    for (const char *name :
         {"gpu.resident_warps", "kmu.pending_device", "kd.valid_entries",
          "agt.live", "agt.on_chip", "dtbl.pending_launch_bytes"}) {
        if (pmu_.indexOf(name) < 0)
            continue;
        char buf[96];
        std::snprintf(buf, sizeof buf, "  %-28s %12" PRIu64 "\n", name,
                      sampledPeakByName(name));
        os << buf;
    }
    return os.str();
}

} // namespace dtbl
