/**
 * @file
 * Interval profiler: samples every PMU registry counter on a fixed
 * cycle window into in-memory time series, and exports them as a CSV
 * timeline, a JSON timeline, and an nvprof-style text report
 * (per-SMX issue-stall breakdown, per-kernel tables, percentile
 * histograms for TB waiting time and AGT residency).
 *
 * Sampling is driven from the Gpu main loop: sampleUpTo(now) emits one
 * sample at every window boundary that has elapsed, so idle
 * fast-forward periods appear as flat regions in the timeline rather
 * than gaps. Like the registry itself, the profiler is a pure
 * observer — a profiled run reports bit-identical cycles, stats and
 * traceHash to an unprofiled one.
 */

#ifndef DTBL_STATS_PROFILER_HH
#define DTBL_STATS_PROFILER_HH

#include <string>
#include <vector>

#include "stats/pmu.hh"

namespace dtbl {

/** Default sampling window (--profile with no =N). */
constexpr Cycle kDefaultProfileWindow = 512;

/**
 * Version of the writeJson() timeline layout. Named (rather than
 * inlined in the format string) so tests/test_pmu.cc asserts against
 * the same token and a bump cannot silently diverge from them.
 */
constexpr int kTimelineSchemaVersion = 3;

class IntervalProfiler
{
  public:
    /** @param window sampling period in cycles (> 0). */
    IntervalProfiler(const Pmu &pmu, Cycle window);

    Cycle window() const { return window_; }

    /** Emit a sample at every window boundary <= @p now not yet taken. */
    void sampleUpTo(Cycle now);

    /** Take one final (partial-window) sample at @p end. */
    void finalize(Cycle end);

    // --- series access ------------------------------------------------
    std::size_t numSamples() const { return cycles_.size(); }
    Cycle sampleCycle(std::size_t i) const { return cycles_[i]; }
    std::size_t numCounters() const { return series_.size(); }
    /** Value of registry counter @p c at sample @p i. */
    std::uint64_t
    value(std::size_t i, std::size_t c) const
    {
        return series_[c][i];
    }
    /** Max sampled value of registry counter @p c (0 when no samples). */
    std::uint64_t sampledPeak(std::size_t c) const;
    /** Max sampled value of counter @p name (0 when unknown). */
    std::uint64_t sampledPeakByName(const std::string &name) const;

    // --- exporters ------------------------------------------------------
    /** cycle,<counter>,... one row per sample; false on I/O error. */
    bool writeCsv(const std::string &path) const;
    /** {"schemaVersion":3,"window":...,"cycles":[...],"series":[...]} */
    bool writeJson(const std::string &path) const;
    /** nvprof-style human-readable report. */
    std::string textReport(const std::string &bench,
                           const std::string &mode) const;

  private:
    void takeSample(Cycle at);

    const Pmu &pmu_;
    Cycle window_;
    /** Cycle of the next scheduled sample. */
    Cycle next_;
    std::vector<Cycle> cycles_;
    /** series_[counter][sample]. */
    std::vector<std::vector<std::uint64_t>> series_;
};

} // namespace dtbl

#endif // DTBL_STATS_PROFILER_HH
