#include "stats/pmu.hh"

#include <bit>

#include "common/log.hh"

namespace dtbl {

void
BusyTracker::record(Cycle start, Cycle end)
{
    if (end <= start)
        return;
    const Cycle effStart = start > coveredUntil_ ? start : coveredUntil_;
    if (end > effStart)
        busy_ += end - effStart;
    if (end > coveredUntil_)
        coveredUntil_ = end;
}

void
BusyTracker::reset()
{
    busy_ = 0;
    coveredUntil_ = 0;
}

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::Issued: return "issued";
      case StallReason::NoInstruction: return "no_instruction";
      case StallReason::DataHazard: return "data_hazard";
      case StallReason::MemoryPending: return "memory_pending";
      case StallReason::Barrier: return "barrier";
      case StallReason::Reconvergence: return "reconvergence";
      case StallReason::PipelineBusy: return "pipeline_busy";
      case StallReason::LaunchPending: return "launch_pending";
      case StallReason::IdleNoWarp: return "idle_no_warp";
    }
    return "?";
}

const char *
pmuUnitName(PmuUnit u)
{
    switch (u) {
      case PmuUnit::Gpu: return "gpu";
      case PmuUnit::Kmu: return "kmu";
      case PmuUnit::Kd: return "kd";
      case PmuUnit::Agt: return "agt";
      case PmuUnit::Sched: return "sched";
      case PmuUnit::Smx: return "smx";
      case PmuUnit::Mem: return "mem";
      case PmuUnit::Dram: return "dram";
      case PmuUnit::Kernel: return "kernel";
    }
    return "?";
}

void
PmuHistogram::record(std::uint64_t v)
{
    const std::size_t b = v == 0 ? 0 : std::size_t(std::bit_width(v));
    ++buckets_[b];
    ++count_;
    sum_ += v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
PmuHistogram::mean() const
{
    return count_ ? double(sum_) / double(count_) : 0.0;
}

std::uint64_t
PmuHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p <= 0)
        return min();
    if (p >= 100)
        return max_;
    // Rank of the requested sample (1-based, ceil).
    const auto rank = std::uint64_t(double(count_) * p / 100.0) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        seen += buckets_[b];
        if (seen >= rank) {
            // Upper bound of bucket b, clamped to the observed range.
            const std::uint64_t hi =
                b == 0 ? 0
                       : (b >= 64 ? ~std::uint64_t(0)
                                  : (std::uint64_t(1) << b) - 1);
            return std::min(std::max(hi, min()), max_);
        }
    }
    return max_;
}

Pmu::Entry &
Pmu::add(std::string name, PmuUnit unit, PmuKind kind,
         std::int32_t instance)
{
    DTBL_ASSERT(indexOf(name) < 0, "duplicate PMU counter ", name);
    Entry e;
    e.desc.name = std::move(name);
    e.desc.unit = unit;
    e.desc.kind = kind;
    e.desc.instance = instance;
    entries_.push_back(std::move(e));
    return entries_.back();
}

PmuCounter
Pmu::counter(std::string name, PmuUnit unit, std::int32_t instance)
{
    PmuCounter h;
    if constexpr (!compiledIn)
        return h;
    Entry &e = add(std::move(name), unit, PmuKind::Counter, instance);
    h.slot_ = &e.value;
    return h;
}

void
Pmu::probe(std::string name, PmuUnit unit,
           std::function<std::uint64_t()> fn, std::int32_t instance)
{
    if constexpr (!compiledIn)
        return;
    Entry &e = add(std::move(name), unit, PmuKind::Probe, instance);
    e.probeFn = std::move(fn);
}

void
Pmu::busy(std::string name, PmuUnit unit, const BusyTracker *bt,
          std::int32_t instance)
{
    if constexpr (!compiledIn)
        return;
    Entry &e = add(std::move(name), unit, PmuKind::Busy, instance);
    e.busyTracker = bt;
}

PmuHistogram *
Pmu::histogram(std::string name, PmuUnit unit, std::int32_t instance)
{
    if constexpr (!compiledIn)
        return nullptr;
    PmuCounterDesc d;
    d.name = std::move(name);
    d.unit = unit;
    d.kind = PmuKind::Counter;
    d.instance = instance;
    for (const auto &[hd, hist] : hists_)
        DTBL_ASSERT(hd.name != d.name, "duplicate PMU histogram ", d.name);
    hists_.emplace_back(std::move(d), PmuHistogram{});
    return &hists_.back().second;
}

const PmuCounterDesc &
Pmu::desc(std::size_t i) const
{
    return entries_[i].desc;
}

std::uint64_t
Pmu::value(std::size_t i) const
{
    const Entry &e = entries_[i];
    switch (e.desc.kind) {
      case PmuKind::Counter: return e.value;
      case PmuKind::Probe: return e.probeFn ? e.probeFn() : 0;
      case PmuKind::Busy:
        return e.busyTracker ? e.busyTracker->busyCycles() : 0;
    }
    return 0;
}

std::int64_t
Pmu::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].desc.name == name)
            return std::int64_t(i);
    }
    return -1;
}

std::uint64_t
Pmu::valueByName(const std::string &name) const
{
    const std::int64_t i = indexOf(name);
    return i < 0 ? 0 : value(std::size_t(i));
}

const PmuCounterDesc &
Pmu::histogramDesc(std::size_t i) const
{
    return hists_[i].first;
}

const PmuHistogram &
Pmu::histogramAt(std::size_t i) const
{
    return hists_[i].second;
}

const PmuHistogram *
Pmu::findHistogram(const std::string &name) const
{
    for (const auto &[d, h] : hists_) {
        if (d.name == name)
            return &h;
    }
    return nullptr;
}

void
Pmu::setCollecting(bool on)
{
    collecting_ = compiledIn && on;
}

} // namespace dtbl
