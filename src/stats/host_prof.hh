/**
 * @file
 * Host-side self-profiler: hierarchical wall-clock phase attribution
 * for the simulator itself.
 *
 * The PMU (stats/pmu.hh) tells us where *simulated* cycles go; this
 * profiler tells us where *host* wall-clock goes while producing them —
 * the observability layer behind the `dtbl-bench` perf-regression
 * harness. Call sites wrap the cycle-loop phases in RAII scopes
 * (DTBL_HPROF_SCOPE): SMX frontend/issue, the memory system, TB
 * dispatch, KMU/AGT processing, trace JSON emit, sanitizer hooks, and
 * the host-level run phases (build/analysis/setup/sim/report/verify).
 * Scopes nest, so the report is a tree with inclusive/exclusive
 * nanoseconds and entry counts per phase.
 *
 * Purity contract (mirrors the trace/check/PMU observers): the profiler
 * only ever *reads* the host clock. Enabling it — or compiling it out
 * with -DDTBL_ENABLE_HOSTPROF=OFF (defines DTBL_HOSTPROF_ENABLED=0) —
 * must never change simulated cycles, traceHash, stats, or sanitizer
 * findings. tests/test_hostprof.cc and the CI hostprof-off job enforce
 * this bit-identity the way the pmu-off/check-off jobs do for their
 * subsystems.
 *
 * The profiler is a process-wide singleton so hook macros need no
 * plumbing through every subsystem constructor. It is disabled by
 * default: a disabled scope costs one predictable branch. The
 * simulator is single-threaded by design (the TSan CI job proves it),
 * so the singleton keeps no locks; toggle/reset it only between runs,
 * outside any open scope.
 */

#ifndef DTBL_STATS_HOST_PROF_HH
#define DTBL_STATS_HOST_PROF_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#ifndef DTBL_HOSTPROF_ENABLED
#define DTBL_HOSTPROF_ENABLED 1
#endif

namespace dtbl {

class HostProfiler
{
  public:
    /** False when -DDTBL_ENABLE_HOSTPROF=OFF compiled the hooks out. */
    static constexpr bool compiledIn = DTBL_HOSTPROF_ENABLED != 0;

    /** Version of the json() layout; bump on any key change. */
    static constexpr int jsonSchemaVersion = 1;

    /** One node of the phase tree. Node 0 is the synthetic root. */
    struct Phase
    {
        std::string name;
        /** Parent node index; -1 for the root. */
        std::int32_t parent = -1;
        std::vector<std::int32_t> children;
        /** Total ns spent inside this scope, children included. */
        std::uint64_t inclusiveNs = 0;
        /** Times the scope was entered. */
        std::uint64_t entries = 0;
    };

    /** The process-wide instance every DTBL_HPROF_SCOPE records into. */
    static HostProfiler &instance();

    /**
     * Turn collection on/off. Stays off when compiled out. Call only
     * between runs: toggling inside an open scope loses that scope.
     */
    void setEnabled(bool on);
    bool enabled() const { return enabled_; }

    /** Drop all recorded phases (the enabled flag is kept). */
    void reset();

    // --- phase-tree access (reports, tests) ----------------------------
    std::size_t numPhases() const { return phases_.size(); }
    const Phase &phase(std::size_t i) const { return phases_[i]; }
    /** inclusive minus the children's inclusive (>= 0 by construction). */
    std::uint64_t exclusiveNs(std::size_t i) const;
    /** "/"-joined path from the root, e.g. "sim/smx/mem". */
    std::string path(std::size_t i) const;
    /** Node index of @p path, or -1 when never entered. */
    std::int32_t find(const std::string &path) const;

    /** Total ns accounted at the top level (root's children). */
    std::uint64_t totalNs() const;

    // --- exporters ------------------------------------------------------
    /** Indented phase tree with inclusive/exclusive ms and entries. */
    std::string textReport() const;
    /** {"hostProfSchemaVersion":1,"phases":[{path,entries,...}]} */
    std::string json() const;

    /**
     * RAII phase scope. Use via DTBL_HPROF_SCOPE so call sites compile
     * out entirely under -DDTBL_ENABLE_HOSTPROF=OFF.
     */
    class Scope
    {
      public:
        explicit Scope(const char *name)
        {
            HostProfiler &p = instance();
            if (p.enabled_) {
                prof_ = &p;
                node_ = p.enter(name);
                start_ = std::chrono::steady_clock::now();
            }
        }
        ~Scope()
        {
            if (prof_)
                prof_->exit(node_, start_);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *prof_ = nullptr;
        std::int32_t node_ = 0;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    HostProfiler();

    /** Descend into the child @p name of the current node. */
    std::int32_t enter(const char *name);
    void exit(std::int32_t node,
              std::chrono::steady_clock::time_point start);

    std::vector<Phase> phases_;
    std::int32_t cur_ = 0;
    bool enabled_ = false;
};

} // namespace dtbl

#if DTBL_HOSTPROF_ENABLED
#define DTBL_HPROF_CONCAT2(a, b) a##b
#define DTBL_HPROF_CONCAT(a, b) DTBL_HPROF_CONCAT2(a, b)
/** Attribute the enclosing block to host phase @p name. */
#define DTBL_HPROF_SCOPE(name)                                             \
    ::dtbl::HostProfiler::Scope DTBL_HPROF_CONCAT(dtblHprofScope_,         \
                                                  __LINE__)(name)
#else
#define DTBL_HPROF_SCOPE(name) ((void)0)
#endif

#endif // DTBL_STATS_HOST_PROF_HH
