/**
 * @file
 * Cycle-level event tracing for the simulator.
 *
 * Every timing-critical unit emits typed events into a TraceSink owned
 * by the Gpu: kernel push/pop in the KMU, Kernel Distributor entry
 * alloc/release, aggregated-group launch/coalesce/fallback, AGT
 * insert/spill/release, per-SMX TB dispatch/retire, and cache-miss /
 * DRAM-burst events. Each record is stamped with the simulated cycle.
 *
 * Two backends consume the stream:
 *  - a running 64-bit FNV-1a hash plus per-event counters (always on
 *    while tracing is compiled in) — a cheap behavioural fingerprint
 *    that the determinism and regression tests compare across runs;
 *  - an optional Chrome `trace_event` JSON exporter whose output loads
 *    in chrome://tracing or Perfetto, and an optional bounded in-memory
 *    ring of raw records for golden-trace unit tests.
 *
 * Tracing is compile-time gateable: configure with -DDTBL_ENABLE_TRACE=OFF
 * (which defines DTBL_TRACE_ENABLED=0) to compile every record() call
 * down to nothing for maximum-speed sweeps.
 */

#ifndef DTBL_STATS_TRACE_HH
#define DTBL_STATS_TRACE_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

#ifndef DTBL_TRACE_ENABLED
#define DTBL_TRACE_ENABLED 1
#endif

namespace dtbl {

/** Typed pipeline events, one per hook point in the simulator. */
enum class TraceEvent : std::uint8_t
{
    // KMU: kernel queue push (host HWQ / device pending) and pop.
    KmuPushHost = 0,
    KmuPushDevice,
    KmuPop,
    // Kernel Distributor entry lifecycle.
    KdeAlloc,
    KdeRelease,
    // DTBL aggregated-group launch path (Figure 5).
    AggLaunch,
    AggCoalesce,
    AggFallback,
    // Aggregated Group Table slot activity.
    AgtInsert,
    AgtSpill,
    AgtRelease,
    // Per-SMX thread-block lifecycle.
    TbDispatch,
    TbRetire,
    // Memory hierarchy.
    L1Miss,
    L2Miss,
    DramRead,
    DramWrite,
    // Contention model (appended so earlier events keep their encoded
    // values and contention-off trace hashes stay comparable across
    // simulator versions).
    /** Request merged onto an in-flight fill; arg0 = level (1/2). */
    MshrMerge,
    /** L2 bank port busy; arg0 = bank, arg1 = wait cycles. */
    L2BankConflict,
};

constexpr std::size_t kNumTraceEvents = 19;

/** Stable display name ("AgtInsert", ...). */
const char *traceEventName(TraceEvent ev);

/** Chrome-trace category ("kmu", "kde", "agg", "agt", "smx", "mem"). */
const char *traceEventCategory(TraceEvent ev);

// Trace lanes: the "tid" of the emitted Chrome events, grouping events
// by the unit that produced them.
constexpr std::uint32_t traceLaneKmu = 0;
constexpr std::uint32_t traceLaneKd = 1;
constexpr std::uint32_t traceLaneAgt = 2;
constexpr std::uint32_t traceLaneMem = 3;
/** SMX i emits on lane traceLaneSmxBase + i. */
constexpr std::uint32_t traceLaneSmxBase = 16;

/** FNV-1a 64-bit offset basis: the hash of an empty trace. */
constexpr std::uint64_t traceHashSeed = 0xcbf29ce484222325ull;

/** One trace record; args are event-specific (see the hook sites). */
struct TraceRecord
{
    Cycle cycle = 0;
    TraceEvent event{};
    std::uint32_t unit = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

/**
 * Cheap per-run fingerprint: the folded hash, total record count and
 * per-event counts. Copyable out of the Gpu by the harness.
 */
struct TraceSummary
{
    std::uint64_t hash = traceHashSeed;
    std::uint64_t total = 0;
    std::array<std::uint64_t, kNumTraceEvents> counts{};

    std::uint64_t
    count(TraceEvent ev) const
    {
        return counts[static_cast<std::size_t>(ev)];
    }
};

class TraceSink
{
  public:
    /** False when the build compiled tracing out (DTBL_ENABLE_TRACE=OFF). */
    static constexpr bool compiledIn = DTBL_TRACE_ENABLED != 0;

    TraceSink() = default;
    ~TraceSink();
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Record one event. Compiles to nothing when tracing is gated off. */
    void
    record(Cycle cycle, TraceEvent ev, std::uint32_t unit,
           std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
    {
#if DTBL_TRACE_ENABLED
        recordImpl(cycle, ev, unit, arg0, arg1);
#else
        (void)cycle, (void)ev, (void)unit, (void)arg0, (void)arg1;
#endif
    }

    /** Null-tolerant hook helper for units holding an optional sink. */
    static void
    emit(TraceSink *sink, Cycle cycle, TraceEvent ev, std::uint32_t unit,
         std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
    {
        if (sink)
            sink->record(cycle, ev, unit, arg0, arg1);
    }

    // --- fingerprint backend -----------------------------------------
    std::uint64_t hash() const { return hash_; }
    std::uint64_t total() const { return total_; }
    std::uint64_t
    count(TraceEvent ev) const
    {
        return counts_[static_cast<std::size_t>(ev)];
    }
    TraceSummary summary() const;

    // --- in-memory ring backend (golden-trace tests) -------------------
    /** Keep the most recent @p capacity records; 0 disables capture. */
    void setCapture(std::size_t capacity);
    /** Captured records, oldest first. */
    std::vector<TraceRecord> captured() const;

    // --- Chrome trace_event JSON backend -------------------------------
    /** Give lane @p tid a display name in the exported trace. */
    void nameLane(std::uint32_t tid, std::string name);
    /** Start streaming records to @p path; returns false on I/O error. */
    bool openJson(const std::string &path);
    /** Finalize and close the JSON stream (no-op when not open). */
    void closeJson();
    bool jsonOpen() const { return json_ != nullptr; }

  private:
    void recordImpl(Cycle cycle, TraceEvent ev, std::uint32_t unit,
                    std::uint64_t arg0, std::uint64_t arg1);
    void writeJson(const TraceRecord &r);

    std::uint64_t hash_ = traceHashSeed;
    std::uint64_t total_ = 0;
    std::array<std::uint64_t, kNumTraceEvents> counts_{};

    std::vector<TraceRecord> ring_;
    std::size_t ringCap_ = 0;
    std::size_t ringNext_ = 0;
    bool ringWrapped_ = false;

    std::FILE *json_ = nullptr;
    bool jsonFirst_ = true;
    std::vector<std::pair<std::uint32_t, std::string>> laneNames_;
};

} // namespace dtbl

#endif // DTBL_STATS_TRACE_HH
