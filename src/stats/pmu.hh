/**
 * @file
 * Performance-monitoring-unit (PMU) counter registry.
 *
 * Every simulated unit (KMU, Kernel Distributor, AGT, SMX scheduler,
 * per-SMX pipelines, caches, DRAM) registers its performance counters
 * here by name. Three counter flavours exist:
 *  - owned counters: the registry stores the value, units bump it
 *    through a null-safe PmuCounter handle (cold-path events only);
 *  - probes: a callable evaluated at sample time, reading state the
 *    unit already maintains for simulation (occupancy, queue depths,
 *    SimStats fields) — zero cost on the hot path;
 *  - histograms: log2-bucketed distributions with percentile queries
 *    (TB waiting time, AGT residency).
 *
 * The registry is a pure observer: registering, bumping or sampling a
 * counter must never change simulated timing, `traceHash`, or any
 * existing SimStats/MetricsReport field. The expensive per-warp-slot
 * issue-stall attribution in the SMX is additionally gated at run time
 * by collecting() (enabled via Gpu::enableProfiling / --profile).
 *
 * The whole subsystem is compile-time gateable like tracing and
 * dtbl-check: configure with -DDTBL_ENABLE_PMU=OFF (which defines
 * DTBL_PMU_ENABLED=0) and every hook compiles out; registration
 * becomes a no-op returning inert handles.
 *
 * This file also hosts BusyTracker (the union-of-intervals accumulator
 * behind the paper's DRAM-activity metric). It used to be a standalone
 * one-off in busy_tracker.hh; folding it into the PMU lets DRAM
 * partitions register their activity as sampled counters for free.
 * BusyTracker itself stays always-on: Figure 7 needs it regardless of
 * whether the PMU is compiled in.
 */

#ifndef DTBL_STATS_PMU_HH
#define DTBL_STATS_PMU_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/types.hh"

#ifndef DTBL_PMU_ENABLED
#define DTBL_PMU_ENABLED 1
#endif

namespace dtbl {

/**
 * Online union-of-intervals accumulator.
 *
 * The paper defines DRAM efficiency as (n_rd + n_write) / n_activity
 * where n_activity counts "the active cycles when there is a pending
 * memory request". With the analytic queueing model, requests carry an
 * [enqueue, complete) interval; n_activity is the measure of the union
 * of those intervals. Requests are recorded in non-decreasing order of
 * enqueue time per controller, which lets us fold the union online with
 * a single coverage watermark.
 */
class BusyTracker
{
  public:
    /**
     * Record that some unit was busy over [start, end).
     * @pre start values are non-decreasing across calls.
     */
    void record(Cycle start, Cycle end);

    /** Total cycles covered by at least one recorded interval. */
    Cycle busyCycles() const { return busy_; }

    /** End of the last covered region (0 if nothing recorded). */
    Cycle coveredUntil() const { return coveredUntil_; }

    void reset();

  private:
    Cycle busy_ = 0;
    Cycle coveredUntil_ = 0;
};

/**
 * Issue-stall taxonomy: what each SMX warp slot did on each cycle.
 * Every slot-cycle is attributed to exactly one reason, so per SMX the
 * counts sum to totalCycles * maxResidentWarpsPerSmx (the invariant
 * test_pmu checks). The non-issue reasons follow the nvprof /
 * GPGPU-Sim breakdown, plus LaunchPending for the device-runtime
 * launch path this paper is about.
 */
enum class StallReason : std::uint8_t
{
    /** The slot's warp issued an instruction this cycle. */
    Issued = 0,
    /** Warp was ready but no scheduler selected it (not_selected). */
    NoInstruction,
    /** Waiting on a short-latency operand (shared/param load). */
    DataHazard,
    /** Global load or atomic in flight. */
    MemoryPending,
    /** Warp parked at a thread-block barrier. */
    Barrier,
    /** Post-branch bubble while the PDOM stack settles. */
    Reconvergence,
    /** ALU/SFU issue latency, store retirement, pipeline bubbles. */
    PipelineBusy,
    /** Inside a device-runtime launch API call (Table 3 latencies). */
    LaunchPending,
    /** No warp resident in the slot. */
    IdleNoWarp,
};

constexpr std::size_t kNumStallReasons = 9;

/** Stable lowercase name ("issued", "no_instruction", ...). */
const char *stallReasonName(StallReason r);

/** Simulated unit that owns a counter (report grouping). */
enum class PmuUnit : std::uint8_t
{
    Gpu,
    Kmu,
    Kd,
    Agt,
    Sched,
    Smx,
    Mem,
    Dram,
    Kernel,
};

const char *pmuUnitName(PmuUnit u);

/** What a registry entry is backed by. */
enum class PmuKind : std::uint8_t
{
    Counter, //!< value owned by the registry, bumped via PmuCounter
    Probe,   //!< std::function evaluated at sample time
    Busy,    //!< externally owned BusyTracker, sampled as busyCycles()
};

struct PmuCounterDesc
{
    std::string name;
    PmuUnit unit = PmuUnit::Gpu;
    PmuKind kind = PmuKind::Counter;
    /** Unit instance (SMX id, DRAM partition); -1 when singular. */
    std::int32_t instance = -1;
};

/**
 * Null-safe handle to an owned counter. Inert (add() is a no-op) when
 * the PMU is compiled out or the handle was never registered.
 */
class PmuCounter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        if (slot_)
            *slot_ += delta;
    }

    std::uint64_t value() const { return slot_ ? *slot_ : 0; }

  private:
    friend class Pmu;
    std::uint64_t *slot_ = nullptr;
};

/**
 * Log2-bucketed histogram: bucket 0 holds value 0, bucket b >= 1 holds
 * values in [2^(b-1), 2^b). Percentile queries return the upper bound
 * of the bucket containing the requested rank, clamped to the observed
 * min/max — exact enough for the p50/p90/p99 the reports print while
 * costing O(1) per record.
 */
class PmuHistogram
{
  public:
    static constexpr std::size_t kNumBuckets = 65;

    void record(std::uint64_t v);

    /** Null-tolerant helper for units holding an optional histogram. */
    static void
    note(PmuHistogram *h, std::uint64_t v)
    {
        if (h)
            h->record(v);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Estimated value at percentile @p p in [0, 100]. */
    std::uint64_t percentile(double p) const;

    std::uint64_t
    bucketCount(std::size_t b) const
    {
        return buckets_[b];
    }

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * The counter registry. One instance lives in the Gpu (declared before
 * every unit so probe lambdas capturing unit pointers are outlived by
 * it). Counters are registered in construction order, which is
 * deterministic, so CSV column order is stable across runs.
 */
class Pmu
{
  public:
    /** False when the build compiled the PMU out (DTBL_ENABLE_PMU=OFF). */
    static constexpr bool compiledIn = DTBL_PMU_ENABLED != 0;

    Pmu() = default;
    Pmu(const Pmu &) = delete;
    Pmu &operator=(const Pmu &) = delete;

    /** Register an owned counter; returns an inert handle when gated. */
    PmuCounter counter(std::string name, PmuUnit unit,
                       std::int32_t instance = -1);

    /** Register a sample-time probe (must outlive the registry's use). */
    void probe(std::string name, PmuUnit unit,
               std::function<std::uint64_t()> fn,
               std::int32_t instance = -1);

    /** Register an externally owned BusyTracker (sampled busyCycles). */
    void busy(std::string name, PmuUnit unit, const BusyTracker *bt,
              std::int32_t instance = -1);

    /** Register a histogram; returns nullptr when gated. */
    PmuHistogram *histogram(std::string name, PmuUnit unit,
                            std::int32_t instance = -1);

    // --- sampling interface (profiler) ---------------------------------
    std::size_t numCounters() const { return entries_.size(); }
    const PmuCounterDesc &desc(std::size_t i) const;
    /** Current value of counter @p i. */
    std::uint64_t value(std::size_t i) const;
    /** Registry index of @p name, or -1 when unknown. */
    std::int64_t indexOf(const std::string &name) const;
    /** Current value of @p name; 0 when unknown. */
    std::uint64_t valueByName(const std::string &name) const;

    std::size_t numHistograms() const { return hists_.size(); }
    const PmuCounterDesc &histogramDesc(std::size_t i) const;
    const PmuHistogram &histogramAt(std::size_t i) const;
    const PmuHistogram *findHistogram(const std::string &name) const;

    /**
     * True while expensive hot-path collection (per-slot stall
     * attribution, per-kernel instruction counters) should run.
     * Enabled by Gpu::enableProfiling.
     */
    bool collecting() const { return collecting_; }
    void setCollecting(bool on);

  private:
    struct Entry
    {
        PmuCounterDesc desc;
        std::uint64_t value = 0;
        std::function<std::uint64_t()> probeFn;
        const BusyTracker *busyTracker = nullptr;
    };

    Entry &add(std::string name, PmuUnit unit, PmuKind kind,
               std::int32_t instance);

    // Deques: stable addresses for PmuCounter/PmuHistogram handles.
    std::deque<Entry> entries_;
    std::deque<std::pair<PmuCounterDesc, PmuHistogram>> hists_;
    bool collecting_ = false;
};

} // namespace dtbl

#endif // DTBL_STATS_PMU_HH
