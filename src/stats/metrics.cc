#include "stats/metrics.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace dtbl {

void
SimStats::reserveLaunchBytes(std::uint64_t bytes)
{
    pendingLaunchBytes += bytes;
    if (pendingLaunchBytes > peakPendingLaunchBytes)
        peakPendingLaunchBytes = pendingLaunchBytes;
}

void
SimStats::releaseLaunchBytes(std::uint64_t bytes)
{
    DTBL_ASSERT(pendingLaunchBytes >= bytes,
                "launch byte accounting underflow");
    pendingLaunchBytes -= bytes;
}

MetricsReport
MetricsReport::from(const SimStats &s, const std::string &bench,
                    const std::string &mode, unsigned numSmx,
                    unsigned maxWarpsPerSmx)
{
    MetricsReport r;
    r.benchmark = bench;
    r.mode = mode;
    r.cycles = s.totalCycles;

    if (s.warpInstrsIssued > 0) {
        r.warpActivityPct = 100.0 * double(s.activeLaneSum) /
                            (double(s.warpInstrsIssued) * warpSize);
    }

    const Cycle activity = s.dramActivityCycles;
    if (activity > 0) {
        r.dramEfficiency =
            double(s.dramReads + s.dramWrites) / double(activity);
    }

    if (s.busyCycles > 0) {
        const double maxWarps = double(numSmx) * maxWarpsPerSmx;
        r.smxOccupancyPct = 100.0 * double(s.residentWarpCycleSum) /
                            (double(s.busyCycles) * maxWarps);
    }

    if (s.launchWaitSamples > 0) {
        r.avgWaitingCycles =
            double(s.launchWaitCycleSum) / double(s.launchWaitSamples);
    }
    r.peakFootprintBytes = s.peakPendingLaunchBytes;

    r.dynamicLaunches = s.deviceKernelLaunches + s.aggGroupLaunches;
    if (r.dynamicLaunches > 0) {
        r.avgThreadsPerDynamicLaunch =
            double(s.dynamicLaunchThreadSum) / double(r.dynamicLaunches);
    }
    if (s.aggGroupLaunches > 0) {
        r.aggCoalesceRate =
            double(s.aggGroupsCoalesced) / double(s.aggGroupLaunches);
    }
    if (s.l1Hits + s.l1Misses > 0)
        r.l1HitRate = double(s.l1Hits) / double(s.l1Hits + s.l1Misses);
    if (s.l2Hits + s.l2Misses > 0)
        r.l2HitRate = double(s.l2Hits) / double(s.l2Hits + s.l2Misses);

    r.l1MshrMerges = s.l1MshrMerges;
    r.l2MshrMerges = s.l2MshrMerges;
    r.mshrStallCycles = s.mshrStallCycles;
    r.l2BankConflicts = s.l2BankConflicts;

    for (std::uint64_t v : s.stallSlotCycles)
        r.stallSlotCyclesTotal += v;
    if (r.stallSlotCyclesTotal > 0) {
        const std::uint64_t issued =
            s.stallSlotCycles[std::size_t(StallReason::Issued)];
        r.issueSlotUtilPct =
            100.0 * double(issued) / double(r.stallSlotCyclesTotal);
        const std::uint64_t stalled = r.stallSlotCyclesTotal - issued;
        if (stalled > 0) {
            for (std::size_t i = 1; i < kNumStallReasons; ++i) {
                r.stallPct[i] = 100.0 * double(s.stallSlotCycles[i]) /
                                double(stalled);
            }
        }
    }
    return r;
}

std::string
MetricsReport::str() const
{
    std::ostringstream os;
    os << benchmark << " [" << mode << "]"
       << " cycles=" << cycles
       << " warpActivity=" << warpActivityPct << "%"
       << " dramEff=" << dramEfficiency
       << " occupancy=" << smxOccupancyPct << "%"
       << " avgWait=" << avgWaitingCycles
       << " peakFootprint=" << peakFootprintBytes << "B"
       << " dynLaunches=" << dynamicLaunches;
    if (traceEvents > 0) {
        os << " traceHash=0x" << std::hex << traceHash << std::dec
           << " traceEvents=" << traceEvents;
    }
    // Appended only when the contention model produced activity, so a
    // modelMemContention=false line stays byte-identical to the flat
    // model's output (the contention-off CI job diffs on this). Ordered
    // before the profiling-gated fields to keep the unprofiled str() a
    // prefix of the profiled one (PmuPurity relies on that).
    if (l1MshrMerges + l2MshrMerges + mshrStallCycles + l2BankConflicts >
        0) {
        os << " mshrMerges=" << l1MshrMerges << "+" << l2MshrMerges
           << " mshrStallCycles=" << mshrStallCycles
           << " bankConflicts=" << l2BankConflicts;
    }
    // Printed only for a non-default policy so every fcfs-head line
    // (goldens, contention-off diffs) stays byte-identical to pre-v5
    // output.
    if (dispatchPolicy != "fcfs-head")
        os << " dispatchPolicy=" << dispatchPolicy;
    if (stallSlotCyclesTotal > 0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, " issueUtil=%.2f%%",
                      issueSlotUtilPct);
        os << buf << " stalls[";
        bool first = true;
        for (std::size_t i = 1; i < kNumStallReasons; ++i) {
            if (stallPct[i] <= 0.0)
                continue;
            std::snprintf(buf, sizeof buf, "%s%s=%.1f%%", first ? "" : " ",
                          stallReasonName(StallReason(i)), stallPct[i]);
            os << buf;
            first = false;
        }
        os << "]";
    }
    if (profileSamples > 0)
        os << " profileSamples=" << profileSamples;
    // Host wall-clock: only dtbl-bench measures it, so every other
    // line (goldens, CI metric diffs) is untouched by the v6 fields.
    if (simWallClockSec > 0.0) {
        char buf[80];
        std::snprintf(buf, sizeof buf, " wallClock=%.3fs cyclesPerSec=%.0f",
                      simWallClockSec, simCyclesPerSec);
        os << buf;
    }
    return os.str();
}

namespace {

/** Shortest round-trippable representation; stable across runs. */
std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the shorter %.15g form when it round-trips exactly.
    char buf15[40];
    std::snprintf(buf15, sizeof buf15, "%.15g", v);
    double back = 0.0;
    std::sscanf(buf15, "%lf", &back);
    return back == v ? buf15 : buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
MetricsReport::json() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schemaVersion\": " << schemaVersion << ",\n";
    os << "  \"benchmark\": " << jsonStr(benchmark) << ",\n";
    os << "  \"mode\": " << jsonStr(mode) << ",\n";
    os << "  \"cycles\": " << cycles << ",\n";
    os << "  \"warpActivityPct\": " << jsonNum(warpActivityPct) << ",\n";
    os << "  \"dramEfficiency\": " << jsonNum(dramEfficiency) << ",\n";
    os << "  \"smxOccupancyPct\": " << jsonNum(smxOccupancyPct) << ",\n";
    os << "  \"avgWaitingCycles\": " << jsonNum(avgWaitingCycles) << ",\n";
    os << "  \"peakFootprintBytes\": " << peakFootprintBytes << ",\n";
    os << "  \"avgThreadsPerDynamicLaunch\": "
       << jsonNum(avgThreadsPerDynamicLaunch) << ",\n";
    os << "  \"dynamicLaunches\": " << dynamicLaunches << ",\n";
    os << "  \"aggCoalesceRate\": " << jsonNum(aggCoalesceRate) << ",\n";
    os << "  \"l1HitRate\": " << jsonNum(l1HitRate) << ",\n";
    os << "  \"l2HitRate\": " << jsonNum(l2HitRate) << ",\n";
    os << "  \"traceHash\": " << traceHash << ",\n";
    os << "  \"traceEvents\": " << traceEvents << ",\n";
    os << "  \"stallSlotCyclesTotal\": " << stallSlotCyclesTotal << ",\n";
    os << "  \"issueSlotUtilPct\": " << jsonNum(issueSlotUtilPct) << ",\n";
    os << "  \"stallPct\": {";
    for (std::size_t i = 1; i < kNumStallReasons; ++i) {
        os << (i == 1 ? "" : ", ") << "\""
           << stallReasonName(StallReason(i))
           << "\": " << jsonNum(stallPct[i]);
    }
    os << "},\n";
    os << "  \"profileSamples\": " << profileSamples << ",\n";
    os << "  \"sampledPeakResidentWarps\": " << sampledPeakResidentWarps
       << ",\n";
    os << "  \"sampledPeakAgtLive\": " << sampledPeakAgtLive << ",\n";
    os << "  \"sampledPeakPendingLaunchBytes\": "
       << sampledPeakPendingLaunchBytes << ",\n";
    os << "  \"l1MshrMerges\": " << l1MshrMerges << ",\n";
    os << "  \"l2MshrMerges\": " << l2MshrMerges << ",\n";
    os << "  \"mshrStallCycles\": " << mshrStallCycles << ",\n";
    os << "  \"l2BankConflicts\": " << l2BankConflicts << ",\n";
    os << "  \"dispatchPolicy\": " << jsonStr(dispatchPolicy) << ",\n";
    os << "  \"kernelStallSlotCycles\": {";
    for (std::size_t k = 0; k < kernelStallSlotCycles.size(); ++k) {
        const auto &[name, row] = kernelStallSlotCycles[k];
        os << (k == 0 ? "" : ", ") << jsonStr(name) << ": {";
        for (std::size_t i = 0; i < kNumStallReasons; ++i) {
            os << (i == 0 ? "" : ", ") << "\""
               << stallReasonName(StallReason(i)) << "\": " << row[i];
        }
        os << "}";
    }
    os << "},\n";
    os << "  \"simWallClockSec\": " << jsonNum(simWallClockSec) << ",\n";
    os << "  \"simCyclesPerSec\": " << jsonNum(simCyclesPerSec) << "\n";
    os << "}\n";
    return os.str();
}

std::string
MetricsReport::csvHeader()
{
    std::string h =
        "schema_version,benchmark,mode,cycles,warp_activity_pct,"
        "dram_efficiency,smx_occupancy_pct,avg_waiting_cycles,"
        "peak_footprint_bytes,avg_threads_per_dynamic_launch,"
        "dynamic_launches,agg_coalesce_rate,l1_hit_rate,l2_hit_rate,"
        "trace_hash,trace_events,stall_slot_cycles_total,"
        "issue_slot_util_pct";
    for (std::size_t i = 1; i < kNumStallReasons; ++i) {
        h += ",stall_pct_";
        h += stallReasonName(StallReason(i));
    }
    h += ",profile_samples,sampled_peak_resident_warps,"
         "sampled_peak_agt_live,sampled_peak_pending_launch_bytes,"
         "l1_mshr_merges,l2_mshr_merges,mshr_stall_cycles,"
         "l2_bank_conflicts,dispatch_policy,sim_wall_clock_sec,"
         "sim_cycles_per_sec";
    return h;
}

std::string
MetricsReport::csvRow() const
{
    std::ostringstream os;
    os << schemaVersion << ',' << benchmark << ',' << mode << ',' << cycles
       << ',' << jsonNum(warpActivityPct) << ',' << jsonNum(dramEfficiency)
       << ',' << jsonNum(smxOccupancyPct) << ','
       << jsonNum(avgWaitingCycles) << ',' << peakFootprintBytes << ','
       << jsonNum(avgThreadsPerDynamicLaunch) << ',' << dynamicLaunches
       << ',' << jsonNum(aggCoalesceRate) << ',' << jsonNum(l1HitRate)
       << ',' << jsonNum(l2HitRate) << ',' << traceHash << ','
       << traceEvents << ',' << stallSlotCyclesTotal << ','
       << jsonNum(issueSlotUtilPct);
    for (std::size_t i = 1; i < kNumStallReasons; ++i)
        os << ',' << jsonNum(stallPct[i]);
    os << ',' << profileSamples << ',' << sampledPeakResidentWarps << ','
       << sampledPeakAgtLive << ',' << sampledPeakPendingLaunchBytes
       << ',' << l1MshrMerges << ',' << l2MshrMerges << ','
       << mshrStallCycles << ',' << l2BankConflicts << ','
       << dispatchPolicy << ',' << jsonNum(simWallClockSec) << ','
       << jsonNum(simCyclesPerSec);
    return os.str();
}

} // namespace dtbl
