#include "stats/metrics.hh"

#include <sstream>

#include "common/log.hh"

namespace dtbl {

void
SimStats::reserveLaunchBytes(std::uint64_t bytes)
{
    pendingLaunchBytes += bytes;
    if (pendingLaunchBytes > peakPendingLaunchBytes)
        peakPendingLaunchBytes = pendingLaunchBytes;
}

void
SimStats::releaseLaunchBytes(std::uint64_t bytes)
{
    DTBL_ASSERT(pendingLaunchBytes >= bytes,
                "launch byte accounting underflow");
    pendingLaunchBytes -= bytes;
}

MetricsReport
MetricsReport::from(const SimStats &s, const std::string &bench,
                    const std::string &mode, unsigned numSmx,
                    unsigned maxWarpsPerSmx)
{
    MetricsReport r;
    r.benchmark = bench;
    r.mode = mode;
    r.cycles = s.totalCycles;

    if (s.warpInstrsIssued > 0) {
        r.warpActivityPct = 100.0 * double(s.activeLaneSum) /
                            (double(s.warpInstrsIssued) * warpSize);
    }

    const Cycle activity = s.dramActivityCycles;
    if (activity > 0) {
        r.dramEfficiency =
            double(s.dramReads + s.dramWrites) / double(activity);
    }

    if (s.busyCycles > 0) {
        const double maxWarps = double(numSmx) * maxWarpsPerSmx;
        r.smxOccupancyPct = 100.0 * double(s.residentWarpCycleSum) /
                            (double(s.busyCycles) * maxWarps);
    }

    if (s.launchWaitSamples > 0) {
        r.avgWaitingCycles =
            double(s.launchWaitCycleSum) / double(s.launchWaitSamples);
    }
    r.peakFootprintBytes = s.peakPendingLaunchBytes;

    r.dynamicLaunches = s.deviceKernelLaunches + s.aggGroupLaunches;
    if (r.dynamicLaunches > 0) {
        r.avgThreadsPerDynamicLaunch =
            double(s.dynamicLaunchThreadSum) / double(r.dynamicLaunches);
    }
    if (s.aggGroupLaunches > 0) {
        r.aggCoalesceRate =
            double(s.aggGroupsCoalesced) / double(s.aggGroupLaunches);
    }
    if (s.l1Hits + s.l1Misses > 0)
        r.l1HitRate = double(s.l1Hits) / double(s.l1Hits + s.l1Misses);
    if (s.l2Hits + s.l2Misses > 0)
        r.l2HitRate = double(s.l2Hits) / double(s.l2Hits + s.l2Misses);
    return r;
}

std::string
MetricsReport::str() const
{
    std::ostringstream os;
    os << benchmark << " [" << mode << "]"
       << " cycles=" << cycles
       << " warpActivity=" << warpActivityPct << "%"
       << " dramEff=" << dramEfficiency
       << " occupancy=" << smxOccupancyPct << "%"
       << " avgWait=" << avgWaitingCycles
       << " peakFootprint=" << peakFootprintBytes << "B"
       << " dynLaunches=" << dynamicLaunches;
    if (traceEvents > 0) {
        os << " traceHash=0x" << std::hex << traceHash << std::dec
           << " traceEvents=" << traceEvents;
    }
    return os.str();
}

} // namespace dtbl
