#include "stats/host_prof.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace dtbl {

HostProfiler::HostProfiler()
{
    Phase root;
    root.name = "(root)";
    phases_.push_back(std::move(root));
}

HostProfiler &
HostProfiler::instance()
{
    static HostProfiler prof;
    return prof;
}

void
HostProfiler::setEnabled(bool on)
{
    enabled_ = on && compiledIn;
}

void
HostProfiler::reset()
{
    phases_.clear();
    Phase root;
    root.name = "(root)";
    phases_.push_back(std::move(root));
    cur_ = 0;
}

std::int32_t
HostProfiler::enter(const char *name)
{
    Phase &parent = phases_[std::size_t(cur_)];
    for (std::int32_t c : parent.children) {
        if (phases_[std::size_t(c)].name == name) {
            cur_ = c;
            return c;
        }
    }
    const std::int32_t idx = std::int32_t(phases_.size());
    Phase p;
    p.name = name;
    p.parent = cur_;
    phases_.push_back(std::move(p));
    phases_[std::size_t(cur_)].children.push_back(idx);
    cur_ = idx;
    return idx;
}

void
HostProfiler::exit(std::int32_t node,
                   std::chrono::steady_clock::time_point start)
{
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    Phase &p = phases_[std::size_t(node)];
    p.inclusiveNs += std::uint64_t(ns);
    ++p.entries;
    cur_ = p.parent;
}

std::uint64_t
HostProfiler::exclusiveNs(std::size_t i) const
{
    const Phase &p = phases_[i];
    std::uint64_t childNs = 0;
    for (std::int32_t c : p.children)
        childNs += phases_[std::size_t(c)].inclusiveNs;
    // Clock granularity can make a child's sum exceed the parent by a
    // few ns; clamp so "exclusive" never underflows.
    return p.inclusiveNs > childNs ? p.inclusiveNs - childNs : 0;
}

std::string
HostProfiler::path(std::size_t i) const
{
    if (i == 0)
        return phases_[0].name;
    std::string out = phases_[i].name;
    for (std::int32_t p = phases_[i].parent; p > 0;
         p = phases_[std::size_t(p)].parent) {
        out = phases_[std::size_t(p)].name + "/" + out;
    }
    return out;
}

std::int32_t
HostProfiler::find(const std::string &path) const
{
    std::int32_t cur = 0;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::string part =
            path.substr(pos, slash == std::string::npos ? std::string::npos
                                                        : slash - pos);
        std::int32_t next = -1;
        for (std::int32_t c : phases_[std::size_t(cur)].children) {
            if (phases_[std::size_t(c)].name == part) {
                next = c;
                break;
            }
        }
        if (next < 0)
            return -1;
        cur = next;
        if (slash == std::string::npos)
            return cur;
        pos = slash + 1;
    }
    return -1;
}

std::uint64_t
HostProfiler::totalNs() const
{
    std::uint64_t total = 0;
    for (std::int32_t c : phases_[0].children)
        total += phases_[std::size_t(c)].inclusiveNs;
    return total;
}

std::string
HostProfiler::textReport() const
{
    std::ostringstream os;
    os << "==== host profile (wall-clock) ====\n";
    if (!compiledIn) {
        os << "(compiled out: -DDTBL_ENABLE_HOSTPROF=OFF)\n";
        return os.str();
    }
    const double total = double(totalNs());
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-36s %10s %12s %12s %7s\n", "phase",
                  "entries", "incl(ms)", "excl(ms)", "excl%");
    os << buf;
    // Depth-first in registration order so children print under their
    // parent; the tree is small (a dozen-ish phases).
    struct Item
    {
        std::int32_t node;
        int depth;
    };
    std::vector<Item> stack;
    for (auto it = phases_[0].children.rbegin();
         it != phases_[0].children.rend(); ++it) {
        stack.push_back({*it, 0});
    }
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const Phase &p = phases_[std::size_t(item.node)];
        std::string name(std::size_t(item.depth) * 2, ' ');
        name += p.name;
        const std::uint64_t excl = exclusiveNs(std::size_t(item.node));
        std::snprintf(buf, sizeof buf,
                      "%-36s %10" PRIu64 " %12.3f %12.3f %7.2f\n",
                      name.c_str(), p.entries, double(p.inclusiveNs) / 1e6,
                      double(excl) / 1e6,
                      total > 0 ? 100.0 * double(excl) / total : 0.0);
        os << buf;
        for (auto it = p.children.rbegin(); it != p.children.rend(); ++it)
            stack.push_back({*it, item.depth + 1});
    }
    std::snprintf(buf, sizeof buf, "total accounted: %.3f ms\n",
                  total / 1e6);
    os << buf;
    return os.str();
}

std::string
HostProfiler::json() const
{
    std::ostringstream os;
    os << "{\"hostProfSchemaVersion\": " << jsonSchemaVersion
       << ", \"phases\": [";
    bool first = true;
    for (std::size_t i = 1; i < phases_.size(); ++i) {
        const Phase &p = phases_[i];
        os << (first ? "" : ",") << "\n  {\"path\": \"" << path(i)
           << "\", \"parent\": " << p.parent
           << ", \"entries\": " << p.entries
           << ", \"inclusiveNs\": " << p.inclusiveNs
           << ", \"exclusiveNs\": " << exclusiveNs(i) << "}";
        first = false;
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace dtbl
