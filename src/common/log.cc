#include "common/log.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace dtbl {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throw instead of abort() so tests can assert on panics.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " @ " << file << ":" << line
              << std::endl;
}

} // namespace dtbl
