/**
 * @file
 * Fundamental value types shared by every simulator subsystem.
 */

#ifndef DTBL_COMMON_TYPES_HH
#define DTBL_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace dtbl {

/** Byte address in simulated global memory. */
using Addr = std::uint64_t;

/** SMX-domain clock cycle count. */
using Cycle = std::uint64_t;

/** 32-lane warp active mask; bit i is lane i. */
using ActiveMask = std::uint32_t;

/** Number of lanes in a warp (fixed by the modelled architecture). */
constexpr unsigned warpSize = 32;

/** Mask with all warp lanes active. */
constexpr ActiveMask fullMask = 0xffffffffu;

/** Identifier of a kernel function in the program registry. */
using KernelFuncId = std::uint32_t;

/** Sentinel for "no kernel function". */
constexpr KernelFuncId invalidKernelFunc = 0xffffffffu;

/**
 * 3D extent used for grid and thread-block dimensions (CUDA dim3).
 */
struct Dim3
{
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    constexpr Dim3() = default;
    constexpr Dim3(std::uint32_t xv, std::uint32_t yv = 1,
                   std::uint32_t zv = 1)
        : x(xv), y(yv), z(zv)
    {}

    /** Total element count across all three dimensions. */
    constexpr std::uint64_t
    count() const
    {
        return std::uint64_t(x) * y * z;
    }

    constexpr bool operator==(const Dim3 &o) const = default;

    std::string str() const;
};

/**
 * Flat index -> 3D coordinate for a given extent, x fastest.
 */
constexpr Dim3
unflatten(std::uint64_t flat, const Dim3 &extent)
{
    Dim3 d;
    d.x = std::uint32_t(flat % extent.x);
    d.y = std::uint32_t((flat / extent.x) % extent.y);
    d.z = std::uint32_t(flat / (std::uint64_t(extent.x) * extent.y));
    return d;
}

/** 3D coordinate -> flat index for a given extent, x fastest. */
constexpr std::uint64_t
flatten(const Dim3 &c, const Dim3 &extent)
{
    return (std::uint64_t(c.z) * extent.y + c.y) * extent.x + c.x;
}

} // namespace dtbl

#endif // DTBL_COMMON_TYPES_HH
