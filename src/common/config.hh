/**
 * @file
 * Simulator configuration: Table 2 (GPGPU-Sim / K20c parameters),
 * Table 3 (CDP & DTBL launch latency model) and the DTBL extension
 * parameters of the ISCA'15 paper.
 */

#ifndef DTBL_COMMON_CONFIG_HH
#define DTBL_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dtbl {

/**
 * Per-warp latency model for a device runtime API call: latency for a
 * warp in which x threads invoke the call is base + per * x
 * (the paper's Ax + b with A = per, b = base).
 */
struct ApiLatency
{
    Cycle base = 0;
    Cycle per = 0;

    Cycle
    forCallers(unsigned x) const
    {
        return base + per * Cycle(x);
    }
};

/**
 * Launch-path latencies from Table 3, measured on a Tesla K20c and
 * injected into the timing model exactly as the paper does.
 */
struct LaunchLatencyConfig
{
    /** cudaStreamCreateWithFlags (CDP only). */
    Cycle streamCreate = 7165;
    /** cudaGetParameterBuffer (CDP and DTBL). */
    ApiLatency getParameterBuffer{8023, 129};
    /** cudaLaunchDevice (CDP only). */
    ApiLatency launchDevice{12187, 1592};
    /** Kernel dispatching, KMU -> Kernel Distributor. */
    Cycle kernelDispatch = 283;
};

/** DRAM timing parameters (memory-controller clock domain). */
struct DramConfig
{
    /** Number of memory partitions (GDDR5 channels on K20c). */
    unsigned numPartitions = 6;
    /** Banks per partition. */
    unsigned banksPerPartition = 8;
    /** Row size per bank (bytes); determines row-hit behaviour. */
    unsigned rowBytes = 2048;
    /** Data-bus occupancy per 128B command (controller cycles). */
    Cycle burstCycles = 2;
    /** Extra latency for a row-buffer miss (precharge + activate). */
    Cycle rowMissCycles = 18;
    /** Flat controller pipeline latency added to every access. */
    Cycle accessLatency = 40;
};

/**
 * Thread-block dispatch policy of the SMX scheduler (implemented in
 * gpu/dispatch/). The enum lives here so it is a plain config knob;
 * the policy objects themselves are constructed by the scheduler.
 */
enum class DispatchPolicyKind : std::uint8_t
{
    /**
     * One TB per SMX per cycle, FCFS over marked kernels — the
     * original distribution loop, kept bit-identical for regression
     * comparison (pinned by the seed goldens in test_dispatch).
     */
    FcfsHead,
    /**
     * Greedy concurrent-kernel dispatch: keep filling each SMX from
     * the FCFS-ordered kernels until no marked kernel fits in the
     * leftover resources (paper Section 4.3 permits concurrent
     * kernels from the Kernel Distributor).
     */
    Concurrent,
};

/** Stable lowercase name ("fcfs-head", "concurrent"). */
const char *dispatchPolicyName(DispatchPolicyKind k);

/** Parse @p name into @p out; false (out untouched) when unknown. */
bool parseDispatchPolicy(const std::string &name, DispatchPolicyKind &out);

/** Cache geometry + latency. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t ways = 4;
    Cycle hitLatency = 28;
};

/**
 * Top-level configuration, defaulting to the Tesla K20c model of Table 2.
 */
struct GpuConfig
{
    // --- Table 2 ----------------------------------------------------
    double smxClockMhz = 706.0;
    double memClockMhz = 2600.0;
    unsigned numSmx = 13;
    unsigned maxResidentTbPerSmx = 16;
    unsigned maxResidentThreadsPerSmx = 2048;
    unsigned regsPerSmx = 65536;
    std::uint32_t sharedMemPerSmx = 48 * 1024;
    unsigned maxConcurrentKernels = 32;

    /** Hardware work queues (Hyper-Q); equals Kernel Distributor size. */
    unsigned numHwqs = 32;
    /** Max resident warps per SMX (2048 threads / 32). */
    unsigned maxResidentWarpsPerSmx = 64;
    /** Warp schedulers per SMX (GK110 has 4). */
    unsigned warpSchedulersPerSmx = 4;

    // --- Memory system ----------------------------------------------
    CacheConfig l1{16 * 1024, 128, 4, 28};
    CacheConfig l2{1536 * 1024, 128, 8, 150};
    DramConfig dram;
    /** Shared-memory access latency. */
    Cycle sharedMemLatency = 24;

    // --- Memory contention model (MSHR + banked L2 port) -------------
    /**
     * Model MSHR miss-merging and banked L2 port contention. When
     * false, every path below is bypassed and the hierarchy reverts to
     * the flat per-transaction latency model (bit-identical timing,
     * stats and trace to the pre-MSHR simulator) for regression
     * comparison.
     */
    bool modelMemContention = true;
    /** Miss-status holding registers per L1 (GK110-class per-SMX). */
    unsigned l1MshrEntries = 32;
    /** MSHRs at the shared L2 (all slices combined). */
    unsigned l2MshrEntries = 128;
    /**
     * Requests that can share one in-flight fill, primary miss
     * included; requests beyond the width wait for the fill to retire
     * (counted as MSHR stall cycles, not merges).
     */
    unsigned mshrMergeWidth = 8;
    /** Address-interleaved L2 ports; GK110 pairs two per partition. */
    unsigned l2Banks = 12;
    /** Port occupancy per 128B transaction; conflicts serialize. */
    Cycle l2BankBusyCycles = 4;
    /**
     * DRAM-data-return to requester forwarding latency on an L2 fill
     * (critical-word-first bypass). The flat model instead re-charges
     * the full L2 pipeline (l2.hitLatency) after the DRAM round trip.
     */
    Cycle l2FillForwardCycles = 30;

    // --- TB dispatch ------------------------------------------------
    /**
     * How the SMX scheduler distributes ready TBs to SMXs each cycle.
     * FcfsHead reproduces the seed behaviour bit for bit; Concurrent
     * packs leftover SMX resources with TBs from later marked kernels.
     */
    DispatchPolicyKind dispatchPolicy = DispatchPolicyKind::FcfsHead;

    // --- Execution latencies ----------------------------------------
    Cycle aluLatency = 1;      //!< issue-to-issue for simple ALU ops
    Cycle sfuLatency = 8;      //!< div/rem/transcendental issue cost
    Cycle atomicLatency = 120; //!< warp-visible latency of a global atomic

    // --- Launch model (Table 3) -------------------------------------
    LaunchLatencyConfig launch;
    /**
     * When false, all launch-path latencies are zero: this is the
     * CDPI/DTBLI "ideal" configuration of Section 5.2.
     */
    bool modelLaunchLatency = true;

    // --- DTBL extension (Section 4) ---------------------------------
    /** Aggregated Group Table entries (Figure 12 sweeps this). */
    unsigned agtSize = 1024;
    /** Cycles to search the 32 KDE entries for an eligible kernel. */
    Cycle kdeSearchCycles = 32;
    /** Cycles to probe the AGT with the hash function. */
    Cycle agtProbeCycles = 1;
    /**
     * When a group finds no eligible kernel but a fallback device
     * kernel of the same function is already in flight, wait for it to
     * land in the Kernel Distributor instead of spawning another device
     * kernel. Disabled only for ablation studies.
     */
    bool fallbackRetryWindow = true;
    /**
     * Latency to fetch an aggregated group's metadata from global
     * memory when the AGT had no free slot. The record was written by
     * the launching SMX shortly before, so it is usually L2-resident.
     */
    Cycle agtOverflowFetchCycles = 200;
    /**
     * The scheduling pool is a linked list known ahead of time, so the
     * SMX scheduler pipelines metadata fetches for upcoming spilled
     * groups this many entries ahead of the distribution head.
     */
    unsigned agtPrefetchDepth = 8;

    // --- Device memory ----------------------------------------------
    /** Simulated global-memory size. */
    std::uint64_t globalMemBytes = 64ull * 1024 * 1024;

    /** Metadata bytes reserved per pending device-launched kernel. */
    std::uint32_t cdpKernelRecordBytes = 256;
    /** Metadata bytes reserved per pending aggregated group. */
    std::uint32_t aggGroupRecordBytes = 20;

    /** Validate internal consistency; DTBL_FATALs on bad user config. */
    void validate() const;

    /** Human-readable multi-line summary (used by bench_table2_config). */
    std::string summary() const;

    /** K20c baseline (the defaults). */
    static GpuConfig k20c();

    /** K20c with zeroed launch latencies (CDPI / DTBLI). */
    static GpuConfig k20cIdeal();
};

} // namespace dtbl

#endif // DTBL_COMMON_CONFIG_HH
