/**
 * @file
 * Deterministic random number generator for dataset synthesis.
 *
 * All dataset generators must be reproducible across runs and platforms,
 * so we use an explicit xoshiro256** implementation instead of
 * std::mt19937 + distribution objects (whose outputs are not guaranteed
 * to be identical across standard library implementations).
 */

#ifndef DTBL_COMMON_RNG_HH
#define DTBL_COMMON_RNG_HH

#include <cstdint>

namespace dtbl {

/** Seedable xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller. */
    double nextGaussian();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace dtbl

#endif // DTBL_COMMON_RNG_HH
