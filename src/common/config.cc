#include "common/config.hh"

#include <sstream>

#include "common/log.hh"

namespace dtbl {

std::string
Dim3::str() const
{
    std::ostringstream os;
    os << "(" << x << "," << y << "," << z << ")";
    return os.str();
}

const char *
dispatchPolicyName(DispatchPolicyKind k)
{
    switch (k) {
      case DispatchPolicyKind::FcfsHead: return "fcfs-head";
      case DispatchPolicyKind::Concurrent: return "concurrent";
    }
    return "?";
}

bool
parseDispatchPolicy(const std::string &name, DispatchPolicyKind &out)
{
    if (name == "fcfs-head") {
        out = DispatchPolicyKind::FcfsHead;
        return true;
    }
    if (name == "concurrent") {
        out = DispatchPolicyKind::Concurrent;
        return true;
    }
    return false;
}

void
GpuConfig::validate() const
{
    if (numSmx == 0)
        DTBL_FATAL("numSmx must be > 0");
    if (maxResidentWarpsPerSmx * warpSize != maxResidentThreadsPerSmx)
        DTBL_FATAL("maxResidentWarpsPerSmx inconsistent with ",
                   "maxResidentThreadsPerSmx");
    if (numHwqs != maxConcurrentKernels)
        DTBL_FATAL("Kernel Distributor size must match HWQ count "
                   "(Section 2.2): ", numHwqs, " vs ",
                   maxConcurrentKernels);
    if ((agtSize & (agtSize - 1)) != 0)
        DTBL_FATAL("agtSize must be a power of two (hash is "
                   "hw_tid & (AGT_size - 1)): ", agtSize);
    if (l1.lineBytes != l2.lineBytes)
        DTBL_FATAL("L1/L2 line sizes must match");
    if ((l1.lineBytes & (l1.lineBytes - 1)) != 0)
        DTBL_FATAL("cache line size must be a power of two");
    if (warpSchedulersPerSmx == 0)
        DTBL_FATAL("need at least one warp scheduler per SMX");
    if (dram.numPartitions == 0 || dram.banksPerPartition == 0)
        DTBL_FATAL("DRAM needs at least one partition and bank");
    if (modelMemContention) {
        if (l1MshrEntries == 0 || l2MshrEntries == 0)
            DTBL_FATAL("MSHR entry counts must be > 0 when the "
                       "contention model is on");
        if (mshrMergeWidth == 0)
            DTBL_FATAL("mshrMergeWidth must be > 0 (it includes the "
                       "primary miss)");
        if (l2Banks == 0)
            DTBL_FATAL("need at least one L2 bank");
    }
}

std::string
GpuConfig::summary() const
{
    std::ostringstream os;
    os << "SMX Clock Freq.                          " << smxClockMhz
       << "MHz\n"
       << "Memory Clock Freq.                       " << memClockMhz
       << "MHz\n"
       << "# of SMX                                 " << numSmx << "\n"
       << "Max # of Resident Thread Blocks per SMX  " << maxResidentTbPerSmx
       << "\n"
       << "Max # of Resident Threads per SMX        "
       << maxResidentThreadsPerSmx << "\n"
       << "# of 32-bit Registers per SMX            " << regsPerSmx << "\n"
       << "L1 Cache / Shared Mem Size per SMX       " << l1.sizeBytes / 1024
       << "KB / " << sharedMemPerSmx / 1024 << "KB\n"
       << "Max # of Concurrent Kernels              " << maxConcurrentKernels
       << "\n"
       << "AGT entries                              " << agtSize << "\n"
       << "Launch latency modeled                   "
       << (modelLaunchLatency ? "yes" : "no (ideal)") << "\n"
       << "Memory contention modeled                "
       << (modelMemContention ? "yes" : "no (flat latency)") << "\n"
       << "TB dispatch policy                       "
       << dispatchPolicyName(dispatchPolicy) << "\n";
    return os.str();
}

GpuConfig
GpuConfig::k20c()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::k20cIdeal()
{
    GpuConfig cfg;
    cfg.modelLaunchLatency = false;
    return cfg;
}

} // namespace dtbl
