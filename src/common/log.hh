/**
 * @file
 * Error reporting helpers in the spirit of gem5's panic()/fatal()/warn().
 */

#ifndef DTBL_COMMON_LOG_HH
#define DTBL_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace dtbl {

/** Abort the simulation: internal invariant violated (a simulator bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit the simulation: unusable user configuration or input. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace dtbl

#define DTBL_PANIC(...) \
    ::dtbl::panicImpl(__FILE__, __LINE__, ::dtbl::detail::format(__VA_ARGS__))

#define DTBL_FATAL(...) \
    ::dtbl::fatalImpl(__FILE__, __LINE__, ::dtbl::detail::format(__VA_ARGS__))

#define DTBL_WARN(...) \
    ::dtbl::warnImpl(__FILE__, __LINE__, ::dtbl::detail::format(__VA_ARGS__))

/** Simulator-internal invariant check; always on (cheap conditions only). */
#define DTBL_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::dtbl::panicImpl(__FILE__, __LINE__,                            \
                ::dtbl::detail::format("assertion failed: " #cond " ",      \
                                       ##__VA_ARGS__));                      \
        }                                                                    \
    } while (0)

#endif // DTBL_COMMON_LOG_HH
