/**
 * @file
 * Figure 7 — DRAM efficiency, (n_rd + n_write) / n_activity, for Flat,
 * CDP and DTBL.
 *
 * Paper expectations: efficiency increases Flat -> CDP -> DTBL (1.14x /
 * 1.27x on average); clr_cage15 and sssp_cage15 improve most because
 * their flat implementations chase scattered neighbor lists.
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const auto rows = runSweep(opts, {Mode::Flat, Mode::Cdp, Mode::Dtbl});

    Table t({"benchmark", "Flat", "CDP", "DTBL", "CDP/Flat",
             "DTBL/Flat"});
    std::vector<double> cdpRatio, dtblRatio;
    for (const auto &r : rows) {
        const double f = r.at(Mode::Flat).report.dramEfficiency;
        const double c = r.at(Mode::Cdp).report.dramEfficiency;
        const double d = r.at(Mode::Dtbl).report.dramEfficiency;
        if (f > 0) {
            cdpRatio.push_back(c / f);
            dtblRatio.push_back(d / f);
        }
        t.addRow({r.bench, Table::num(f, 3), Table::num(c, 3),
                  Table::num(d, 3),
                  Table::num(f > 0 ? c / f : 0, 2),
                  Table::num(f > 0 ? d / f : 0, 2)});
    }
    t.addRow({"geomean", "", "", "", Table::num(Table::geomean(cdpRatio), 2),
              Table::num(Table::geomean(dtblRatio), 2)});

    std::printf("\nFigure 7: DRAM efficiency = (n_rd + n_write) / "
                "n_activity\n\n");
    t.print();
    std::printf("\nPaper: CDP raises DRAM efficiency 1.14x and DTBL "
                "1.27x on average over\nflat; DTBL beats CDP thanks to "
                "higher occupancy (more latency hiding).\n");
    return 0;
}
