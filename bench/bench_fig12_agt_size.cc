/**
 * @file
 * Figure 12 — sensitivity of DTBL performance to the AGT size: DTBL
 * speedup with 512 / 1024 / 2048 AGT entries, normalized to 1024.
 *
 * Paper expectations: average 0.76x at 512 entries and 1.20x at 2048;
 * launch-heavy benchmarks (bht, regx) are the most sensitive.
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    const std::string resultsOut = opts.resultsOut;
    const unsigned sizes[3] = {512, 1024, 2048};
    std::vector<EvalRow> sweeps[3];
    for (int i = 0; i < 3; ++i) {
        GpuConfig cfg = GpuConfig::k20c();
        cfg.agtSize = sizes[i];
        // One CSV per AGT size: rows carry no config column, so a
        // combined file could not be told apart.
        if (!resultsOut.empty()) {
            opts.resultsOut = resultsOut + ".agt" +
                              std::to_string(sizes[i]) + ".csv";
        }
        std::fprintf(stderr, "AGT size %u:\n", sizes[i]);
        sweeps[i] = runSweep(opts, {Mode::Dtbl}, cfg);
    }

    Table t({"benchmark", "512", "1024", "2048", "overflow@1024"});
    std::vector<double> n512, n2048;
    for (std::size_t b = 0; b < sweeps[1].size(); ++b) {
        const double c512 = double(sweeps[0][b].at(Mode::Dtbl).report.cycles);
        const double c1k = double(sweeps[1][b].at(Mode::Dtbl).report.cycles);
        const double c2k = double(sweeps[2][b].at(Mode::Dtbl).report.cycles);
        const double s512 = c1k / c512; // normalized speedup vs 1024
        const double s2048 = c1k / c2k;
        n512.push_back(s512);
        n2048.push_back(s2048);
        const auto &st = sweeps[1][b].at(Mode::Dtbl).stats;
        const double ovf =
            st.aggGroupLaunches
                ? 100.0 * double(st.agtOverflows) /
                      double(st.aggGroupLaunches)
                : 0.0;
        t.addRow({sweeps[1][b].bench, Table::num(s512, 2), "1.00",
                  Table::num(s2048, 2), Table::num(ovf, 1) + "%"});
    }
    t.addRow({"geomean", Table::num(Table::geomean(n512), 2), "1.00",
              Table::num(Table::geomean(n2048), 2), ""});

    std::printf("\nFigure 12: DTBL performance sensitivity to AGT size "
                "(speedup normalized to 1024 entries)\n\n");
    t.print();
    std::printf("\nPaper: halving the AGT to 512 entries costs ~1.31x; "
                "doubling to 2048 gains\n~1.20x; benchmarks with many "
                "concurrent aggregated groups are most sensitive.\n");
    return 0;
}
