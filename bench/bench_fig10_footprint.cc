/**
 * @file
 * Figure 10 — memory-footprint reduction of DTBL relative to CDP: peak
 * bytes reserved for pending dynamic launches (parameter buffers +
 * kernel records / AGE records).
 *
 * Paper expectations: average reduction ~25.6%; regx_string the
 * largest (-51.2%); clr_graph500 ~0 (its groups stay pending anyway).
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const auto rows = runSweep(opts, {Mode::Cdp, Mode::Dtbl});

    Table t({"benchmark", "CDP peak (KB)", "DTBL peak (KB)",
             "reduction (KB)", "reduction (%)"});
    std::vector<double> reductions;
    for (const auto &r : rows) {
        const double c =
            double(r.at(Mode::Cdp).report.peakFootprintBytes);
        const double d =
            double(r.at(Mode::Dtbl).report.peakFootprintBytes);
        if (c == 0) {
            t.addRow({r.bench, "0", "0", "-", "-"});
            continue;
        }
        const double red = 100.0 * (c - d) / c;
        reductions.push_back(red);
        t.addRow({r.bench, Table::num(c / 1024, 1),
                  Table::num(d / 1024, 1), Table::num((c - d) / 1024, 1),
                  Table::num(red, 1)});
    }
    double avg = 0;
    for (double x : reductions)
        avg += x;
    if (!reductions.empty())
        avg /= double(reductions.size());
    t.addRow({"average", "", "", "", Table::num(avg, 1)});

    std::printf("\nFigure 10: memory footprint reduction of DTBL from "
                "CDP\n(peak reserved bytes for pending dynamic "
                "launches)\n\n");
    t.print();
    std::printf("\nPaper: DTBL reduces the pending-launch footprint by "
                "25.6%% on average —\naggregated groups need only an "
                "AGE-sized record and drain faster.\nAbsolute sizes are "
                "smaller than the paper's (inputs are scaled down).\n");
    return 0;
}
