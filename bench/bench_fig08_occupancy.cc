/**
 * @file
 * Figure 8 — SMX occupancy (average resident warps / maximum resident
 * warps) for CDPI, DTBLI, CDP and DTBL.
 *
 * Paper expectations: DTBLI > CDPI (1.24x average); adding launch
 * latency costs CDP more than DTBL; bht shows the largest ideal gap
 * (fine-grained children), pre the smallest (coarse-grained children).
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const auto rows = runSweep(
        opts, {Mode::CdpIdeal, Mode::DtblIdeal, Mode::Cdp, Mode::Dtbl});

    Table t({"benchmark", "CDPI", "DTBLI", "CDP", "DTBL", "lat dCDP",
             "lat dDTBL"});
    double s[4] = {0, 0, 0, 0};
    for (const auto &r : rows) {
        const double ci = r.at(Mode::CdpIdeal).report.smxOccupancyPct;
        const double di = r.at(Mode::DtblIdeal).report.smxOccupancyPct;
        const double c = r.at(Mode::Cdp).report.smxOccupancyPct;
        const double d = r.at(Mode::Dtbl).report.smxOccupancyPct;
        s[0] += ci;
        s[1] += di;
        s[2] += c;
        s[3] += d;
        t.addRow({r.bench, Table::num(ci, 1), Table::num(di, 1),
                  Table::num(c, 1), Table::num(d, 1),
                  Table::num(c - ci, 1), Table::num(d - di, 1)});
    }
    const double n = double(rows.size());
    t.addRow({"average", Table::num(s[0] / n, 1), Table::num(s[1] / n, 1),
              Table::num(s[2] / n, 1), Table::num(s[3] / n, 1),
              Table::num((s[2] - s[0]) / n, 1),
              Table::num((s[3] - s[1]) / n, 1)});

    std::printf("\nFigure 8: SMX occupancy (%%, resident warps / max "
                "resident warps)\n\n");
    t.print();
    std::printf("\nPaper: DTBLI exceeds CDPI by 17.9 points (1.24x); "
                "modelling launch latency\ncosts CDP -10.7 points but "
                "DTBL only -5.2 (the 'lat' delta columns).\n");
    return 0;
}
