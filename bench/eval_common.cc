#include "eval_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "apps/registry.hh"
#include "common/log.hh"
#include "stats/profiler.hh"

namespace dtbl {

SweepOptions
SweepOptions::parse(int argc, char **argv)
{
    SweepOptions o;
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            o.traceDir = argv[++i];
        } else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                   i + 1 < argc) {
            o.profileDir = argv[++i];
            profile = true;
        } else if (std::strcmp(argv[i], "--results-out") == 0 &&
                   i + 1 < argc) {
            o.resultsOut = argv[++i];
        } else if (std::strncmp(argv[i], "--profile", 9) == 0) {
            profile = true;
            if (argv[i][9] == '=')
                o.profileWindow = Cycle(std::atoll(argv[i] + 10));
        } else if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
            o.ids.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--no-elide") == 0) {
            o.elideChecks = false;
        } else if (std::strncmp(argv[i], "--check", 7) == 0) {
            o.checkLevel = argv[i][7] == '=' ? std::atoi(argv[i] + 8) : 3;
        } else if (std::strcmp(argv[i], "--no-contention") == 0) {
            o.modelMemContention = false;
        } else if (std::strcmp(argv[i], "--dispatch-policy") == 0 &&
                   i + 1 < argc) {
            o.dispatchPolicy = argv[++i];
        } else if (std::strncmp(argv[i], "--dispatch-policy=", 18) == 0) {
            o.dispatchPolicy = argv[i] + 18;
        }
    }
    if (profile && o.profileWindow == 0)
        o.profileWindow = kDefaultProfileWindow;
    return o;
}

GpuConfig
SweepOptions::config(GpuConfig base) const
{
    base.modelMemContention = modelMemContention;
    if (!dispatchPolicy.empty() &&
        !parseDispatchPolicy(dispatchPolicy, base.dispatchPolicy)) {
        DTBL_FATAL("unknown --dispatch-policy '", dispatchPolicy,
                   "' (expected fcfs-head or concurrent)");
    }
    return base;
}

std::vector<EvalRow>
runSweep(const SweepOptions &opts, const std::vector<Mode> &modes,
         const GpuConfig &base)
{
    const GpuConfig cfg = opts.config(base);
    const auto rows =
        opts.ids.empty()
            ? runSweep(modes, cfg, opts.traceDir, opts.checkLevel,
                       opts.profileWindow, opts.profileDir,
                       opts.elideChecks)
            : runSweep(opts.ids, modes, cfg, opts.traceDir,
                       opts.checkLevel, opts.profileWindow,
                       opts.profileDir, opts.elideChecks);
    if (!opts.resultsOut.empty())
        writeMetricsCsv(rows, opts.resultsOut);
    return rows;
}

std::vector<EvalRow>
runSweep(const std::vector<std::string> &ids,
         const std::vector<Mode> &modes, const GpuConfig &base,
         const std::string &trace_dir, int check_level,
         Cycle profile_window, const std::string &profile_dir,
         bool elide_checks)
{
    if (!trace_dir.empty())
        std::filesystem::create_directories(trace_dir);
    std::vector<EvalRow> rows;
    for (const auto &id : ids) {
        EvalRow row;
        row.bench = id;
        for (Mode m : modes) {
            std::fprintf(stderr, "  running %-16s %-5s ...", id.c_str(),
                         modeName(m));
            std::fflush(stderr);
            auto app = makeBenchmark(id);
            RunOptions opts;
            opts.checkLevel = check_level;
            opts.elideChecks = elide_checks;
            opts.profileWindow = profile_window;
            opts.profileOutDir = profile_dir;
            if (!trace_dir.empty()) {
                opts.traceJsonPath =
                    trace_dir + "/" + id + "_" + modeName(m) + ".json";
            }
            BenchResult r = runBenchmark(*app, m, base, opts);
            std::fprintf(stderr, " %10llu cycles%s\n",
                         static_cast<unsigned long long>(r.report.cycles),
                         r.verified ? "" : "  [VERIFY FAILED]");
            if (!r.verified) {
                DTBL_FATAL("verification failed for ", id, " in mode ",
                           modeName(m));
            }
            if (r.checkErrors > 0) {
                for (const Diagnostic &d : r.checkFindings)
                    std::fprintf(stderr, "    %s\n", d.str().c_str());
                DTBL_FATAL("dtbl-check reported ", r.checkErrors,
                           " error(s) for ", id, " in mode ", modeName(m));
            }
            row.results.emplace(m, std::move(r));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<EvalRow>
runSweep(const std::vector<Mode> &modes, const GpuConfig &base,
         const std::string &trace_dir, int check_level,
         Cycle profile_window, const std::string &profile_dir,
         bool elide_checks)
{
    std::vector<std::string> ids;
    for (const auto &s : allBenchmarks())
        ids.push_back(s.id);
    return runSweep(ids, modes, base, trace_dir, check_level,
                    profile_window, profile_dir, elide_checks);
}

void
writeMetricsCsv(const std::vector<EvalRow> &rows, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        DTBL_FATAL("cannot open metrics CSV for writing: ", path);
    const std::string header = MetricsReport::csvHeader() + "\n";
    std::fwrite(header.data(), 1, header.size(), f);
    for (const EvalRow &row : rows) {
        for (const auto &[mode, result] : row.results) {
            const std::string line = result.report.csvRow() + "\n";
            std::fwrite(line.data(), 1, line.size(), f);
        }
    }
    std::fclose(f);
}

} // namespace dtbl
