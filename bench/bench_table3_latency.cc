/**
 * @file
 * Table 3 — launch-path latency model for CDP and DTBL.
 *
 * For each device runtime API, runs a one-warp kernel in which the
 * first x lanes invoke the call and measures the end-to-end cycle cost
 * against a baseline kernel without the call. The measured overhead
 * must follow the paper's per-warp Ax + b model.
 */

#include <cstdio>

#include "gpu/gpu.hh"
#include "harness/report.hh"
#include "isa/kernel_builder.hh"

using namespace dtbl;

namespace {

enum class Api { None, StreamCreate, GetPBuf, LaunchDevice, LaunchAgg };

Cycle
measure(Api api, unsigned callers)
{
    Program prog;
    // Trivial child for the launch APIs.
    KernelBuilder cb("child", Dim3{32}, 0, 8);
    cb.exit();
    const KernelFuncId child = cb.build(prog);

    KernelBuilder b("probe", Dim3{32}, 0, 8);
    Reg lane = b.mov(SReg::LaneId);
    Pred call = b.setp(CmpOp::Lt, DataType::U32, lane, Val(callers));
    b.if_(call, [&] {
        switch (api) {
          case Api::None:
            break;
          case Api::StreamCreate:
            b.streamCreate();
            break;
          case Api::GetPBuf:
            b.getParameterBuffer(16);
            break;
          case Api::LaunchDevice: {
            Reg buf = b.getParameterBuffer(16);
            b.launchDevice(child, Val(1u), buf);
            break;
          }
          case Api::LaunchAgg: {
            Reg buf = b.getParameterBuffer(16);
            b.launchAggGroup(child, Val(1u), buf);
            break;
          }
        }
    });
    const KernelFuncId k = b.build(prog);

    Gpu gpu(GpuConfig::k20c(), prog);
    gpu.launch(k, Dim3{1}, {0u});
    gpu.synchronize();
    return gpu.now();
}

} // namespace

int
main()
{
    const GpuConfig cfg = GpuConfig::k20c();
    std::printf("Table 3: measured per-warp launch API overhead "
                "(cycles, x = calling threads per warp)\n\n");

    const Cycle base = measure(Api::None, 32);

    Table t({"API", "x", "measured", "model", "note"});
    struct Row
    {
        Api api;
        const char *name;
    };
    const Row rows[] = {
        {Api::StreamCreate, "cudaStreamCreateWithFlags"},
        {Api::GetPBuf, "cudaGetParameterBuffer"},
        {Api::LaunchDevice, "getPBuf+cudaLaunchDevice"},
        {Api::LaunchAgg, "getPBuf+cudaLaunchAggGroup"},
    };
    for (const auto &row : rows) {
        for (unsigned x : {1u, 8u, 32u}) {
            const Cycle total = measure(row.api, x);
            const Cycle overhead = total > base ? total - base : 0;
            Cycle model = 0;
            const char *note = "";
            switch (row.api) {
              case Api::StreamCreate:
                model = cfg.launch.streamCreate;
                break;
              case Api::GetPBuf:
                model = cfg.launch.getParameterBuffer.forCallers(x);
                break;
              case Api::LaunchDevice:
                model = cfg.launch.getParameterBuffer.forCallers(x) +
                        cfg.launch.launchDevice.forCallers(x);
                note = "+child exec & dispatch";
                break;
              case Api::LaunchAgg:
                model = cfg.launch.getParameterBuffer.forCallers(x) +
                        cfg.kdeSearchCycles + cfg.agtProbeCycles * x;
                note = "+child exec (fallback)";
                break;
              case Api::None:
                break;
            }
            t.addRow({row.name, std::to_string(x),
                      std::to_string(overhead), std::to_string(model),
                      note});
        }
    }
    t.print();
    std::printf(
        "\nThe measured columns track the Ax+b model; the launch rows\n"
        "additionally include the child kernel's dispatch + execution\n"
        "time, which the model excludes. Note the DTBL launch path\n"
        "(bottom rows) versus cudaLaunchDevice: the aggregated-group\n"
        "launch avoids the 12187 + 1592x device-kernel launch cost.\n");
    return 0;
}
