/**
 * @file
 * Table 2 — GPGPU-Sim configuration parameters.
 *
 * Prints the simulated configuration and checks it against the paper's
 * Table 2 values for the Tesla K20c baseline.
 */

#include <cstdio>

#include "common/config.hh"

using namespace dtbl;

namespace {

int failures = 0;

void
check(const char *what, double got, double want)
{
    const bool ok = got == want;
    std::printf("  %-44s %-12g %s\n", what, got, ok ? "OK" : "MISMATCH");
    if (!ok)
        ++failures;
}

} // namespace

int
main()
{
    const GpuConfig cfg = GpuConfig::k20c();
    std::printf("Table 2: GPGPU-Sim configuration parameters\n");
    std::printf("===========================================\n%s\n",
                cfg.summary().c_str());

    std::printf("Checks against the paper's Table 2:\n");
    check("SMX clock (MHz)", cfg.smxClockMhz, 706);
    check("Memory clock (MHz)", cfg.memClockMhz, 2600);
    check("# of SMX", cfg.numSmx, 13);
    check("Max resident thread blocks per SMX", cfg.maxResidentTbPerSmx,
          16);
    check("Max resident threads per SMX", cfg.maxResidentThreadsPerSmx,
          2048);
    check("32-bit registers per SMX", cfg.regsPerSmx, 65536);
    check("L1 cache size per SMX (KB)", cfg.l1.sizeBytes / 1024.0, 16);
    check("Shared memory per SMX (KB)", cfg.sharedMemPerSmx / 1024.0, 48);
    check("Max concurrent kernels", cfg.maxConcurrentKernels, 32);

    std::printf("\nTable 3 latency constants (cycles):\n");
    check("cudaStreamCreateWithFlags", double(cfg.launch.streamCreate),
          7165);
    check("cudaGetParameterBuffer b",
          double(cfg.launch.getParameterBuffer.base), 8023);
    check("cudaGetParameterBuffer A",
          double(cfg.launch.getParameterBuffer.per), 129);
    check("cudaLaunchDevice b", double(cfg.launch.launchDevice.base),
          12187);
    check("cudaLaunchDevice A", double(cfg.launch.launchDevice.per), 1592);
    check("Kernel dispatching", double(cfg.launch.kernelDispatch), 283);

    std::printf("\n%s\n", failures == 0 ? "ALL CHECKS PASSED"
                                        : "CONFIG CHECKS FAILED");
    return failures == 0 ? 0 : 1;
}
