/**
 * @file
 * Figure 11 — overall speedup over the flat implementation for CDPI,
 * DTBLI, CDP and DTBL (total simulated kernel cycles; host<->device
 * transfer time excluded, as in the paper).
 *
 * Paper expectations: CDPI 1.43x, DTBLI 1.63x, CDP 0.86x (slowdown),
 * DTBL 1.21x average; bfs_usa_road and sssp_flight ~1.0 (no DFP);
 * clr_graph500 (0.97x) and regx_string (0.95x) slightly below 1 for
 * DTBL.
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const auto rows = runSweep(opts, {Mode::Flat, Mode::CdpIdeal,
                                      Mode::DtblIdeal, Mode::Cdp, Mode::Dtbl});

    Table t({"benchmark", "CDPI", "DTBLI", "CDP", "DTBL"});
    std::vector<double> sp[4];
    for (const auto &r : rows) {
        const double flat = double(r.at(Mode::Flat).report.cycles);
        const Mode modes[4] = {Mode::CdpIdeal, Mode::DtblIdeal, Mode::Cdp,
                               Mode::Dtbl};
        std::vector<std::string> row{r.bench};
        for (int i = 0; i < 4; ++i) {
            const double s = flat / double(r.at(modes[i]).report.cycles);
            sp[i].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    t.addRow({"geomean", Table::num(Table::geomean(sp[0]), 2),
              Table::num(Table::geomean(sp[1]), 2),
              Table::num(Table::geomean(sp[2]), 2),
              Table::num(Table::geomean(sp[3]), 2)});

    std::printf("\nFigure 11: overall speedup over the flat "
                "implementation\n\n");
    t.print();
    std::printf(
        "\nPaper averages: CDPI 1.43x, DTBLI 1.63x, CDP 0.86x, DTBL "
        "1.21x.\nThe expected shape: ideal modes fastest, CDP loses its "
        "gains to launch\noverhead, DTBL keeps most of them; "
        "bfs_usa_road / sssp_flight stay ~1.0.\n");
    return 0;
}
