/**
 * @file
 * Figure 9 — average waiting time (launch to first-TB dispatch) of a
 * dynamically launched kernel or aggregated group, for CDPI, DTBLI,
 * CDP and DTBL.
 *
 * Paper expectations: DTBLI cuts waiting time ~18.8% below CDPI and
 * DTBL ~24.1% below CDP; regx_string drops the most; pre/join_uniform
 * barely change in the ideal comparison (coarse-grained children).
 */

#include <cstdio>
#include <vector>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    // Shared figure-binary CLI (SweepOptions in eval_common.hh).
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const std::vector<Mode> modes = {Mode::CdpIdeal, Mode::DtblIdeal,
                                     Mode::Cdp, Mode::Dtbl};
    const auto rows = runSweep(opts, modes);

    Table t({"benchmark", "CDPI", "DTBLI", "CDP", "DTBL", "DTBL/CDP"});
    std::vector<double> ratio;
    for (const auto &r : rows) {
        const auto wait = [&](Mode m) {
            return r.at(m).report.avgWaitingCycles;
        };
        if (r.at(Mode::Cdp).stats.launchWaitSamples == 0) {
            t.addRow({r.bench, "-", "-", "-", "-", "-"});
            continue;
        }
        const double c = wait(Mode::Cdp), d = wait(Mode::Dtbl);
        if (c > 0)
            ratio.push_back(d / c);
        t.addRow({r.bench, Table::num(wait(Mode::CdpIdeal), 0),
                  Table::num(wait(Mode::DtblIdeal), 0), Table::num(c, 0),
                  Table::num(d, 0), Table::num(c > 0 ? d / c : 0, 2)});
    }
    t.addRow({"geomean", "", "", "", "",
              Table::num(Table::geomean(ratio), 2)});

    std::printf("\nFigure 9: average waiting time for a dynamically "
                "launched kernel /\naggregated group (cycles from launch "
                "command to first TB dispatch)\n\n");
    t.print();
    std::printf("\nPaper: DTBL reduces waiting time by 24.1%% vs CDP "
                "(DTBL/CDP < 1);\nbenchmarks with no dynamic launches "
                "(bfs_usa_road, sssp_flight) show '-'.\n");
    return 0;
}
