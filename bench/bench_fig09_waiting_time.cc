/**
 * @file
 * Figure 9 — average waiting time (launch to first-TB dispatch) of a
 * dynamically launched kernel or aggregated group, for CDPI, DTBLI,
 * CDP and DTBL.
 *
 * Paper expectations: DTBLI cuts waiting time ~18.8% below CDPI and
 * DTBL ~24.1% below CDP; regx_string drops the most; pre/join_uniform
 * barely change in the ideal comparison (coarse-grained children).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eval_common.hh"
#include "harness/report.hh"
#include "stats/profiler.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    // --check[=N]: runtime sanitizer level (default 3 = full); check
    // errors abort the sweep. --bench <id>: restrict to one benchmark.
    // --profile[=W]: PMU interval profiling at window W (default 512);
    // --profile-out <dir>: write per-run profiler timelines + reports.
    // --results-out <path>: write the sweep metrics as a schema-v3 CSV.
    std::string traceDir;
    std::string profileDir;
    std::string resultsOut;
    std::vector<std::string> ids;
    int checkLevel = 0;
    Cycle profileWindow = 0;
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            traceDir = argv[++i];
        else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                 i + 1 < argc) {
            profileDir = argv[++i];
            profile = true;
        } else if (std::strcmp(argv[i], "--results-out") == 0 &&
                   i + 1 < argc)
            resultsOut = argv[++i];
        else if (std::strncmp(argv[i], "--profile", 9) == 0) {
            profile = true;
            if (argv[i][9] == '=')
                profileWindow = Cycle(std::atoll(argv[i] + 10));
        } else if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc)
            ids.push_back(argv[++i]);
        else if (std::strncmp(argv[i], "--check", 7) == 0)
            checkLevel = argv[i][7] == '=' ? std::atoi(argv[i] + 8) : 3;
    }
    if (profile && profileWindow == 0)
        profileWindow = kDefaultProfileWindow;

    const std::vector<Mode> modes = {Mode::CdpIdeal, Mode::DtblIdeal,
                                     Mode::Cdp, Mode::Dtbl};
    const auto rows =
        ids.empty()
            ? runSweep(modes, GpuConfig::k20c(), traceDir, checkLevel,
                       profileWindow, profileDir)
            : runSweep(ids, modes, GpuConfig::k20c(), traceDir,
                       checkLevel, profileWindow, profileDir);
    if (!resultsOut.empty())
        writeMetricsCsv(rows, resultsOut);

    Table t({"benchmark", "CDPI", "DTBLI", "CDP", "DTBL", "DTBL/CDP"});
    std::vector<double> ratio;
    for (const auto &r : rows) {
        const auto wait = [&](Mode m) {
            return r.at(m).report.avgWaitingCycles;
        };
        if (r.at(Mode::Cdp).stats.launchWaitSamples == 0) {
            t.addRow({r.bench, "-", "-", "-", "-", "-"});
            continue;
        }
        const double c = wait(Mode::Cdp), d = wait(Mode::Dtbl);
        if (c > 0)
            ratio.push_back(d / c);
        t.addRow({r.bench, Table::num(wait(Mode::CdpIdeal), 0),
                  Table::num(wait(Mode::DtblIdeal), 0), Table::num(c, 0),
                  Table::num(d, 0), Table::num(c > 0 ? d / c : 0, 2)});
    }
    t.addRow({"geomean", "", "", "", "",
              Table::num(Table::geomean(ratio), 2)});

    std::printf("\nFigure 9: average waiting time for a dynamically "
                "launched kernel /\naggregated group (cycles from launch "
                "command to first TB dispatch)\n\n");
    t.print();
    std::printf("\nPaper: DTBL reduces waiting time by 24.1%% vs CDP "
                "(DTBL/CDP < 1);\nbenchmarks with no dynamic launches "
                "(bfs_usa_road, sssp_flight) show '-'.\n");
    return 0;
}
