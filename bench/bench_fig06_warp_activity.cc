/**
 * @file
 * Figure 6 — average percentage of active threads in a warp, for the
 * Flat, CDP and DTBL implementations of every benchmark.
 *
 * Paper expectations: CDP and DTBL raise warp activity about equally
 * (average ~+10.7 points); amr and join_gaussian gain the most;
 * clr_graph500 is flat and clr_cage15 slightly negative.
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

int
main(int argc, char **argv)
{
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    const auto rows = runSweep(opts, {Mode::Flat, Mode::Cdp, Mode::Dtbl});

    Table t({"benchmark", "Flat", "CDP", "DTBL", "dCDP", "dDTBL"});
    double sumFlat = 0, sumCdp = 0, sumDtbl = 0;
    for (const auto &r : rows) {
        const double f = r.at(Mode::Flat).report.warpActivityPct;
        const double c = r.at(Mode::Cdp).report.warpActivityPct;
        const double d = r.at(Mode::Dtbl).report.warpActivityPct;
        sumFlat += f;
        sumCdp += c;
        sumDtbl += d;
        t.addRow({r.bench, Table::num(f, 1), Table::num(c, 1),
                  Table::num(d, 1), Table::num(c - f, 1),
                  Table::num(d - f, 1)});
    }
    const double n = double(rows.size());
    t.addRow({"average", Table::num(sumFlat / n, 1),
              Table::num(sumCdp / n, 1), Table::num(sumDtbl / n, 1),
              Table::num((sumCdp - sumFlat) / n, 1),
              Table::num((sumDtbl - sumFlat) / n, 1)});

    std::printf("\nFigure 6: warp activity percentage "
                "(average %% of active threads per issued warp "
                "instruction)\n\n");
    t.print();
    std::printf("\nPaper: CDP/DTBL increase warp activity by ~10.7 "
                "points on average; both\nvariants regularize control "
                "flow equally since they launch the same dynamic\n"
                "workloads.\n");
    return 0;
}
