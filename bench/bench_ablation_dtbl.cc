/**
 * @file
 * Ablation study of the DTBL implementation choices documented in
 * DESIGN.md, run on a representative launch-heavy subset:
 *
 *  A1  fallback retry window off  — every first-wave group that misses
 *      the KDE spawns its own device kernel.
 *  A2  AGT spill prefetch off     — spilled AGE fetches serialize on
 *      the scheduling chain.
 *  A3  spill fetch latency x4     — spill cost if the AGE record were
 *      never L2-resident.
 *  A4  single warp scheduler      — scheduling-throughput sensitivity.
 */

#include <cstdio>

#include "eval_common.hh"
#include "harness/report.hh"

using namespace dtbl;

namespace {

const std::vector<std::string> kBenchmarks = {
    "bht", "clr_graph500", "regx_string", "amr_combustion"};

double
geomeanCycles(const std::vector<EvalRow> &rows)
{
    std::vector<double> c;
    for (const auto &r : rows)
        c.push_back(double(r.at(Mode::Dtbl).report.cycles));
    return Table::geomean(c);
}

} // namespace

int
main()
{
    struct Variant
    {
        const char *name;
        GpuConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"baseline", GpuConfig::k20c()});
    {
        GpuConfig c = GpuConfig::k20c();
        c.fallbackRetryWindow = false;
        variants.push_back({"A1 no retry window", c});
    }
    {
        GpuConfig c = GpuConfig::k20c();
        c.agtPrefetchDepth = 1;
        variants.push_back({"A2 no spill prefetch", c});
    }
    {
        GpuConfig c = GpuConfig::k20c();
        c.agtOverflowFetchCycles *= 4;
        variants.push_back({"A3 spill fetch x4", c});
    }
    {
        GpuConfig c = GpuConfig::k20c();
        c.warpSchedulersPerSmx = 1;
        variants.push_back({"A4 one warp scheduler", c});
    }

    Table t({"variant", "geomean DTBL cycles", "vs baseline",
             "coalesce rate", "overflow rate"});
    double base = 0;
    for (const auto &v : variants) {
        std::fprintf(stderr, "variant: %s\n", v.name);
        const auto rows = runSweep(kBenchmarks, {Mode::Dtbl}, v.cfg);
        const double g = geomeanCycles(rows);
        if (base == 0)
            base = g;
        double launches = 0, coalesced = 0, overflows = 0;
        for (const auto &r : rows) {
            const auto &st = r.at(Mode::Dtbl).stats;
            launches += double(st.aggGroupLaunches);
            coalesced += double(st.aggGroupsCoalesced);
            overflows += double(st.agtOverflows);
        }
        t.addRow({v.name, Table::num(g, 0), Table::num(g / base, 2),
                  Table::num(launches ? coalesced / launches : 0, 3),
                  Table::num(launches ? overflows / launches : 0, 3)});
    }

    std::printf("\nDTBL implementation ablations "
                "(bht, clr_graph500, regx_string, amr)\n\n");
    t.print();
    std::printf("\n'vs baseline' > 1 means the ablated variant is "
                "slower; the coalesce-rate\ncolumn shows why the "
                "fallback retry window matters.\n");
    return 0;
}
