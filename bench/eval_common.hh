/**
 * @file
 * Shared sweep driver for the per-figure bench binaries: run a set of
 * benchmarks across execution modes and collect their metrics.
 */

#ifndef DTBL_BENCH_EVAL_COMMON_HH
#define DTBL_BENCH_EVAL_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace dtbl {

struct EvalRow
{
    std::string bench;
    std::map<Mode, BenchResult> results;

    const BenchResult &
    at(Mode m) const
    {
        return results.at(m);
    }
};

/**
 * Run every Table 4 benchmark in each of @p modes on @p base config.
 * Progress is reported on stderr; verification failures are fatal so a
 * figure is never produced from wrong results. When @p trace_dir is
 * non-empty each run streams a Chrome trace to
 * `<trace_dir>/<bench>_<mode>.json`. When @p profile_window > 0 or
 * @p profile_dir is non-empty the PMU interval profiler runs and, with a
 * directory given, writes `<profile_dir>/<bench>_<mode>.{csv,json,txt}`.
 */
std::vector<EvalRow> runSweep(const std::vector<Mode> &modes,
                              const GpuConfig &base = GpuConfig::k20c(),
                              const std::string &trace_dir = {},
                              int check_level = 0,
                              Cycle profile_window = 0,
                              const std::string &profile_dir = {});

/** As runSweep but restricted to the given benchmark ids. */
std::vector<EvalRow> runSweep(const std::vector<std::string> &ids,
                              const std::vector<Mode> &modes,
                              const GpuConfig &base = GpuConfig::k20c(),
                              const std::string &trace_dir = {},
                              int check_level = 0,
                              Cycle profile_window = 0,
                              const std::string &profile_dir = {});

/**
 * Write one MetricsReport::csvRow() per (bench, mode) of @p rows to
 * @p path, preceded by MetricsReport::csvHeader() (schema v3).
 */
void writeMetricsCsv(const std::vector<EvalRow> &rows,
                     const std::string &path);

} // namespace dtbl

#endif // DTBL_BENCH_EVAL_COMMON_HH
