/**
 * @file
 * Shared sweep driver for the per-figure bench binaries: run a set of
 * benchmarks across execution modes and collect their metrics.
 */

#ifndef DTBL_BENCH_EVAL_COMMON_HH
#define DTBL_BENCH_EVAL_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace dtbl {

struct EvalRow
{
    std::string bench;
    std::map<Mode, BenchResult> results;

    const BenchResult &
    at(Mode m) const
    {
        return results.at(m);
    }
};

/**
 * Run every Table 4 benchmark in each of @p modes on @p base config.
 * Progress is reported on stderr; verification failures are fatal so a
 * figure is never produced from wrong results. When @p trace_dir is
 * non-empty each run streams a Chrome trace to
 * `<trace_dir>/<bench>_<mode>.json`. When @p profile_window > 0 or
 * @p profile_dir is non-empty the PMU interval profiler runs and, with a
 * directory given, writes `<profile_dir>/<bench>_<mode>.{csv,json,txt}`.
 */
std::vector<EvalRow> runSweep(const std::vector<Mode> &modes,
                              const GpuConfig &base = GpuConfig::k20c(),
                              const std::string &trace_dir = {},
                              int check_level = 0,
                              Cycle profile_window = 0,
                              const std::string &profile_dir = {},
                              bool elide_checks = true);

/** As runSweep but restricted to the given benchmark ids. */
std::vector<EvalRow> runSweep(const std::vector<std::string> &ids,
                              const std::vector<Mode> &modes,
                              const GpuConfig &base = GpuConfig::k20c(),
                              const std::string &trace_dir = {},
                              int check_level = 0,
                              Cycle profile_window = 0,
                              const std::string &profile_dir = {},
                              bool elide_checks = true);

/**
 * Command-line options shared by every figure binary:
 *   --bench <id>          restrict to one benchmark (repeatable)
 *   --trace-out <dir>     stream per-run Chrome traces
 *   --check[=N]           runtime sanitizer level (default 3 = full)
 *   --no-elide            disable static-analysis check-elision
 *   --profile[=W]         PMU interval profiling at window W
 *   --profile-out <dir>   write per-run profiler timelines + reports
 *   --results-out <path>  write sweep metrics as a schema-v6 CSV
 *   --no-contention       flat-latency memory model (regression runs)
 *   --dispatch-policy <p> TB dispatch policy: fcfs-head | concurrent
 * Unknown arguments are ignored so binaries can add their own.
 */
struct SweepOptions
{
    std::string traceDir;
    std::string profileDir;
    std::string resultsOut;
    std::vector<std::string> ids;
    int checkLevel = 0;
    bool elideChecks = true;
    Cycle profileWindow = 0;
    bool modelMemContention = true;
    std::string dispatchPolicy;

    static SweepOptions parse(int argc, char **argv);

    /** @p base with the config-level switches applied. */
    GpuConfig config(GpuConfig base = GpuConfig::k20c()) const;
};

/**
 * Run the sweep described by @p opts (all Table 4 benchmarks unless
 * --bench was given) and, when --results-out was set, write the metrics
 * CSV. @p base is taken before opts' config switches are applied.
 */
std::vector<EvalRow> runSweep(const SweepOptions &opts,
                              const std::vector<Mode> &modes,
                              const GpuConfig &base = GpuConfig::k20c());

/**
 * Write one MetricsReport::csvRow() per (bench, mode) of @p rows to
 * @p path, preceded by MetricsReport::csvHeader() (schema v6).
 */
void writeMetricsCsv(const std::vector<EvalRow> &rows,
                     const std::string &path);

} // namespace dtbl

#endif // DTBL_BENCH_EVAL_COMMON_HH
