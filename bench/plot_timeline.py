#!/usr/bin/env python3
"""Render (or summarize) a profiler JSON timeline.

Input: the ``<bench>_<mode>.json`` files written by the interval
profiler (``--profile-out <dir>`` on quickstart and every bench
binary). Schema v3: ``{"schemaVersion": 3, "window": W, "cycles":
[...], "series": [{"name", "unit", "values": [...]}, ...]}`` where
``values[i]`` is the cumulative counter value at ``cycles[i]``.

With matplotlib available (never required), ``--out plot.png`` draws
the selected series over time. Without it — and in CI, which runs this
script as a smoke check over freshly produced timelines — the script
validates the schema and prints a per-series text summary, exiting
non-zero on malformed input. Only the standard library is needed for
that path.

Examples:
    build/examples/quickstart --profile --profile-out /tmp/prof
    python3 bench/plot_timeline.py /tmp/prof/quickstart_flat.json
    python3 bench/plot_timeline.py /tmp/prof/*.json --match slot.issued
    python3 bench/plot_timeline.py t.json --match kernel. --out k.png
"""

import argparse
import json
import sys

SCHEMA_VERSION = 3


def load_timeline(path):
    """Parse and validate one profiler timeline; raise ValueError."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schemaVersion") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schemaVersion {data.get('schemaVersion')!r}, "
            f"expected {SCHEMA_VERSION}")
    cycles = data.get("cycles")
    series = data.get("series")
    if not isinstance(cycles, list) or not isinstance(series, list):
        raise ValueError(f"{path}: missing cycles/series arrays")
    if cycles != sorted(cycles):
        raise ValueError(f"{path}: sample cycles are not monotonic")
    for s in series:
        if not isinstance(s.get("name"), str):
            raise ValueError(f"{path}: series without a name")
        if len(s.get("values", [])) != len(cycles):
            raise ValueError(
                f"{path}: series {s['name']!r} has "
                f"{len(s.get('values', []))} values for "
                f"{len(cycles)} samples")
    return data


def select_series(data, match):
    sel = [s for s in data["series"]
           if not match or any(m in s["name"] for m in match)]
    if match and not sel:
        names = ", ".join(s["name"] for s in data["series"][:8])
        raise ValueError(f"no series match {match} (have: {names}, ...)")
    return sel


def summarize(path, data, match):
    cycles = data["cycles"]
    print(f"{path}: window={data['window']} samples={len(cycles)} "
          f"span=[{cycles[0] if cycles else 0}, "
          f"{cycles[-1] if cycles else 0}] "
          f"series={len(data['series'])}")
    for s in select_series(data, match):
        v = s["values"]
        final = v[-1] if v else 0
        # Cumulative counters: the largest per-window delta shows where
        # the activity burst was.
        peak_delta = max(
            (b - a for a, b in zip(v, v[1:])), default=0)
        print(f"  {s['name']:<40} unit={s['unit']:<7} "
              f"final={final:<14} peak_window_delta={peak_delta}")


def plot(paths, datas, match, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(10, 5))
    for path, data in zip(paths, datas):
        for s in select_series(data, match):
            label = s["name"] if len(paths) == 1 else \
                f"{path}:{s['name']}"
            ax.plot(data["cycles"], s["values"], label=label)
    ax.set_xlabel("cycle")
    ax.set_ylabel("cumulative counter value")
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(
        description="Summarize or plot profiler JSON timelines.")
    ap.add_argument("timelines", nargs="+",
                    help="profiler .json files (--profile-out output)")
    ap.add_argument("--match", action="append", default=[],
                    help="only series whose name contains this "
                         "substring (repeatable)")
    ap.add_argument("--out", default="",
                    help="write a PNG plot here (needs matplotlib); "
                         "default: text summary only")
    args = ap.parse_args()

    try:
        datas = [load_timeline(p) for p in args.timelines]
        if args.out:
            try:
                import matplotlib  # noqa: F401
            except ImportError:
                sys.exit("--out requires matplotlib, which is not "
                         "installed; run without --out for the text "
                         "summary")
            plot(args.timelines, datas, args.match, args.out)
        else:
            for path, data in zip(args.timelines, datas):
                summarize(path, data, args.match)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        sys.exit(f"error: {e}")


if __name__ == "__main__":
    main()
