/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot components:
 * AGT allocation, the coalescer, the cache model, the DRAM model and
 * end-to-end simulated kernel throughput. These guard the simulator's
 * own performance (host wall-clock), not the modelled GPU's.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/agt.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"

using namespace dtbl;

namespace {

void
BM_AgtAllocateRelease(benchmark::State &state)
{
    Agt agt(unsigned(state.range(0)));
    AggGroup proto;
    proto.numTbs = 4;
    unsigned tid = 0;
    for (auto _ : state) {
        const std::int32_t id = agt.allocate(proto, tid++);
        benchmark::DoNotOptimize(agt.group(id).onChip);
        agt.release(id);
    }
}
BENCHMARK(BM_AgtAllocateRelease)->Arg(512)->Arg(1024)->Arg(2048);

void
BM_CoalescerSequential(benchmark::State &state)
{
    Coalescer c(128);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = 0x1000 + i * 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(addrs, fullMask, 4));
}
BENCHMARK(BM_CoalescerSequential);

void
BM_CoalescerScattered(benchmark::State &state)
{
    Coalescer c(128);
    Rng rng(7);
    std::array<Addr, warpSize> addrs{};
    for (unsigned i = 0; i < warpSize; ++i)
        addrs[i] = rng.nextBounded(1 << 20) * 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(addrs, fullMask, 4));
}
BENCHMARK(BM_CoalescerScattered);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg{16 * 1024, 128, 4, 28};
    Cache cache(cfg, Cache::WritePolicy::WriteThrough);
    Rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(1 << 22), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_DramAccess(benchmark::State &state)
{
    Dram dram(DramConfig{}, 128);
    Rng rng(17);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dram.access(rng.nextBounded(1 << 24) * 128, false, now));
        ++now;
    }
}
BENCHMARK(BM_DramAccess);

/** End-to-end: simulated warp instructions per host second. */
void
BM_SimulatedVectorAdd(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Program prog;
        KernelBuilder b("vecadd", Dim3{128});
        Reg tid = b.globalThreadIdX();
        Reg nReg = b.ldParam(0);
        Pred oob = b.setp(CmpOp::Ge, DataType::U32, tid, nReg);
        b.exitIf(oob);
        Reg aB = b.ldParam(4);
        Reg oB = b.ldParam(8);
        Reg off = b.shl(tid, 2);
        Reg v = b.ld(MemSpace::Global, b.add(aB, off));
        b.st(MemSpace::Global, b.add(oB, off), b.add(v, 1u));
        const KernelFuncId k = b.build(prog);
        GpuConfig cfg = GpuConfig::k20c();
        cfg.globalMemBytes = 8 * 1024 * 1024;
        Gpu gpu(cfg, prog);
        const std::uint32_t n = 65536;
        const Addr a = gpu.mem().allocate(n * 4);
        const Addr o = gpu.mem().allocate(n * 4);
        state.ResumeTiming();

        gpu.launch(k, Dim3{n / 128},
                   {n, std::uint32_t(a), std::uint32_t(o)});
        gpu.synchronize();
        state.counters["warp_instrs"] = benchmark::Counter(
            double(gpu.stats().warpInstrsIssued),
            benchmark::Counter::kIsRate);
        state.counters["sim_cycles"] = benchmark::Counter(
            double(gpu.now()), benchmark::Counter::kIsRate);
    }
}
BENCHMARK(BM_SimulatedVectorAdd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
