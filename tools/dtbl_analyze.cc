/**
 * @file
 * dtbl-analyze: static analysis of the benchmark kernel programs
 * without simulating a single cycle.
 *
 * For each selected (benchmark, mode) pair the tool builds the kernel
 * program exactly as the harness would (App::build), runs the full
 * analysis stack (analysis/analyzer.hh) — CFG + dominators, interval
 * value ranges, warp uniformity, the interprocedural launch graph with
 * AGT/KDE worst-case budgets, and the static shared-memory race check —
 * and renders the results.
 *
 * Usage:
 *   dtbl-analyze [options]
 *     --bench <id>   restrict to one benchmark id (repeatable);
 *                    default: one representative per application family
 *     --all          all 16 Table 4 benchmarks
 *     --mode <m>     restrict to one mode (flat|cdp|cdpi|dtbl|dtbli,
 *                    repeatable); default: all five
 *     --json[=path]  machine-readable combined report; to stdout
 *                    (instead of text) when no path is given
 *     --quiet        suppress the text report (summary line only)
 *
 * Exit status: 0 when no analysis reports an Error-severity diagnostic,
 * 1 otherwise (Warnings do not fail the run). The JSON output is
 * deterministic byte-for-byte so CI pins a golden copy
 * (tests/golden/analyze_report.json) and diffs against it.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/registry.hh"
#include "common/log.hh"

using namespace dtbl;

namespace {

bool
parseMode(const char *s, Mode &out)
{
    const struct
    {
        const char *name;
        Mode mode;
    } table[] = {
        {"flat", Mode::Flat},   {"cdp", Mode::Cdp},
        {"cdpi", Mode::CdpIdeal}, {"dtbl", Mode::Dtbl},
        {"dtbli", Mode::DtblIdeal},
    };
    for (const auto &e : table) {
        if (std::strcmp(s, e.name) == 0) {
            out = e.mode;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> benches;
    std::vector<Mode> modes;
    bool all = false;
    bool json = false;
    bool quiet = false;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
            benches.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--all") == 0) {
            all = true;
        } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
            Mode m;
            if (!parseMode(argv[++i], m))
                DTBL_FATAL("unknown --mode '", argv[i],
                           "' (flat|cdp|cdpi|dtbl|dtbli)");
            modes.push_back(m);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json = true;
            jsonPath = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            DTBL_FATAL("unknown argument '", argv[i],
                       "' (see tools/dtbl_analyze.cc)");
        }
    }

    if (benches.empty()) {
        if (all) {
            for (const auto &s : allBenchmarks())
                benches.push_back(s.id);
        } else {
            benches = familyRepresentatives();
        }
    }
    if (modes.empty())
        modes = {Mode::Flat, Mode::CdpIdeal, Mode::DtblIdeal, Mode::Cdp,
                 Mode::Dtbl};

    const bool jsonToStdout = json && jsonPath.empty();
    std::string combined = "{\n  \"schema\": 1,\n  \"reports\": [\n";
    std::uint64_t errors = 0;
    std::uint64_t warnings = 0;
    bool first = true;

    for (const auto &id : benches) {
        for (Mode m : modes) {
            auto app = makeBenchmark(id);
            Program prog;
            app->build(prog, m);
            const ProgramAnalysis pa =
                analyzeProgram(prog, configForMode(m, GpuConfig::k20c()));
            errors += pa.errorCount;
            warnings += pa.warningCount;
            if (!quiet && !jsonToStdout) {
                const std::string title =
                    id + " [" + modeName(m) + "]";
                std::fputs(pa.textReport(title).c_str(), stdout);
                std::fputc('\n', stdout);
            }
            if (json) {
                if (!first)
                    combined += ",\n";
                first = false;
                combined += pa.jsonReport(id, modeName(m), 4);
            }
        }
    }
    combined += "\n  ]\n}\n";

    if (json) {
        if (jsonToStdout) {
            std::fputs(combined.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(jsonPath.c_str(), "w");
            if (!f)
                DTBL_FATAL("cannot open ", jsonPath, " for writing");
            std::fwrite(combined.data(), 1, combined.size(), f);
            std::fclose(f);
            std::fprintf(stderr, "dtbl-analyze: wrote %s\n",
                         jsonPath.c_str());
        }
    }
    std::fprintf(stderr,
                 "dtbl-analyze: %zu bench(es) x %zu mode(s): "
                 "%llu error(s), %llu warning(s)\n",
                 benches.size(), modes.size(),
                 static_cast<unsigned long long>(errors),
                 static_cast<unsigned long long>(warnings));
    return errors > 0 ? 1 : 0;
}
