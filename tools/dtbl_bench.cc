/**
 * @file
 * dtbl-bench: the simulator's perf-regression harness. Runs the
 * 8-family x 5-mode grid (or a filtered subset), measures host
 * wall-clock per point, and writes a schema-versioned BENCH JSON
 * trajectory point (bench/baseline/ holds the committed history).
 *
 * With --baseline it compares the fresh run against a committed file:
 * deterministic fields (cycles, instrs, traceHash) must match exactly
 * on any machine; wall-clock is gated only when --wall-tolerance is
 * given (same-machine workflows).
 *
 * Usage:
 *   dtbl-bench [--out FILE] [--label NAME] [--filter SUBSTR]...
 *              [--repeat N] [--hostprof] [--all]
 *              [--baseline FILE] [--wall-tolerance FRAC]
 *
 * Exit codes: 0 ok; 1 deterministic mismatch vs baseline; 2 wall-clock
 * regression beyond tolerance; 3 usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "harness/perf_harness.hh"
#include "stats/host_prof.hh"

using namespace dtbl;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--label NAME] [--filter SUBSTR]...\n"
                 "          [--repeat N] [--hostprof] [--all]\n"
                 "          [--baseline FILE] [--wall-tolerance FRAC]\n",
                 argv0);
    return 3;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchGridOptions grid;
    std::string outPath;
    std::string label = "BENCH";
    std::string baselinePath;
    double wallTolerance = 0.0;
    bool allBenches = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(3);
            }
            return argv[++i];
        };
        if (a == "--out") {
            outPath = next();
        } else if (a == "--label") {
            label = next();
        } else if (a == "--filter") {
            grid.filters.push_back(next());
        } else if (a == "--repeat") {
            grid.repeat = std::atoi(next());
            if (grid.repeat < 1)
                return usage(argv[0]);
        } else if (a == "--hostprof") {
            grid.hostProfile = true;
            if (!HostProfiler::compiledIn) {
                std::fprintf(stderr,
                             "warning: --hostprof requested but compiled "
                             "out (-DDTBL_ENABLE_HOSTPROF=OFF)\n");
            }
        } else if (a == "--all") {
            allBenches = true;
        } else if (a == "--baseline") {
            baselinePath = next();
        } else if (a == "--wall-tolerance") {
            wallTolerance = std::atof(next());
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
            return usage(argv[0]);
        }
    }

    std::vector<std::string> ids;
    if (allBenches) {
        for (const auto &s : allBenchmarks())
            ids.push_back(s.id);
    } else {
        ids = familyRepresentatives();
    }
    const std::vector<Mode> modes(evalModes.begin(), evalModes.end());

    BenchRun run = runBenchGrid(ids, modes, grid);
    run.label = label;
    if (run.points.empty()) {
        std::fprintf(stderr, "no grid points matched the filters\n");
        return 3;
    }

    if (!outPath.empty()) {
        std::ofstream out(outPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 3;
        }
        out << benchJson(run);
        std::fprintf(stderr, "wrote %s (%zu points)\n", outPath.c_str(),
                     run.points.size());
    }

    if (grid.hostProfile && HostProfiler::compiledIn) {
        // Phase tree of the last point's last repeat — a quick look at
        // where host time goes; the per-point top-K is in the JSON.
        std::cout << HostProfiler::instance().textReport();
    }

    if (baselinePath.empty())
        return 0;

    std::string text;
    if (!readFile(baselinePath, text)) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     baselinePath.c_str());
        return 3;
    }
    BenchRun baseline;
    std::string err;
    if (!parseBenchJson(text, baseline, err)) {
        std::fprintf(stderr, "bad baseline %s: %s\n", baselinePath.c_str(),
                     err.c_str());
        return 3;
    }
    BenchCompareOptions cmp;
    cmp.wallTolerance = wallTolerance;
    return int(compareBenchRuns(baseline, run, cmp, std::cout));
}
